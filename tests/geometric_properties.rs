//! Property-based tests for the Euclidean workload family: generation
//! determinism, mirror invariance of the exact k-NN construction,
//! fingerprint sensitivity, and the EMST oracle's ability to reject
//! corrupted forests.

use mnd::graph::gen::{GeoPreset, PointCloud};
use mnd::graph::CsrGraph;
use mnd::kernels::{kruskal_msf, verify_msf};
use proptest::prelude::*;

fn arb_preset() -> impl Strategy<Value = GeoPreset> {
    (0usize..GeoPreset::ALL.len()).prop_map(|i| GeoPreset::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same (preset, seed, scale) ⇒ bit-identical edge list; a different
    /// seed must move at least one edge (the weight space is squared
    /// distances over fresh points, a collision across the whole list is
    /// astronomically unlikely).
    #[test]
    fn generation_is_deterministic_per_seed(p in arb_preset(), seed in 0u64..1000) {
        let a = p.generate(1 << 16, seed);
        let b = p.generate(1 << 16, seed);
        prop_assert_eq!(&a, &b);
        let c = p.generate(1 << 16, seed ^ 0x9E37);
        prop_assert_ne!(&a, &c);
    }

    /// Reflecting every point through the lattice preserves all pairwise
    /// distances and all ids, so the exact k-NN graph — selection,
    /// tie-breaks, weights — must be identical edge-for-edge. This pins
    /// the construction to geometry: any hidden dependence on coordinate
    /// values (hash order, grid traversal order) would break it.
    #[test]
    fn knn_adjacency_survives_mirroring(
        p in arb_preset(),
        n in 64u32..256,
        k in 3usize..12,
        seed in 0u64..1000,
    ) {
        let cloud = p.points(n, seed);
        prop_assert_eq!(cloud.knn_graph(k), cloud.mirrored().knn_graph(k));
    }

    /// The serving plane caches by graph fingerprint: distinct seeds must
    /// produce distinct fingerprints or cached MSTs would cross tenants.
    #[test]
    fn fingerprints_differ_across_seeds(p in arb_preset(), seed in 0u64..1000) {
        let a = p.generate(1 << 16, seed);
        let b = p.generate(1 << 16, seed ^ 0x5EED);
        prop_assert_ne!(a.fingerprint(), b.fingerprint());
        // ... and are stable for equal inputs.
        prop_assert_eq!(a.fingerprint(), p.generate(1 << 16, seed).fingerprint());
    }

    /// The EMST oracle must discriminate, not just accept: corrupting one
    /// forest edge (weight nudge = foreign edge, or swapping in the
    /// heaviest graph edge = broken minimality/structure) must fail
    /// verification against the input graph.
    #[test]
    fn emst_oracle_rejects_corrupted_forest(
        n in 32u32..96,
        seed in 0u64..1000,
        victim in 0usize..1000,
    ) {
        let cloud = PointCloud::uniform(n, 2, seed);
        let el = cloud.complete_graph();
        let good = kruskal_msf(&el);
        prop_assert!(verify_msf(&el, &good).is_ok());
        prop_assert!(!good.edges.is_empty());
        let victim = victim % good.edges.len();

        // Foreign edge: same endpoints, off-by-one weight.
        let mut forged = good.clone();
        forged.edges[victim].w = forged.edges[victim].w.wrapping_add(1);
        prop_assert!(verify_msf(&el, &forged).is_err());

        // Heaviest graph edge in place of a forest edge: wrong weight sum
        // (and usually a cycle); either way the oracle must reject.
        let heavy = *el.edges().iter().max_by_key(|e| (e.w, e.u, e.v)).unwrap();
        if !good.edges.contains(&heavy) {
            let mut swapped = good.clone();
            swapped.edges[victim] = heavy;
            prop_assert!(verify_msf(&el, &swapped).is_err());
        }
    }

    /// The connectivity-doubling constructor returns what it promises: a
    /// connected graph, at a k no smaller than requested.
    #[test]
    fn knn_connected_always_connects(p in arb_preset(), seed in 0u64..1000) {
        let cloud = p.points(192, seed);
        let (el, k) = cloud.knn_connected(p.base_k());
        prop_assert!(k >= p.base_k().min(191));
        let g = CsrGraph::from_edge_list(&el);
        prop_assert_eq!(mnd::graph::num_components(&g), 1);
    }
}
