//! Property-based tests (proptest) on the core invariants.

use mnd::graph::{CsrGraph, EdgeList, WEdge};
use mnd::kernels::boruvka::boruvka_msf;
use mnd::kernels::cgraph::{CEdge, CGraph};
use mnd::kernels::parallel::par_boruvka_msf;
use mnd::kernels::policy::{ExcpCond, FreezePolicy, StopPolicy};
use mnd::kernels::{kruskal_msf, local_boruvka, verify_msf, DisjointSets};
use mnd::mst::MndMstRunner;
use proptest::prelude::*;

/// Random canonical edge list over up to `max_v` vertices.
fn arb_edge_list(max_v: u32, max_e: usize) -> impl Strategy<Value = EdgeList> {
    (
        2..max_v,
        proptest::collection::vec((0u32..max_v, 0u32..max_v, 1u32..1000), 0..max_e),
    )
        .prop_map(|(n, raw)| {
            let edges = raw
                .into_iter()
                .map(|(a, b, w)| WEdge::new(a % n, b % n, w))
                .collect::<Vec<_>>();
            EdgeList::from_raw(n, edges)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn boruvka_always_matches_kruskal(el in arb_edge_list(120, 400)) {
        let msf = boruvka_msf(&el);
        prop_assert!(verify_msf(&el, &msf).is_ok());
    }

    #[test]
    fn parallel_boruvka_always_matches_kruskal(el in arb_edge_list(120, 400)) {
        let msf = par_boruvka_msf(&el);
        prop_assert!(verify_msf(&el, &msf).is_ok());
    }

    #[test]
    fn distributed_always_matches_kruskal(
        el in arb_edge_list(100, 300),
        nranks in 1usize..6,
    ) {
        let r = MndMstRunner::new(nranks).run(&el);
        prop_assert_eq!(r.msf, kruskal_msf(&el));
    }

    #[test]
    fn partition_kernel_never_contracts_non_msf_edges(
        el in arb_edge_list(80, 240),
        cut in 1u32..79,
    ) {
        let n = el.num_vertices();
        let cut = cut % n.max(2);
        let g = CsrGraph::from_edge_list(&el);
        let oracle: std::collections::HashSet<WEdge> =
            kruskal_msf(&el).edges.into_iter().collect();
        let mut cg = CGraph::from_partition(
            &g,
            mnd::graph::VertexRange { start: 0, end: cut.min(n) },
        );
        let out = local_boruvka(&mut cg, ExcpCond::BorderEdge, FreezePolicy::Sticky, StopPolicy::Exhaustive);
        for e in &out.msf_edges {
            prop_assert!(oracle.contains(e), "{e:?} not in the MSF");
        }
        prop_assert!(cg.validate().is_ok());
    }

    #[test]
    fn dsu_union_find_is_an_equivalence(ops in proptest::collection::vec((0u32..50, 0u32..50), 0..200)) {
        let mut dsu = DisjointSets::new(50);
        let mut naive: Vec<u32> = (0..50).collect(); // naive component labels
        for (a, b) in ops {
            dsu.union(a, b);
            let (la, lb) = (naive[a as usize], naive[b as usize]);
            if la != lb {
                for x in naive.iter_mut() {
                    if *x == lb {
                        *x = la;
                    }
                }
            }
        }
        for i in 0..50u32 {
            for j in 0..50u32 {
                let same_dsu = dsu.find(i) == dsu.find(j);
                let same_naive = naive[i as usize] == naive[j as usize];
                prop_assert_eq!(same_dsu, same_naive, "{} vs {}", i, j);
            }
        }
        prop_assert_eq!(
            dsu.num_sets(),
            naive.iter().collect::<std::collections::HashSet<_>>().len()
        );
    }

    #[test]
    fn csr_round_trip(el in arb_edge_list(100, 300)) {
        let g = CsrGraph::from_edge_list(&el);
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.to_edge_list(), el);
    }

    #[test]
    fn partition_1d_covers_and_balances(
        el in arb_edge_list(200, 600),
        parts in 1usize..12,
    ) {
        let g = CsrGraph::from_edge_list(&el);
        let ranges = mnd::graph::partition_1d(&g, parts, 0.0);
        prop_assert_eq!(ranges.len(), parts);
        prop_assert_eq!(ranges[0].start, 0);
        prop_assert_eq!(ranges.last().unwrap().end, g.num_vertices());
        for w in ranges.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn split_off_then_absorb_is_identity(el in arb_edge_list(60, 200), k in 1usize..30) {
        let mut cg = CGraph::from_edge_list(&el);
        cg.sort_edges();
        let before = cg.clone();
        let take: Vec<u32> = cg.resident().iter().copied().take(k).collect();
        if take.len() < cg.num_resident() {
            let seg = cg.split_off(&take);
            cg.absorb(seg);
            cg.sort_edges();
            prop_assert_eq!(cg.resident(), before.resident());
            let mut a = cg.edges_vec();
            let mut b = before.edges_vec();
            a.sort_by_key(|e: &CEdge| (e.orig.u, e.orig.v));
            b.sort_by_key(|e: &CEdge| (e.orig.u, e.orig.v));
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn multi_edge_removal_preserves_msf(el in arb_edge_list(80, 300)) {
        // Reducing a whole-graph holding must not change its MSF.
        let oracle = kruskal_msf(&el);
        let mut cg = CGraph::from_edge_list(&el);
        cg.remove_self_edges();
        cg.remove_multi_edges();
        let reduced = EdgeList::from_raw(
            el.num_vertices(),
            cg.iter_edges().map(|e| e.orig).collect(),
        );
        prop_assert_eq!(kruskal_msf(&reduced), oracle);
    }

    #[test]
    fn weights_determine_unique_msf_regardless_of_edge_order(el in arb_edge_list(80, 250)) {
        let mut shuffled = el.edges().to_vec();
        shuffled.reverse();
        let el2 = EdgeList::from_raw(el.num_vertices(), shuffled);
        prop_assert_eq!(kruskal_msf(&el), kruskal_msf(&el2));
    }
}
