//! Mid-superstep crash recovery tests for the BSP baseline — the Pregel+
//! side of the resilience comparison (DESIGN.md §5g), mirroring
//! `tests/chaos_recovery.rs` for the D&C driver.
//!
//! Three properties are asserted throughout:
//!
//! 1. **Correctness** — whatever the crash point, the MSF equals the
//!    Kruskal oracle and is byte-identical to the fault-free run.
//! 2. **No double-charged traffic** — replayed inbound messages are served
//!    from the replay log, so the recovered run's fabric byte/message
//!    counters equal the fault-free run's on every worker.
//! 3. **Determinism** — the same plan seed yields the same recovery path,
//!    the same stats, and the same virtual makespan, run after run.

use std::sync::Arc;

use mnd::chaos::{ChaosLog, CrashPoint, FaultPlan};
use mnd::device::NodePlatform;
use mnd::graph::components::bfs_distances;
use mnd::graph::{gen, CsrGraph, EdgeList};
use mnd::hypar::{ChaosControl, ChaosEventKind, ObserverHook};
use mnd::kernels::kruskal_msf;
use mnd::net::{FaultInjector, SendFate, Tag};
use mnd::pregel::{
    pregel_bfs, pregel_bfs_chaos, pregel_msf, pregel_msf_chaos, BspChaos, BspConfig, PregelReport,
};

fn cfg() -> BspConfig {
    BspConfig::default()
}

fn run_with_plan(
    el: &EdgeList,
    nranks: usize,
    plan: Arc<FaultPlan>,
    log: Option<Arc<ChaosLog>>,
) -> PregelReport {
    let mut chaos = BspChaos::from_plan(plan);
    if let Some(log) = log {
        chaos = chaos.with_observer(ObserverHook::new(log));
    }
    pregel_msf_chaos(el, nranks, &NodePlatform::amd_cluster(), &cfg(), &chaos)
}

fn run_clean(el: &EdgeList, nranks: usize) -> PregelReport {
    pregel_msf(el, nranks, &NodePlatform::amd_cluster(), &cfg())
}

/// The acceptance scenario: worker 2 dies mid-superstep in epoch 1,
/// restores the superstep-boundary checkpoint before the epoch, replays
/// its logged inbound traffic for free, and finishes with a forest
/// byte-identical to the fault-free run.
#[test]
fn mid_superstep_crash_replays_from_checkpoint() {
    let el = gen::gnm(800, 4800, 13);
    let oracle = kruskal_msf(&el);

    let clean = run_clean(&el, 4);
    let log = Arc::new(ChaosLog::new());
    let plan = Arc::new(FaultPlan::new(3).with_mid_phase_crash(2, 1, 9));
    let r = run_with_plan(&el, 4, plan, Some(log.clone()));

    assert_eq!(r.msf, oracle);
    assert_eq!(r.msf, clean.msf, "recovered forest must be byte-identical");
    assert_eq!(log.count(ChaosEventKind::MidPhaseCrash), 1);
    assert_eq!(log.count(ChaosEventKind::CheckpointRestore), 1);
    assert_eq!(r.rank_stats[2].checkpoint_restores, 1);

    // The crashed worker re-executed real compute ...
    assert!(
        r.rank_stats[2].replayed_compute > 0.0,
        "re-executed epoch must charge compute"
    );
    // ... re-ran supersteps at recovery cost ...
    assert!(
        r.recovered_supersteps > 0,
        "interrupted epoch re-runs supersteps"
    );
    // ... and replayed inbound traffic out of its log ...
    assert!(
        r.rank_stats[2].replayed_in_bytes > 0,
        "rolled-back epoch must replay logged messages"
    );
    // ... but the fabric was not re-charged: every worker's byte and
    // message counters match the fault-free run exactly.
    for (rank, (s, c)) in r.rank_stats.iter().zip(&clean.rank_stats).enumerate() {
        assert_eq!(s.bytes_received, c.bytes_received, "rank {rank}");
        assert_eq!(s.bytes_sent, c.bytes_sent, "rank {rank}");
        assert_eq!(s.messages_received, c.messages_received, "rank {rank}");
        assert_eq!(s.messages_sent, c.messages_sent, "rank {rank}");
    }
    for (rank, s) in r.rank_stats.iter().enumerate() {
        if rank != 2 {
            assert_eq!(s.replayed_in_bytes, 0, "rank {rank} never crashed");
            assert_eq!(s.replayed_compute, 0.0, "rank {rank} never crashed");
        }
    }
    // Recovery costs time: restart stall plus the re-executed epoch.
    assert!(r.total_time > clean.total_time, "recovery must cost time");
}

/// Crash every worker at every crash point (superstep boundaries and
/// mid-superstep ops, including epoch 0 where no checkpoint exists yet)
/// across graph seeds: the MSF always equals the oracle.
#[test]
fn crash_grid_over_supersteps_ranks_and_seeds_matches_oracle() {
    let points = [
        CrashPoint::Boundary(0),
        CrashPoint::Boundary(1),
        CrashPoint::MidPhase { epoch: 0, op: 3 },
        CrashPoint::MidPhase { epoch: 1, op: 7 },
        CrashPoint::MidPhase { epoch: 2, op: 2 },
    ];
    for graph_seed in [5, 23] {
        let el = gen::gnm(600, 3600, graph_seed);
        let oracle = kruskal_msf(&el);
        for rank in [0, 3] {
            for point in points {
                let plan = Arc::new(FaultPlan::new(11).with_crash_point(rank, point));
                let r = run_with_plan(&el, 4, plan, None);
                assert_eq!(
                    r.msf, oracle,
                    "graph_seed={graph_seed} rank={rank} point={point:?}"
                );
            }
        }
    }
}

/// A crash in epoch 0 has no checkpoint to fall back to: the worker
/// replays the whole prefix live from scratch (no restore event) and
/// still converges.
#[test]
fn epoch_zero_crash_restarts_from_scratch() {
    let el = gen::gnm(500, 3000, 17);
    let log = Arc::new(ChaosLog::new());
    let plan = Arc::new(FaultPlan::new(7).with_mid_phase_crash(1, 0, 4));
    let r = run_with_plan(&el, 4, plan, Some(log.clone()));

    assert_eq!(r.msf, kruskal_msf(&el));
    assert_eq!(log.count(ChaosEventKind::MidPhaseCrash), 1);
    assert_eq!(
        log.count(ChaosEventKind::CheckpointRestore),
        0,
        "no checkpoint exists before epoch 0"
    );
    assert_eq!(r.rank_stats[1].checkpoint_restores, 0);
    assert!(r.rank_stats[1].replayed_compute > 0.0);
}

/// The recovery path is deterministic: same plan, same graph → identical
/// forest, stats, event stream, and virtual makespan.
#[test]
fn bsp_recovery_path_is_deterministic() {
    let el = gen::web_crawl(1200, 9_000, gen::CrawlParams::default(), 31);
    let plan = Arc::new(
        FaultPlan::new(42)
            .with_drop_rate(0.02)
            .with_mid_phase_crash(2, 1, 6),
    );
    let (log_a, log_b) = (Arc::new(ChaosLog::new()), Arc::new(ChaosLog::new()));
    let a = run_with_plan(&el, 4, plan.clone(), Some(log_a.clone()));
    let b = run_with_plan(&el, 4, plan, Some(log_b.clone()));

    assert_eq!(a.msf, b.msf);
    assert_eq!(a.total_time, b.total_time);
    assert_eq!(a.recovered_supersteps, b.recovered_supersteps);
    for (ra, rb) in a.rank_stats.iter().zip(&b.rank_stats) {
        assert_eq!(ra.replayed_in_bytes, rb.replayed_in_bytes);
        assert_eq!(ra.replayed_compute, rb.replayed_compute);
        assert_eq!(ra.checkpoint_restores, rb.checkpoint_restores);
        assert_eq!(ra.stall_time, rb.stall_time);
    }
    assert_eq!(log_a.events_sorted(), log_b.events_sorted());
}

/// Mid-superstep crashes compose with message-plane faults (drops,
/// duplicates) and boundary crashes on other workers.
#[test]
fn bsp_crash_composes_with_other_faults() {
    let el = gen::gnm(700, 4200, 19);
    let plan = Arc::new(
        FaultPlan::new(9)
            .with_drop_rate(0.05)
            .with_duplicates(0.05)
            .with_crash(3, 1)
            .with_mid_phase_crash(0, 1, 9),
    );
    let r = run_with_plan(&el, 4, plan, None);
    assert_eq!(r.msf, kruskal_msf(&el));
    assert!(r.rank_stats[0].replayed_compute > 0.0);
    assert_eq!(r.rank_stats[3].checkpoint_restores, 1);
    assert!(r.rank_stats.iter().any(|s| s.retries > 0), "drops fired");
}

/// `BspConfig::checkpoint_interval` controls the checkpoint cadence:
/// halving the interval at least doubles nothing but strictly increases
/// the number of checkpoint writes, and every cadence recovers correctly.
#[test]
fn checkpoint_interval_scales_write_count() {
    let el = gen::gnm(600, 3600, 29);
    let oracle = kruskal_msf(&el);
    let writes_at = |interval: u64| {
        let plan = Arc::new(FaultPlan::new(5).with_mid_phase_crash(1, 1, 5));
        let chaos = BspChaos::from_plan(plan);
        let c = BspConfig {
            checkpoint_interval: interval,
            ..cfg()
        };
        let r = pregel_msf_chaos(&el, 4, &NodePlatform::amd_cluster(), &c, &chaos);
        assert_eq!(r.msf, oracle, "interval={interval}");
        r.rank_stats
            .iter()
            .map(|s| s.checkpoint_writes)
            .sum::<u64>()
    };
    let frequent = writes_at(2);
    let sparse = writes_at(8);
    assert!(
        frequent > sparse,
        "interval 2 wrote {frequent} checkpoints, interval 8 wrote {sparse}"
    );
}

/// The replay-horizon GC is semantically transparent: a plan wrapper that
/// hides its horizon (forcing the log to be kept for the whole run) yields
/// the exact same recovered run as the GC'd plan.
#[test]
fn replay_log_gc_is_transparent() {
    /// Delegates both fault planes to the inner plan but reports an
    /// unknown replay horizon, disabling the log GC.
    struct NoHorizon(Arc<FaultPlan>);
    impl FaultInjector for NoHorizon {
        fn fate(&self, src: usize, dst: usize, tag: Tag, seq: u64, bytes: u64) -> SendFate {
            self.0.fate(src, dst, tag, seq, bytes)
        }
    }
    impl ChaosControl for NoHorizon {
        fn stall_seconds(&self, rank: usize, boundary: u32) -> f64 {
            self.0.stall_seconds(rank, boundary)
        }
        fn crashes_at(&self, rank: usize, boundary: u32) -> bool {
            self.0.crashes_at(rank, boundary)
        }
        fn leader_down(&self, rank: usize, level: u32) -> bool {
            self.0.leader_down(rank, level)
        }
        fn mid_phase_crash(&self, rank: usize, epoch: u32) -> Option<u64> {
            self.0.mid_phase_crash(rank, epoch)
        }
        // replay_horizon: default None — keep the log forever.
    }

    let el = gen::gnm(700, 4200, 37);
    let plan = Arc::new(
        FaultPlan::new(21)
            .with_drop_rate(0.02)
            .with_mid_phase_crash(2, 1, 8),
    );
    let gc = run_with_plan(&el, 4, plan.clone(), None);
    let chaos = BspChaos::from_plan(Arc::new(NoHorizon(plan)));
    let kept = pregel_msf_chaos(&el, 4, &NodePlatform::amd_cluster(), &cfg(), &chaos);

    assert_eq!(gc.msf, kept.msf);
    assert_eq!(gc.total_time, kept.total_time);
    for (a, b) in gc.rank_stats.iter().zip(&kept.rank_stats) {
        assert_eq!(a.bytes_sent, b.bytes_sent);
        assert_eq!(a.bytes_received, b.bytes_received);
        assert_eq!(a.replayed_in_bytes, b.replayed_in_bytes);
        assert_eq!(a.replayed_compute, b.replayed_compute);
    }
}

/// The BFS vertex program recovers through the same machinery: distances
/// after a mid-superstep crash match the sequential oracle and the
/// fault-free run's fabric counters.
#[test]
fn bfs_mid_superstep_crash_recovers() {
    let el = gen::road_grid(30, 30, 0.02, 0.2, 7);
    let oracle = bfs_distances(&CsrGraph::from_edge_list(&el), 0);
    let plat = NodePlatform::amd_cluster();

    let clean = pregel_bfs(&el, 0, 4, &plat, &cfg());
    assert_eq!(clean.dist, oracle);

    for point in [
        CrashPoint::MidPhase { epoch: 0, op: 2 },
        CrashPoint::MidPhase { epoch: 2, op: 3 },
        CrashPoint::Boundary(1),
    ] {
        let plan = Arc::new(FaultPlan::new(15).with_crash_point(1, point));
        let chaos = BspChaos::from_plan(plan);
        let r = pregel_bfs_chaos(&el, 0, 4, &plat, &cfg(), &chaos);
        assert_eq!(r.dist, oracle, "point={point:?}");
        for (rank, (s, c)) in r.rank_stats.iter().zip(&clean.rank_stats).enumerate() {
            assert_eq!(s.bytes_sent, c.bytes_sent, "rank {rank} point={point:?}");
            assert_eq!(
                s.messages_received, c.messages_received,
                "rank {rank} point={point:?}"
            );
        }
    }
}
