//! Cross-engine agreement: every engine in the registry (D&C driver, BSP
//! baseline, min-plus SpMV) computes the same forest over random graphs ×
//! seeds — fault-free and under a shared [`FaultPlan`] — and that forest
//! matches the Kruskal oracle. The registry is the single source of truth:
//! a fourth engine added there is automatically held to the same contract.

use std::sync::Arc;

use mnd::chaos::FaultPlan;
use mnd::engine::EngineChaos;
use mnd::engines::{registry, EngineParams};
use mnd::graph::{EdgeList, WEdge};
use mnd::kernels::kruskal_msf;
use proptest::prelude::*;

/// Random canonical edge list over up to `max_v` vertices.
fn arb_edge_list(max_v: u32, max_e: usize) -> impl Strategy<Value = EdgeList> {
    (
        2..max_v,
        proptest::collection::vec((0u32..max_v, 0u32..max_v, 1u32..1000), 0..max_e),
    )
        .prop_map(|(n, raw)| {
            let edges = raw
                .into_iter()
                .map(|(a, b, w)| WEdge::new(a % n, b % n, w))
                .collect::<Vec<_>>();
            EdgeList::from_raw(n, edges)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fault-free: all registered engines agree with the oracle (and so
    /// with each other) on arbitrary graphs and rank counts.
    #[test]
    fn engines_agree_fault_free(
        el in arb_edge_list(100, 300),
        nranks in 1usize..6,
    ) {
        let oracle = kruskal_msf(&el);
        for engine in registry(&EngineParams::new(nranks)) {
            let r = engine.run(&el);
            prop_assert_eq!(
                &r.msf, &oracle,
                "{} disagrees with oracle on {} vertices",
                engine.name(), el.num_vertices()
            );
        }
    }

    /// Under a shared fault plan (message faults + a mid-phase crash),
    /// every engine still produces the oracle forest: whatever each
    /// engine's recovery path replays, the result is byte-identical.
    #[test]
    fn engines_agree_under_shared_faults(
        el in arb_edge_list(80, 240),
        seed in 0u64..1000,
    ) {
        let nranks = 4;
        let oracle = kruskal_msf(&el);
        for engine in registry(&EngineParams::new(nranks)) {
            let plan = Arc::new(
                FaultPlan::new(seed)
                    .with_drop_rate(0.02)
                    .with_duplicates(0.02)
                    .with_mid_phase_crash(seed as usize % nranks, 1, 1 + seed % 4),
            );
            let r = engine.run_chaos(&el, &EngineChaos::from_plan(plan));
            prop_assert_eq!(
                &r.msf, &oracle,
                "{} under plan seed {} disagrees with oracle",
                engine.name(), seed
            );
        }
    }
}

/// The mid-phase crash grid of `tests/chaos_recovery.rs`/`tests/bsp_chaos.rs`,
/// run through the registry: a crash at every early (epoch, op) cell must
/// leave every engine's forest byte-identical to its fault-free run.
#[test]
fn crash_grid_is_byte_identical_across_engines() {
    let el = mnd::graph::gen::gnm(400, 2400, 97);
    let oracle = kruskal_msf(&el);
    let nranks = 4;
    for engine in registry(&EngineParams::new(nranks)) {
        let clean = engine.run(&el);
        assert_eq!(clean.msf, oracle, "{} fault-free != oracle", engine.name());
        for epoch in [0u32, 1] {
            for op in [1u64, 3, 7] {
                let plan = Arc::new(FaultPlan::new(5).with_mid_phase_crash(2, epoch, op));
                let r = engine.run_chaos(&el, &EngineChaos::from_plan(plan));
                assert_eq!(
                    r.msf,
                    clean.msf,
                    "{} crash@(epoch {epoch}, op {op}): forest not byte-identical",
                    engine.name()
                );
            }
        }
    }
}

/// Engines accept the same `Arc<FaultPlan>` instance — the plan is shared
/// infrastructure, not per-engine configuration.
#[test]
fn one_plan_instance_drives_every_engine() {
    let el = mnd::graph::gen::gnm(300, 1500, 11);
    let oracle = kruskal_msf(&el);
    let plan = Arc::new(FaultPlan::new(23).with_drop_rate(0.05).with_reorder(0.05));
    for engine in registry(&EngineParams::new(3)) {
        let r = engine.run_chaos(&el, &EngineChaos::from_plan(plan.clone()));
        assert_eq!(r.msf, oracle, "{} != oracle", engine.name());
    }
}
