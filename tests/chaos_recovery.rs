//! Mid-phase crash recovery tests: a rank killed *inside* a phase rolls
//! back to the checkpoint before the interrupted epoch, replays its peers'
//! logged inbound messages without re-charging the fabric, and re-executes
//! the epoch deterministically (DESIGN.md §5f).
//!
//! Three properties are asserted throughout:
//!
//! 1. **Correctness** — whatever the crash point, the MSF equals the
//!    Kruskal oracle and is byte-identical to the fault-free run.
//! 2. **No double-charged traffic** — replayed inbound messages are served
//!    from the replay log, so the recovered run's fabric byte/message
//!    counters equal the fault-free run's on every rank.
//! 3. **Determinism** — the same plan seed yields the same recovery path,
//!    the same stats, and the same virtual makespan, run after run.

use std::sync::Arc;

use mnd::chaos::{ChaosLog, CrashPoint, FaultPlan};
use mnd::graph::{gen, EdgeList};
use mnd::hypar::{ChaosEventKind, HyParConfig};
use mnd::kernels::kruskal_msf;
use mnd::mst::{MndMstReport, MndMstRunner};

fn run_with_plan(
    el: &EdgeList,
    nranks: usize,
    plan: Arc<FaultPlan>,
    log: Option<Arc<ChaosLog>>,
) -> MndMstReport {
    run_with_plan_cfg(el, nranks, HyParConfig::default(), plan, log)
}

fn run_with_plan_cfg(
    el: &EdgeList,
    nranks: usize,
    cfg: HyParConfig,
    plan: Arc<FaultPlan>,
    log: Option<Arc<ChaosLog>>,
) -> MndMstReport {
    let mut cfg = cfg.with_chaos(plan.clone());
    if let Some(log) = log {
        cfg = cfg.with_observer(log);
    }
    MndMstRunner::new(nranks)
        .with_config(cfg)
        .with_fault_injector(plan)
        .run(el)
}

/// The acceptance scenario: rank 2 dies at fabric op 5 of epoch 1 (inside
/// the first independent-computation round), restores the
/// Partition→IndComp boundary checkpoint, replays, and finishes with a
/// forest byte-identical to the fault-free run.
#[test]
fn mid_ind_comp_crash_replays_from_partition_checkpoint() {
    let el = gen::gnm(800, 4800, 13);
    let oracle = kruskal_msf(&el);

    let clean = run_with_plan(&el, 4, Arc::new(FaultPlan::new(3)), None);
    let log = Arc::new(ChaosLog::new());
    let plan = Arc::new(FaultPlan::new(3).with_mid_phase_crash(2, 1, 5));
    let r = run_with_plan(&el, 4, plan, Some(log.clone()));

    assert_eq!(r.msf, oracle);
    assert_eq!(r.msf, clean.msf, "recovered forest must be byte-identical");
    assert_eq!(log.count(ChaosEventKind::MidPhaseCrash), 1);
    assert_eq!(log.count(ChaosEventKind::CheckpointRestore), 1);
    assert_eq!(r.rank_stats[2].checkpoint_restores, 1);

    // The crashed rank re-executed real compute ...
    assert!(
        r.rank_stats[2].replayed_compute > 0.0,
        "re-executed epoch must charge compute"
    );
    // ... and replayed inbound traffic out of its log ...
    assert!(
        r.rank_stats[2].replayed_in_bytes > 0,
        "rolled-back epoch must replay logged messages"
    );
    // ... but the fabric was not re-charged: every rank's byte and message
    // counters match the fault-free run exactly.
    for (rank, (s, c)) in r.rank_stats.iter().zip(&clean.rank_stats).enumerate() {
        assert_eq!(s.bytes_received, c.bytes_received, "rank {rank}");
        assert_eq!(s.bytes_sent, c.bytes_sent, "rank {rank}");
        assert_eq!(s.messages_received, c.messages_received, "rank {rank}");
        assert_eq!(s.messages_sent, c.messages_sent, "rank {rank}");
    }
    for (rank, s) in r.rank_stats.iter().enumerate() {
        if rank != 2 {
            assert_eq!(s.replayed_in_bytes, 0, "rank {rank} never crashed");
            assert_eq!(s.replayed_compute, 0.0, "rank {rank} never crashed");
        }
    }
    // Recovery costs time: restart stall plus the re-executed epoch.
    assert!(r.total_time > clean.total_time, "recovery must cost time");
}

/// Crash every rank at every crash point (boundaries and mid-phase ops,
/// including epoch 0 where no checkpoint exists yet) across seeds: the MSF
/// always equals the oracle.
#[test]
fn crash_grid_over_points_and_seeds_matches_oracle() {
    let points = [
        CrashPoint::Boundary(0),
        CrashPoint::Boundary(1),
        CrashPoint::MidPhase { epoch: 0, op: 3 },
        CrashPoint::MidPhase { epoch: 1, op: 7 },
        CrashPoint::MidPhase { epoch: 2, op: 2 },
    ];
    for graph_seed in [5, 23] {
        let el = gen::gnm(600, 3600, graph_seed);
        let oracle = kruskal_msf(&el);
        for rank in [0, 3] {
            for point in points {
                let plan = Arc::new(FaultPlan::new(11).with_crash_point(rank, point));
                let r = run_with_plan(&el, 4, plan, None);
                assert_eq!(
                    r.msf, oracle,
                    "graph_seed={graph_seed} rank={rank} point={point:?}"
                );
            }
        }
    }
}

/// A crash in epoch 0 has no checkpoint to fall back to: the rank replays
/// the whole prefix live from scratch (no restore event) and still
/// converges.
#[test]
fn epoch_zero_crash_restarts_from_scratch() {
    let el = gen::gnm(500, 3000, 17);
    let log = Arc::new(ChaosLog::new());
    let plan = Arc::new(FaultPlan::new(7).with_mid_phase_crash(1, 0, 4));
    let r = run_with_plan(&el, 4, plan, Some(log.clone()));

    assert_eq!(r.msf, kruskal_msf(&el));
    assert_eq!(log.count(ChaosEventKind::MidPhaseCrash), 1);
    assert_eq!(
        log.count(ChaosEventKind::CheckpointRestore),
        0,
        "no checkpoint exists before epoch 0"
    );
    assert_eq!(r.rank_stats[1].checkpoint_restores, 0);
    assert!(r.rank_stats[1].replayed_compute > 0.0);
}

/// The recovery path is deterministic: same plan, same graph → identical
/// forest, stats, event stream, and virtual makespan.
#[test]
fn mid_phase_recovery_path_is_deterministic() {
    let el = gen::web_crawl(1200, 9_000, gen::CrawlParams::default(), 31);
    let plan = Arc::new(
        FaultPlan::new(42)
            .with_drop_rate(0.02)
            .with_mid_phase_crash(2, 1, 6),
    );
    let (log_a, log_b) = (Arc::new(ChaosLog::new()), Arc::new(ChaosLog::new()));
    let a = run_with_plan(&el, 4, plan.clone(), Some(log_a.clone()));
    let b = run_with_plan(&el, 4, plan, Some(log_b.clone()));

    assert_eq!(a.msf, b.msf);
    assert_eq!(a.total_time, b.total_time);
    for (ra, rb) in a.rank_stats.iter().zip(&b.rank_stats) {
        assert_eq!(ra.replayed_in_bytes, rb.replayed_in_bytes);
        assert_eq!(ra.replayed_compute, rb.replayed_compute);
        assert_eq!(ra.checkpoint_restores, rb.checkpoint_restores);
        assert_eq!(ra.stall_time, rb.stall_time);
    }
    assert_eq!(log_a.events_sorted(), log_b.events_sorted());
}

/// The full communication-engineering stack (sparse exchange, compressed
/// relabels, filter-Boruvka sampling) recovers from a mid-phase crash with
/// the forest *and* the fabric counters byte-identical to its own
/// fault-free run: replayed sparse headers and packed payloads come out of
/// the replay log, never re-charged.
#[test]
fn sparse_packed_filtered_recovery_matches_fault_free_counters() {
    let el = gen::web_crawl(1500, 11_000, gen::CrawlParams::default(), 37);
    let oracle = kruskal_msf(&el);
    let cfg = HyParConfig::default().with_filter_sample_prob(0.25);
    assert!(cfg.sparse_exchange && cfg.compressed_relabels);

    let clean = run_with_plan_cfg(&el, 4, cfg.clone(), Arc::new(FaultPlan::new(5)), None);
    let log = Arc::new(ChaosLog::new());
    let plan = Arc::new(
        FaultPlan::new(5)
            .with_drop_rate(0.01)
            .with_mid_phase_crash(2, 1, 5),
    );
    let r = run_with_plan_cfg(&el, 4, cfg, plan, Some(log.clone()));

    assert_eq!(r.msf, oracle);
    assert_eq!(r.msf, clean.msf, "recovered forest must be byte-identical");
    assert_eq!(log.count(ChaosEventKind::MidPhaseCrash), 1);
    assert!(r.rank_stats[2].replayed_in_bytes > 0);
    for (rank, (s, c)) in r.rank_stats.iter().zip(&clean.rank_stats).enumerate() {
        assert_eq!(s.bytes_sent, c.bytes_sent, "rank {rank}");
        assert_eq!(s.bytes_received, c.bytes_received, "rank {rank}");
        assert_eq!(s.messages_sent, c.messages_sent, "rank {rank}");
        assert_eq!(s.messages_received, c.messages_received, "rank {rank}");
    }
}

/// Mid-phase crashes compose with message-plane faults and boundary
/// crashes on other ranks.
#[test]
fn mid_phase_crash_composes_with_other_faults() {
    let el = gen::gnm(700, 4200, 19);
    let plan = Arc::new(
        FaultPlan::new(9)
            .with_drop_rate(0.05)
            .with_duplicates(0.05)
            .with_crash(3, 1)
            .with_mid_phase_crash(0, 1, 9),
    );
    let r = run_with_plan(&el, 4, plan, None);
    assert_eq!(r.msf, kruskal_msf(&el));
    assert!(r.rank_stats[0].replayed_compute > 0.0);
    assert_eq!(r.rank_stats[3].checkpoint_restores, 1);
}
