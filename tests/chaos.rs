//! Fault-injection tests: the full pipeline under seeded fault plans —
//! message drops, delays, duplicates, reorders, rank crashes with
//! checkpoint restart, and dead merge-group leaders.
//!
//! Two properties are asserted throughout:
//!
//! 1. **Correctness under chaos** — whatever the fault plan, the MSF must
//!    equal the Kruskal oracle (the transport stays reliable over the
//!    chaotic fabric; faults cost time, never results).
//! 2. **Replayability** — the same `FaultPlan` seed yields the identical
//!    fault schedule, the identical recovery path (same retries,
//!    redeliveries, checkpoint restores per rank), and the identical
//!    virtual makespan, run after run.

use std::sync::Arc;

use mnd::chaos::{ChaosLog, FaultPlan, FaultRule};
use mnd::graph::{gen, EdgeList};
use mnd::hypar::{ChaosEventKind, HyParConfig};
use mnd::kernels::kruskal_msf;
use mnd::mst::{MndMstReport, MndMstRunner};

/// Runs the distributed pipeline with `plan` wired into both fault layers
/// (message plane + phase plane), optionally logging chaos events.
fn run_with_plan(
    el: &EdgeList,
    nranks: usize,
    plan: Arc<FaultPlan>,
    log: Option<Arc<ChaosLog>>,
) -> MndMstReport {
    let mut cfg = HyParConfig::default().with_chaos(plan.clone());
    if let Some(log) = log {
        cfg = cfg.with_observer(log);
    }
    MndMstRunner::new(nranks)
        .with_config(cfg)
        .with_fault_injector(plan)
        .run(el)
}

/// The grid's fault plans, from mild to hostile. Includes at least one
/// rank crash with checkpoint restart and one dead merge-group leader.
fn plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("armed-clean", FaultPlan::new(seed)),
        ("drop-heavy", FaultPlan::new(seed).with_drop_rate(0.15)),
        (
            "everything",
            FaultPlan::new(seed)
                .with_drop_rate(0.05)
                .with_delay(0.2, 1e-3)
                .with_duplicates(0.05)
                .with_reorder(0.05),
        ),
        (
            "crash-restart",
            FaultPlan::new(seed).with_drop_rate(0.02).with_crash(2, 1),
        ),
        (
            "dead-leader",
            FaultPlan::new(seed)
                .with_drop_rate(0.02)
                .with_dead_leader(0, 1),
        ),
    ]
}

#[test]
fn msf_matches_oracle_across_seeds_and_fault_plans() {
    for graph_seed in [5, 23] {
        let el = gen::gnm(700, 4200, graph_seed);
        let oracle = kruskal_msf(&el);
        for plan_seed in [1, 99] {
            for (name, plan) in plans(plan_seed) {
                let r = run_with_plan(&el, 4, Arc::new(plan), None);
                assert_eq!(
                    r.msf, oracle,
                    "graph_seed={graph_seed} plan_seed={plan_seed} plan={name}"
                );
            }
        }
    }
}

#[test]
fn fault_schedule_and_recovery_path_are_deterministic() {
    let el = gen::web_crawl(1500, 12_000, gen::CrawlParams::default(), 31);
    for (name, plan) in plans(42) {
        let plan = Arc::new(plan);
        let (log_a, log_b) = (Arc::new(ChaosLog::new()), Arc::new(ChaosLog::new()));
        let a = run_with_plan(&el, 4, plan.clone(), Some(log_a.clone()));
        let b = run_with_plan(&el, 4, plan, Some(log_b.clone()));

        assert_eq!(a.msf, b.msf, "plan={name}");
        assert_eq!(a.total_time, b.total_time, "plan={name}");
        for (ra, rb) in a.rank_stats.iter().zip(&b.rank_stats) {
            assert_eq!(ra.retries, rb.retries, "plan={name}");
            assert_eq!(ra.redeliveries, rb.redeliveries, "plan={name}");
            assert_eq!(ra.checkpoint_writes, rb.checkpoint_writes, "plan={name}");
            assert_eq!(
                ra.checkpoint_restores, rb.checkpoint_restores,
                "plan={name}"
            );
            assert_eq!(ra.stall_time, rb.stall_time, "plan={name}");
        }
        // The chaos event streams agree once put in a schedule-independent
        // order (cross-rank arrival order is thread scheduling).
        assert_eq!(log_a.events_sorted(), log_b.events_sorted(), "plan={name}");
    }
}

#[test]
fn drops_force_retries_but_payloads_arrive_once() {
    let el = gen::gnm(600, 3600, 9);
    let plan = Arc::new(FaultPlan::new(7).with_drop_rate(0.10).with_duplicates(0.10));
    let r = run_with_plan(&el, 4, plan, None);
    assert_eq!(r.msf, kruskal_msf(&el));
    let retries: u64 = r.rank_stats.iter().map(|s| s.retries).sum();
    let redeliveries: u64 = r.rank_stats.iter().map(|s| s.redeliveries).sum();
    assert!(retries > 0, "10% drops must force at least one retry");
    assert!(
        redeliveries > 0,
        "10% duplicates must be filtered somewhere"
    );
}

#[test]
fn crashed_rank_restarts_from_its_checkpoint() {
    let el = gen::gnm(800, 4800, 13);
    let plan = Arc::new(FaultPlan::new(3).with_drop_rate(0.01).with_crash(2, 1));
    let log = Arc::new(ChaosLog::new());
    let r = run_with_plan(&el, 4, plan, Some(log.clone()));

    assert_eq!(r.msf, kruskal_msf(&el));
    assert_eq!(log.count(ChaosEventKind::Crash), 1);
    assert_eq!(log.count(ChaosEventKind::CheckpointRestore), 1);
    assert_eq!(r.rank_stats[2].checkpoint_restores, 1);
    // Every rank checkpoints at every boundary while chaos is armed; only
    // the crashed rank pays a restore.
    for (rank, s) in r.rank_stats.iter().enumerate() {
        assert!(s.checkpoint_writes > 0, "rank {rank} never checkpointed");
        if rank != 2 {
            assert_eq!(s.checkpoint_restores, 0, "rank {rank}");
        }
    }
    // The restore is charged to the virtual clock: a restart costs at
    // least the modelled rank-restart latency over the clean-armed run.
    let clean = run_with_plan(&el, 4, Arc::new(FaultPlan::new(3)), None);
    assert!(r.total_time > clean.total_time, "restart must cost time");
}

#[test]
fn merge_group_reelects_a_leader_when_its_leader_dies() {
    let el = gen::watts_strogatz(500, 6, 0.2, 21);
    // 4 ranks, group_size 4 -> one merge group {0,1,2,3} led by rank 0.
    // Rank 0 is down for leader duty at level 1, so the group must elect
    // rank 1 and the final gather must come from the new leader.
    let plan = Arc::new(FaultPlan::new(11).with_dead_leader(0, 1));
    let log = Arc::new(ChaosLog::new());
    let r = run_with_plan(&el, 4, plan, Some(log.clone()));

    assert_eq!(r.msf, kruskal_msf(&el));
    assert!(
        log.count(ChaosEventKind::LeaderFailover) >= 1,
        "re-election must be reported"
    );
    let failover = log
        .events()
        .into_iter()
        .find(|e| e.kind == ChaosEventKind::LeaderFailover)
        .expect("failover event");
    assert_eq!(failover.detail, 1, "group {{0..3}} elects rank 1");
}

#[test]
fn stalls_cost_virtual_time_but_not_correctness() {
    let el = gen::gnm(500, 3000, 17);
    let oracle = kruskal_msf(&el);
    let clean = run_with_plan(&el, 4, Arc::new(FaultPlan::new(5)), None);
    let stalled = run_with_plan(
        &el,
        4,
        Arc::new(FaultPlan::new(5).with_stall(1, 0, 2.5)),
        None,
    );
    assert_eq!(clean.msf, oracle);
    assert_eq!(stalled.msf, oracle);
    assert!(stalled.rank_stats[1].stall_time >= 2.5);
    assert!(
        stalled.total_time > clean.total_time,
        "a 2.5s stall must show up in the makespan"
    );
}

#[test]
fn per_tag_rules_target_only_their_tag() {
    use mnd::net::Tag;
    let el = gen::gnm(600, 3600, 29);
    // Faults only on the leader-merge tag; everything else clean.
    let rule = FaultRule {
        drop_rate: 0.5,
        ..FaultRule::default()
    };
    let plan = Arc::new(FaultPlan::new(19).with_rule_for_tag(Tag::user(2), rule));
    let r = run_with_plan(&el, 4, plan, None);
    assert_eq!(r.msf, kruskal_msf(&el));
    for s in &r.rank_stats {
        for (tag, t) in &s.by_tag {
            if *tag != Tag::user(2) {
                assert_eq!(t.retries, 0, "clean tag {tag:?} saw retries");
            }
        }
    }
    let merge_retries: u64 = r
        .rank_stats
        .iter()
        .filter_map(|s| s.by_tag.get(&Tag::user(2)))
        .map(|t| t.retries)
        .sum();
    assert!(merge_retries > 0, "50% drops on the merge tag must retry");
}
