//! Adversarial-input tests: the full pipeline on degenerate, hostile, and
//! boundary-condition inputs. (Fault *injection* — message drops, crashes,
//! leader failures — lives in `tests/chaos.rs`.)

use mnd::device::NodePlatform;
use mnd::graph::{gen, EdgeList, WEdge};
use mnd::hypar::HyParConfig;
use mnd::kernels::kruskal_msf;
use mnd::mst::MndMstRunner;
use mnd::pregel::{pregel_msf, BspConfig};

fn both_match_oracle(el: &EdgeList, nranks: usize) {
    let oracle = kruskal_msf(el);
    let mnd = MndMstRunner::new(nranks).run(el);
    assert_eq!(mnd.msf, oracle, "MND-MST");
    let bsp = pregel_msf(
        el,
        nranks,
        &NodePlatform::amd_cluster(),
        &BspConfig::default(),
    );
    assert_eq!(bsp.msf, oracle, "BSP");
}

#[test]
fn empty_graph_zero_vertices() {
    let el = EdgeList::new(0);
    let r = MndMstRunner::new(3).run(&el);
    assert!(r.msf.edges.is_empty());
    assert_eq!(r.msf.num_components, 0);
}

#[test]
fn single_vertex_no_edges() {
    both_match_oracle(&EdgeList::new(1), 4);
}

#[test]
fn all_isolated_vertices() {
    let el = EdgeList::new(1000);
    let r = MndMstRunner::new(8).run(&el);
    assert_eq!(r.msf.num_components, 1000);
}

#[test]
fn single_edge_many_ranks() {
    let el = EdgeList::from_raw(2, vec![WEdge::new(0, 1, 7)]);
    both_match_oracle(&el, 8);
}

#[test]
fn input_with_self_loops_and_duplicates() {
    // from_raw canonicalises; the pipeline must cope with the result.
    let el = EdgeList::from_raw(
        10,
        vec![
            WEdge::new(0, 0, 5),
            WEdge::new(1, 2, 3),
            WEdge::new(2, 1, 9), // duplicate pair, heavier
            WEdge::new(3, 3, 1),
            WEdge::new(4, 5, 2),
        ],
    );
    both_match_oracle(&el, 4);
}

#[test]
fn pathological_weights_extremes() {
    let el = EdgeList::from_raw(
        6,
        vec![
            WEdge::new(0, 1, u32::MAX),
            WEdge::new(1, 2, 0),
            WEdge::new(2, 3, u32::MAX),
            WEdge::new(3, 4, 1),
            WEdge::new(4, 5, u32::MAX - 1),
        ],
    );
    both_match_oracle(&el, 3);
}

#[test]
fn everything_in_one_partition() {
    // All edges among the first few vertices: most ranks own edgeless
    // ranges and must still participate in every collective.
    let mut el = EdgeList::new(1000);
    for i in 0..20u32 {
        for j in (i + 1)..20 {
            el.push(i, j, 0);
        }
    }
    el.canonicalize();
    el.assign_random_weights(3, 1000);
    both_match_oracle(&el, 8);
}

#[test]
fn long_path_crossing_every_partition() {
    // A path is the maximum-cut-edge case for 1D partitioning chains.
    both_match_oracle(&gen::path(2000, 5), 16);
}

#[test]
fn two_cliques_joined_by_one_bridge() {
    let mut a = gen::complete(30, 1).into_edges();
    let b = gen::complete(30, 2);
    for e in b.edges() {
        a.push(WEdge::new(e.u + 30, e.v + 30, e.w));
    }
    a.push(WEdge::new(29, 30, 999_999)); // heavy bridge, still in MST
    let el = EdgeList::from_raw(60, a);
    let oracle = kruskal_msf(&el);
    assert!(oracle.edges.contains(&WEdge::new(29, 30, 999_999)));
    both_match_oracle(&el, 6);
}

#[test]
fn degenerate_config_values() {
    let el = gen::gnm(200, 800, 9);
    let oracle = kruskal_msf(&el);
    // Group size 1: every rank is its own leader; levels degenerate but
    // must terminate.
    let cfg = HyParConfig {
        group_size: 1,
        ..Default::default()
    };
    let r = MndMstRunner::new(4).with_config(cfg).run(&el);
    assert_eq!(r.msf, oracle);
    // Group size larger than the cluster.
    let cfg = HyParConfig {
        group_size: 64,
        ..Default::default()
    };
    let r = MndMstRunner::new(4).with_config(cfg).run(&el);
    assert_eq!(r.msf, oracle);
    // Zero-improvement stop policy threshold (never stop early).
    let cfg = HyParConfig {
        stop: mnd::kernels::policy::StopPolicy::DiminishingBenefit {
            min_improvement: 0.0,
        },
        ..Default::default()
    };
    let r = MndMstRunner::new(4).with_config(cfg).run(&el);
    assert_eq!(r.msf, oracle);
}

#[test]
fn tiny_ghost_phase_size_forces_many_phases() {
    let el = gen::web_crawl(1500, 12_000, gen::CrawlParams::default(), 13);
    let oracle = kruskal_msf(&el);
    let mut runner = MndMstRunner::new(6);
    runner.ghost_phase_size = 3; // pathological: tiny phases
    let r = runner.run(&el);
    assert_eq!(r.msf, oracle);
}

#[test]
fn bsp_with_all_optimisations_off() {
    let el = gen::gnm(300, 1500, 15);
    let oracle = kruskal_msf(&el);
    let cfg = BspConfig {
        combine: false,
        mirror_threshold: None,
        partitioning: mnd::pregel::framework::BspPartitioning::Range1D,
        ..Default::default()
    };
    let r = pregel_msf(&el, 5, &NodePlatform::amd_cluster(), &cfg);
    assert_eq!(r.msf, oracle);
}

#[test]
fn weights_all_equal_distributed_ties() {
    let mut el = gen::rmat(256, 2048, gen::RmatProbs::MILD, 17);
    el.assign_random_weights(1, 1); // all weight 1: pure tie-breaking
    both_match_oracle(&el, 7);
}
