//! Serving-plane contracts, cross-crate: the incremental MSF maintainer
//! tracks a full Kruskal recompute edge-for-edge under arbitrary random
//! insert/delete streams (checked after *every* batch), the fingerprint
//! cache never false-hits on isomorphic-but-relabelled inputs, and a
//! fixed plane workload replays to the byte.

use std::collections::BTreeMap;
use std::sync::Arc;

use mnd::graph::{gen, EdgeList, VertexId, WEdge, Weight};
use mnd::kernels::kruskal_msf;
use mnd::serve::backend::EngineBackend;
use mnd::serve::job::{JobKind, JobSpec};
use mnd::serve::scheduler::{ServeConfig, ServePlane};
use mnd::serve::tenant::TenantSpec;
use mnd::serve::IncrementalMsf;
use proptest::prelude::*;

/// One streamed mutation.
#[derive(Clone, Debug)]
enum Op {
    Insert(u32, u32, Weight),
    /// Delete the i-th edge (mod current count) of the live graph; no-op
    /// when the graph is empty.
    DeleteNth(usize),
}

/// `(vertex count, ops, base-graph seed)`: each raw tuple's selector
/// picks insert (3 in 5) or delete-nth (2 in 5).
fn arb_ops(max_v: u32, max_ops: usize) -> impl Strategy<Value = (u32, Vec<Op>, u64)> {
    (
        2..max_v,
        proptest::collection::vec((0u32..5, 0u32..max_v, 0u32..max_v, 1u32..1000), 1..max_ops),
        0u64..1000,
    )
        .prop_map(|(n, raw, seed)| {
            let ops = raw
                .into_iter()
                .map(|(sel, a, b, w)| {
                    if sel < 3 {
                        Op::Insert(a, b, w)
                    } else {
                        Op::DeleteNth(((a as usize) << 16) | b as usize)
                    }
                })
                .collect();
            (n, ops, seed)
        })
}

/// Applies one op to the session and to an independent mirror edge map,
/// returning the mirror as an edge list for the oracle.
fn apply(
    inc: &mut IncrementalMsf,
    mirror: &mut BTreeMap<(VertexId, VertexId), Weight>,
    n: u32,
    op: &Op,
) {
    match *op {
        Op::Insert(a, b, w) => {
            let (u, v) = (a % n, b % n);
            inc.insert(u, v, w);
            if u != v {
                mirror.insert((u.min(v), u.max(v)), w);
            }
        }
        Op::DeleteNth(i) => {
            if mirror.is_empty() {
                return;
            }
            let key = *mirror.keys().nth(i % mirror.len()).unwrap();
            inc.delete(key.0, key.1);
            mirror.remove(&key);
        }
    }
}

fn mirror_graph(n: u32, mirror: &BTreeMap<(VertexId, VertexId), Weight>) -> EdgeList {
    EdgeList::from_raw(
        n,
        mirror
            .iter()
            .map(|(&(u, v), &w)| WEdge::new(u, v, w))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The incremental forest equals a full Kruskal recompute of the
    /// live graph after every single mutation — inserts (join, cycle-max
    /// replacement, re-weight) and deletes (replacement-edge search)
    /// alike — and the maintained edge list round-trips exactly.
    #[test]
    fn incremental_msf_tracks_full_recompute(
        (n, ops, seed) in arb_ops(60, 40),
    ) {
        let base = gen::gnm(n, n as u64 * 2, seed);
        let mut inc = IncrementalMsf::from_graph(&base);
        let mut mirror: BTreeMap<(VertexId, VertexId), Weight> =
            base.edges().iter().map(|e| ((e.u, e.v), e.w)).collect();
        for (i, op) in ops.iter().enumerate() {
            apply(&mut inc, &mut mirror, n, op);
            let live = mirror_graph(n, &mirror);
            prop_assert_eq!(inc.edge_list().edges(), live.edges(), "op {i}: edge set diverged");
            let oracle = kruskal_msf(&live);
            prop_assert_eq!(
                &inc.msf(), &oracle,
                "op {i} ({op:?}): incremental forest != recompute", i = i, op = op
            );
        }
    }

    /// Isomorphic-but-relabelled graphs (same structure, permuted vertex
    /// ids) fingerprint differently, so a cached result for one can
    /// never be served for the other — their answers live in different
    /// id spaces.
    #[test]
    fn relabelled_graphs_never_share_a_fingerprint(
        n in 3u32..50,
        m in 3u64..120,
        seed in 0u64..1000,
        shift in 1u32..7,
    ) {
        let a = gen::gnm(n, m, seed);
        let relabel = |v: VertexId| (v + shift) % n;
        let b = EdgeList::from_raw(
            n,
            a.edges().iter().map(|e| WEdge::new(relabel(e.u), relabel(e.v), e.w)).collect(),
        );
        // The permutation can map the edge list onto itself (an
        // automorphism); equal inputs legitimately share a fingerprint.
        if a.edges() != b.edges() {
            prop_assert_ne!(a.fingerprint(), b.fingerprint());
        }
    }
}

/// A fixed multi-tenant workload replays to identical completions,
/// latencies, and cache counters — the serving plane runs entirely on
/// the deterministic simulated clock.
#[test]
fn serve_plane_replays_byte_identically() {
    let run = || {
        let g1 = Arc::new(gen::gnm(250, 1200, 17));
        let g2 = Arc::new(gen::gnm(200, 2400, 23));
        let mut plane = ServePlane::new(
            ServeConfig::new(4).with_edges_per_rank(512),
            Box::new(EngineBackend::mnd_mst(1.0)),
            vec![TenantSpec::new("a", 3.0, 8), TenantSpec::new("b", 1.0, 2)],
        );
        let mut jobs = vec![
            JobSpec {
                tenant: 0,
                kind: JobKind::Mst,
                graph: g1.clone(),
                submit: 0.0,
            },
            JobSpec {
                tenant: 0,
                kind: JobKind::Cc,
                graph: g1.clone(),
                submit: 0.1,
            },
            JobSpec {
                tenant: 0,
                kind: JobKind::Bfs { source: 3 },
                graph: g1.clone(),
                submit: 0.2,
            },
            JobSpec {
                tenant: 0,
                kind: JobKind::Mst,
                graph: g1.clone(),
                submit: 5.0,
            },
        ];
        for i in 0..4 {
            jobs.push(JobSpec {
                tenant: 1,
                kind: JobKind::Mst,
                graph: g2.clone(),
                submit: i as f64 * 0.01,
            });
        }
        jobs.push(JobSpec {
            tenant: 0,
            kind: JobKind::Update {
                inserts: vec![WEdge::new(1, 2, 1), WEdge::new(7, 90, 3)],
                deletes: vec![(1, 2)],
            },
            graph: g2.clone(),
            submit: 6.0,
        });
        let report = plane.run(jobs);
        report
            .completions
            .iter()
            .map(|c| {
                (
                    c.job,
                    c.tenant,
                    c.kind,
                    c.ranks,
                    c.start.to_bits(),
                    c.finish.to_bits(),
                )
            })
            .collect::<Vec<_>>()
    };
    let a = run();
    assert!(!a.is_empty());
    assert_eq!(a, run());
}
