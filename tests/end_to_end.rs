//! Cross-crate integration tests: the full distributed pipeline against
//! the sequential oracle, across platforms, rank counts and configs.

use mnd::device::NodePlatform;
use mnd::graph::{gen, presets::Preset, EdgeList};
use mnd::hypar::HyParConfig;
use mnd::kernels::{kruskal_msf, verify_msf};
use mnd::mst::MndMstRunner;
use mnd::pregel::{pregel_msf, BspConfig};

fn oracle_check(el: &EdgeList, nranks: usize, platform: NodePlatform, cfg: HyParConfig) {
    let report = MndMstRunner::new(nranks)
        .with_platform(platform)
        .with_config(cfg)
        .run(el);
    let oracle = kruskal_msf(el);
    assert_eq!(report.msf, oracle);
    verify_msf(el, &report.msf).expect("structurally valid MSF");
}

#[test]
fn presets_all_verify_on_amd_cluster() {
    // Every Table 2 stand-in (small scale), 16 ranks, default config.
    for p in Preset::ALL {
        let el = p.generate(32768, 11);
        oracle_check(&el, 16, NodePlatform::amd_cluster(), HyParConfig::default());
    }
}

#[test]
fn presets_verify_on_hybrid_cray() {
    for p in [Preset::It2004, Preset::RoadUsa, Preset::Gsh2015Tpd] {
        let el = p.generate(32768, 13);
        oracle_check(
            &el,
            8,
            NodePlatform::cray_xc40(true),
            HyParConfig::default().with_sim_scale(32768.0),
        );
    }
}

#[test]
fn bsp_and_dnc_agree_with_each_other() {
    for seed in [1, 2, 3] {
        let el = gen::web_crawl(3000, 30_000, gen::CrawlParams::default(), seed);
        let bsp = pregel_msf(&el, 6, &NodePlatform::amd_cluster(), &BspConfig::default());
        let dnc = MndMstRunner::new(6).run(&el);
        assert_eq!(bsp.msf, dnc.msf, "seed {seed}");
    }
}

#[test]
fn every_rank_count_from_one_to_nine() {
    let el = gen::gnm(600, 2400, 17);
    let oracle = kruskal_msf(&el);
    for nranks in 1..=9 {
        let r = MndMstRunner::new(nranks).run(&el);
        assert_eq!(r.msf, oracle, "nranks={nranks}");
    }
}

#[test]
fn group_sizes_and_freeze_policies_compose() {
    use mnd::kernels::policy::{ExcpCond, FreezePolicy};
    let el = gen::watts_strogatz(400, 6, 0.3, 19);
    let oracle = kruskal_msf(&el);
    for gs in [2, 4, 16] {
        for freeze in [FreezePolicy::Sticky, FreezePolicy::Recheck] {
            for excp in [ExcpCond::BorderEdge, ExcpCond::BorderVertex] {
                let cfg = HyParConfig {
                    group_size: gs,
                    freeze,
                    excp,
                    ..Default::default()
                };
                let r = MndMstRunner::new(6).with_config(cfg).run(&el);
                assert_eq!(r.msf, oracle, "gs={gs} freeze={freeze:?} excp={excp:?}");
            }
        }
    }
}

#[test]
fn memory_capacity_invariant_holds() {
    // The hierarchical merge's promise: no holding exceeds node memory
    // (paper-scale). Run the big stand-in at high sim scale.
    let el = Preset::Uk2007.generate(16384, 23);
    let cfg = HyParConfig::default().with_sim_scale(16384.0);
    let platform = NodePlatform::amd_cluster();
    let node_mem = platform.cpu.mem_bytes;
    let r = MndMstRunner::new(16)
        .with_platform(platform)
        .with_config(cfg)
        .run(&el);
    assert!(
        r.max_holding_bytes <= node_mem,
        "holding {} exceeds node memory {}",
        r.max_holding_bytes,
        node_mem
    );
}

#[test]
fn forced_ring_exchange_path_stays_correct() {
    // Tiny group threshold forces the ring-exchange machinery on.
    let el = gen::web_crawl(2000, 16_000, gen::CrawlParams::default(), 29);
    let oracle = kruskal_msf(&el);
    let cfg = HyParConfig {
        group_edge_threshold: 1, // always exchange until convergence
        ..HyParConfig::default()
    };
    let r = MndMstRunner::new(8).with_config(cfg).run(&el);
    assert_eq!(r.msf, oracle);
    assert!(r.exchange_rounds >= 1, "ring path must have been exercised");
}

#[test]
fn heavy_weights_and_duplicate_weights() {
    // All-equal weights: the (w, u, v) order still yields a unique MSF.
    let mut el = gen::gnm(300, 1500, 31);
    el.assign_random_weights(7, 1); // every weight == 1
    let oracle = kruskal_msf(&el);
    let r = MndMstRunner::new(5).run(&el);
    assert_eq!(r.msf, oracle);
    assert!(r.msf.edges.iter().all(|e| e.w == 1));
}

#[test]
fn star_and_hub_heavy_graphs() {
    // A single global hub is the worst case for 1D partitioning.
    let el = gen::star(5000, 37);
    let oracle = kruskal_msf(&el);
    let r = MndMstRunner::new(8).run(&el);
    assert_eq!(r.msf, oracle);
    assert_eq!(r.msf.edges.len(), 4999);
}

#[test]
fn barabasi_albert_and_weight_distributions() {
    use mnd::graph::weights::{assign_weights, ALL_DISTRIBUTIONS};
    let base = gen::barabasi_albert(800, 3, 5);
    for (name, dist) in ALL_DISTRIBUTIONS {
        let mut el = base.clone();
        assign_weights(&mut el, dist, 3);
        let r = MndMstRunner::new(5).run(&el);
        assert_eq!(r.msf, kruskal_msf(&el), "{name}");
    }
}

#[test]
fn many_small_components() {
    let parts: Vec<EdgeList> = (0..40).map(|i| gen::path(10, i as u64)).collect();
    let el = gen::disconnected_union(&parts);
    let r = MndMstRunner::new(8).run(&el);
    assert_eq!(r.msf.num_components, 40);
    assert_eq!(r.msf, kruskal_msf(&el));
}

#[test]
fn report_times_are_consistent() {
    let el = Preset::Arabic2005.generate(65536, 41);
    let r = MndMstRunner::new(4)
        .with_config(HyParConfig::default().with_sim_scale(65536.0))
        .run(&el);
    // Makespan bounds every rank's attributed time.
    for (i, s) in r.rank_stats.iter().enumerate() {
        assert!(
            s.total_time() <= r.total_time + 1e-9,
            "rank {i} attributed {} > makespan {}",
            s.total_time(),
            r.total_time
        );
    }
    // Phases decompose compute: ind_comp + merge + post ≈ compute_time.
    for (p, s) in r.phases.iter().zip(&r.rank_stats) {
        let phase_compute = p.ind_comp + p.merge + p.post_process;
        assert!(
            (phase_compute - s.compute_time).abs() <= 1e-6 * s.compute_time.max(1.0),
            "phase sum {phase_compute} vs compute {}",
            s.compute_time
        );
    }
}
