#!/usr/bin/env bash
# Performance regression gate, run by CI on pushes to main.
#
# Regenerates a fresh perf snapshot and diffs it against the committed
# baseline (BENCH_9.json). The gate compares the *simulated* end-to-end
# times (`sim_time_s`), which are deterministic — host wall-clock numbers
# are printed for context but never gated on, since CI runners are noisy.
# The snapshot's rows cover the D&C driver, every registered engine, the
# serving plane's per-tenant p95 latencies (`serve:<tenant>` keys), and
# the geometric workload family (`emst:<preset>:<engine>` keys); a
# baseline without emst rows fails the gate outright, so the family
# cannot silently drop out of the snapshot.
#
# The committed baseline's kernel-sweep rows are also gated: any row the
# calibrated policy *selected* (it would actually route that kernel at
# that size down that parallel variant) must show speedup >= 1.0 at the
# million-row tier — a selected sub-1.0x variant means calibration chose
# a losing path (the BENCH_4 incident_counts 0.58x regression).
#
# With --fresh-kernels (what main CI passes), the *freshly regenerated*
# kernel-sweep rows are gated too — real wall-clock on this runner, not
# the committed snapshot. Runner noise gets a band instead of a cliff:
# a selected variant under 0.9x prints a warning, under 0.75x fails.
#
# The fresh snapshot's comm_sweep rows are gated as well: on every preset
# the sparse exchange schedule must ship no more messages (total and on
# the alltoall payload tag) than the dense oracle.
#
# Usage: scripts/bench_check.sh [--threshold PCT] [--baseline FILE]
#                               [--fresh-kernels] [--fresh-out FILE]
#   --threshold PCT  max allowed sim-time regression, percent (default 25)
#   --baseline FILE  committed snapshot to diff against (default BENCH_9.json)
#   --fresh-kernels  also gate the regenerated kernel-sweep rows
#                    (warn < 0.9x, fail < 0.75x on selected variants)
#   --fresh-out FILE keep the regenerated snapshot at FILE (for CI
#                    artifact upload; default is a deleted tempfile)

set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

THRESHOLD=25
BASELINE=BENCH_9.json
FRESH_KERNELS=0
FRESH_OUT=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --threshold)
      THRESHOLD="${2:?--threshold needs a value}"
      shift 2
      ;;
    --baseline)
      BASELINE="${2:?--baseline needs a file}"
      shift 2
      ;;
    --fresh-kernels)
      FRESH_KERNELS=1
      shift
      ;;
    --fresh-out)
      FRESH_OUT="${2:?--fresh-out needs a file}"
      shift 2
      ;;
    *)
      echo "bench_check.sh: unknown argument: $1" >&2
      exit 2
      ;;
  esac
done

if ! command -v jq > /dev/null; then
  echo "bench_check.sh: jq is required (CI installs it; locally: apt-get install jq)" >&2
  exit 2
fi
if [[ ! -f "$BASELINE" ]]; then
  echo "bench_check.sh: baseline $BASELINE not found" >&2
  exit 2
fi

echo "==> baseline coverage: the geometric workload family must be gated"
EMST_ROWS=$(jq -r '[.end_to_end[]? | select(.graph | startswith("emst:"))] | length' "$BASELINE")
if [[ "$EMST_ROWS" -eq 0 ]]; then
  echo "bench_check: FAIL — $BASELINE has no emst:<preset>:<engine> rows;"
  echo "regenerate it with: cargo run --release -p mnd-bench --bin perfsnap -- $BASELINE"
  exit 1
fi
echo "  $EMST_ROWS emst rows present"

echo "==> kernel-sweep gate: selected parallel variants at the 1M-row tier ($BASELINE)"
BAD=$(jq -r '
  [.kernel_sweep[]?
   | select(.rows == 1048576 and .selected == true and .speedup < 1.0)
   | "\(.kernel)[\(.variant)] speedup \(.speedup)"] | join("\n")
' "$BASELINE")
if [[ -n "$BAD" ]]; then
  echo "bench_check: FAIL — calibrated policy selected a sub-1.0x parallel variant:"
  echo "$BAD"
  exit 1
fi
jq -r '
  .kernel_sweep[]?
  | select(.rows == 1048576 and .selected == true)
  | "  \(.kernel)[\(.variant)]: \(.speedup)x"
' "$BASELINE"
echo "kernel-sweep gate: OK"

if [[ -n "$FRESH_OUT" ]]; then
  FRESH="$FRESH_OUT"
else
  FRESH=$(mktemp --suffix=.json)
  trap 'rm -f "$FRESH"' EXIT
fi

echo "==> regenerating perf snapshot"
cargo run --release -q -p mnd-bench --bin perfsnap -- "$FRESH"

if [[ "$FRESH_KERNELS" -eq 1 ]]; then
  echo
  echo "==> fresh kernel-sweep gate: selected variants re-measured on this runner"
  # The committed snapshot proves the variants won on the author's host;
  # this proves they still win where CI actually runs. Selected rows at
  # the 1M tier: < 0.75x fails, < 0.9x warns (runners are noisy — a
  # hard 1.0x cliff here would flake).
  HARD=$(jq -r '
    [.kernel_sweep[]?
     | select(.rows == 1048576 and .selected == true and .speedup < 0.75)
     | "\(.kernel)[\(.variant)] speedup \(.speedup)"] | join("\n")
  ' "$FRESH")
  WARN=$(jq -r '
    [.kernel_sweep[]?
     | select(.rows == 1048576 and .selected == true and .speedup >= 0.75 and .speedup < 0.9)
     | "\(.kernel)[\(.variant)] speedup \(.speedup)"] | join("\n")
  ' "$FRESH")
  jq -r '
    .kernel_sweep[]?
    | select(.rows == 1048576 and .selected == true)
    | "  \(.kernel)[\(.variant)]: \(.speedup)x (fresh)"
  ' "$FRESH"
  if [[ -n "$WARN" ]]; then
    echo "bench_check: WARN — selected variants under 0.9x on this runner:"
    echo "$WARN"
  fi
  if [[ -n "$HARD" ]]; then
    echo "bench_check: FAIL — selected variants under 0.75x on this runner:"
    echo "$HARD"
    exit 1
  fi
  echo "fresh kernel-sweep gate: OK"
fi

echo
echo "==> comm-sweep gate: sparse exchange must not ship more messages than dense"
# Pair each preset's sparse row with its dense row: the sparse schedule
# exists to shed empty-bucket messages, so on the skewed web-crawl presets
# its total and alltoall-tag message counts must never exceed the dense
# oracle's.
BAD=$(jq -r '
  [.comm_sweep[]? | select(.variant == "dense")] as $dense
  | [.comm_sweep[]? | select(.variant == "sparse")
     | . as $s
     | ($dense[] | select(.preset == $s.preset)) as $d
     | select($s.messages > $d.messages or $s.payload_msgs > $d.payload_msgs)
     | "\($s.preset): sparse \($s.messages)/\($s.payload_msgs) msgs vs dense \($d.messages)/\($d.payload_msgs)"]
  | join("\n")
' "$FRESH")
if [[ -n "$BAD" ]]; then
  echo "bench_check: FAIL — sparse exchange shipped more messages than the dense oracle:"
  echo "$BAD"
  exit 1
fi
jq -r '
  [.comm_sweep[]? | select(.variant == "dense")] as $dense
  | .comm_sweep[]? | select(.variant == "sparse")
  | . as $s
  | ($dense[] | select(.preset == $s.preset)) as $d
  | "  \($s.preset): sparse \($s.messages) msgs <= dense \($d.messages) msgs"
' "$FRESH"
echo "comm-sweep gate: OK"

echo
echo "==> end-to-end sim time vs $BASELINE (gate: +${THRESHOLD}%)"
printf '%-28s %6s %12s %12s %8s %6s\n' graph nodes "base sim_s" "fresh sim_s" delta gate

# Join baseline and fresh end_to_end rows on (graph, nodes); emit one
# "graph nodes base fresh" line per metric present in both snapshots.
FAIL=0
while read -r graph nodes base fresh; do
  delta=$(jq -n --argjson b "$base" --argjson f "$fresh" '(($f - $b) / $b * 100)')
  over=$(jq -n --argjson d "$delta" --argjson t "$THRESHOLD" '$d > $t')
  verdict=ok
  if [[ "$over" == "true" ]]; then
    verdict=FAIL
    FAIL=1
  fi
  printf '%-28s %6s %12s %12s %7.1f%% %6s\n' \
    "$graph" "$nodes" "$base" "$fresh" "$delta" "$verdict"
done < <(
  jq -r --slurpfile fresh "$FRESH" '
    .end_to_end[] as $b
    | ($fresh[0].end_to_end[] | select(.graph == $b.graph and .nodes == $b.nodes)) as $f
    | "\($b.graph) \($b.nodes) \($b.sim_time_s) \($f.sim_time_s)"
  ' "$BASELINE"
)

echo
echo "==> host wall-clock (informational, not gated)"
jq -r '
  .end_to_end[] | "\(.graph) nodes=\(.nodes): \(.wall_ms) ms"
' "$FRESH"

if [[ "$FAIL" -ne 0 ]]; then
  echo
  echo "bench_check: FAIL — simulated time regressed more than ${THRESHOLD}% on at least one row"
  exit 1
fi
echo
echo "bench_check: OK"
