#!/usr/bin/env bash
# Repo verification gate: formatting, lints, then the tier-1 suite
# (ROADMAP.md: `cargo build --release && cargo test -q`).
#
# Usage: scripts/verify.sh [--quick]
#   --quick  skip the release build (lints + debug tests only)

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
if [[ "${1:-}" == "--quick" ]]; then
  QUICK=1
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "$QUICK" -eq 0 ]]; then
  echo "==> cargo build --release"
  cargo build --release
fi

echo "==> cargo test -q"
cargo test -q --workspace

if [[ "$QUICK" -eq 0 ]]; then
  echo "==> cargo bench (smoke: one sample per bench)"
  cargo bench -p mnd-bench --features criterion-bench -- --test

  echo "==> chaos recovery smoke (oracle-verified crash/replay grid)"
  cargo run --release -q -p mnd-bench --bin repro -- \
    --scale 65536 --nodes 4 --seed-grid 7,11 chaos

  echo "==> perf snapshot (BENCH_4.json)"
  cargo run --release -q -p mnd-bench --bin perfsnap -- BENCH_4.json
fi

echo "verify: OK"
