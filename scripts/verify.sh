#!/usr/bin/env bash
# Repo verification gate: formatting, lints, then the tier-1 suite
# (ROADMAP.md: `cargo build --release && cargo test -q`), and — in full
# mode — the bench smoke, the chaos/resilience recovery grids, the
# checkpoint/serve/comm/emst sweeps, and a fresh perf snapshot.
#
# Usage: scripts/verify.sh [--quick]
#   --quick  lints + debug tests only: skips the release build, the
#            criterion smoke, the chaos and resilience sweeps, the
#            repro sweeps (checkpoint, serve, comm, emst), and the
#            perf snapshot. This is the PR gate in CI; the full run
#            gates pushes to main.
#
# Shellcheck-clean: CI lints this file (and every script here) with
# shellcheck on each PR.

set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick)
      QUICK=1
      ;;
    -h | --help)
      sed -n '2,12p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *)
      echo "verify.sh: unknown argument: $arg" >&2
      exit 2
      ;;
  esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "$QUICK" -eq 0 ]]; then
  echo "==> cargo build --release"
  cargo build --release
fi

echo "==> cargo test -q"
cargo test -q --workspace

if [[ "$QUICK" -eq 1 ]]; then
  echo "verify: OK (quick: skipped release build, bench smoke, chaos/resilience sweeps, repro sweeps, perf snapshot)"
  exit 0
fi

echo "==> cargo bench (smoke: one sample per bench)"
cargo bench -p mnd-bench --features criterion-bench -- --test

echo "==> chaos recovery smoke (oracle-verified crash/replay grid)"
cargo run --release -q -p mnd-bench --bin repro -- \
  --scale 65536 --nodes 4 --seed-grid 7,11 chaos

echo "==> resilience smoke (every registered engine under the same fault plans)"
cargo run --release -q -p mnd-bench --bin repro -- \
  --scale 65536 --nodes 4 --seed-grid 7,11 resilience

echo "==> checkpoint sweep smoke (cadence knob across the engine registry)"
cargo run --release -q -p mnd-bench --bin repro -- \
  --scale 65536 --nodes 4 checkpoint-sweep

echo "==> serve sweep smoke (multi-tenant serving plane, oracle-verified)"
cargo run --release -q -p mnd-bench --bin repro -- \
  --scale 65536 --nodes 4 serve-sweep

echo "==> comm sweep smoke (sparse exchange vs dense oracle, oracle-verified)"
cargo run --release -q -p mnd-bench --bin repro -- \
  --scale 65536 --nodes 8 comm-sweep

echo "==> emst sweep smoke (geometric presets, brute-force EMST oracle)"
cargo run --release -q -p mnd-bench --bin repro -- \
  --scale 65536 --nodes 4 emst-sweep

echo "==> perf snapshot (BENCH_9.json)"
cargo run --release -q -p mnd-bench --bin perfsnap -- BENCH_9.json

echo "verify: OK"
