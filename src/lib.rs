//! # mnd — MND-MST workspace umbrella crate
//!
//! Re-exports every subsystem of the MND-MST reproduction (Panja &
//! Vadhiyar, ICPP 2018) under one roof, and hosts the runnable examples in
//! `examples/` and the cross-crate integration tests in `tests/`.
//!
//! Start with [`mnd_mst`] (the distributed algorithm and its driver) and
//! [`mnd_graph::presets`] (the paper's evaluation graphs as scaled
//! stand-ins). See `README.md` for a tour and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

pub use mnd_chaos as chaos;
pub use mnd_device as device;
pub use mnd_engine as engine;
pub use mnd_graph as graph;
pub use mnd_hypar as hypar;
pub use mnd_kernels as kernels;
pub use mnd_mst as mst;
pub use mnd_net as net;
pub use mnd_pregel as pregel;
pub use mnd_serve as serve;
pub use mnd_spmsf as spmsf;

pub mod engines;
