//! The engine registry: every MSF engine on the shared fabric,
//! constructed from one set of parameters.
//!
//! Three engines register today (DESIGN.md §6):
//!
//! - `"mnd-mst"` — the paper's divide-and-conquer driver
//!   ([`mnd_mst::MndMstRunner`]),
//! - `"bsp"` — the Pregel+-style bulk-synchronous baseline
//!   ([`mnd_pregel::BspEngine`]),
//! - `"spmsf"` — the min-plus sparse-matrix formulation
//!   ([`mnd_spmsf::SpmsfEngine`]).
//!
//! Benches and agreement tests iterate [`registry`] instead of
//! hand-rolling per-engine arms, so a fourth engine is one `Box::new`
//! here and every comparison table grows a row.

use mnd_device::NodePlatform;
use mnd_engine::Engine;
use mnd_hypar::HyParConfig;
use mnd_mst::MndMstRunner;
use mnd_pregel::{BspConfig, BspEngine};
use mnd_spmsf::{SpmsfConfig, SpmsfEngine};

/// Shared constructor parameters for every registered engine.
#[derive(Clone, Debug)]
pub struct EngineParams {
    /// Simulated cluster size (ranks/workers).
    pub nranks: usize,
    /// Node hardware + interconnect, shared by all engines.
    pub platform: NodePlatform,
    /// D&C driver tunables.
    pub hypar: HyParConfig,
    /// BSP baseline tunables.
    pub bsp: BspConfig,
    /// Min-plus engine tunables.
    pub spmsf: SpmsfConfig,
}

impl EngineParams {
    /// Defaults on the AMD-cluster platform.
    pub fn new(nranks: usize) -> Self {
        EngineParams {
            nranks,
            platform: NodePlatform::amd_cluster(),
            hypar: HyParConfig::default(),
            bsp: BspConfig::default(),
            spmsf: SpmsfConfig::default(),
        }
    }

    /// Applies one simulation scale to all three engine configs.
    pub fn with_sim_scale(mut self, scale: f64) -> Self {
        self.hypar = self.hypar.with_sim_scale(scale);
        self.bsp = self.bsp.with_sim_scale(scale);
        self.spmsf.sim_scale = scale;
        self
    }

    /// Applies one checkpoint cadence to all three engines. Each counts
    /// progress in its own recovery unit — D&C recovery points, BSP
    /// supersteps, min-plus collective steps — so the same interval means
    /// "checkpoint every Nth recovery opportunity" everywhere.
    pub fn with_checkpoint_interval(mut self, interval: u64) -> Self {
        let interval = interval.max(1);
        self.hypar = self.hypar.with_checkpoint_interval(interval);
        self.bsp.checkpoint_interval = interval;
        self.spmsf.checkpoint_interval = interval;
        self
    }
}

/// Every registered engine, constructed from `params`.
pub fn registry(params: &EngineParams) -> Vec<Box<dyn Engine>> {
    vec![
        Box::new(
            MndMstRunner::new(params.nranks)
                .with_platform(params.platform.clone())
                .with_config(params.hypar.clone()),
        ),
        Box::new(BspEngine {
            nranks: params.nranks,
            platform: params.platform.clone(),
            cfg: params.bsp,
        }),
        Box::new(SpmsfEngine {
            nranks: params.nranks,
            platform: params.platform.clone(),
            cfg: params.spmsf.clone(),
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_stable() {
        let engines = registry(&EngineParams::new(4));
        let names: Vec<&str> = engines.iter().map(|e| e.name()).collect();
        assert_eq!(names, ["mnd-mst", "bsp", "spmsf"]);
    }

    #[test]
    fn all_engines_agree_on_a_small_graph() {
        let el = mnd_graph::gen::gnm(200, 1000, 5);
        let oracle = mnd_kernels::kruskal_msf(&el);
        for engine in registry(&EngineParams::new(3)) {
            let r = engine.run(&el);
            assert_eq!(r.msf, oracle, "{} != oracle", engine.name());
        }
    }
}
