//! `mnd-cli` — command-line front end for the MND-MST library.
//!
//! ```text
//! mnd-cli gen   --preset uk-2007 --scale 4096 --out graph.mnd
//! mnd-cli gen   --kind crawl --vertices 50000 --edges 500000 --out g.mnd
//! mnd-cli stats --in graph.mnd
//! mnd-cli run   --in graph.mnd --nodes 8 [--gpu] [--scale 2048] [--verify]
//! mnd-cli run   --preset arabic-2005 --nodes 16
//! mnd-cli compare --preset it-2004 --nodes 16
//! mnd-cli bfs   --preset road_usa --source 0 --nodes 8
//! mnd-cli cc    --in graph.gr --format dimacs
//! ```
//!
//! `--format` accepts `mnd` (default, this library's binary format),
//! `dimacs` (.gr), `metis`, and `snap` (plain edge list).

use std::process::ExitCode;

use mnd::device::NodePlatform;
use mnd::graph::{gen, io, presets::Preset, stats::graph_stats, CsrGraph, EdgeList};
use mnd::hypar::HyParConfig;
use mnd::kernels::kruskal_msf;
use mnd::mst::MndMstRunner;
use mnd::pregel::{pregel_msf, BspConfig};

struct Args {
    flags: std::collections::HashMap<String, String>,
    command: String,
}

impl Args {
    fn parse() -> Option<Args> {
        let mut it = std::env::args().skip(1);
        let command = it.next()?;
        let mut flags = std::collections::HashMap::new();
        while let Some(k) = it.next() {
            let key = k.strip_prefix("--")?.to_string();
            // Boolean flags: --gpu / --verify take no value.
            if key == "gpu" || key == "verify" {
                flags.insert(key, "true".into());
            } else {
                flags.insert(key, it.next()?);
            }
        }
        Some(Args { flags, command })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }

    fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: mnd-cli <gen|stats|run|compare|bfs|cc> [flags]");
    eprintln!("  gen     --out FILE (--preset NAME --scale N | --kind crawl|road|gnm --vertices N --edges M) [--seed S]");
    eprintln!("  stats   --in FILE | --preset NAME [--scale N] [--format mnd|dimacs|metis|snap]");
    eprintln!("  run     (--in FILE | --preset NAME) [--nodes N] [--gpu] [--scale N] [--group N] [--verify]");
    eprintln!("  compare (--in FILE | --preset NAME) [--nodes N] [--scale N]");
    eprintln!("  bfs     (--in FILE | --preset NAME) [--source V] [--nodes N]");
    eprintln!("  cc      (--in FILE | --preset NAME) [--nodes N]");
    eprintln!("presets: {}", Preset::ALL.map(|p| p.name()).join(" "));
    ExitCode::FAILURE
}

fn load_graph(args: &Args) -> Result<(EdgeList, u64), String> {
    let scale = args.get_num("scale", 2048u64);
    if let Some(path) = args.get("in") {
        let f = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        let el = match args.get("format").unwrap_or("mnd") {
            "mnd" => io::read_binary(f),
            "dimacs" => mnd::graph::io_formats::read_dimacs(f),
            "metis" => mnd::graph::io_formats::read_metis(f),
            "snap" => mnd::graph::io_formats::read_snap(f),
            other => return Err(format!("unknown --format {other:?}")),
        }
        .map_err(|e| format!("read {path}: {e}"))?;
        Ok((el, scale))
    } else if let Some(name) = args.get("preset") {
        let p = Preset::from_name(name).ok_or_else(|| format!("unknown preset {name:?}"))?;
        Ok((p.generate(scale, args.get_num("seed", 42)), scale))
    } else {
        Err("need --in FILE or --preset NAME".into())
    }
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let out = args.get("out").ok_or("need --out FILE")?;
    let seed = args.get_num("seed", 42u64);
    let el = if args.has("preset") {
        load_graph(args)?.0
    } else {
        let n = args.get_num("vertices", 10_000u32);
        let m = args.get_num("edges", 50_000u64);
        match args.get("kind").unwrap_or("crawl") {
            "crawl" => gen::web_crawl(n, m, gen::CrawlParams::default(), seed),
            "gnm" => gen::gnm(n, m, seed),
            "road" => {
                let w = (n as f64).sqrt() as u32;
                gen::road_grid(w, n / w.max(1), 0.02, 0.38, seed)
            }
            other => return Err(format!("unknown --kind {other:?} (crawl|gnm|road)")),
        }
    };
    let f = std::fs::File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    io::write_binary(&el, f).map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "wrote {} vertices / {} edges to {out}",
        el.num_vertices(),
        el.len()
    );
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let (el, _) = load_graph(args)?;
    let g = CsrGraph::from_edge_list(&el);
    let s = graph_stats(&g, 4, 1);
    println!("vertices:      {}", s.num_vertices);
    println!("edges:         {}", s.num_edges);
    println!("avg degree:    {:.2}", s.avg_degree);
    println!("max degree:    {}", s.max_degree);
    println!("~diameter:     {}", s.approx_diameter);
    println!("components:    {}", mnd::graph::num_components(&g));
    println!("cut@16 (1D):   {:.1}%", 100.0 * gen::cut_fraction(&el, 16));
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let (el, scale) = load_graph(args)?;
    let nodes = args.get_num("nodes", 4usize);
    let platform = if args.has("gpu") {
        NodePlatform::cray_xc40(true)
    } else {
        NodePlatform::amd_cluster()
    };
    let cfg = HyParConfig {
        group_size: args.get_num("group", 4usize),
        ..HyParConfig::default().with_sim_scale(scale as f64)
    };
    let t0 = std::time::Instant::now();
    let report = MndMstRunner::new(nodes)
        .with_platform(platform)
        .with_config(cfg)
        .run(&el);
    let wall = t0.elapsed();
    println!(
        "MSF: {} edges, weight {}, {} component(s)",
        report.msf.edges.len(),
        report.msf.weight,
        report.msf.num_components
    );
    let pm = report.phase_max();
    println!(
        "simulated: total {:.3}s | indComp {:.3} merge {:.3} postProcess {:.3} comm {:.3}",
        report.total_time, pm.ind_comp, pm.merge, pm.post_process, pm.comm
    );
    println!(
        "merging: {} level(s), {} ring round(s), max holding {} MB paper-scale",
        report.levels,
        report.exchange_rounds,
        report.max_holding_bytes >> 20
    );
    println!("wall clock: {wall:.2?}");
    if args.has("verify") {
        let oracle = kruskal_msf(&el);
        if report.msf == oracle {
            println!("verify: OK (== sequential Kruskal)");
        } else {
            return Err("verify FAILED: result differs from Kruskal".into());
        }
    }
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let (el, scale) = load_graph(args)?;
    let nodes = args.get_num("nodes", 16usize);
    let mnd = MndMstRunner::new(nodes)
        .with_config(HyParConfig::default().with_sim_scale(scale as f64))
        .run(&el);
    let bsp = pregel_msf(
        &el,
        nodes,
        &NodePlatform::amd_cluster(),
        &BspConfig::default().with_sim_scale(scale as f64),
    );
    if bsp.msf != mnd.msf {
        return Err("BSP and MND-MST disagree (bug!)".into());
    }
    println!("                exe       comm");
    println!(
        " Pregel+ BSP  {:>8.3}  {:>8.3}   ({} supersteps)",
        bsp.total_time, bsp.comm_time, bsp.supersteps
    );
    println!(
        " MND-MST      {:>8.3}  {:>8.3}   ({} levels)",
        mnd.total_time, mnd.comm_time, mnd.levels
    );
    println!(
        " improvement  {:>7.1}%  {:>7.1}%",
        100.0 * (1.0 - mnd.total_time / bsp.total_time),
        100.0 * (1.0 - mnd.comm_time / bsp.comm_time)
    );
    Ok(())
}

fn cmd_bfs(args: &Args) -> Result<(), String> {
    let (el, scale) = load_graph(args)?;
    let nodes = args.get_num("nodes", 4usize);
    let source = args.get_num("source", 0u32);
    if source >= el.num_vertices() {
        return Err(format!("--source {source} out of range"));
    }
    let r = mnd::mst::bfs::distributed_bfs(
        &el,
        source,
        nodes,
        &NodePlatform::amd_cluster(),
        scale as f64,
    );
    let reached = r.dist.iter().filter(|&&d| d != u64::MAX).count();
    let depth = r
        .dist
        .iter()
        .filter(|&&d| d != u64::MAX)
        .max()
        .copied()
        .unwrap_or(0);
    println!(
        "BFS from {source}: reached {reached}/{} vertices, depth {depth}",
        el.num_vertices()
    );
    println!(
        "simulated {:.3}s ({:.3}s comm), {} border-crossing rounds",
        r.total_time, r.comm_time, r.rounds
    );
    Ok(())
}

fn cmd_cc(args: &Args) -> Result<(), String> {
    let (el, scale) = load_graph(args)?;
    let nodes = args.get_num("nodes", 4usize);
    let runner =
        MndMstRunner::new(nodes).with_config(HyParConfig::default().with_sim_scale(scale as f64));
    let r = mnd::mst::distributed_components(&el, &runner);
    println!(
        "{} connected component(s) over {} vertices",
        r.num_components,
        el.num_vertices()
    );
    println!("simulated {:.3}s ({:.3}s comm)", r.total_time, r.comm_time);
    Ok(())
}

fn main() -> ExitCode {
    let Some(args) = Args::parse() else {
        return usage();
    };
    let result = match args.command.as_str() {
        "gen" => cmd_gen(&args),
        "stats" => cmd_stats(&args),
        "run" => cmd_run(&args),
        "compare" => cmd_compare(&args),
        "bfs" => cmd_bfs(&args),
        "cc" => cmd_cc(&args),
        "help" | "--help" | "-h" => return usage(),
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
