//! Offline stand-in for [proptest](https://docs.rs/proptest) covering the
//! API surface this workspace uses: the `proptest!` test macro with
//! `#![proptest_config(...)]`, `prop_assert!`/`prop_assert_eq!`, integer
//! and float range strategies, tuple strategies, `collection::vec`,
//! `bool::ANY` and `prop_map`.
//!
//! Inputs are drawn from a splitmix64 generator seeded from the test's
//! module path + name, so every run of a given test sees the same input
//! sequence (fully deterministic, no shrinking). Failures report the
//! failing case index via the panic message of the underlying assert.

use std::ops::Range;

/// Deterministic splitmix64 RNG; one instance per generated test.
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from an arbitrary string (FNV-1a), e.g. the test's path.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test inputs. Unlike real proptest there is no value tree
/// or shrinking: `generate` directly produces a value.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<R, F: Fn(Self::Value) -> R>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, R, F: Fn(S::Value) -> R> Strategy for Map<S, F> {
    type Value = R;
    fn generate(&self, rng: &mut TestRng) -> R {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `vec(strategy, 1..9)` — vectors of 1 to 8 elements.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies (`proptest::bool::ANY`).
    use super::{Strategy, TestRng};

    /// Uniform boolean strategy.
    pub struct Any;

    /// Either boolean with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Per-test configuration (`cases` = number of generated inputs).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that draws `config.cases` inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _case in 0..config.cases {
                    let ($($arg,)+) =
                        ($($crate::Strategy::generate(&($strat), &mut rng),)+);
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

pub mod prelude {
    //! Glob-importable names, mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        let s = (0u32..100, 0.0f64..1.0);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, f in 0.25f64..0.75, b in crate::bool::ANY) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!(u8::from(b) <= 1);
        }

        #[test]
        fn vec_and_map_compose(
            v in crate::collection::vec((0u32..10, 1u32..5).prop_map(|(a, b)| a * b), 1..9),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 40));
        }
    }
}
