//! Offline stand-in for [criterion](https://docs.rs/criterion) covering the
//! API surface this workspace's benches use: `criterion_group!` /
//! `criterion_main!`, benchmark groups with `throughput` / `sample_size`,
//! `bench_function`, `bench_with_input`, `Bencher::iter` and
//! `Bencher::iter_batched`.
//!
//! Each benchmark runs a short warmup followed by `sample_size` timed
//! iterations of the closure and prints a one-line mean/min summary. There
//! is no statistical analysis, HTML report, or baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

/// Identifies a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Id carrying only a parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation (recorded, used to print an elements/sec rate).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost (ignored by the shim).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    elapsed: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup iteration outside the timed window.
        black_box(routine());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.elapsed.push(t0.elapsed());
        }
    }

    /// Times `routine` with a fresh `setup()` input per sample; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.elapsed.push(t0.elapsed());
        }
    }
}

fn run_and_report(
    group: &str,
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        samples,
        elapsed: Vec::new(),
    };
    f(&mut b);
    let n = b.elapsed.len().max(1);
    let total: Duration = b.elapsed.iter().sum();
    let mean = total / n as u32;
    let min = b.elapsed.iter().min().copied().unwrap_or_default();
    let rate = match throughput {
        Some(Throughput::Elements(e)) if mean.as_secs_f64() > 0.0 => {
            format!(" ({:.3} Melem/s)", e as f64 / mean.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(by)) if mean.as_secs_f64() > 0.0 => {
            format!(
                " ({:.3} MiB/s)",
                by as f64 / mean.as_secs_f64() / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("bench {group}/{id}: mean {mean:?}, min {min:?}, {n} samples{rate}");
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    c: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of timed samples per bench.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark closure.
    pub fn bench_function<ID: Into<BenchmarkId>, F>(&mut self, id: ID, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        let samples = self.c.samples(self.sample_size);
        run_and_report(&self.name, &id.id, samples, self.throughput, f);
        self
    }

    /// Runs a benchmark closure against a borrowed input.
    pub fn bench_with_input<ID: Into<BenchmarkId>, I: ?Sized, F>(
        &mut self,
        id: ID,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let id = id.into();
        let samples = self.c.samples(self.sample_size);
        run_and_report(&self.name, &id.id, samples, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(&mut self) {}
}

/// Top-level bench driver.
///
/// Honours real criterion's `--test` CLI flag: when the harness is invoked
/// as `cargo bench ... -- --test`, every benchmark runs exactly one timed
/// sample — a smoke run that proves the bench compiles and executes
/// without paying for full measurement (what `scripts/verify.sh` uses).
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// The effective sample count: `requested`, or 1 in `--test` mode.
    fn samples(&self, requested: usize) -> usize {
        if self.test_mode {
            1
        } else {
            requested.max(1)
        }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            c: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let samples = self.samples(10);
        run_and_report("bench", id, samples, None, f);
        self
    }
}

/// Declares a bench group function invoking each target with a `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(100)).sample_size(3);
        let mut runs = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // 1 warmup + 3 samples.
        assert_eq!(runs, 4);
        g.bench_with_input(BenchmarkId::new("sum", 5), &5u64, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::LargeInput)
        });
        g.finish();
    }

    #[test]
    fn test_mode_forces_single_sample() {
        let mut c = Criterion { test_mode: true };
        let mut g = c.benchmark_group("smoke");
        g.sample_size(50);
        let mut runs = 0u32;
        g.bench_function("once", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // 1 warmup + 1 sample, regardless of the requested sample size.
        assert_eq!(runs, 2);
    }
}
