//! Offline stand-in for [rayon](https://docs.rs/rayon) covering the API
//! surface this workspace uses: `par_iter()` over slices, `into_par_iter()`
//! over `Vec<T>` and integer ranges, and the `for_each` / `filter` /
//! `filter_map` / `map` / `collect` combinators.
//!
//! Work is executed on `std::thread::scope` threads in contiguous chunks,
//! so lock-free algorithms (e.g. the atomic union-find election in
//! `mnd-kernels::parallel`) are exercised under real cross-thread
//! interleaving, and results are concatenated in chunk order so
//! order-preserving combinators match rayon's semantics.

use std::ops::Range;

/// Upper bound on worker threads; small inputs use fewer. Honours
/// `RAYON_NUM_THREADS` like real rayon (read per call, so tests can vary
/// the thread count without rebuilding pools).
fn num_threads(items: usize) -> usize {
    let hw = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });
    hw.min(8).min(items.max(1))
}

/// Runs `f` over `items` on scoped threads, preserving input order in the
/// concatenated output.
fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let nt = num_threads(n);
    if n == 0 {
        return Vec::new();
    }
    if nt <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = n.div_ceil(nt);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(nt);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk_len).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f = &f;
    let parts: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon shim worker panicked"))
            .collect()
    });
    parts.into_iter().flatten().collect()
}

/// An eagerly-evaluated parallel iterator: combinators run their closure in
/// parallel immediately and hand the materialized items to the next stage.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Consumes the iterator, calling `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync + Send,
    {
        parallel_map(self.items, f);
    }

    /// Parallel map.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync + Send,
    {
        ParIter {
            items: parallel_map(self.items, f),
        }
    }

    /// Parallel filter (order-preserving).
    pub fn filter<P>(self, p: P) -> ParIter<T>
    where
        P: Fn(&T) -> bool + Sync + Send,
    {
        let kept = parallel_map(self.items, |t| if p(&t) { Some(t) } else { None });
        ParIter {
            items: kept.into_iter().flatten().collect(),
        }
    }

    /// Parallel filter-map (order-preserving).
    pub fn filter_map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> Option<R> + Sync + Send,
    {
        let kept = parallel_map(self.items, f);
        ParIter {
            items: kept.into_iter().flatten().collect(),
        }
    }

    /// Collects the items (already materialized) into `C`.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// `into_par_iter()` — parallel iteration over owned items.
pub trait IntoParallelIterator {
    /// Item type produced by the parallel iterator.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
range_par_iter!(u32, u64, usize, i32, i64);

/// `par_iter()` — parallel iteration over `&T` items of a slice.
pub trait IntoParallelRefIterator<'a> {
    /// Reference item type.
    type Item: Send;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_sort_unstable_by_key` — mutable-slice parallel operations. The shim
/// covers `Copy` element types (the workspace sorts index permutations);
/// real rayon is more general.
pub trait ParallelSliceMut<T: Send + Copy> {
    /// Sorts the slice in parallel: chunks are sorted on worker threads and
    /// merged pairwise. Unstable in the same sense as
    /// `slice::sort_unstable_by_key`; callers needing a deterministic
    /// permutation should make the key injective.
    fn par_sort_unstable_by_key<K: Ord, F>(&mut self, key: F)
    where
        F: Fn(&T) -> K + Sync;
}

impl<T: Send + Copy> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable_by_key<K: Ord, F>(&mut self, key: F)
    where
        F: Fn(&T) -> K + Sync,
    {
        let n = self.len();
        let nt = num_threads(n);
        if n < 2 || nt <= 1 {
            self.sort_unstable_by_key(|t| key(t));
            return;
        }
        // Sort disjoint chunks on scoped threads...
        let chunk_len = n.div_ceil(nt);
        let key_ref = &key;
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for chunk in self.chunks_mut(chunk_len) {
                handles.push(s.spawn(move || chunk.sort_unstable_by_key(|t| key_ref(t))));
            }
            for h in handles {
                h.join().expect("rayon shim sort worker panicked");
            }
        });
        // ...then merge sorted runs pairwise until one run remains.
        let mut run = chunk_len;
        while run < n {
            let mut lo = 0;
            while lo + run < n {
                let hi = (lo + 2 * run).min(n);
                merge_in_place(&mut self[lo..hi], run, key_ref);
                lo = hi;
            }
            run *= 2;
        }
    }
}

/// Merges the two sorted runs `s[..mid]` and `s[mid..]` (stably: on equal
/// keys the left run's elements come first).
fn merge_in_place<T: Copy, K: Ord>(s: &mut [T], mid: usize, key: &impl Fn(&T) -> K) {
    if mid == 0 || mid >= s.len() || key(&s[mid - 1]) <= key(&s[mid]) {
        return;
    }
    let mut merged: Vec<T> = Vec::with_capacity(s.len());
    {
        let (left, right) = s.split_at(mid);
        let (mut i, mut j) = (0, 0);
        while i < left.len() && j < right.len() {
            if key(&right[j]) < key(&left[i]) {
                merged.push(right[j]);
                j += 1;
            } else {
                merged.push(left[i]);
                i += 1;
            }
        }
        merged.extend_from_slice(&left[i..]);
        merged.extend_from_slice(&right[j..]);
    }
    s.copy_from_slice(&merged);
}

pub mod prelude {
    //! Glob-importable traits, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn for_each_runs_every_item() {
        let sum = AtomicU64::new(0);
        let v: Vec<u64> = (0..10_000).collect();
        v.par_iter().for_each(|&x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10_000 * 9_999 / 2);
    }

    #[test]
    fn combinators_preserve_order() {
        let out: Vec<u32> = (0u32..1000)
            .into_par_iter()
            .filter_map(|x| (x % 3 == 0).then_some(x * 2))
            .collect();
        let expect: Vec<u32> = (0u32..1000).filter(|x| x % 3 == 0).map(|x| x * 2).collect();
        assert_eq!(out, expect);
        let kept: Vec<u32> = (0u32..100)
            .into_par_iter()
            .filter(|&x| x % 2 == 0)
            .collect();
        assert_eq!(kept, (0u32..100).step_by(2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn par_sort_matches_sequential_sort() {
        // Pseudo-random but deterministic input, incl. duplicate keys.
        let mut v: Vec<u32> = (0..10_007u32)
            .map(|i| i.wrapping_mul(2654435761) % 512)
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        v.par_sort_unstable_by_key(|&x| x);
        assert_eq!(v, expect);
        let mut empty: Vec<u32> = Vec::new();
        empty.par_sort_unstable_by_key(|&x| x);
        assert!(empty.is_empty());
    }

    #[test]
    fn thread_count_honours_env() {
        std::env::set_var("RAYON_NUM_THREADS", "2");
        assert_eq!(super::num_threads(1000), 2);
        std::env::remove_var("RAYON_NUM_THREADS");
        assert!(super::num_threads(1000) >= 1);
    }
}
