//! Web-crawl scenario with hybrid CPU+GPU nodes (§5.4 / Figure 8).
//!
//! Power-law crawls are where MND-MST shines: contiguous partitions keep
//! most edges internal, independent Boruvka grows huge components, and the
//! GPU's throughput pays off on the big early iterations. This example
//! runs an it-2004-like stand-in on the simulated Cray XC40 with and
//! without the K40 model and prints the GPU benefit per node count.
//!
//! ```sh
//! cargo run --release --example web_crawl_hybrid
//! ```

use mnd::device::NodePlatform;
use mnd::graph::presets::Preset;
use mnd::graph::{stats::graph_stats, CsrGraph};
use mnd::hypar::HyParConfig;
use mnd::kernels::kruskal_msf;
use mnd::mst::MndMstRunner;

fn main() {
    let scale = 8192;
    let graph = Preset::It2004.generate(scale, 42);
    let csr = CsrGraph::from_edge_list(&graph);
    let s = graph_stats(&csr, 1, 1);
    println!(
        "it-2004 stand-in (1/{scale}): {} vertices, {} edges, avg deg {:.1}, max deg {}",
        s.num_vertices, s.num_edges, s.avg_degree, s.max_degree
    );
    let oracle = kruskal_msf(&graph);
    let cfg = HyParConfig::default().with_sim_scale(scale as f64);

    println!("\n nodes | CPU-only |  CPU+GPU | GPU benefit");
    for nodes in [1usize, 4, 8, 16] {
        let cpu = MndMstRunner::new(nodes)
            .with_platform(NodePlatform::cray_xc40(false))
            .with_config(cfg.clone())
            .run(&graph);
        let gpu = MndMstRunner::new(nodes)
            .with_platform(NodePlatform::cray_xc40(true))
            .with_config(cfg.clone())
            .run(&graph);
        assert_eq!(cpu.msf, oracle);
        assert_eq!(gpu.msf, oracle, "the GPU path must not change the result");
        let benefit = 100.0 * (1.0 - gpu.total_time / cpu.total_time);
        println!(
            " {nodes:>5} | {:>8.3} | {:>8.3} | {benefit:>10.1}%",
            cpu.total_time, gpu.total_time
        );
    }
    println!("\nExpected shape (paper §5.4): a clear GPU benefit at few nodes that");
    println!("fades as per-node indComp work shrinks with the node count.");
}
