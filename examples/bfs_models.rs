//! BFS under both execution models — HyPar's generality beyond MST.
//!
//! The HyPar API description (§4.1.2) names BFS alongside MST. This
//! example runs breadth-first search over the same simulated cluster with
//! (a) the BSP formulation (one superstep per BFS level) and (b) the
//! divide-and-conquer formulation (local BFS to fixpoint per round, one
//! exchange per partition-border crossing) and prints the synchronisation
//! counts that explain the difference.
//!
//! ```sh
//! cargo run --release --example bfs_models
//! ```

use mnd::device::NodePlatform;
use mnd::graph::{components::bfs_distances, gen, CsrGraph};
use mnd::mst::bfs::distributed_bfs;
use mnd::pregel::{pregel_bfs, BspConfig};

fn main() {
    let nodes = 8;
    // A road-like mesh: high diameter — the worst case for level-sync BSP.
    let graph = gen::road_grid(120, 120, 0.02, 0.2, 7);
    println!(
        "road-like mesh: {} vertices, {} edges, {nodes} simulated nodes",
        graph.num_vertices(),
        graph.len()
    );
    let oracle = bfs_distances(&CsrGraph::from_edge_list(&graph), 0);

    let scale = 1024.0;
    let bsp = pregel_bfs(
        &graph,
        0,
        nodes,
        &NodePlatform::amd_cluster(),
        &BspConfig::default().with_sim_scale(scale),
    );
    assert_eq!(bsp.dist, oracle);

    let dnc = distributed_bfs(&graph, 0, nodes, &NodePlatform::amd_cluster(), scale);
    assert_eq!(dnc.dist, oracle);

    let levels = oracle
        .iter()
        .filter(|&&d| d != u64::MAX)
        .max()
        .copied()
        .unwrap_or(0);
    println!("\nBFS depth (levels): {levels}");
    println!(
        " BSP (level-synchronised) | {:>8.3}s exe | {:>8.3}s comm | {} supersteps",
        bsp.total_time, bsp.comm_time, bsp.supersteps
    );
    println!(
        " divide-and-conquer       | {:>8.3}s exe | {:>8.3}s comm | {} border-crossing rounds",
        dnc.total_time, dnc.comm_time, dnc.rounds
    );
    println!(
        "\nSame answer, {}x fewer global synchronisations — the paper's",
        bsp.supersteps / dnc.rounds.max(1)
    );
    println!("communication argument (§1) carried to a second application.");
}
