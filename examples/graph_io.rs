//! Graph I/O round trip: persist a weighted graph to the binary format,
//! re-read it Gemini-style (each simulated rank reads its slice of the
//! file, §3.1), and run the distributed MST on the re-assembled input.
//!
//! ```sh
//! cargo run --release --example graph_io
//! ```

use mnd::graph::{gen, io, EdgeList};
use mnd::kernels::kruskal_msf;
use mnd::mst::MndMstRunner;

fn main() -> std::io::Result<()> {
    let graph = gen::watts_strogatz(20_000, 8, 0.1, 7);
    let dir = std::env::temp_dir().join("mnd-mst-example");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("smallworld.mnd");

    // Persist.
    io::write_binary(&graph, std::fs::File::create(&path)?)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "wrote {} edges to {} ({bytes} bytes)",
        graph.len(),
        path.display()
    );

    // Parallel read: 4 "ranks" each read a quarter of the records, exactly
    // like Gemini's offset-sliced parallel input.
    let nranks = 4;
    let mut all = Vec::new();
    let mut num_vertices = 0;
    for rank in 0..nranks {
        let (n, slice) = io::read_binary_slice(&path, rank, nranks)?;
        println!("rank {rank} read {} edges", slice.len());
        num_vertices = n;
        all.extend(slice);
    }
    let reread = EdgeList::from_raw(num_vertices, all);
    assert_eq!(reread, graph, "slices must reassemble the original");

    // Distributed MST on the re-read graph.
    let report = MndMstRunner::new(nranks).run(&reread);
    assert_eq!(report.msf, kruskal_msf(&graph));
    println!(
        "MSF weight {} across {} components, verified ✓",
        report.msf.weight, report.msf.num_components
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
