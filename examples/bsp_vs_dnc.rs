//! BSP vs divide-and-conquer head-to-head — the paper's core claim
//! (Table 3) on one graph.
//!
//! Runs the Pregel+-style BSP MSF and MND-MST on the same simulated AMD
//! cluster and prints execution/communication times plus the superstep
//! count that explains the gap.
//!
//! ```sh
//! cargo run --release --example bsp_vs_dnc
//! ```

use mnd::device::NodePlatform;
use mnd::graph::presets::Preset;
use mnd::hypar::HyParConfig;
use mnd::kernels::kruskal_msf;
use mnd::mst::MndMstRunner;
use mnd::pregel::{pregel_msf, BspConfig};

fn main() {
    let scale = 8192;
    let nodes = 16;
    let graph = Preset::Arabic2005.generate(scale, 42);
    println!(
        "arabic-2005 stand-in (1/{scale}): {} vertices, {} edges, {nodes} nodes",
        graph.num_vertices(),
        graph.len()
    );
    let oracle = kruskal_msf(&graph);

    let bsp = pregel_msf(
        &graph,
        nodes,
        &NodePlatform::amd_cluster(),
        &BspConfig::default().with_sim_scale(scale as f64),
    );
    assert_eq!(bsp.msf, oracle);

    let mnd = MndMstRunner::new(nodes)
        .with_config(HyParConfig::default().with_sim_scale(scale as f64))
        .run(&graph);
    assert_eq!(mnd.msf, oracle);

    println!("\n             |      exe |     comm | sync points");
    println!(
        " Pregel+ BSP | {:>8.3} | {:>8.3} | {} supersteps over {} rounds",
        bsp.total_time, bsp.comm_time, bsp.supersteps, bsp.rounds
    );
    println!(
        " MND-MST     | {:>8.3} | {:>8.3} | {} merge levels, {} ring rounds",
        mnd.total_time, mnd.comm_time, mnd.levels, mnd.exchange_rounds
    );
    println!(
        "\nimprovement: {:.0}% exe, {:.0}% comm (paper reports 24-88% / 40-92%)",
        100.0 * (1.0 - mnd.total_time / bsp.total_time),
        100.0 * (1.0 - mnd.comm_time / bsp.comm_time),
    );
    println!("both results verified against sequential Kruskal ✓");
}
