//! Quickstart: build a graph, run MND-MST on a simulated 4-node cluster,
//! and check the result against Kruskal.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mnd::graph::gen;
use mnd::kernels::kruskal_msf;
use mnd::mst::MndMstRunner;

fn main() {
    // A random graph: 10K vertices, ~50K edges, deterministic seed.
    let graph = gen::gnm(10_000, 50_000, 42);
    println!(
        "input: {} vertices, {} edges",
        graph.num_vertices(),
        graph.len()
    );

    // Run the distributed algorithm on 4 simulated nodes (threads with a
    // LogGP-modelled interconnect; see DESIGN.md).
    let report = MndMstRunner::new(4).run(&graph);

    println!(
        "MSF: {} edges, total weight {}, {} connected component(s)",
        report.msf.edges.len(),
        report.msf.weight,
        report.msf.num_components
    );
    println!(
        "simulated time: {:.4}s total, {:.4}s communication ({} merging levels)",
        report.total_time, report.comm_time, report.levels
    );

    // The MSF is unique under this crate's edge ordering, so we can compare
    // edge-for-edge with a sequential oracle.
    let oracle = kruskal_msf(&graph);
    assert_eq!(report.msf, oracle, "distributed result must equal Kruskal");
    println!("verified: distributed MSF == sequential Kruskal ✓");
}
