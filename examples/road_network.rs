//! Road-network scenario: the paper's road_usa case (§5.3).
//!
//! Road networks are the divide-and-conquer-unfriendly input: low degree,
//! huge diameter, and at high node counts the per-partition components
//! stay tiny, so the run becomes postProcess- and communication-bound.
//! This example sweeps node counts on a road-like lattice and prints the
//! phase breakdown, reproducing the Figure 7(a) shape.
//!
//! ```sh
//! cargo run --release --example road_network
//! ```

use mnd::graph::gen;
use mnd::hypar::HyParConfig;
use mnd::kernels::kruskal_msf;
use mnd::mst::MndMstRunner;

fn main() {
    // ~40K-vertex road-like lattice (road_usa's degree signature).
    let graph = gen::road_grid(230, 175, 0.02, 0.38, 7);
    let oracle = kruskal_msf(&graph);
    println!(
        "road-like graph: {} vertices, {} edges, MSF weight {}",
        graph.num_vertices(),
        graph.len(),
        oracle.weight
    );
    // Simulate at 1/1024 of road_usa's scale so overhead:work ratios match
    // a real deployment (DESIGN.md, "simulation scale").
    let cfg = HyParConfig::default().with_sim_scale(1024.0);

    println!("\n nodes |   total |  indComp |    merge | postProc |     comm");
    for nodes in [1usize, 4, 8, 16] {
        let report = MndMstRunner::new(nodes)
            .with_config(cfg.clone())
            .run(&graph);
        assert_eq!(report.msf, oracle);
        let p = report.phase_max();
        println!(
            " {nodes:>5} | {:>7.3} | {:>8.3} | {:>8.3} | {:>8.3} | {:>8.3}",
            report.total_time, p.ind_comp, p.merge, p.post_process, p.comm
        );
    }
    println!("\nExpected shape (paper §5.3): beyond a few nodes the total stops");
    println!("improving — indComp shrinks but communication + postProcess grow.");
}
