//! Property tests on the device cost models: monotonicity, scale
//! invariance, and calibration bounds.

use mnd_device::{calibrate_split, DeviceModel, ExecDevice, NodePlatform};
use mnd_graph::gen;
use mnd_graph::CsrGraph;
use mnd_kernels::cgraph::CGraph;
use mnd_kernels::policy::{ExcpCond, FreezePolicy, IterWork, StopPolicy, WorkProfile};
use proptest::prelude::*;

fn profile(scans: Vec<u64>) -> WorkProfile {
    WorkProfile {
        iters: scans
            .into_iter()
            .map(|s| IterWork {
                active_components: 1,
                edges_scanned: s,
                unions: 1,
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// More work never costs less, on any device.
    #[test]
    fn kernel_time_is_monotone_in_work(
        scans in proptest::collection::vec(0u64..1_000_000, 1..6),
        extra in 1u64..1_000_000,
        skew in 0.0f64..1.0,
    ) {
        for model in [
            DeviceModel::cpu_amd_opteron(),
            DeviceModel::cpu_xeon_ivybridge(),
            DeviceModel::gpu_k40(),
            DeviceModel::gpu_k40_unbinned(),
        ] {
            let base = model.kernel_time(&profile(scans.clone()), skew);
            let mut more = scans.clone();
            *more.last_mut().unwrap() += extra;
            let bigger = model.kernel_time(&profile(more), skew);
            prop_assert!(bigger >= base, "{}: {bigger} < {base}", model.name);
        }
    }

    /// Skew never helps, and hurts the unbinned GPU at least as much as
    /// the binned one.
    #[test]
    fn skew_ordering(skew in 0.0f64..1.0, work in 1_000u64..10_000_000) {
        let w = profile(vec![work]);
        let binned = DeviceModel::gpu_k40();
        let unbinned = DeviceModel::gpu_k40_unbinned();
        prop_assert!(binned.kernel_time(&w, skew) >= binned.kernel_time(&w, 0.0) - 1e-12);
        prop_assert!(unbinned.kernel_time(&w, skew) >= binned.kernel_time(&w, skew) - 1e-12);
        for m in [binned, unbinned] {
            let occ = m.occupancy(skew);
            prop_assert!((0.0..=1.0).contains(&occ));
        }
    }

    /// Scaling the model by `s` scales pure work time by exactly `s`
    /// (fixed overheads unchanged) — the simulation-scale contract.
    #[test]
    fn work_scale_contract(scale in 1.0f64..10_000.0, work in 10_000u64..1_000_000) {
        let base = DeviceModel::cpu_xeon_ivybridge();
        let scaled = base.clone().scaled(scale);
        let w = profile(vec![work]);
        let t_base = base.kernel_time(&w, 0.0) - base.iteration_overhead;
        let t_scaled = scaled.kernel_time(&w, 0.0) - scaled.iteration_overhead;
        // Subtracting the shared fixed overhead, remaining time is linear
        // in scale (serial floor included, also linear).
        prop_assert!((t_scaled / t_base - scale).abs() / scale < 1e-9);
    }

    /// Calibration always yields a fraction in [0, 1] and is deterministic.
    #[test]
    fn calibration_bounds(seed in 0u64..50, n in 50u32..400) {
        let g = CsrGraph::from_edge_list(&gen::gnm(n, n as u64 * 4, seed));
        let split = calibrate_split(
            &g,
            &DeviceModel::cpu_xeon_ivybridge(),
            &DeviceModel::gpu_k40(),
            5,
            0.1,
            seed,
        );
        prop_assert!((0.0..=1.0).contains(&split.cpu_fraction));
        prop_assert!(split.gpu_speedup >= 0.0);
    }
}

#[test]
fn exec_device_result_is_model_independent() {
    // Changing every cost parameter must never change the computed MSF.
    let el = gen::web_crawl(800, 6000, gen::CrawlParams::default(), 3);
    let reference = {
        let mut cg = CGraph::from_edge_list(&el);
        let mut dev = ExecDevice::new(DeviceModel::cpu_amd_opteron());
        dev.run_ind_comp(
            &mut cg,
            ExcpCond::None,
            FreezePolicy::Sticky,
            StopPolicy::Exhaustive,
        )
        .output
        .msf_edges
    };
    for model in [
        DeviceModel::cpu_xeon_ivybridge(),
        DeviceModel::gpu_k40(),
        DeviceModel::gpu_k40_unbinned(),
        DeviceModel::gpu_k40().scaled(4096.0),
    ] {
        let mut cg = CGraph::from_edge_list(&el);
        let mut dev = ExecDevice::new(model);
        let got = dev
            .run_ind_comp(
                &mut cg,
                ExcpCond::None,
                FreezePolicy::Sticky,
                StopPolicy::Exhaustive,
            )
            .output
            .msf_edges;
        assert_eq!(got, reference);
    }
}

#[test]
fn geometric_regime_keeps_the_gpu_occupied() {
    // The Euclidean k-NN family is the bounded-degree counterpoint to the
    // web crawls: no hubs, so binning has (almost) nothing to fix and the
    // occupancy model must sit near 1.0 on both GPU variants. A crawl of
    // comparable size anchors the other end of the regime axis.
    use mnd_graph::gen::GeoPreset;
    use mnd_kernels::binning::bin_graph;

    let geo = CsrGraph::from_edge_list(&GeoPreset::Uniform2d.generate(1 << 15, 42));
    let geo_skew = bin_graph(&geo).skew_fraction();
    assert!(geo_skew < 0.05, "uniform k-NN skew {geo_skew} not near 0");

    let crawl =
        CsrGraph::from_edge_list(&mnd_graph::presets::Preset::Arabic2005.generate(1 << 15, 42));
    let crawl_skew = bin_graph(&crawl).skew_fraction();
    assert!(crawl_skew > 0.3, "crawl skew {crawl_skew} unexpectedly low");

    let binned = DeviceModel::gpu_k40();
    let unbinned = DeviceModel::gpu_k40_unbinned();
    assert!(binned.occupancy(geo_skew) > 0.99);
    assert!(unbinned.occupancy(geo_skew) > 0.95);
    // On the crawl, skipping binning costs real occupancy; on geometry it
    // must not (that is the point of the bounded-degree regime).
    assert!(unbinned.occupancy(crawl_skew) < binned.occupancy(crawl_skew));
    assert!(unbinned.occupancy(geo_skew) - unbinned.occupancy(crawl_skew) > 0.2);

    // Calibration stays sensible on geometry, and skipping binning there
    // costs (almost) nothing: binned and unbinned GPUs calibrate to
    // near-identical speedups. (The crawl's skew penalty is asserted at
    // the occupancy level above — §4.3.1 sampling at this scale prunes
    // hub degrees below the bin limit, so the split can't see it.)
    let cpu = DeviceModel::cpu_xeon_ivybridge();
    let geo_b = calibrate_split(&geo, &cpu, &binned, 3, 0.25, 42);
    let geo_u = calibrate_split(&geo, &cpu, &unbinned, 3, 0.25, 42);
    for s in [&geo_b, &geo_u] {
        assert!((0.0..=1.0).contains(&s.cpu_fraction));
        assert!(s.gpu_speedup > 0.0);
    }
    assert!(
        geo_u.gpu_speedup > geo_b.gpu_speedup * 0.95,
        "geo unbinned {} vs binned {}",
        geo_u.gpu_speedup,
        geo_b.gpu_speedup
    );
}

#[test]
fn platform_presets_are_internally_consistent() {
    for plat in [
        NodePlatform::amd_cluster(),
        NodePlatform::cray_xc40(false),
        NodePlatform::cray_xc40(true),
    ] {
        assert!(plat.cpu.edge_throughput > 0.0);
        assert!(plat.cpu.efficiency > 0.0 && plat.cpu.efficiency <= 1.0);
        if let Some(gpu) = &plat.gpu {
            assert!(
                gpu.edge_throughput > plat.cpu.edge_throughput,
                "GPU must out-throughput CPU"
            );
            assert!(
                gpu.mem_bytes < plat.cpu.mem_bytes,
                "device memory < host memory"
            );
        }
    }
}
