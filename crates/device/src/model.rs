//! Device timing models.
//!
//! A device converts a kernel's [`WorkProfile`] into simulated seconds. The
//! model is deliberately simple — launch overhead + work/throughput with a
//! parallel-efficiency and (GPU) occupancy factor — because the paper's
//! results depend on the *ratios* between devices and between computation
//! and communication, not on cycle-accurate magnitudes.

use mnd_kernels::policy::WorkProfile;
use mnd_net::CostModel;

/// What kind of device this is.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DeviceKind {
    /// Multicore CPU with this many cores.
    Cpu {
        /// Physical cores used by the worklist kernel.
        cores: u32,
    },
    /// A GPU-like throughput device.
    Gpu {
        /// Whether the degree-binned hierarchical adjacency schedule
        /// (§3.5) is enabled; disabling it models the unoptimised kernel
        /// for the ablation.
        binning: bool,
    },
}

/// A device's cost parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceModel {
    /// Human-readable name (printed by the harness).
    pub name: &'static str,
    /// Kind and kind-specific parameters.
    pub kind: DeviceKind,
    /// Peak edge-scan throughput in edges/second (whole device).
    pub edge_throughput: f64,
    /// Fixed cost per kernel iteration (launch latency on GPUs, loop/sync
    /// overhead on CPUs).
    pub iteration_overhead: f64,
    /// Parallel efficiency in `(0, 1]` applied to the throughput.
    pub efficiency: f64,
    /// Device memory in bytes (caps partition sizes; §4.3.1 mentions GPU
    /// memory as a constraint on the split).
    pub mem_bytes: u64,
    /// Cost model for moving data on/off the device (PCIe for the GPU;
    /// free for the CPU, which owns host memory).
    pub transfer: CostModel,
    /// Simulation scale: kernel work items and transfer bytes are
    /// multiplied by this factor when charging time. Experiments that
    /// shrink the paper's graphs by `scale_div` set `work_scale =
    /// scale_div` so launch overheads keep their paper-scale ratio to the
    /// useful work — see DESIGN.md ("simulation scale").
    pub work_scale: f64,
}

impl DeviceModel {
    /// The paper's AMD Opteron 3380 node: 8 cores @ 2.6 GHz, 32 GB.
    /// Throughput chosen so a ~1B-edge scan takes seconds, matching the
    /// per-phase magnitudes of Table 3 at full scale.
    pub fn cpu_amd_opteron() -> Self {
        DeviceModel {
            name: "AMD Opteron 3380 (8 cores)",
            kind: DeviceKind::Cpu { cores: 8 },
            edge_throughput: 8.0 * 45.0e6,
            iteration_overhead: 8e-6,
            efficiency: 0.70,
            mem_bytes: 32 << 30,
            transfer: CostModel::free(),
            work_scale: 1.0,
        }
    }

    /// The Cray node's Intel Xeon E5-2695 v2: 12 cores @ 2.4 GHz, 64 GB.
    pub fn cpu_xeon_ivybridge() -> Self {
        DeviceModel {
            name: "Intel Xeon E5-2695v2 (12 cores)",
            kind: DeviceKind::Cpu { cores: 12 },
            edge_throughput: 12.0 * 55.0e6,
            iteration_overhead: 5e-6,
            efficiency: 0.72,
            mem_bytes: 64 << 30,
            transfer: CostModel::free(),
            work_scale: 1.0,
        }
    }

    /// NVIDIA Tesla K40: 2880 cores, 12 GB, PCIe-attached. Edge throughput
    /// reflects the ~4-5x memory-bandwidth edge over the host Xeon that
    /// graph kernels actually realise, minus divergence losses.
    pub fn gpu_k40() -> Self {
        DeviceModel {
            name: "NVIDIA Tesla K40",
            kind: DeviceKind::Gpu { binning: true },
            edge_throughput: 2.2e9,
            iteration_overhead: 25e-6,
            efficiency: 0.85,
            mem_bytes: 12 << 30,
            transfer: CostModel::pcie(),
            work_scale: 1.0,
        }
    }

    /// The K40 model with the degree-binned schedule disabled (ablation).
    pub fn gpu_k40_unbinned() -> Self {
        DeviceModel {
            kind: DeviceKind::Gpu { binning: false },
            ..Self::gpu_k40()
        }
    }

    /// Returns this model with a simulation scale applied (see
    /// [`DeviceModel::work_scale`]).
    pub fn scaled(mut self, work_scale: f64) -> Self {
        assert!(work_scale >= 1.0, "work_scale must be >= 1");
        self.work_scale = work_scale;
        self.transfer = self.transfer.scaled(work_scale);
        self
    }

    /// Simulated seconds to execute a kernel invocation with the given work
    /// profile on a holding whose degree-skew fraction is `skew`
    /// (fraction of edges in warp/block-sized bins; see
    /// [`mnd_kernels::binning`]).
    pub fn kernel_time(&self, work: &WorkProfile, skew: f64) -> f64 {
        let occupancy = self.occupancy(skew);
        let effective = self.edge_throughput * self.efficiency * occupancy;
        let mut t = 0.0;
        for it in &work.iters {
            // A tiny serial floor (min-edge resolution) keeps tiny
            // iterations from costing literally zero.
            let serial = it.unions as f64 * self.work_scale * 2.0e-9;
            t += self.iteration_overhead
                + it.edges_scanned as f64 * self.work_scale / effective
                + serial;
        }
        t
    }

    /// Occupancy factor from degree skew. CPUs are insensitive (work
    /// stealing balances skew); an unbinned GPU loses up to ~70% of its
    /// throughput on hub-heavy graphs (single thread crawling a multi-
    /// million-degree adjacency), the binned schedule recovers most of it.
    pub fn occupancy(&self, skew: f64) -> f64 {
        let skew = skew.clamp(0.0, 1.0);
        match self.kind {
            DeviceKind::Cpu { .. } => 1.0,
            DeviceKind::Gpu { binning: true } => 1.0 - 0.15 * skew,
            DeviceKind::Gpu { binning: false } => 1.0 - 0.70 * skew,
        }
    }

    /// Simulated seconds to move `bytes` onto or off the device.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        if self.transfer.bandwidth.is_infinite() && self.transfer.latency == 0.0 {
            return 0.0;
        }
        self.transfer.transit(bytes) + self.transfer.overhead
    }

    /// True if a holding of `bytes` fits in device memory.
    pub fn fits(&self, bytes: u64) -> bool {
        bytes <= self.mem_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnd_kernels::policy::{IterWork, WorkProfile};

    fn profile(scans: &[u64]) -> WorkProfile {
        WorkProfile {
            iters: scans
                .iter()
                .map(|&s| IterWork {
                    active_components: 1,
                    edges_scanned: s,
                    unions: 1,
                })
                .collect(),
        }
    }

    #[test]
    fn gpu_is_faster_than_cpu_on_bulk_work() {
        let w = profile(&[10_000_000, 5_000_000, 2_500_000]);
        let cpu = DeviceModel::cpu_xeon_ivybridge().kernel_time(&w, 0.0);
        let gpu = DeviceModel::gpu_k40().kernel_time(&w, 0.0);
        assert!(gpu < cpu, "gpu {gpu} vs cpu {cpu}");
    }

    #[test]
    fn cpu_wins_on_tiny_iterations() {
        // Many near-empty iterations: launch overhead dominates the GPU.
        let w = profile(&[100; 200]);
        let cpu = DeviceModel::cpu_xeon_ivybridge();
        let gpu = DeviceModel::gpu_k40();
        // Kernel-launch latency (25µs) dominates the GPU; the CPU's loop
        // overhead (5µs) is 5x cheaper, so the CPU wins outright.
        let t_cpu = cpu.kernel_time(&w, 0.0);
        let t_gpu = gpu.kernel_time(&w, 0.0);
        assert!(t_cpu < t_gpu, "cpu {t_cpu} vs gpu {t_gpu}");
    }

    #[test]
    fn skew_hurts_unbinned_gpu_most() {
        let w = profile(&[50_000_000]);
        let binned = DeviceModel::gpu_k40().kernel_time(&w, 0.8);
        let unbinned = DeviceModel::gpu_k40_unbinned().kernel_time(&w, 0.8);
        let cpu_flat = DeviceModel::cpu_xeon_ivybridge().kernel_time(&w, 0.0);
        let cpu_skew = DeviceModel::cpu_xeon_ivybridge().kernel_time(&w, 0.8);
        assert!(unbinned > 1.5 * binned);
        assert_eq!(cpu_flat, cpu_skew, "CPU must be skew-insensitive");
    }

    #[test]
    fn transfer_costs_are_gpu_only() {
        assert_eq!(
            DeviceModel::cpu_xeon_ivybridge().transfer_time(1 << 30),
            0.0
        );
        let t = DeviceModel::gpu_k40().transfer_time(1 << 30);
        assert!(t > 0.05, "1 GiB over PCIe should take ~90ms, got {t}");
    }

    #[test]
    fn memory_fit() {
        let gpu = DeviceModel::gpu_k40();
        assert!(gpu.fits(8 << 30));
        assert!(!gpu.fits(16 << 30));
    }

    #[test]
    fn kernel_time_monotone_in_work() {
        let small = profile(&[1000]);
        let big = profile(&[1000, 1000]);
        let m = DeviceModel::cpu_amd_opteron();
        assert!(m.kernel_time(&big, 0.0) > m.kernel_time(&small, 0.0));
    }
}
