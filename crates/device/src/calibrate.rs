//! CPU/GPU partition-ratio calibration — §4.3.1 of the paper.
//!
//! "We form a small number of different induced subgraphs (for our study,
//! we used 5-10 subgraphs), execute each subgraph on both CPU and GPU, find
//! the performance ratio, and obtain an average of the ratios … In addition
//! to performance, we also take into account the GPU memory requirements."
//!
//! The same measure-then-decide idea drives [`calibrate_kernel_policy`]:
//! the profitable seq/par crossover and chunk size of the holding-plane
//! kernels are platform-dependent, so they are timed on synthetic holdings
//! at startup (wall clock, not the simulated device models) and packaged as
//! a [`mnd_kernels::policy::KernelPolicy`] for the whole run.

use std::time::Instant;

use mnd_graph::edgelist::splitmix64;
use mnd_graph::gen;
use mnd_graph::{CsrGraph, VertexId};
use mnd_kernels::boruvka::local_boruvka;
use mnd_kernels::cgraph::CGraph;
use mnd_kernels::policy::{ExcpCond, FreezePolicy, KernelPolicy, ParVariant, StopPolicy};
use mnd_kernels::reduce::reduce_holding_with;
use mnd_kernels::scan::{min_edge_scan_lockfree, min_edge_scan_par, min_edge_scan_seq};

use crate::exec::ExecDevice;
use crate::model::DeviceModel;
use crate::platform::NodePlatform;

/// The calibrated intra-node split.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceSplit {
    /// Fraction of the node's edges assigned to the CPU partition
    /// (`1 - cpu_fraction` goes to the GPU).
    pub cpu_fraction: f64,
    /// Average of the per-sample GPU:CPU speed ratios.
    pub gpu_speedup: f64,
    /// True if the GPU share was clipped by its memory capacity.
    pub memory_limited: bool,
}

impl DeviceSplit {
    /// A CPU-only split (no GPU present).
    pub fn cpu_only() -> Self {
        DeviceSplit {
            cpu_fraction: 1.0,
            gpu_speedup: 0.0,
            memory_limited: false,
        }
    }
}

/// Calibrates the CPU/GPU split for `graph` following §4.3.1: `samples`
/// induced subgraphs of `sample_frac` of the vertices each (the paper uses
/// 5–10 samples at 5%), executed on both device models; the split is the
/// average performance ratio, clipped so the GPU partition fits GPU memory.
pub fn calibrate_split(
    graph: &CsrGraph,
    cpu: &DeviceModel,
    gpu: &DeviceModel,
    samples: u32,
    sample_frac: f64,
    seed: u64,
) -> DeviceSplit {
    assert!(samples >= 1);
    assert!((0.0..=1.0).contains(&sample_frac));
    let n = graph.num_vertices();
    if n == 0 {
        return DeviceSplit::cpu_only();
    }
    let keep_count = ((n as f64 * sample_frac).ceil() as usize).clamp(1, n as usize);

    let mut ratios = Vec::with_capacity(samples as usize);
    for s in 0..samples {
        let keep = sample_vertices(n, keep_count, splitmix64(seed ^ (s as u64) << 32));
        let sub = graph.induced_subgraph(&keep);
        let el = sub.to_edge_list();
        if el.is_empty() {
            continue; // degenerate sample: no information
        }
        let mut cg = CGraph::from_edge_list(&el);
        let out = local_boruvka(
            &mut cg,
            ExcpCond::None,
            FreezePolicy::Sticky,
            StopPolicy::Exhaustive,
        );
        let skew = {
            let mut cg = CGraph::from_edge_list(&el);
            ExecDevice::holding_skew(&mut cg)
        };
        let t_cpu = cpu.kernel_time(&out.work, skew);
        // The GPU pays its transfers in real use; include them so tiny
        // graphs correctly favour the CPU.
        let bytes = el.len() as u64 * std::mem::size_of::<mnd_graph::WEdge>() as u64;
        let t_gpu = gpu.kernel_time(&out.work, skew) + gpu.transfer_time(bytes);
        if t_gpu > 0.0 && t_cpu > 0.0 {
            ratios.push(t_cpu / t_gpu);
        }
    }
    if ratios.is_empty() {
        return DeviceSplit::cpu_only();
    }
    let gpu_speedup: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;

    // Split proportional to speed: CPU keeps 1/(1+speedup).
    let mut cpu_fraction = 1.0 / (1.0 + gpu_speedup);

    // Memory constraint: the GPU partition (plus working structures, ~2x)
    // must fit device memory. Bytes are judged at simulation scale so a
    // scaled-down stand-in for a billion-edge crawl still exercises the cap.
    let total_bytes = graph.approx_bytes() as f64 * 2.0 * gpu.work_scale;
    let gpu_budget = gpu.mem_bytes as f64;
    let mut memory_limited = false;
    let gpu_share = 1.0 - cpu_fraction;
    if total_bytes * gpu_share > gpu_budget {
        cpu_fraction = 1.0 - (gpu_budget / total_bytes).min(1.0);
        memory_limited = true;
    }
    DeviceSplit {
        cpu_fraction,
        gpu_speedup,
        memory_limited,
    }
}

/// One measured row of the kernel-policy calibration: wall-clock kernel
/// times on a holding of `rows` edges — sequential, chunk-and-merge per
/// candidate chunk, and (for classes that have one) the lock-free variant.
#[derive(Clone, Debug)]
pub struct CrossoverRow {
    /// Holding size (edge rows).
    pub rows: usize,
    /// Best-of-k sequential kernel time, nanoseconds.
    pub seq_ns: u64,
    /// Best-of-k chunk-merge time per `(chunk_rows, ns)` candidate.
    pub par_ns: Vec<(usize, u64)>,
    /// Best-of-k lock-free time (at [`LOCKFREE_CHUNK`]); `None` for classes
    /// without a lock-free implementation (reduce, relabel).
    pub lockfree_ns: Option<u64>,
}

impl CrossoverRow {
    /// The fastest chunk-merge candidate of this row, if any was measured.
    pub fn best_par(&self) -> Option<(usize, u64)> {
        self.par_ns.iter().copied().min_by_key(|&(_, ns)| ns)
    }
}

/// Output of [`calibrate_kernel_policy`]: the chosen policy plus the raw
/// measurements (the crossover tables `repro` prints and BENCH snapshots
/// record).
#[derive(Clone, Debug)]
pub struct KernelCalibration {
    /// The policy the run should use.
    pub policy: KernelPolicy,
    /// Election-kernel rows, one per measured holding size, ascending.
    pub table: Vec<CrossoverRow>,
    /// Reduction-kernel rows (compaction + sorts), same sizes.
    pub reduce_table: Vec<CrossoverRow>,
    /// Incident-count rows, same sizes.
    pub count_table: Vec<CrossoverRow>,
    /// Relabel-kernel rows, same sizes.
    pub relabel_table: Vec<CrossoverRow>,
}

/// Holding sizes (edge rows) the calibration times.
pub const CALIBRATION_SIZES: [usize; 5] = [1 << 12, 1 << 13, 1 << 14, 1 << 15, 1 << 16];
/// Candidate chunk sizes (rows per parallel chunk).
pub const CALIBRATION_CHUNKS: [usize; 3] = [1024, 4096, 16384];
/// Chunk the lock-free variants are timed at. With no partial tables and no
/// merge phase, chunking only load-balances the sweep, so one mid-range
/// candidate is representative (unlike chunk-merge, where chunk count
/// multiplies the merge cost).
pub const LOCKFREE_CHUNK: usize = 4096;

/// Measures the seq / chunk-merge / lock-free crossover of the four
/// holding-plane kernel classes — the min-edge election every `indComp`
/// iteration runs, the reduction pass (self/multi-edge compaction with its
/// sorts), the incident-count tally, and the ghost relabel — on synthetic
/// G(n,m) holdings, and derives a [`KernelPolicy`]: `chunk_rows` is the
/// chunk-merge candidate that wins the election at the largest size; each
/// class picks the parallel variant that is fastest at the largest measured
/// size among variants that beat sequential somewhere, with the crossover
/// just below that variant's smallest winning size.
///
/// **Clamp rule:** if no parallel variant of a class ever beats sequential
/// in the measured table, that class's crossover is clamped to
/// `usize::MAX` — calibration must never select a parallel variant whose
/// measured speedup is below 1.0 (the BENCH_4 `incident_counts` 0.58×
/// regression came from the old "largest measured size" fallback, which
/// kept routing unmeasured giant holdings down a losing path).
///
/// Wall-clock timing, best of 3 — noisy by nature, which is fine: the
/// determinism contract guarantees the *result* is policy-independent, so a
/// mis-calibrated policy costs only time.
pub fn calibrate_kernel_policy(seed: u64) -> KernelCalibration {
    let mut table = Vec::with_capacity(CALIBRATION_SIZES.len());
    let mut reduce_table = Vec::with_capacity(CALIBRATION_SIZES.len());
    let mut count_table = Vec::with_capacity(CALIBRATION_SIZES.len());
    let mut relabel_table = Vec::with_capacity(CALIBRATION_SIZES.len());
    for &rows in &CALIBRATION_SIZES {
        // Components ~ rows/4 keeps the winner tables a realistic fraction
        // of the sweep (degree ~8).
        let n = (rows / 4).max(16) as VertexId;
        let mut cg =
            CGraph::from_edge_list(&gen::gnm(n, rows as u64, splitmix64(seed ^ rows as u64)));
        let mut row = measure_row(rows, |chunk| {
            let t = Instant::now();
            match chunk {
                None => std::hint::black_box(min_edge_scan_seq(&cg)),
                Some(c) => std::hint::black_box(min_edge_scan_par(&cg, c)),
            };
            t.elapsed().as_nanos() as u64
        });
        row.lockfree_ns = Some(best_of(3, || {
            let t = Instant::now();
            std::hint::black_box(min_edge_scan_lockfree(&cg, LOCKFREE_CHUNK));
            t.elapsed().as_nanos() as u64
        }));
        table.push(row);
        reduce_table.push(measure_row(rows, |chunk| {
            // The reduction mutates; clone outside the timed region.
            let mut c = cg.clone();
            let pol = policy_for(chunk);
            let t = Instant::now();
            std::hint::black_box(reduce_holding_with(&mut c, &pol));
            t.elapsed().as_nanos() as u64
        }));
        let mut row = measure_row(rows, |chunk| {
            let pol = policy_for(chunk);
            let t = Instant::now();
            std::hint::black_box(cg.incident_counts_with(&pol));
            t.elapsed().as_nanos() as u64
        });
        row.lockfree_ns = Some(best_of(3, || {
            let pol = KernelPolicy::force_lockfree(LOCKFREE_CHUNK);
            let t = Instant::now();
            std::hint::black_box(cg.incident_counts_with(&pol));
            t.elapsed().as_nanos() as u64
        }));
        count_table.push(row);
        relabel_table.push(measure_row(rows, |chunk| {
            // Identity relabel: full sweep cost, idempotent, no clone.
            let mut c = cg.clone();
            let pol = policy_for(chunk);
            let t = Instant::now();
            c.relabel_with(&pol, |id| id);
            std::hint::black_box(&c);
            t.elapsed().as_nanos() as u64
        }));
    }

    // Winning chunk: fastest chunk-merge election candidate at the largest
    // size (elections run far more often than the other classes, so the
    // shared chunk granularity follows them; the lock-free plane is
    // chunk-insensitive, see [`LOCKFREE_CHUNK`]).
    let chunk_rows = table
        .last()
        .and_then(|r| r.best_par())
        .map(|(chunk, _)| chunk)
        .unwrap_or(KernelPolicy::default().chunk_rows);
    let (election_variant, par_threshold) = class_selection(&table, chunk_rows);
    let (count_variant, count_par_threshold) = class_selection(&count_table, chunk_rows);
    // Reduce/relabel have no lock-free variant; selection degenerates to
    // the chunk-merge crossover (with the same clamp rule).
    let (_, reduce_par_threshold) = class_selection(&reduce_table, chunk_rows);
    let (_, relabel_par_threshold) = class_selection(&relabel_table, chunk_rows);
    let policy = KernelPolicy {
        par_threshold,
        reduce_par_threshold,
        count_par_threshold,
        relabel_par_threshold,
        election_variant,
        count_variant,
        chunk_rows,
    };
    KernelCalibration {
        policy,
        table,
        reduce_table,
        count_table,
        relabel_table,
    }
}

/// Times one holding size: sequential (`None`) plus every candidate chunk
/// smaller than the holding.
fn measure_row(rows: usize, mut run: impl FnMut(Option<usize>) -> u64) -> CrossoverRow {
    let seq_ns = best_of(3, || run(None));
    let par_ns = CALIBRATION_CHUNKS
        .iter()
        .filter(|&&chunk| chunk < rows)
        .map(|&chunk| (chunk, best_of(3, || run(Some(chunk)))))
        .collect();
    CrossoverRow {
        rows,
        seq_ns,
        par_ns,
        lockfree_ns: None,
    }
}

/// The policy that forces a measurement down one path: sequential for
/// `None`, all-parallel chunk-merge with the given chunk otherwise.
fn policy_for(chunk: Option<usize>) -> KernelPolicy {
    match chunk {
        None => KernelPolicy::seq(),
        Some(c) => KernelPolicy::force_par(c),
    }
}

/// A parallel time is a *decisive* win over sequential when it is at
/// least 5% faster. Noise-level wins matter: on a loaded or single-core
/// host, a losing variant's measurements hover in a 0.95–1.05× band, and
/// one lucky sample used to unclamp the class — calibration would then
/// select a variant the kernel sweep measures below 1.0× (the
/// reduce_holding 0.97× flake the emst CI plane caught), tripping the
/// committed-baseline gate at random.
fn decisive(par_ns: u64, seq_ns: u64) -> bool {
    par_ns.saturating_mul(20) < seq_ns.saturating_mul(19)
}

/// Variant + crossover for one class's table. A variant is eligible only
/// if it *decisively* beats sequential at the largest measured size (see
/// [`decisive`] — routing unmeasured giant holdings down a path that
/// loses, or noise-ties, at the top of the table is exactly the BENCH_4
/// regression). Per eligible variant, the crossover is one below the
/// smallest measured size where it beats sequential; the class routes
/// through whichever eligible variant is fastest at the largest measured
/// size. If **no** variant is eligible, the crossover clamps to
/// `usize::MAX`.
fn class_selection(table: &[CrossoverRow], chunk_rows: usize) -> (ParVariant, usize) {
    let chunk_ok = table.last().is_some_and(|r| {
        r.par_ns
            .iter()
            .any(|&(c, ns)| c == chunk_rows && decisive(ns, r.seq_ns))
    });
    let lf_ok = table
        .last()
        .is_some_and(|r| r.lockfree_ns.is_some_and(|ns| decisive(ns, r.seq_ns)));
    let chunk_win = table
        .iter()
        .find(|r| {
            chunk_ok
                && r.par_ns
                    .iter()
                    .any(|&(c, ns)| c == chunk_rows && ns < r.seq_ns)
        })
        .map(|r| r.rows - 1);
    let lf_win = table
        .iter()
        .find(|r| lf_ok && r.lockfree_ns.is_some_and(|ns| ns < r.seq_ns))
        .map(|r| r.rows - 1);
    let chunk_last = table
        .last()
        .and_then(|r| r.par_ns.iter().find(|&&(c, _)| c == chunk_rows))
        .map_or(u64::MAX, |&(_, ns)| ns);
    let lf_last = table.last().and_then(|r| r.lockfree_ns).unwrap_or(u64::MAX);
    match (chunk_win, lf_win) {
        (None, None) => (ParVariant::LockFree, usize::MAX), // clamp: nothing wins
        (Some(t), None) => (ParVariant::ChunkMerge, t),
        (None, Some(t)) => (ParVariant::LockFree, t),
        (Some(tc), Some(tl)) => {
            if lf_last <= chunk_last {
                (ParVariant::LockFree, tl)
            } else {
                (ParVariant::ChunkMerge, tc)
            }
        }
    }
}

/// [`calibrate_kernel_policy`] behind an on-disk cache: the measured
/// thresholds depend only on the machine, not the run, so repeated harness
/// invocations (every `repro` subcommand, every benchmark) reuse the first
/// run's numbers instead of re-timing ~60 kernel sweeps. The cache key is
/// hostname + available parallelism; the file is a `key=value` snapshot of
/// the seven policy fields in the system temp directory. Any IO or parse
/// problem — including stale pre-lock-free snapshots missing the variant
/// fields — falls back to measuring (and best-effort rewrites the file), so
/// the cache can never fail a run, only speed it up.
pub fn calibrate_kernel_policy_cached(seed: u64) -> KernelPolicy {
    let path = kernel_policy_cache_path();
    if let Some(policy) = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| parse_policy_cache(&text))
    {
        return policy;
    }
    let policy = calibrate_kernel_policy(seed).policy;
    let _ = std::fs::write(&path, render_policy_cache(&policy));
    policy
}

/// The `key=value` snapshot [`calibrate_kernel_policy_cached`] writes.
fn render_policy_cache(policy: &KernelPolicy) -> String {
    format!(
        "par_threshold={}\nreduce_par_threshold={}\ncount_par_threshold={}\n\
         relabel_par_threshold={}\nchunk_rows={}\nelection_variant={}\ncount_variant={}\n",
        policy.par_threshold,
        policy.reduce_par_threshold,
        policy.count_par_threshold,
        policy.relabel_par_threshold,
        policy.chunk_rows,
        variant_name(policy.election_variant),
        variant_name(policy.count_variant),
    )
}

/// Stable cache/snapshot spelling of a parallel-variant choice.
pub fn variant_name(v: ParVariant) -> &'static str {
    match v {
        ParVariant::ChunkMerge => "chunk-merge",
        ParVariant::LockFree => "lockfree",
    }
}

fn parse_variant(s: &str) -> Option<ParVariant> {
    match s {
        "chunk-merge" => Some(ParVariant::ChunkMerge),
        "lockfree" => Some(ParVariant::LockFree),
        _ => None,
    }
}

/// Where the kernel-policy cache for this host/thread-count lives.
fn kernel_policy_cache_path() -> std::path::PathBuf {
    let host = std::fs::read_to_string("/etc/hostname")
        .ok()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .or_else(|| std::env::var("HOSTNAME").ok())
        .unwrap_or_else(|| "unknown".to_string());
    let host: String = host
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    std::env::temp_dir().join(format!("mnd-kernel-policy-{host}-t{threads}.txt"))
}

/// Parses a cache snapshot; `None` unless all seven fields parse (a
/// pre-lock-free four-field snapshot therefore self-heals by re-measuring).
fn parse_policy_cache(text: &str) -> Option<KernelPolicy> {
    let mut policy = KernelPolicy::default();
    let mut seen = 0u8;
    for line in text.lines() {
        let (key, value) = line.split_once('=')?;
        let value = value.trim();
        match key.trim() {
            "par_threshold" => policy.par_threshold = value.parse().ok()?,
            "reduce_par_threshold" => policy.reduce_par_threshold = value.parse().ok()?,
            "count_par_threshold" => policy.count_par_threshold = value.parse().ok()?,
            "relabel_par_threshold" => policy.relabel_par_threshold = value.parse().ok()?,
            "chunk_rows" => policy.chunk_rows = value.parse().ok()?,
            "election_variant" => policy.election_variant = parse_variant(value)?,
            "count_variant" => policy.count_variant = parse_variant(value)?,
            _ => continue,
        }
        seen += 1;
    }
    (seen == 7).then_some(policy)
}

/// Smallest of `k` samples of `f` (classic micro-benchmark noise floor).
fn best_of(k: usize, mut f: impl FnMut() -> u64) -> u64 {
    (0..k).map(|_| f()).min().unwrap_or(u64::MAX)
}

/// How many rounds of local work a recursion round's fixed cost must be
/// amortised over before recursing pays (empirically, a distributed round
/// removes only a fraction of the edges, so the collective overheads are
/// paid many times before the holding is gone).
const RECURSION_AMORTIZATION_ROUNDS: f64 = 128.0;

/// The recursion-stop threshold in **paper-scale** edges, derived from the
/// platform model instead of the paper's static 100M constant (§4.3.3).
///
/// One more recursion round costs at least an alltoallv (ghost exchange:
/// `p - 1` sequential peer messages under LogGP `o`) plus two tree
/// allreduces (`2⌈log₂ p⌉` hops) of fixed per-message cost
/// `latency + overhead`. The threshold is the edge volume the node's CPU
/// chews through in that collective time, scaled by
/// [`RECURSION_AMORTIZATION_ROUNDS`] because the fixed cost recurs every
/// round of the recursion it triggers. On the AMD cluster at 16 ranks this
/// lands at ~4×10⁷ edges — the paper's order of magnitude — and shrinks on
/// the low-latency Cray Aries fabric, where recursing is cheaper.
pub fn calibrated_recursion_threshold(platform: &NodePlatform, nranks: usize) -> u64 {
    recursion_threshold_for_round_msgs(platform, assumed_round_msgs(nranks))
}

/// The per-rank fixed-cost message count one recursion round is assumed to
/// pay: a dense alltoallv (`p − 1` peer messages) plus two tree allreduces
/// (`2⌈log₂ p⌉` hops). `repro comm-sweep`'s calibration arm validates this
/// against the *measured* per-round message count of the sparse exchange —
/// see `mnd_bench::comm_calibration`, which retired the standing
/// alltoall-sweep item by confirming the assumption is an upper bound once
/// empty buckets stop shipping.
pub fn assumed_round_msgs(nranks: usize) -> f64 {
    let p = nranks.max(2) as f64;
    (p - 1.0) + 2.0 * p.log2().ceil()
}

/// [`calibrated_recursion_threshold`] with an explicit per-round message
/// count, so the threshold can be re-derived from *measured* exchange
/// traffic (the sparse schedule ships fewer messages per round than the
/// dense assumption, lowering the break-even edge volume).
pub fn recursion_threshold_for_round_msgs(platform: &NodePlatform, round_msgs: f64) -> u64 {
    let round_seconds = round_msgs * (platform.network.latency + platform.network.overhead);
    let edges_per_second = platform.cpu.edge_throughput * platform.cpu.efficiency;
    let threshold = round_seconds * edges_per_second * RECURSION_AMORTIZATION_ROUNDS;
    (threshold.ceil() as u64).max(1)
}

/// Deterministic pseudo-random sorted sample of `k` distinct vertices.
fn sample_vertices(n: VertexId, k: usize, seed: u64) -> Vec<VertexId> {
    // Floyd's algorithm over a hash-permuted id space is overkill here;
    // reservoir-free selection: walk ids, keep those whose hash lands under
    // the acceptance threshold, top up deterministically if short.
    let mut keep = Vec::with_capacity(k);
    let threshold = (k as f64 / n as f64 * u64::MAX as f64) as u64;
    for v in 0..n {
        if splitmix64(seed ^ v as u64).wrapping_sub(1) < threshold {
            keep.push(v);
            if keep.len() == k {
                break;
            }
        }
    }
    let mut v = 0;
    while keep.len() < k && v < n {
        if keep.binary_search(&v).is_err() {
            keep.push(v);
            keep.sort_unstable();
        }
        v += 1;
    }
    keep.sort_unstable();
    keep.dedup();
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnd_graph::gen;

    #[test]
    fn sample_is_sorted_distinct_and_sized() {
        let s = sample_vertices(1000, 50, 7);
        assert_eq!(s.len(), 50);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.iter().all(|&v| v < 1000));
    }

    #[test]
    fn split_favours_gpu_on_big_graphs() {
        // At simulation scale 4096 this 200K-edge graph stands in for an
        // ~800M-edge crawl; 5% samples are then big enough that GPU
        // throughput beats its launch + transfer overheads.
        let g = CsrGraph::from_edge_list(&gen::gnm(20_000, 200_000, 3));
        let split = calibrate_split(
            &g,
            &DeviceModel::cpu_xeon_ivybridge().scaled(4096.0),
            &DeviceModel::gpu_k40().scaled(4096.0),
            5,
            0.05,
            1,
        );
        assert!(split.gpu_speedup > 1.0, "speedup {}", split.gpu_speedup);
        // Pure speed would hand the GPU ~2/3 of the edges, but an
        // ~800M-edge partition exceeds K40 memory, so the cap trims the
        // GPU share (exactly the "GPU memory requirements" clause of
        // §4.3.1) while still keeping the GPU well-used.
        assert!(split.memory_limited);
        assert!(
            split.cpu_fraction < 0.6,
            "cpu_fraction {}",
            split.cpu_fraction
        );
        assert!(split.cpu_fraction > 0.0);
    }

    #[test]
    fn split_uncapped_when_partition_fits() {
        // A 16-node run divides the same crawl: per-node partitions fit the
        // K40 and the split follows speed alone.
        let g = CsrGraph::from_edge_list(&gen::gnm(4_000, 12_000, 3));
        let split = calibrate_split(
            &g,
            &DeviceModel::cpu_xeon_ivybridge().scaled(4096.0),
            &DeviceModel::gpu_k40().scaled(4096.0),
            5,
            0.05,
            1,
        );
        assert!(!split.memory_limited);
        assert!(
            split.cpu_fraction < 0.5,
            "cpu_fraction {}",
            split.cpu_fraction
        );
    }

    #[test]
    fn split_is_deterministic() {
        let g = CsrGraph::from_edge_list(&gen::gnm(5000, 40_000, 9));
        let args = (DeviceModel::cpu_amd_opteron(), DeviceModel::gpu_k40());
        let a = calibrate_split(&g, &args.0, &args.1, 6, 0.05, 42);
        let b = calibrate_split(&g, &args.0, &args.1, 6, 0.05, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_graphs_favour_cpu() {
        // Transfer + launch overheads dominate on a 200-edge graph.
        let g = CsrGraph::from_edge_list(&gen::gnm(100, 200, 5));
        let split = calibrate_split(
            &g,
            &DeviceModel::cpu_xeon_ivybridge(),
            &DeviceModel::gpu_k40(),
            5,
            0.2,
            3,
        );
        assert!(
            split.cpu_fraction > 0.5,
            "cpu_fraction {}",
            split.cpu_fraction
        );
    }

    #[test]
    fn kernel_policy_calibration_is_well_formed() {
        let cal = calibrate_kernel_policy(7);
        for (table, has_lockfree) in [
            (&cal.table, true),
            (&cal.reduce_table, false),
            (&cal.count_table, true),
            (&cal.relabel_table, false),
        ] {
            assert_eq!(table.len(), CALIBRATION_SIZES.len());
            for (row, &rows) in table.iter().zip(&CALIBRATION_SIZES) {
                assert_eq!(row.rows, rows);
                assert!(row.seq_ns > 0);
                // Every candidate chunk below the holding was measured.
                let expect = CALIBRATION_CHUNKS.iter().filter(|&&c| c < rows).count();
                assert_eq!(row.par_ns.len(), expect);
                assert_eq!(row.lockfree_ns.is_some(), has_lockfree);
            }
        }
        // The chosen chunk is one of the candidates, and every class
        // threshold is either just below a measured size or clamped all
        // the way out (never the old "largest measured size" fallback,
        // which extrapolated a losing variant onto unmeasured holdings).
        assert!(CALIBRATION_CHUNKS.contains(&cal.policy.chunk_rows));
        for threshold in [
            cal.policy.par_threshold,
            cal.policy.reduce_par_threshold,
            cal.policy.count_par_threshold,
            cal.policy.relabel_par_threshold,
        ] {
            assert!(
                threshold == usize::MAX || CALIBRATION_SIZES.contains(&(threshold + 1)),
                "threshold {threshold}"
            );
        }
    }

    /// A synthetic crossover row: `lockfree_ns: None` unless provided.
    fn row(
        rows: usize,
        seq_ns: u64,
        par_ns: Vec<(usize, u64)>,
        lockfree_ns: Option<u64>,
    ) -> CrossoverRow {
        CrossoverRow {
            rows,
            seq_ns,
            par_ns,
            lockfree_ns,
        }
    }

    /// Satellite-1 regression: a class whose parallel variants lose at
    /// every measured size must be clamped to `usize::MAX`, not handed the
    /// old "largest measured size" threshold that still routed unmeasured
    /// giant holdings down the losing path (the 0.58× `incident_counts`
    /// row in BENCH_4).
    #[test]
    fn class_selection_clamps_when_parallel_never_wins() {
        let table = vec![
            row(4096, 100, vec![(1024, 180)], Some(150)),
            row(65536, 1000, vec![(1024, 1700)], Some(1200)),
        ];
        assert_eq!(
            class_selection(&table, 1024),
            (ParVariant::LockFree, usize::MAX)
        );
        // Same clamp for a class with no lock-free variant at all.
        let table = vec![row(4096, 100, vec![(1024, 180)], None)];
        assert_eq!(
            class_selection(&table, 1024),
            (ParVariant::LockFree, usize::MAX)
        );
    }

    /// A noise-level "win" (within 5% of sequential) at the largest size
    /// must not unclamp a class: losing variants measure in a 0.95–1.05×
    /// band on loaded hosts, and one lucky sample used to hand them a
    /// crossover — then the kernel sweep measured them below 1.0× and the
    /// bench gate failed at random.
    #[test]
    fn class_selection_ignores_noise_level_wins() {
        // Chunk-merge "wins" 990 vs 1000 at the top — a 1% hair, clamp.
        let table = vec![
            row(4096, 100, vec![(1024, 99)], None),
            row(65536, 1000, vec![(1024, 990)], None),
        ];
        assert_eq!(
            class_selection(&table, 1024),
            (ParVariant::LockFree, usize::MAX)
        );
        // A decisive 20% win at the top keeps the early crossover.
        let table = vec![
            row(4096, 100, vec![(1024, 99)], None),
            row(65536, 1000, vec![(1024, 800)], None),
        ];
        assert_eq!(
            class_selection(&table, 1024),
            (ParVariant::ChunkMerge, 4095)
        );
        // Same rule for the lock-free variant.
        let table = vec![
            row(4096, 100, vec![(1024, 150)], Some(99)),
            row(65536, 1000, vec![(1024, 1500)], Some(980)),
        ];
        assert_eq!(
            class_selection(&table, 1024),
            (ParVariant::LockFree, usize::MAX)
        );
    }

    #[test]
    fn class_selection_picks_the_winning_variant_and_crossover() {
        // Lock-free starts winning at 8192; chunk-merge never does.
        let table = vec![
            row(4096, 100, vec![(1024, 180)], Some(150)),
            row(8192, 300, vec![(1024, 400)], Some(200)),
        ];
        assert_eq!(class_selection(&table, 1024), (ParVariant::LockFree, 8191));
        // Chunk-merge wins earlier but lock-free is faster at the largest
        // size, so lock-free is chosen with *its own* crossover.
        let table = vec![
            row(4096, 100, vec![(1024, 80)], Some(150)),
            row(8192, 300, vec![(1024, 250)], Some(200)),
        ];
        assert_eq!(class_selection(&table, 1024), (ParVariant::LockFree, 8191));
        // ... and chunk-merge is kept when it stays fastest at the top.
        let table = vec![
            row(4096, 100, vec![(1024, 80)], Some(150)),
            row(8192, 300, vec![(1024, 250)], Some(280)),
        ];
        assert_eq!(
            class_selection(&table, 1024),
            (ParVariant::ChunkMerge, 4095)
        );
    }

    #[test]
    fn policy_cache_round_trips_and_rejects_partial_snapshots() {
        let p = KernelPolicy {
            par_threshold: 8191,
            reduce_par_threshold: 16383,
            count_par_threshold: usize::MAX, // the clamp must survive the cache
            relabel_par_threshold: 65536,
            election_variant: ParVariant::LockFree,
            count_variant: ParVariant::ChunkMerge,
            chunk_rows: 4096,
        };
        assert_eq!(parse_policy_cache(&render_policy_cache(&p)), Some(p));
        assert_eq!(parse_policy_cache("par_threshold=1\n"), None);
        assert_eq!(parse_policy_cache("par_threshold=banana\n"), None);
        assert_eq!(parse_policy_cache("election_variant=spinlock\n"), None);
        assert_eq!(parse_policy_cache(""), None);
        // A stale pre-lock-free four-field snapshot self-heals (re-measures).
        let stale =
            "par_threshold=1\nreduce_par_threshold=2\nrelabel_par_threshold=3\nchunk_rows=4\n";
        assert_eq!(parse_policy_cache(stale), None);
    }

    #[test]
    fn policy_cache_path_is_host_and_thread_keyed() {
        let path = kernel_policy_cache_path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        assert!(name.starts_with("mnd-kernel-policy-"), "{name}");
        assert!(name.contains("-t"), "{name}");
    }

    #[test]
    fn calibrated_threshold_tracks_network_latency() {
        let amd = calibrated_recursion_threshold(&NodePlatform::amd_cluster(), 16);
        let cray = calibrated_recursion_threshold(&NodePlatform::cray_xc40(false), 16);
        // Same order of magnitude as the paper's 100M constant on the
        // commodity cluster ...
        assert!(
            (1_000_000..1_000_000_000).contains(&amd),
            "amd threshold {amd}"
        );
        // ... and smaller on the low-latency Aries fabric (recursing is
        // cheaper there, even with the faster Xeon raising the local rate).
        assert!(cray < amd, "cray {cray} >= amd {amd}");
        // More ranks -> more collective cost -> higher break-even.
        let amd4 = calibrated_recursion_threshold(&NodePlatform::amd_cluster(), 4);
        assert!(amd4 < amd, "amd4 {amd4} >= amd16 {amd}");
        assert!(calibrated_recursion_threshold(&NodePlatform::amd_cluster(), 0) >= 1);
    }

    #[test]
    fn empty_graph_is_cpu_only() {
        let g = CsrGraph::from_edges(0, &[]);
        let split = calibrate_split(
            &g,
            &DeviceModel::cpu_xeon_ivybridge(),
            &DeviceModel::gpu_k40(),
            5,
            0.05,
            1,
        );
        assert_eq!(split, DeviceSplit::cpu_only());
    }
}
