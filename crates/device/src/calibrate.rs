//! CPU/GPU partition-ratio calibration — §4.3.1 of the paper.
//!
//! "We form a small number of different induced subgraphs (for our study,
//! we used 5-10 subgraphs), execute each subgraph on both CPU and GPU, find
//! the performance ratio, and obtain an average of the ratios … In addition
//! to performance, we also take into account the GPU memory requirements."
//!
//! The same measure-then-decide idea drives [`calibrate_kernel_policy`]:
//! the profitable seq/par crossover and chunk size of the holding-plane
//! kernels are platform-dependent, so they are timed on synthetic holdings
//! at startup (wall clock, not the simulated device models) and packaged as
//! a [`mnd_kernels::policy::KernelPolicy`] for the whole run.

use std::time::Instant;

use mnd_graph::edgelist::splitmix64;
use mnd_graph::gen;
use mnd_graph::{CsrGraph, VertexId};
use mnd_kernels::boruvka::local_boruvka;
use mnd_kernels::cgraph::CGraph;
use mnd_kernels::policy::{ExcpCond, FreezePolicy, KernelPolicy, StopPolicy};
use mnd_kernels::scan::{min_edge_scan_par, min_edge_scan_seq};

use crate::exec::ExecDevice;
use crate::model::DeviceModel;

/// The calibrated intra-node split.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceSplit {
    /// Fraction of the node's edges assigned to the CPU partition
    /// (`1 - cpu_fraction` goes to the GPU).
    pub cpu_fraction: f64,
    /// Average of the per-sample GPU:CPU speed ratios.
    pub gpu_speedup: f64,
    /// True if the GPU share was clipped by its memory capacity.
    pub memory_limited: bool,
}

impl DeviceSplit {
    /// A CPU-only split (no GPU present).
    pub fn cpu_only() -> Self {
        DeviceSplit {
            cpu_fraction: 1.0,
            gpu_speedup: 0.0,
            memory_limited: false,
        }
    }
}

/// Calibrates the CPU/GPU split for `graph` following §4.3.1: `samples`
/// induced subgraphs of `sample_frac` of the vertices each (the paper uses
/// 5–10 samples at 5%), executed on both device models; the split is the
/// average performance ratio, clipped so the GPU partition fits GPU memory.
pub fn calibrate_split(
    graph: &CsrGraph,
    cpu: &DeviceModel,
    gpu: &DeviceModel,
    samples: u32,
    sample_frac: f64,
    seed: u64,
) -> DeviceSplit {
    assert!(samples >= 1);
    assert!((0.0..=1.0).contains(&sample_frac));
    let n = graph.num_vertices();
    if n == 0 {
        return DeviceSplit::cpu_only();
    }
    let keep_count = ((n as f64 * sample_frac).ceil() as usize).clamp(1, n as usize);

    let mut ratios = Vec::with_capacity(samples as usize);
    for s in 0..samples {
        let keep = sample_vertices(n, keep_count, splitmix64(seed ^ (s as u64) << 32));
        let sub = graph.induced_subgraph(&keep);
        let el = sub.to_edge_list();
        if el.is_empty() {
            continue; // degenerate sample: no information
        }
        let mut cg = CGraph::from_edge_list(&el);
        let out = local_boruvka(
            &mut cg,
            ExcpCond::None,
            FreezePolicy::Sticky,
            StopPolicy::Exhaustive,
        );
        let skew = {
            let mut cg = CGraph::from_edge_list(&el);
            ExecDevice::holding_skew(&mut cg)
        };
        let t_cpu = cpu.kernel_time(&out.work, skew);
        // The GPU pays its transfers in real use; include them so tiny
        // graphs correctly favour the CPU.
        let bytes = el.len() as u64 * std::mem::size_of::<mnd_graph::WEdge>() as u64;
        let t_gpu = gpu.kernel_time(&out.work, skew) + gpu.transfer_time(bytes);
        if t_gpu > 0.0 && t_cpu > 0.0 {
            ratios.push(t_cpu / t_gpu);
        }
    }
    if ratios.is_empty() {
        return DeviceSplit::cpu_only();
    }
    let gpu_speedup: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;

    // Split proportional to speed: CPU keeps 1/(1+speedup).
    let mut cpu_fraction = 1.0 / (1.0 + gpu_speedup);

    // Memory constraint: the GPU partition (plus working structures, ~2x)
    // must fit device memory. Bytes are judged at simulation scale so a
    // scaled-down stand-in for a billion-edge crawl still exercises the cap.
    let total_bytes = graph.approx_bytes() as f64 * 2.0 * gpu.work_scale;
    let gpu_budget = gpu.mem_bytes as f64;
    let mut memory_limited = false;
    let gpu_share = 1.0 - cpu_fraction;
    if total_bytes * gpu_share > gpu_budget {
        cpu_fraction = 1.0 - (gpu_budget / total_bytes).min(1.0);
        memory_limited = true;
    }
    DeviceSplit {
        cpu_fraction,
        gpu_speedup,
        memory_limited,
    }
}

/// One measured row of the kernel-policy calibration: wall-clock election
/// times on a holding of `rows` edges, sequential and per candidate chunk.
#[derive(Clone, Debug)]
pub struct CrossoverRow {
    /// Holding size (edge rows).
    pub rows: usize,
    /// Best-of-k sequential election time, nanoseconds.
    pub seq_ns: u64,
    /// Best-of-k parallel election time per `(chunk_rows, ns)` candidate.
    pub par_ns: Vec<(usize, u64)>,
}

impl CrossoverRow {
    /// The fastest parallel candidate of this row, if any was measured.
    pub fn best_par(&self) -> Option<(usize, u64)> {
        self.par_ns.iter().copied().min_by_key(|&(_, ns)| ns)
    }
}

/// Output of [`calibrate_kernel_policy`]: the chosen policy plus the raw
/// measurements (the crossover table `repro` prints and BENCH snapshots
/// record).
#[derive(Clone, Debug)]
pub struct KernelCalibration {
    /// The policy the run should use.
    pub policy: KernelPolicy,
    /// One row per measured holding size, ascending.
    pub table: Vec<CrossoverRow>,
}

/// Holding sizes (edge rows) the calibration times.
pub const CALIBRATION_SIZES: [usize; 5] = [1 << 12, 1 << 13, 1 << 14, 1 << 15, 1 << 16];
/// Candidate chunk sizes (rows per parallel chunk).
pub const CALIBRATION_CHUNKS: [usize; 3] = [1024, 4096, 16384];

/// Measures the seq/par crossover of the min-edge election — the
/// holding-plane kernel every `indComp` iteration runs — on synthetic G(n,m)
/// holdings, and derives a [`KernelPolicy`]: `chunk_rows` is the candidate
/// that wins at the largest size, `par_threshold` sits just below the
/// smallest size where that candidate beats sequential. If the parallel
/// path never wins (single hardware thread, tiny machines), the policy
/// stays sequential at every measured size.
///
/// Wall-clock timing, best of 3 — noisy by nature, which is fine: the
/// determinism contract guarantees the *result* is policy-independent, so a
/// mis-calibrated policy costs only time.
pub fn calibrate_kernel_policy(seed: u64) -> KernelCalibration {
    let mut table = Vec::with_capacity(CALIBRATION_SIZES.len());
    for &rows in &CALIBRATION_SIZES {
        // Components ~ rows/4 keeps the winner tables a realistic fraction
        // of the sweep (degree ~8).
        let n = (rows / 4).max(16) as VertexId;
        let cg = CGraph::from_edge_list(&gen::gnm(n, rows as u64, splitmix64(seed ^ rows as u64)));
        let seq_ns = best_of(3, || {
            let t = Instant::now();
            std::hint::black_box(min_edge_scan_seq(&cg));
            t.elapsed().as_nanos() as u64
        });
        let par_ns = CALIBRATION_CHUNKS
            .iter()
            .filter(|&&chunk| chunk < rows)
            .map(|&chunk| {
                let ns = best_of(3, || {
                    let t = Instant::now();
                    std::hint::black_box(min_edge_scan_par(&cg, chunk));
                    t.elapsed().as_nanos() as u64
                });
                (chunk, ns)
            })
            .collect();
        table.push(CrossoverRow {
            rows,
            seq_ns,
            par_ns,
        });
    }

    // Winning chunk: fastest parallel candidate at the largest size.
    let chunk_rows = table
        .last()
        .and_then(|r| r.best_par())
        .map(|(chunk, _)| chunk)
        .unwrap_or(KernelPolicy::default().chunk_rows);
    // Crossover: smallest size where that chunk beats sequential.
    let crossover = table.iter().find(|r| {
        r.par_ns
            .iter()
            .any(|&(c, ns)| c == chunk_rows && ns < r.seq_ns)
    });
    let policy = match crossover {
        Some(row) => KernelPolicy {
            par_threshold: row.rows - 1,
            chunk_rows,
        },
        // Parallel never won: stay sequential for everything we measured,
        // let unmeasured giant holdings still try the parallel path.
        None => KernelPolicy {
            par_threshold: CALIBRATION_SIZES[CALIBRATION_SIZES.len() - 1],
            chunk_rows,
        },
    };
    KernelCalibration { policy, table }
}

/// Smallest of `k` samples of `f` (classic micro-benchmark noise floor).
fn best_of(k: usize, mut f: impl FnMut() -> u64) -> u64 {
    (0..k).map(|_| f()).min().unwrap_or(u64::MAX)
}

/// Deterministic pseudo-random sorted sample of `k` distinct vertices.
fn sample_vertices(n: VertexId, k: usize, seed: u64) -> Vec<VertexId> {
    // Floyd's algorithm over a hash-permuted id space is overkill here;
    // reservoir-free selection: walk ids, keep those whose hash lands under
    // the acceptance threshold, top up deterministically if short.
    let mut keep = Vec::with_capacity(k);
    let threshold = (k as f64 / n as f64 * u64::MAX as f64) as u64;
    for v in 0..n {
        if splitmix64(seed ^ v as u64).wrapping_sub(1) < threshold {
            keep.push(v);
            if keep.len() == k {
                break;
            }
        }
    }
    let mut v = 0;
    while keep.len() < k && v < n {
        if keep.binary_search(&v).is_err() {
            keep.push(v);
            keep.sort_unstable();
        }
        v += 1;
    }
    keep.sort_unstable();
    keep.dedup();
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnd_graph::gen;

    #[test]
    fn sample_is_sorted_distinct_and_sized() {
        let s = sample_vertices(1000, 50, 7);
        assert_eq!(s.len(), 50);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.iter().all(|&v| v < 1000));
    }

    #[test]
    fn split_favours_gpu_on_big_graphs() {
        // At simulation scale 4096 this 200K-edge graph stands in for an
        // ~800M-edge crawl; 5% samples are then big enough that GPU
        // throughput beats its launch + transfer overheads.
        let g = CsrGraph::from_edge_list(&gen::gnm(20_000, 200_000, 3));
        let split = calibrate_split(
            &g,
            &DeviceModel::cpu_xeon_ivybridge().scaled(4096.0),
            &DeviceModel::gpu_k40().scaled(4096.0),
            5,
            0.05,
            1,
        );
        assert!(split.gpu_speedup > 1.0, "speedup {}", split.gpu_speedup);
        // Pure speed would hand the GPU ~2/3 of the edges, but an
        // ~800M-edge partition exceeds K40 memory, so the cap trims the
        // GPU share (exactly the "GPU memory requirements" clause of
        // §4.3.1) while still keeping the GPU well-used.
        assert!(split.memory_limited);
        assert!(
            split.cpu_fraction < 0.6,
            "cpu_fraction {}",
            split.cpu_fraction
        );
        assert!(split.cpu_fraction > 0.0);
    }

    #[test]
    fn split_uncapped_when_partition_fits() {
        // A 16-node run divides the same crawl: per-node partitions fit the
        // K40 and the split follows speed alone.
        let g = CsrGraph::from_edge_list(&gen::gnm(4_000, 12_000, 3));
        let split = calibrate_split(
            &g,
            &DeviceModel::cpu_xeon_ivybridge().scaled(4096.0),
            &DeviceModel::gpu_k40().scaled(4096.0),
            5,
            0.05,
            1,
        );
        assert!(!split.memory_limited);
        assert!(
            split.cpu_fraction < 0.5,
            "cpu_fraction {}",
            split.cpu_fraction
        );
    }

    #[test]
    fn split_is_deterministic() {
        let g = CsrGraph::from_edge_list(&gen::gnm(5000, 40_000, 9));
        let args = (DeviceModel::cpu_amd_opteron(), DeviceModel::gpu_k40());
        let a = calibrate_split(&g, &args.0, &args.1, 6, 0.05, 42);
        let b = calibrate_split(&g, &args.0, &args.1, 6, 0.05, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_graphs_favour_cpu() {
        // Transfer + launch overheads dominate on a 200-edge graph.
        let g = CsrGraph::from_edge_list(&gen::gnm(100, 200, 5));
        let split = calibrate_split(
            &g,
            &DeviceModel::cpu_xeon_ivybridge(),
            &DeviceModel::gpu_k40(),
            5,
            0.2,
            3,
        );
        assert!(
            split.cpu_fraction > 0.5,
            "cpu_fraction {}",
            split.cpu_fraction
        );
    }

    #[test]
    fn kernel_policy_calibration_is_well_formed() {
        let cal = calibrate_kernel_policy(7);
        assert_eq!(cal.table.len(), CALIBRATION_SIZES.len());
        for (row, &rows) in cal.table.iter().zip(&CALIBRATION_SIZES) {
            assert_eq!(row.rows, rows);
            assert!(row.seq_ns > 0);
            // Every candidate chunk smaller than the holding was measured.
            let expect = CALIBRATION_CHUNKS.iter().filter(|&&c| c < rows).count();
            assert_eq!(row.par_ns.len(), expect);
        }
        // The chosen chunk is one of the candidates, and the threshold is
        // either just below a measured size or the conservative max.
        assert!(CALIBRATION_CHUNKS.contains(&cal.policy.chunk_rows));
        let max = CALIBRATION_SIZES[CALIBRATION_SIZES.len() - 1];
        assert!(
            cal.policy.par_threshold == max
                || CALIBRATION_SIZES.contains(&(cal.policy.par_threshold + 1))
        );
    }

    #[test]
    fn empty_graph_is_cpu_only() {
        let g = CsrGraph::from_edges(0, &[]);
        let split = calibrate_split(
            &g,
            &DeviceModel::cpu_xeon_ivybridge(),
            &DeviceModel::gpu_k40(),
            5,
            0.05,
            1,
        );
        assert_eq!(split, DeviceSplit::cpu_only());
    }
}
