//! CPU/GPU partition-ratio calibration — §4.3.1 of the paper.
//!
//! "We form a small number of different induced subgraphs (for our study,
//! we used 5-10 subgraphs), execute each subgraph on both CPU and GPU, find
//! the performance ratio, and obtain an average of the ratios … In addition
//! to performance, we also take into account the GPU memory requirements."

use mnd_graph::edgelist::splitmix64;
use mnd_graph::{CsrGraph, VertexId};
use mnd_kernels::boruvka::local_boruvka;
use mnd_kernels::cgraph::CGraph;
use mnd_kernels::policy::{ExcpCond, FreezePolicy, StopPolicy};

use crate::exec::ExecDevice;
use crate::model::DeviceModel;

/// The calibrated intra-node split.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceSplit {
    /// Fraction of the node's edges assigned to the CPU partition
    /// (`1 - cpu_fraction` goes to the GPU).
    pub cpu_fraction: f64,
    /// Average of the per-sample GPU:CPU speed ratios.
    pub gpu_speedup: f64,
    /// True if the GPU share was clipped by its memory capacity.
    pub memory_limited: bool,
}

impl DeviceSplit {
    /// A CPU-only split (no GPU present).
    pub fn cpu_only() -> Self {
        DeviceSplit {
            cpu_fraction: 1.0,
            gpu_speedup: 0.0,
            memory_limited: false,
        }
    }
}

/// Calibrates the CPU/GPU split for `graph` following §4.3.1: `samples`
/// induced subgraphs of `sample_frac` of the vertices each (the paper uses
/// 5–10 samples at 5%), executed on both device models; the split is the
/// average performance ratio, clipped so the GPU partition fits GPU memory.
pub fn calibrate_split(
    graph: &CsrGraph,
    cpu: &DeviceModel,
    gpu: &DeviceModel,
    samples: u32,
    sample_frac: f64,
    seed: u64,
) -> DeviceSplit {
    assert!(samples >= 1);
    assert!((0.0..=1.0).contains(&sample_frac));
    let n = graph.num_vertices();
    if n == 0 {
        return DeviceSplit::cpu_only();
    }
    let keep_count = ((n as f64 * sample_frac).ceil() as usize).clamp(1, n as usize);

    let mut ratios = Vec::with_capacity(samples as usize);
    for s in 0..samples {
        let keep = sample_vertices(n, keep_count, splitmix64(seed ^ (s as u64) << 32));
        let sub = graph.induced_subgraph(&keep);
        let el = sub.to_edge_list();
        if el.is_empty() {
            continue; // degenerate sample: no information
        }
        let mut cg = CGraph::from_edge_list(&el);
        let out = local_boruvka(
            &mut cg,
            ExcpCond::None,
            FreezePolicy::Sticky,
            StopPolicy::Exhaustive,
        );
        let skew = {
            let cg = CGraph::from_edge_list(&el);
            ExecDevice::holding_skew(&cg)
        };
        let t_cpu = cpu.kernel_time(&out.work, skew);
        // The GPU pays its transfers in real use; include them so tiny
        // graphs correctly favour the CPU.
        let bytes = el.len() as u64 * std::mem::size_of::<mnd_graph::WEdge>() as u64;
        let t_gpu = gpu.kernel_time(&out.work, skew) + gpu.transfer_time(bytes);
        if t_gpu > 0.0 && t_cpu > 0.0 {
            ratios.push(t_cpu / t_gpu);
        }
    }
    if ratios.is_empty() {
        return DeviceSplit::cpu_only();
    }
    let gpu_speedup: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;

    // Split proportional to speed: CPU keeps 1/(1+speedup).
    let mut cpu_fraction = 1.0 / (1.0 + gpu_speedup);

    // Memory constraint: the GPU partition (plus working structures, ~2x)
    // must fit device memory. Bytes are judged at simulation scale so a
    // scaled-down stand-in for a billion-edge crawl still exercises the cap.
    let total_bytes = graph.approx_bytes() as f64 * 2.0 * gpu.work_scale;
    let gpu_budget = gpu.mem_bytes as f64;
    let mut memory_limited = false;
    let gpu_share = 1.0 - cpu_fraction;
    if total_bytes * gpu_share > gpu_budget {
        cpu_fraction = 1.0 - (gpu_budget / total_bytes).min(1.0);
        memory_limited = true;
    }
    DeviceSplit {
        cpu_fraction,
        gpu_speedup,
        memory_limited,
    }
}

/// Deterministic pseudo-random sorted sample of `k` distinct vertices.
fn sample_vertices(n: VertexId, k: usize, seed: u64) -> Vec<VertexId> {
    // Floyd's algorithm over a hash-permuted id space is overkill here;
    // reservoir-free selection: walk ids, keep those whose hash lands under
    // the acceptance threshold, top up deterministically if short.
    let mut keep = Vec::with_capacity(k);
    let threshold = (k as f64 / n as f64 * u64::MAX as f64) as u64;
    for v in 0..n {
        if splitmix64(seed ^ v as u64).wrapping_sub(1) < threshold {
            keep.push(v);
            if keep.len() == k {
                break;
            }
        }
    }
    let mut v = 0;
    while keep.len() < k && v < n {
        if keep.binary_search(&v).is_err() {
            keep.push(v);
            keep.sort_unstable();
        }
        v += 1;
    }
    keep.sort_unstable();
    keep.dedup();
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnd_graph::gen;

    #[test]
    fn sample_is_sorted_distinct_and_sized() {
        let s = sample_vertices(1000, 50, 7);
        assert_eq!(s.len(), 50);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.iter().all(|&v| v < 1000));
    }

    #[test]
    fn split_favours_gpu_on_big_graphs() {
        // At simulation scale 4096 this 200K-edge graph stands in for an
        // ~800M-edge crawl; 5% samples are then big enough that GPU
        // throughput beats its launch + transfer overheads.
        let g = CsrGraph::from_edge_list(&gen::gnm(20_000, 200_000, 3));
        let split = calibrate_split(
            &g,
            &DeviceModel::cpu_xeon_ivybridge().scaled(4096.0),
            &DeviceModel::gpu_k40().scaled(4096.0),
            5,
            0.05,
            1,
        );
        assert!(split.gpu_speedup > 1.0, "speedup {}", split.gpu_speedup);
        // Pure speed would hand the GPU ~2/3 of the edges, but an
        // ~800M-edge partition exceeds K40 memory, so the cap trims the
        // GPU share (exactly the "GPU memory requirements" clause of
        // §4.3.1) while still keeping the GPU well-used.
        assert!(split.memory_limited);
        assert!(
            split.cpu_fraction < 0.6,
            "cpu_fraction {}",
            split.cpu_fraction
        );
        assert!(split.cpu_fraction > 0.0);
    }

    #[test]
    fn split_uncapped_when_partition_fits() {
        // A 16-node run divides the same crawl: per-node partitions fit the
        // K40 and the split follows speed alone.
        let g = CsrGraph::from_edge_list(&gen::gnm(4_000, 12_000, 3));
        let split = calibrate_split(
            &g,
            &DeviceModel::cpu_xeon_ivybridge().scaled(4096.0),
            &DeviceModel::gpu_k40().scaled(4096.0),
            5,
            0.05,
            1,
        );
        assert!(!split.memory_limited);
        assert!(
            split.cpu_fraction < 0.5,
            "cpu_fraction {}",
            split.cpu_fraction
        );
    }

    #[test]
    fn split_is_deterministic() {
        let g = CsrGraph::from_edge_list(&gen::gnm(5000, 40_000, 9));
        let args = (DeviceModel::cpu_amd_opteron(), DeviceModel::gpu_k40());
        let a = calibrate_split(&g, &args.0, &args.1, 6, 0.05, 42);
        let b = calibrate_split(&g, &args.0, &args.1, 6, 0.05, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_graphs_favour_cpu() {
        // Transfer + launch overheads dominate on a 200-edge graph.
        let g = CsrGraph::from_edge_list(&gen::gnm(100, 200, 5));
        let split = calibrate_split(
            &g,
            &DeviceModel::cpu_xeon_ivybridge(),
            &DeviceModel::gpu_k40(),
            5,
            0.2,
            3,
        );
        assert!(
            split.cpu_fraction > 0.5,
            "cpu_fraction {}",
            split.cpu_fraction
        );
    }

    #[test]
    fn empty_graph_is_cpu_only() {
        let g = CsrGraph::from_edges(0, &[]);
        let split = calibrate_split(
            &g,
            &DeviceModel::cpu_xeon_ivybridge(),
            &DeviceModel::gpu_k40(),
            5,
            0.05,
            1,
        );
        assert_eq!(split, DeviceSplit::cpu_only());
    }
}
