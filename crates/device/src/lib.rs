//! # mnd-device — CPU and simulated-GPU executors
//!
//! The paper runs its per-partition Boruvka kernel on two devices per node:
//! the CPU cores (Galois-style worklist, OpenMP) and an NVIDIA K40 (CUDA
//! worklist kernels with degree-binned scheduling). Neither CUDA nor a GPU
//! exists in this environment, so this crate provides the substitution
//! described in DESIGN.md:
//!
//! * the **kernel really runs** (via `mnd-kernels`), so results are exact;
//! * the **time** a device took is derived from the kernel's
//!   [`WorkProfile`](mnd_kernels::policy::WorkProfile) through a
//!   [`DeviceModel`]: per-iteration launch overhead, edge throughput,
//!   parallel efficiency, and — for the GPU — a degree-skew occupancy
//!   term (§3.5's hierarchical adjacency strategy, toggleable for the
//!   ablation) plus PCIe transfer charges;
//! * [`calibrate`] reproduces §4.3.1: sample induced subgraphs (~5% of
//!   vertices), execute on both device models, average the performance
//!   ratios, and cap the GPU share by its memory.
//!
//! Platform presets ([`platform`]) mirror the paper's two testbeds: the
//! 8-core AMD cluster node (CPU only) and the Cray XC40 node (12-core Xeon
//! + K40).

pub mod calibrate;
pub mod exec;
pub mod model;
pub mod platform;

pub use calibrate::{
    assumed_round_msgs, calibrate_kernel_policy, calibrate_kernel_policy_cached, calibrate_split,
    calibrated_recursion_threshold, recursion_threshold_for_round_msgs, variant_name, CrossoverRow,
    DeviceSplit, KernelCalibration, LOCKFREE_CHUNK,
};
pub use exec::{ExecDevice, IndCompRun};
pub use model::{DeviceKind, DeviceModel};
pub use platform::NodePlatform;
