//! Node platform presets mirroring the paper's two testbeds (§5.1).

use mnd_net::CostModel;

use crate::model::DeviceModel;

/// The devices available on one cluster node, plus the interconnect the
/// cluster built from such nodes uses.
#[derive(Clone, Debug)]
pub struct NodePlatform {
    /// Short name printed by the harness.
    pub name: &'static str,
    /// The node's CPU.
    pub cpu: DeviceModel,
    /// The node's accelerator, if any.
    pub gpu: Option<DeviceModel>,
    /// Inter-node network cost model.
    pub network: CostModel,
}

impl NodePlatform {
    /// The 16-node AMD Opteron cluster used for the Pregel+ comparison:
    /// 8 cores/node, 32 GB, no GPU, commodity interconnect.
    pub fn amd_cluster() -> Self {
        NodePlatform {
            name: "amd-cluster",
            cpu: DeviceModel::cpu_amd_opteron(),
            gpu: None,
            network: CostModel::default_cluster(),
        }
    }

    /// The Cray XC40: 12-core Xeon + K40 per node, Aries interconnect —
    /// used CPU-only for Figure 6/7 and CPU+GPU for Figure 8.
    pub fn cray_xc40(with_gpu: bool) -> Self {
        NodePlatform {
            name: if with_gpu {
                "cray-xc40-gpu"
            } else {
                "cray-xc40"
            },
            cpu: DeviceModel::cpu_xeon_ivybridge(),
            gpu: with_gpu.then(DeviceModel::gpu_k40),
            network: CostModel::cray_aries(),
        }
    }

    /// True if this node can run multi-device (CPU+GPU) executions.
    pub fn is_hybrid(&self) -> bool {
        self.gpu.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_testbeds() {
        let amd = NodePlatform::amd_cluster();
        assert!(!amd.is_hybrid());
        assert!(matches!(
            amd.cpu.kind,
            crate::model::DeviceKind::Cpu { cores: 8 }
        ));

        let cray = NodePlatform::cray_xc40(true);
        assert!(cray.is_hybrid());
        assert!(matches!(
            cray.cpu.kind,
            crate::model::DeviceKind::Cpu { cores: 12 }
        ));
        assert!(cray.network.latency < amd.network.latency);
    }

    #[test]
    fn cray_cpu_only_variant() {
        let c = NodePlatform::cray_xc40(false);
        assert!(!c.is_hybrid());
        assert_eq!(c.name, "cray-xc40");
    }
}
