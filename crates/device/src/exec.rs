//! Executing kernels "on" a device: real computation + modelled time.

use mnd_kernels::binning::BinnedSchedule;
use mnd_kernels::boruvka::{local_boruvka_with, LocalOutput};
use mnd_kernels::cgraph::CGraph;
use mnd_kernels::policy::{ExcpCond, FreezePolicy, KernelPolicy, StopPolicy};

use crate::model::DeviceModel;

/// A device bound to execution: owns a model and accumulates the simulated
/// time its kernels and transfers cost.
#[derive(Clone, Debug)]
pub struct ExecDevice {
    /// The timing model.
    pub model: DeviceModel,
    elapsed: f64,
    transfer_elapsed: f64,
}

/// Result of one `indComp` execution on a device.
#[derive(Clone, Debug)]
pub struct IndCompRun {
    /// The kernel's output (MSF edges, relabels, work profile).
    pub output: LocalOutput,
    /// Simulated kernel seconds (excludes transfers).
    pub kernel_time: f64,
    /// Simulated transfer seconds (0 for CPUs).
    pub transfer_time: f64,
}

impl ExecDevice {
    /// Wraps a model.
    pub fn new(model: DeviceModel) -> Self {
        ExecDevice {
            model,
            elapsed: 0.0,
            transfer_elapsed: 0.0,
        }
    }

    /// Total simulated kernel seconds so far.
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }

    /// Total simulated transfer seconds so far.
    pub fn transfer_elapsed(&self) -> f64 {
        self.transfer_elapsed
    }

    /// Resets the accumulators (between experiments).
    pub fn reset(&mut self) {
        self.elapsed = 0.0;
        self.transfer_elapsed = 0.0;
    }

    /// Degree-skew fraction of a holding, as the GPU scheduler would see
    /// it: the holding's incident-count column
    /// ([`CGraph::incident_counts_with`] — reusable scratch, parallel
    /// reduction above the policy crossover), binned.
    pub fn holding_skew(cg: &mut CGraph) -> f64 {
        Self::holding_skew_with(cg, &KernelPolicy::default())
    }

    /// Policy-aware [`ExecDevice::holding_skew`].
    pub fn holding_skew_with(cg: &mut CGraph, policy: &KernelPolicy) -> f64 {
        if cg.num_resident() == 0 {
            return 0.0;
        }
        let counts = cg.incident_counts_with(policy).to_vec();
        let sched = BinnedSchedule::build(counts);
        sched.skew_fraction()
    }

    /// Runs `indComp` on the holding. For GPU devices, charges the
    /// host-to-device upload of the holding before the kernel and the
    /// (much smaller) result download after it, with half the upload
    /// overlapped with execution — the paper's cudaStream overlap (§3.5).
    pub fn run_ind_comp(
        &mut self,
        cg: &mut CGraph,
        excp: ExcpCond,
        freeze: FreezePolicy,
        stop: StopPolicy,
    ) -> IndCompRun {
        self.run_ind_comp_with(cg, &KernelPolicy::default(), excp, freeze, stop)
    }

    /// As [`ExecDevice::run_ind_comp`], under an explicit (typically
    /// calibrated) [`KernelPolicy`] governing the election sweep and the
    /// holding reductions. Results are identical for every policy; only
    /// wall-clock changes.
    pub fn run_ind_comp_with(
        &mut self,
        cg: &mut CGraph,
        policy: &KernelPolicy,
        excp: ExcpCond,
        freeze: FreezePolicy,
        stop: StopPolicy,
    ) -> IndCompRun {
        let skew = Self::holding_skew_with(cg, policy);
        let upload_bytes = cg.approx_bytes() as u64;
        let output = local_boruvka_with(cg, policy, excp, freeze, stop);
        let kernel_time = self.model.kernel_time(&output.work, skew);
        let download_bytes =
            (output.msf_edges.len() * std::mem::size_of::<mnd_graph::WEdge>()) as u64;
        let raw_transfer =
            self.model.transfer_time(upload_bytes) + self.model.transfer_time(download_bytes);
        // cudaStream-style overlap hides up to half the transfer behind the
        // kernel, but never more than the kernel itself runs.
        let hidden = (raw_transfer * 0.5).min(kernel_time);
        let transfer_time = raw_transfer - hidden;
        self.elapsed += kernel_time;
        self.transfer_elapsed += transfer_time;
        IndCompRun {
            output,
            kernel_time,
            transfer_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DeviceModel;
    use mnd_graph::gen;

    fn holding(seed: u64) -> CGraph {
        CGraph::from_edge_list(&gen::gnm(500, 2000, seed))
    }

    #[test]
    fn cpu_and_gpu_produce_identical_results() {
        let mut cg_cpu = holding(1);
        let mut cg_gpu = holding(1);
        let mut cpu = ExecDevice::new(DeviceModel::cpu_xeon_ivybridge());
        let mut gpu = ExecDevice::new(DeviceModel::gpu_k40());
        let a = cpu.run_ind_comp(
            &mut cg_cpu,
            ExcpCond::None,
            FreezePolicy::Sticky,
            StopPolicy::Exhaustive,
        );
        let b = gpu.run_ind_comp(
            &mut cg_gpu,
            ExcpCond::None,
            FreezePolicy::Sticky,
            StopPolicy::Exhaustive,
        );
        assert_eq!(
            a.output.msf_edges, b.output.msf_edges,
            "results must not depend on the device"
        );
        assert_eq!(cg_cpu, cg_gpu);
    }

    #[test]
    fn gpu_charges_transfers_cpu_does_not() {
        let mut cg = holding(2);
        let mut gpu = ExecDevice::new(DeviceModel::gpu_k40());
        let run = gpu.run_ind_comp(
            &mut cg,
            ExcpCond::None,
            FreezePolicy::Sticky,
            StopPolicy::Exhaustive,
        );
        assert!(run.transfer_time > 0.0);
        let mut cg = holding(2);
        let mut cpu = ExecDevice::new(DeviceModel::cpu_xeon_ivybridge());
        let run = cpu.run_ind_comp(
            &mut cg,
            ExcpCond::None,
            FreezePolicy::Sticky,
            StopPolicy::Exhaustive,
        );
        assert_eq!(run.transfer_time, 0.0);
    }

    #[test]
    fn elapsed_accumulates() {
        let mut dev = ExecDevice::new(DeviceModel::cpu_amd_opteron());
        let mut cg = holding(3);
        dev.run_ind_comp(
            &mut cg,
            ExcpCond::None,
            FreezePolicy::Sticky,
            StopPolicy::Exhaustive,
        );
        let after_one = dev.elapsed();
        assert!(after_one > 0.0);
        let mut cg = holding(4);
        dev.run_ind_comp(
            &mut cg,
            ExcpCond::None,
            FreezePolicy::Sticky,
            StopPolicy::Exhaustive,
        );
        assert!(dev.elapsed() > after_one);
        dev.reset();
        assert_eq!(dev.elapsed(), 0.0);
    }

    #[test]
    fn skew_of_star_holding_is_high() {
        let mut cg = CGraph::from_edge_list(&gen::star(2000, 5));
        assert!(ExecDevice::holding_skew(&mut cg) > 0.4);
        let mut road = CGraph::from_edge_list(&gen::road_grid(20, 20, 0.02, 0.3, 5));
        assert!(ExecDevice::holding_skew(&mut road) < 0.05);
    }

    #[test]
    fn empty_holding_runs_without_cost_blowup() {
        let mut cg = CGraph::new();
        let mut dev = ExecDevice::new(DeviceModel::gpu_k40());
        let run = dev.run_ind_comp(
            &mut cg,
            ExcpCond::None,
            FreezePolicy::Sticky,
            StopPolicy::Exhaustive,
        );
        assert!(run.output.msf_edges.is_empty());
        assert!(run.kernel_time < 1e-3);
    }
}
