//! The engine contract shared by every MSF engine in the workspace.
//!
//! Three engines compute minimum spanning forests over the simulated
//! cluster — the paper's D&C driver (`mnd-mst`), the Pregel+-style BSP
//! baseline (`mnd-pregel`), and the min-plus sparse-matrix engine
//! (`mnd-spmsf`). This crate is the piece they share:
//!
//! * [`Engine`]: the run contract — take an `EdgeList`, run on the
//!   simulated cluster (optionally armed with an [`EngineChaos`]), return
//!   an [`EngineReport`] with the forest, simulated times, per-rank
//!   traffic, and recovery counters. Benches iterate a registry of
//!   `Box<dyn Engine>` instead of hardcoding per-engine arms.
//! * [`EngineChaos`]: the bundle of hooks a chaos-armed run needs — the
//!   fabric-level [`mnd_net::FaultInjector`], the phase-level
//!   [`mnd_hypar::ChaosControl`] schedule, and an observer for
//!   [`ChaosEvent`]s. One seeded `FaultPlan` from `mnd-chaos` implements
//!   both fault traits, so [`EngineChaos::from_plan`] arms a whole run
//!   from a single plan — identically for every engine.
//! * [`run_recoverable`] + [`Recovery`]: the checkpoint/rollback recovery
//!   driver (DESIGN.md §5f/§6). This used to exist twice — as `rank_main`'s
//!   re-execution loop in `mnd-mst` and as `run_recoverable` in
//!   `mnd-pregel` — with near-identical boundary protocols; it is hoisted
//!   here once. Engines expose their mutable state through [`Recoverable`]
//!   and call [`Recovery::boundary`] (or [`Recovery::step`]) at their
//!   recovery points; everything else — stalls, checkpoint cost,
//!   replay-log epochs, mid-phase crash arming, fast-forward resume — is
//!   the driver's business.
//!
//! The invariant carried over from the per-engine copies: *recovery never
//! perturbs the logical fabric accounting*. Suppressed re-sends and
//! replayed receives are tracked separately (`RankStats::replayed_*`), so
//! a recovered run's `bytes_sent`/`messages_sent`/`bytes_received`/
//! `messages_received` byte-match the fault-free run.

use std::cell::RefCell;
use std::collections::BTreeSet;

use mnd_graph::EdgeList;
use mnd_hypar::{ChaosEvent, ChaosEventKind, ChaosHook, ObserverHook};
use mnd_kernels::msf::MsfResult;
use mnd_net::{Comm, InjectorHook, MidPhaseCrash, RankStats, Wire};

/// Everything that arms a run against the chaos plane. The empty value
/// ([`EngineChaos::none`]) is a fault-free run with zero overhead: no
/// checkpoints are written, no replay log is kept, and the simulated
/// numbers are byte-identical to a build without this crate.
#[derive(Clone, Debug, Default)]
pub struct EngineChaos {
    /// Fabric-level fault injector (drops/delays/duplicates/reorders),
    /// handed to the cluster.
    pub faults: InjectorHook,
    /// Phase-level schedule (stalls, crashes, mid-phase crashes),
    /// consulted at recovery boundaries.
    pub control: ChaosHook,
    /// Sink for [`ChaosEvent`]s on the recovery path.
    pub observer: ObserverHook,
}

impl EngineChaos {
    /// The unarmed (fault-free) value.
    pub fn none() -> Self {
        EngineChaos::default()
    }

    /// Arms both fault layers from one seeded plan — typically an
    /// `Arc<mnd_chaos::FaultPlan>`, which implements both traits, so every
    /// engine armed with the same plan sees the same fault schedule.
    pub fn from_plan<P>(plan: std::sync::Arc<P>) -> Self
    where
        P: mnd_net::FaultInjector + mnd_hypar::ChaosControl + 'static,
    {
        EngineChaos {
            faults: InjectorHook::new(plan.clone()),
            control: ChaosHook::new(plan),
            observer: ObserverHook::none(),
        }
    }

    /// Attaches an observer for chaos events.
    pub fn with_observer(mut self, observer: ObserverHook) -> Self {
        self.observer = observer;
        self
    }

    /// Whether a phase-level schedule is armed (the recovery machinery is
    /// skipped entirely when not).
    pub fn is_armed(&self) -> bool {
        self.control.is_set()
    }
}

/// What every engine reports back from a run: the forest, the simulated
/// cost, and the recovery bill.
#[derive(Clone, Debug)]
pub struct EngineReport {
    /// The global minimum spanning forest (unique under the workspace's
    /// `(w, u, v)` edge order, so engines are comparable edge-for-edge).
    pub msf: MsfResult,
    /// Simulated makespan (max final virtual clock over ranks).
    pub total_time: f64,
    /// Max communication time across ranks.
    pub comm_time: f64,
    /// Per-rank raw statistics (traffic, checkpoint writes/restores,
    /// replayed compute/bytes — see [`RankStats`]).
    pub rank_stats: Vec<RankStats>,
    /// Engine-specific count of re-executed work units after injected
    /// crashes (D&C: checkpoint restores; BSP: recovered supersteps;
    /// spmsf: recovered steps). 0 on fault-free runs.
    pub recovered_units: u64,
}

impl EngineReport {
    /// Sum of a per-rank counter over all ranks.
    pub fn sum_stat(&self, f: impl Fn(&RankStats) -> u64) -> u64 {
        self.rank_stats.iter().map(f).sum()
    }
}

/// An MSF engine runnable on the simulated cluster. Implementations carry
/// their own configuration (rank count, platform, algorithm knobs); the
/// trait is the part benches and agreement tests interact with.
pub trait Engine {
    /// Short stable name for tables and traces (e.g. `"mnd-mst"`).
    fn name(&self) -> &'static str;

    /// One-line human description for `repro engines` and the serving
    /// plane's catalogue. Keep it to what distinguishes the execution
    /// model, not marketing.
    fn description(&self) -> &'static str {
        ""
    }

    /// Runs the engine with the chaos plane armed. With
    /// [`EngineChaos::none`] this must be exactly the fault-free run.
    fn run_chaos(&self, el: &EdgeList, chaos: &EngineChaos) -> EngineReport;

    /// Fault-free run.
    fn run(&self, el: &EdgeList) -> EngineReport {
        self.run_chaos(el, &EngineChaos::none())
    }
}

/// A long-lived serving handle around an [`Engine`]: the same run
/// contract, plus cumulative utilisation accounting — how many jobs this
/// backend has served and how many simulated seconds it has been busy.
/// `mnd-serve` schedules `Service` values (one per granted rank-set size)
/// instead of raw engines so multi-tenant reports can show backend
/// utilisation next to per-tenant latency.
pub struct Service {
    engine: Box<dyn Engine>,
    runs: std::cell::Cell<u64>,
    busy: std::cell::Cell<f64>,
}

impl Service {
    /// Wraps an engine into a serving handle with zeroed counters.
    pub fn new(engine: Box<dyn Engine>) -> Self {
        Service {
            engine,
            runs: std::cell::Cell::new(0),
            busy: std::cell::Cell::new(0.0),
        }
    }

    /// The wrapped engine's stable name.
    pub fn name(&self) -> &'static str {
        self.engine.name()
    }

    /// The wrapped engine's one-line description.
    pub fn description(&self) -> &'static str {
        self.engine.description()
    }

    /// Fault-free run, booked into the utilisation counters.
    pub fn run(&self, el: &EdgeList) -> EngineReport {
        let r = self.engine.run(el);
        self.runs.set(self.runs.get() + 1);
        self.busy.set(self.busy.get() + r.total_time);
        r
    }

    /// Chaos-armed run, booked into the utilisation counters.
    pub fn run_chaos(&self, el: &EdgeList, chaos: &EngineChaos) -> EngineReport {
        let r = self.engine.run_chaos(el, chaos);
        self.runs.set(self.runs.get() + 1);
        self.busy.set(self.busy.get() + r.total_time);
        r
    }

    /// Jobs served so far.
    pub fn runs(&self) -> u64 {
        self.runs.get()
    }

    /// Cumulative simulated seconds the backend spent executing jobs.
    pub fn busy_seconds(&self) -> f64 {
        self.busy.get()
    }
}

/// Virtual seconds to write a checkpoint of `bytes` wire bytes: a fixed
/// metadata sync plus streaming the state to node-local storage at 2 GB/s
/// (paper-scale bytes). One storage model for every engine, so they pay
/// identical recovery costs.
pub fn checkpoint_seconds(bytes: u64, sim_scale: f64) -> f64 {
    1e-4 + bytes as f64 * sim_scale / 2e9
}

/// Virtual seconds a crashed rank spends restarting: a one-second process
/// respawn penalty plus re-reading its checkpoint.
pub fn restart_seconds(bytes: u64, sim_scale: f64) -> f64 {
    1.0 + checkpoint_seconds(bytes, sim_scale)
}

/// State an engine can checkpoint at a recovery boundary. `capture` clones
/// the recoverable state into its wire form; `restore` swaps a committed
/// checkpoint back in. Engines whose state struct *is* the checkpoint
/// (BSP, spmsf) implement this with `State = Self`; the D&C driver
/// captures a `RankCheckpoint` out of its richer context.
pub trait Recoverable {
    /// The checkpoint payload; its [`Wire`] size is what the storage model
    /// charges per write.
    type State: Clone + Wire;
    /// Snapshots the recoverable state.
    fn capture(&self) -> Self::State;
    /// Rebuilds the recoverable state from a checkpoint.
    fn restore(&mut self, snapshot: Self::State);
    /// The hierarchy level chaos events should be stamped with (the D&C
    /// driver reports its merge level; flat engines leave the default 0).
    fn chaos_level(&self) -> u32 {
        0
    }
}

/// Per-execution recovery state a chaos-armed engine threads through its
/// run. Created by [`run_recoverable`]; the engine body only calls
/// [`Recovery::boundary`] (progress-gated, BSP-style) or
/// [`Recovery::step`] (every call is a boundary candidate, D&C-style).
pub struct Recovery<'a, S> {
    comm: &'a Comm,
    control: &'a ChaosHook,
    observer: &'a ObserverHook,
    interval: u64,
    sim_scale: f64,
    /// Boundary ordinal (advances at every *taken* boundary, identically
    /// on every rank — recovery points sit at lockstep points).
    boundary: u32,
    /// Progress count at the last taken boundary.
    last_ckpt: u64,
    /// Calls to [`Recovery::step`] so far (its progress counter).
    steps: u64,
    /// Level reported at the last taken boundary — stamps the
    /// mid-phase-crash event raised between boundaries.
    level: u32,
    /// Boundary whose checkpoint this re-execution resumes from.
    resume_boundary: Option<u32>,
    /// Last committed checkpoint `(boundary, state)` — owned by
    /// [`run_recoverable`] so it survives the crash unwind.
    checkpoint: &'a RefCell<Option<(u32, S)>>,
    /// Mid-phase crash points that already fired (never re-armed).
    fired: &'a RefCell<BTreeSet<(u32, u64)>>,
}

impl<S: Clone + Wire> Recovery<'_, S> {
    /// A recovery point. No-op unless a chaos schedule is armed and
    /// `progress` has advanced past the checkpoint interval; engines call
    /// it unconditionally at their loop heads with a monotone progress
    /// counter (the BSP engines pass their superstep count).
    ///
    /// With the boundary taken the rank, in order: serves any scheduled
    /// stall, captures a checkpoint (charged at the shared storage rate),
    /// commits it — garbage-collecting the send-side replay log, advancing
    /// the epoch, and retiring the whole log once past the plan's replay
    /// horizon — arms the next scheduled mid-phase crash, and, if the
    /// schedule crashes it *at* this boundary, pays the restart penalty
    /// and restores the checkpoint it just wrote.
    ///
    /// During post-crash fast-forward the boundary is only traversed; at
    /// the resume boundary the stored checkpoint is swapped into the
    /// target and the rank switches to live replay of the interrupted
    /// epoch.
    pub fn boundary<T: Recoverable<State = S>>(&mut self, target: &mut T, progress: u64) {
        if !self.control.is_set() || progress.saturating_sub(self.last_ckpt) < self.interval {
            return;
        }
        self.last_ckpt = progress;
        self.level = target.chaos_level();
        let b = self.boundary;
        self.boundary += 1;
        let rank = self.comm.rank();

        if self.comm.fast_forward() {
            self.comm.advance_epoch();
            if Some(b) == self.resume_boundary {
                let (cb, snap) = self
                    .checkpoint
                    .borrow()
                    .clone()
                    .expect("resume boundary must have a committed checkpoint");
                debug_assert_eq!(cb, b, "stale checkpoint in the slot");
                let bytes = snap.wire_bytes();
                target.restore(snap);
                self.comm.set_fast_forward(false);
                self.comm.set_replay_live(true);
                self.comm.note_checkpoint_restore();
                self.emit(ChaosEventKind::CheckpointRestore, b, bytes);
                self.arm_crash_for_current_epoch();
            }
            return;
        }
        // Replay normally goes live inside send/recv when it catches up
        // with the crash point; an epoch tail without fabric ops ends
        // here at the latest.
        self.comm.set_replay_live(false);

        let stall = self.control.stall_seconds(rank, b);
        if stall > 0.0 {
            self.comm.stall(stall);
            self.emit(ChaosEventKind::Stall, b, (stall * 1e6) as u64);
        }

        let snap = target.capture();
        let bytes = snap.wire_bytes();
        self.comm.compute(checkpoint_seconds(bytes, self.sim_scale));
        self.comm.note_checkpoint_write(bytes);
        self.emit(ChaosEventKind::CheckpointWrite, b, bytes);
        *self.checkpoint.borrow_mut() = Some((b, snap));
        // Commit: rollback can never re-enter epochs at or before this
        // boundary.
        self.comm.gc_replay_sends(self.comm.epoch());
        self.comm.advance_epoch();
        // Past the plan's replay horizon no mid-phase crash can fire on
        // this rank again: retire the log (replay-log GC).
        if let Some(h) = self.control.replay_horizon(rank) {
            if self.comm.epoch() >= h {
                self.comm.retire_replay_log();
            }
        }
        self.arm_crash_for_current_epoch();

        if self.control.crashes_at(rank, b) {
            self.emit(ChaosEventKind::Crash, b, 0);
            // The crash wipes the rank's in-memory state; the restart pays
            // respawn + checkpoint re-read, then the state comes back from
            // stable storage (the slot keeps its copy: a later mid-phase
            // crash may need it again).
            self.comm.stall(restart_seconds(bytes, self.sim_scale));
            let (_, snap) = self
                .checkpoint
                .borrow()
                .clone()
                .expect("checkpoint written above");
            target.restore(snap);
            self.comm.note_checkpoint_restore();
            self.emit(ChaosEventKind::CheckpointRestore, b, bytes);
        }
    }

    /// A recovery point with an internal progress counter: the Nth call is
    /// progress N, so with the default interval of 1 every call is a taken
    /// boundary — the D&C driver's phase-boundary cadence.
    pub fn step<T: Recoverable<State = S>>(&mut self, target: &mut T) {
        self.steps += 1;
        let p = self.steps;
        self.boundary(target, p);
    }

    /// Arms the plan's mid-phase crash for the epoch the rank is in,
    /// unless that crash already fired (a fired crash must not loop).
    fn arm_crash_for_current_epoch(&self) {
        if self.comm.fast_forward() {
            return;
        }
        let epoch = self.comm.epoch();
        if let Some(op) = self.control.mid_phase_crash(self.comm.rank(), epoch) {
            if !self.fired.borrow().contains(&(epoch, op)) {
                self.comm.arm_mid_phase_crash(op);
            }
        }
    }

    /// Emits a chaos event to the configured observer (suppressed during
    /// fast-forward: those boundaries' events were reported before the
    /// crash).
    fn emit(&self, kind: ChaosEventKind, boundary: u32, detail: u64) {
        if self.comm.fast_forward() {
            return;
        }
        self.observer.emit_chaos(&ChaosEvent {
            rank: self.comm.rank() as u32,
            kind,
            level: self.level,
            boundary,
            time: self.comm.now(),
            detail,
        });
    }
}

/// Runs an engine body under the rollback-recovery loop. `body` must be a
/// deterministic from-the-top execution of the whole per-rank program
/// (state initialisation included) that calls [`Recovery::boundary`] or
/// [`Recovery::step`] at its recovery points; a [`MidPhaseCrash`] raised
/// by the fabric unwinds it, and the loop re-runs it with the recovery
/// mode flags set: already-charged epochs fast-forward at zero cost
/// against the replay log, the checkpoint written before the interrupted
/// epoch is swapped in at the resume boundary, and the interrupted epoch
/// replays live (its inbound messages served from the log for free, its
/// compute charged as real recovery work). Unarmed, the body runs exactly
/// once with every boundary a no-op.
pub fn run_recoverable<S, R>(
    comm: &Comm,
    control: &ChaosHook,
    observer: &ObserverHook,
    interval: u64,
    sim_scale: f64,
    body: impl Fn(&mut Recovery<'_, S>) -> R,
) -> R
where
    S: Clone + Wire,
{
    if control.is_set() {
        mnd_net::install_quiet_crash_hook();
        // A horizon of 0 means the plan never crashes this rank mid-phase:
        // no rollback can ever read the log, so don't build one.
        if control.replay_horizon(comm.rank()) != Some(0) {
            comm.enable_replay_log();
        }
    }
    let checkpoint: RefCell<Option<(u32, S)>> = RefCell::new(None);
    let fired: RefCell<BTreeSet<(u32, u64)>> = RefCell::new(BTreeSet::new());
    // `None` = first execution; `Some(rb)` = re-execution resuming from
    // checkpoint boundary `rb` (`Some(None)` = crash in epoch 0, no
    // checkpoint exists: replay the whole prefix live from scratch).
    let mut resume: Option<Option<u32>> = None;
    loop {
        let mut rp = Recovery {
            comm,
            control,
            observer,
            interval: interval.max(1),
            sim_scale,
            boundary: 0,
            last_ckpt: 0,
            steps: 0,
            level: 0,
            resume_boundary: resume.flatten(),
            checkpoint: &checkpoint,
            fired: &fired,
        };
        if let Some(rb) = resume {
            match rb {
                Some(_) => comm.set_fast_forward(true),
                None => comm.set_replay_live(true),
            }
        }
        rp.arm_crash_for_current_epoch();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rp)));
        match result {
            Ok(r) => {
                comm.clear_replay_log();
                return r;
            }
            Err(payload) => match payload.downcast::<MidPhaseCrash>() {
                Ok(crash) => {
                    let crash = *crash;
                    fired.borrow_mut().insert((crash.epoch, crash.op));
                    comm.set_fast_forward(false);
                    comm.set_replay_live(false);
                    rp.emit(ChaosEventKind::MidPhaseCrash, crash.epoch, crash.op);
                    // The restart pays respawn + re-reading whatever
                    // checkpoint exists; replayed bytes are free but
                    // re-executed compute is charged as it re-runs.
                    let ckpt_bytes = checkpoint
                        .borrow()
                        .as_ref()
                        .map_or(0, |(_, s)| s.wire_bytes());
                    comm.stall(restart_seconds(ckpt_bytes, sim_scale));
                    comm.reset_sequences();
                    resume = Some(if crash.epoch == 0 {
                        None
                    } else {
                        Some(crash.epoch - 1)
                    });
                }
                Err(other) => std::panic::resume_unwind(other),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnd_net::{Cluster, CostModel};

    #[derive(Clone)]
    struct Counter(Vec<u64>);

    impl Wire for Counter {
        fn wire_bytes(&self) -> u64 {
            self.0.wire_bytes()
        }
    }

    impl Recoverable for Counter {
        type State = Counter;
        fn capture(&self) -> Counter {
            self.clone()
        }
        fn restore(&mut self, s: Counter) {
            *self = s;
        }
    }

    /// Unarmed, boundaries are no-ops and the body runs exactly once.
    #[test]
    fn unarmed_runs_once_with_noop_boundaries() {
        let out = Cluster::new(2, CostModel::free()).run(|c| {
            run_recoverable(c, &ChaosHook::none(), &ObserverHook::none(), 1, 1.0, |rp| {
                let mut st = Counter(vec![0]);
                for _ in 0..5 {
                    rp.step(&mut st);
                    st.0[0] += 1;
                }
                st.0[0]
            })
        });
        for o in &out {
            assert_eq!(o.result, 5);
            assert_eq!(o.stats.checkpoint_writes, 0);
            assert_eq!(o.stats.checkpoint_restores, 0);
        }
    }

    #[test]
    fn shared_cost_model_is_the_historic_one() {
        assert_eq!(checkpoint_seconds(0, 1.0), 1e-4);
        assert_eq!(checkpoint_seconds(2_000_000_000, 1.0), 1.0001);
        assert_eq!(restart_seconds(0, 1.0), 1.0001);
    }
}
