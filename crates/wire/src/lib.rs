//! Typed wire format for the simulated network.
//!
//! Every payload that crosses `Comm::send` implements [`Wire`]: the trait
//! both *marks* the type as a legal message and *derives* the byte size
//! the LogGP cost model charges for it. Before this trait existed, byte
//! sizes were caller-supplied and could silently drift from the real
//! payload (e.g. a broadcast charging `size_of::<Vec<T>>()` for a vector's
//! contents); now the size is computed from the data itself at the single
//! point where the message enters the fabric.
//!
//! Sizing convention: a value's wire size is the size of its *serialized*
//! form on an MPI-like fabric — fixed-size scalars count
//! `size_of::<T>()`, vectors count the sum of their elements (headers and
//! allocator padding are modelled by the LogGP per-message overhead `o`,
//! not per-payload bytes), tuples/structs count the packed sum of their
//! fields. This crate is a dependency leaf so that downstream crates
//! (`mnd-graph`, `mnd-kernels`, `mnd-core`, ...) can implement `Wire` for
//! their own message types without orphan-rule friction.

pub mod pack;

pub use pack::{PackedIds, PackedPairs};

/// A type that can travel across the simulated fabric.
///
/// Implementors report the number of bytes their serialized form occupies;
/// `Comm::send` charges exactly this many bytes to the cost model and to
/// `RankStats`. The `Send + 'static` supertraits make every `Wire` type a
/// legal `Box<dyn Any + Send>` payload.
pub trait Wire: Send + 'static {
    /// Serialized size of this value in bytes under the cost model.
    fn wire_bytes(&self) -> u64;
}

macro_rules! scalar_wire {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            #[inline]
            fn wire_bytes(&self) -> u64 {
                std::mem::size_of::<$t>() as u64
            }
        }
    )*};
}
scalar_wire!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char);

impl Wire for () {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        0
    }
}

/// Vectors serialize as the concatenation of their elements; the length
/// prefix is covered by the per-message overhead of the cost model.
impl<T: Wire> Wire for Vec<T> {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        self.iter().map(Wire::wire_bytes).sum()
    }
}

impl<T: Wire, const N: usize> Wire for [T; N] {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        self.iter().map(Wire::wire_bytes).sum()
    }
}

/// Options serialize as a one-byte presence tag plus the payload.
impl<T: Wire> Wire for Option<T> {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        1 + self.as_ref().map_or(0, Wire::wire_bytes)
    }
}

macro_rules! tuple_wire {
    ($($name:ident),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            #[inline]
            #[allow(non_snake_case)]
            fn wire_bytes(&self) -> u64 {
                let ($($name,)+) = self;
                0 $(+ $name.wire_bytes())+
            }
        }
    };
}
tuple_wire!(A);
tuple_wire!(A, B);
tuple_wire!(A, B, C);
tuple_wire!(A, B, C, D);
tuple_wire!(A, B, C, D, E);
tuple_wire!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_count_their_size() {
        assert_eq!(7u8.wire_bytes(), 1);
        assert_eq!(7u32.wire_bytes(), 4);
        assert_eq!(7u64.wire_bytes(), 8);
        assert_eq!(1.5f64.wire_bytes(), 8);
        assert_eq!(().wire_bytes(), 0);
    }

    #[test]
    fn vec_counts_elements_not_header() {
        assert_eq!(vec![7u32; 250].wire_bytes(), 1000);
        assert_eq!(Vec::<u64>::new().wire_bytes(), 0);
        // Nested: 3 inner vecs of 2 u16 each.
        assert_eq!(vec![vec![1u16, 2]; 3].wire_bytes(), 12);
    }

    #[test]
    fn tuples_pack_without_padding() {
        // (u32, u64) has size 16 in memory (alignment padding) but 12 on
        // the wire — the drift the Wire trait exists to eliminate.
        assert_eq!((1u32, 2u64).wire_bytes(), 12);
        assert_eq!((1u32, 2u32, 3u32).wire_bytes(), 12);
    }

    #[test]
    fn option_is_tag_plus_payload() {
        assert_eq!(None::<u64>.wire_bytes(), 1);
        assert_eq!(Some(5u64).wire_bytes(), 9);
    }
}
