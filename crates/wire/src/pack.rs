//! Compressed relabeling payloads (ROADMAP item 4; Sanders & Schimek,
//! arXiv:2302.12199 §"compressed vertex relabeling").
//!
//! The boundary exchanges of the phase drivers ship component ids — either
//! bare ids (the ghost-information exchange) or `(old, new)` rename pairs
//! (the ghost-parent exchange). Raw, each id costs 4 bytes. These wrappers
//! model the obvious on-the-wire compressions a real implementation would
//! apply:
//!
//! * [`PackedIds`] — a **sorted** id sequence is delta-encoded and each
//!   gap shipped as a LEB128 varint (boundary buckets are sorted and
//!   deduplicated, so gaps are small where the partition has locality).
//! * [`PackedPairs`] — rename pairs are **densified**: the distinct ids of
//!   the message form a sorted dictionary (itself delta-varint encoded),
//!   and every pair ships as two dictionary indexes of minimal byte width
//!   (1/2/4 bytes for ≤2⁸/2¹⁶/2³² distinct ids). The receiver inverts
//!   through the dictionary. Late Boruvka rounds reference few surviving
//!   components, so the index width collapses to one byte exactly when
//!   the dense path would still ship 4-byte ids.
//!
//! Both encoders are **honest but never pessimal**: they compute the real
//! serialized size of the compressed form and fall back to the raw layout
//! (plus the 1-byte format flag) whenever compression would lose, so
//! `wire_bytes` is `min(raw, packed) + 1`. The simulation keeps payloads
//! in memory — only the charged byte size reflects the encoding — so
//! decode is a move, and a round-trip is exact by construction (asserted
//! by the tests against a reference encoder).

use crate::Wire;

/// Serialized size of `v` as a LEB128 varint (7 bits per byte).
#[inline]
pub fn varint_bytes(v: u32) -> u64 {
    match v {
        0..=0x7f => 1,
        0x80..=0x3fff => 2,
        0x4000..=0x1f_ffff => 3,
        0x20_0000..=0xfff_ffff => 4,
        _ => 5,
    }
}

/// Delta-varint cost of a sorted ascending slice (first id absolute).
/// Returns `None` if the slice is not ascending (raw fallback applies).
fn delta_cost(ids: &[u32]) -> Option<u64> {
    let mut total = 0u64;
    let mut prev = 0u32;
    for (i, &id) in ids.iter().enumerate() {
        if i > 0 && id < prev {
            return None;
        }
        total += varint_bytes(if i == 0 { id } else { id - prev });
        prev = id;
    }
    Some(total)
}

/// Dictionary-index byte width for `k` distinct ids.
#[inline]
fn index_width(k: usize) -> u64 {
    if k <= 1 << 8 {
        1
    } else if k <= 1 << 16 {
        2
    } else {
        4
    }
}

/// A sequence of component ids, delta-varint compressed when sorted.
///
/// Wire layout (modelled, not materialized): 1 flag byte, then either the
/// raw 4-byte ids or `varint(len)` + delta varints.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackedIds {
    ids: Vec<u32>,
    wire: u64,
}

impl PackedIds {
    /// Encodes a bucket of ids (typically sorted + deduplicated boundary
    /// vertices). Unsorted input is legal and charged at the raw rate.
    pub fn encode(ids: Vec<u32>) -> Self {
        let raw = 4 * ids.len() as u64;
        let packed = delta_cost(&ids).map(|d| varint_bytes(ids.len() as u32) + d);
        let wire = 1 + packed.map_or(raw, |p| p.min(raw));
        PackedIds { ids, wire }
    }

    /// Inverts the encoding (a move — the simulation keeps the data).
    pub fn into_ids(self) -> Vec<u32> {
        self.ids
    }

    /// The ids without consuming the message.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }
}

impl Wire for PackedIds {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        self.wire
    }
}

/// A bucket of `(old, new)` rename pairs, dictionary-densified.
///
/// Wire layout (modelled): 1 flag byte, then either raw 8-byte pairs or
/// `varint(k)` + delta-varint dictionary of the k distinct ids +
/// `2 · len · width(k)` index bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackedPairs {
    pairs: Vec<(u32, u32)>,
    wire: u64,
}

impl PackedPairs {
    /// Encodes a bucket of rename pairs.
    pub fn encode(pairs: Vec<(u32, u32)>) -> Self {
        let raw = 8 * pairs.len() as u64;
        let wire = if pairs.is_empty() {
            1
        } else {
            let mut dict: Vec<u32> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
            dict.sort_unstable();
            dict.dedup();
            let dict_bytes =
                delta_cost(&dict).expect("sorted dictionary is ascending by construction");
            let packed = varint_bytes(dict.len() as u32)
                + dict_bytes
                + 2 * pairs.len() as u64 * index_width(dict.len());
            1 + packed.min(raw)
        };
        PackedPairs { pairs, wire }
    }

    /// Inverts the densification (a move — the simulation keeps the data).
    pub fn into_pairs(self) -> Vec<(u32, u32)> {
        self.pairs
    }

    /// The pairs without consuming the message.
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }
}

impl Wire for PackedPairs {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        self.wire
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_sizes_match_leb128() {
        assert_eq!(varint_bytes(0), 1);
        assert_eq!(varint_bytes(127), 1);
        assert_eq!(varint_bytes(128), 2);
        assert_eq!(varint_bytes(16383), 2);
        assert_eq!(varint_bytes(16384), 3);
        assert_eq!(varint_bytes(u32::MAX), 5);
    }

    #[test]
    fn sorted_ids_compress_below_raw() {
        // 100 nearby ids: raw 400 bytes, deltas of 3 fit one varint each.
        let ids: Vec<u32> = (0..100).map(|i| 1000 + 3 * i).collect();
        let p = PackedIds::encode(ids.clone());
        assert!(p.wire_bytes() < 400, "{}", p.wire_bytes());
        assert_eq!(p.into_ids(), ids);
    }

    #[test]
    fn unsorted_ids_fall_back_to_raw_plus_flag() {
        let ids = vec![50u32, 10, 90];
        let p = PackedIds::encode(ids.clone());
        assert_eq!(p.wire_bytes(), 4 * 3 + 1);
        assert_eq!(p.into_ids(), ids);
    }

    #[test]
    fn empty_payloads_cost_only_the_flag() {
        assert_eq!(PackedIds::encode(Vec::new()).wire_bytes(), 1);
        assert_eq!(PackedPairs::encode(Vec::new()).wire_bytes(), 1);
    }

    #[test]
    fn few_distinct_ids_densify_to_one_byte_indexes() {
        // 200 pairs over 16 distinct ids: raw 1600 bytes; packed is a tiny
        // dictionary plus 2 one-byte indexes per pair.
        let pairs: Vec<(u32, u32)> = (0..200u32).map(|i| (i % 16 * 7, 112)).collect();
        let p = PackedPairs::encode(pairs.clone());
        assert!(p.wire_bytes() < 500, "{}", p.wire_bytes());
        assert_eq!(p.into_pairs(), pairs);
    }

    #[test]
    fn adversarial_pairs_never_beat_raw_by_more_than_the_flag() {
        // Distinct far-apart ids (every dictionary delta needs a 4-byte
        // varint): the dictionary plus indexes exceeds the raw layout, so
        // the encoder must take the raw fallback.
        let pairs: Vec<(u32, u32)> = (0..50u32)
            .map(|i| (i * 80_000_000, i * 80_000_000 + 40_000_000))
            .collect();
        let p = PackedPairs::encode(pairs.clone());
        assert_eq!(p.wire_bytes(), 8 * 50 + 1);
        assert_eq!(p.into_pairs(), pairs);
    }

    #[test]
    fn pair_width_steps_at_dictionary_boundaries() {
        // ≤256 distinct ids → 1-byte indexes; >256 → 2-byte.
        let small: Vec<(u32, u32)> = (0..128u32).map(|i| (2 * i, 2 * i + 1)).collect();
        let big: Vec<(u32, u32)> = (0..300u32).map(|i| (2 * i, 2 * i + 1)).collect();
        let ps = PackedPairs::encode(small);
        let pb = PackedPairs::encode(big);
        // Small: dict 256 one-byte deltas + 256 index bytes ≈ 2 per id.
        assert!(ps.wire_bytes() < 8 * 128);
        assert!(pb.wire_bytes() < 8 * 300);
    }
}
