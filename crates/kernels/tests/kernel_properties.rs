//! Property tests on the kernel crate: freezing safety, reduction
//! invariants, concurrent union-find stress.

use mnd_graph::types::WEdge;
use mnd_graph::{gen, CsrGraph, EdgeList, VertexRange};
use mnd_kernels::boruvka::{boruvka_msf, local_boruvka};
use mnd_kernels::cgraph::CGraph;
use mnd_kernels::dsu::AtomicDisjointSets;
use mnd_kernels::oracle::kruskal_msf;
use mnd_kernels::policy::{ExcpCond, FreezePolicy, StopPolicy};
use mnd_kernels::reduce::{apply_ghost_parents, reduce_holding};
use proptest::prelude::*;

fn arb_edges(max_v: u32, max_e: usize) -> impl Strategy<Value = EdgeList> {
    (
        2..max_v,
        proptest::collection::vec((0u32..max_v, 0u32..max_v, 1u32..500), 0..max_e),
    )
        .prop_map(|(n, raw)| {
            EdgeList::from_raw(
                n,
                raw.into_iter()
                    .map(|(a, b, w)| WEdge::new(a % n, b % n, w))
                    .collect(),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The paper's central safety claim: under any exception condition and
    /// any freeze/stop policy, a partition kernel only ever contracts MSF
    /// edges.
    #[test]
    fn freezing_is_always_safe(
        el in arb_edges(100, 350),
        cut_frac in 0.1f64..0.9,
        excp_pick in 0u8..2,
        freeze_pick in 0u8..2,
        stop_pick in 0u8..2,
    ) {
        let n = el.num_vertices();
        let cut = ((n as f64 * cut_frac) as u32).clamp(1, n - 1);
        let excp = if excp_pick == 0 { ExcpCond::BorderEdge } else { ExcpCond::BorderVertex };
        let freeze = if freeze_pick == 0 { FreezePolicy::Sticky } else { FreezePolicy::Recheck };
        let stop = if stop_pick == 0 {
            StopPolicy::Exhaustive
        } else {
            StopPolicy::DiminishingBenefit { min_improvement: 0.3 }
        };
        let oracle: std::collections::HashSet<WEdge> =
            kruskal_msf(&el).edges.into_iter().collect();
        let g = CsrGraph::from_edge_list(&el);
        for range in [VertexRange { start: 0, end: cut }, VertexRange { start: cut, end: n }] {
            let mut cg = CGraph::from_partition(&g, range);
            let out = local_boruvka(&mut cg, excp, freeze, stop);
            for e in &out.msf_edges {
                prop_assert!(oracle.contains(e), "non-MSF edge {e:?} contracted");
            }
            prop_assert!(cg.validate().is_ok());
        }
    }

    /// The two partitions' contracted edges are disjoint, and their union
    /// stays within the oracle MSF (no double counting across ranks).
    #[test]
    fn partitions_contract_disjoint_edge_sets(el in arb_edges(80, 250), cut in 1u32..79) {
        let n = el.num_vertices();
        let cut = (cut % (n - 1)) + 1;
        let g = CsrGraph::from_edge_list(&el);
        let run = |range: VertexRange| {
            let mut cg = CGraph::from_partition(&g, range);
            local_boruvka(&mut cg, ExcpCond::BorderEdge, FreezePolicy::Sticky, StopPolicy::Exhaustive)
                .msf_edges
        };
        let a = run(VertexRange { start: 0, end: cut });
        let b = run(VertexRange { start: cut, end: n });
        let sa: std::collections::HashSet<_> = a.iter().collect();
        for e in &b {
            prop_assert!(!sa.contains(e), "edge {e:?} contracted by both partitions");
        }
    }

    /// Reductions + ghost relabels never change the final MSF.
    #[test]
    fn reduce_and_relabel_preserve_msf(el in arb_edges(80, 250)) {
        let oracle = kruskal_msf(&el);
        let mut cg = CGraph::from_edge_list(&el);
        // Run one contraction round, reduce, rename nothing ghostly (whole
        // graph resident: apply an empty update), then finish.
        let mut msf = local_boruvka(
            &mut cg,
            ExcpCond::None,
            FreezePolicy::Sticky,
            StopPolicy::DiminishingBenefit { min_improvement: 0.9 },
        ).msf_edges;
        reduce_holding(&mut cg);
        apply_ghost_parents(&mut cg, &[]);
        msf.extend(
            local_boruvka(&mut cg, ExcpCond::None, FreezePolicy::Sticky, StopPolicy::Exhaustive)
                .msf_edges,
        );
        let got = mnd_kernels::msf::MsfResult::from_edges(el.num_vertices(), msf);
        prop_assert_eq!(got, oracle);
    }

    /// boruvka == kruskal on weight distributions with heavy ties.
    #[test]
    fn tie_heavy_weights(el in arb_edges(60, 200), modulus in 1u32..4) {
        let mut el = el;
        let edges: Vec<WEdge> = el
            .edges()
            .iter()
            .map(|e| WEdge::new(e.u, e.v, e.w % modulus + 1))
            .collect();
        el = EdgeList::from_raw(el.num_vertices(), edges);
        let b = boruvka_msf(&el);
        prop_assert_eq!(b, kruskal_msf(&el));
    }
}

#[test]
fn atomic_dsu_stress_against_sequential() {
    // Many threads apply a fixed edge set concurrently; the resulting
    // partition must equal the sequential union-find's.
    use mnd_kernels::dsu::DisjointSets;
    let el = gen::gnm(2000, 6000, 99);
    let edges: Vec<(u32, u32)> = el.edges().iter().map(|e| (e.u, e.v)).collect();
    let mut seq = DisjointSets::new(2000);
    for &(a, b) in &edges {
        seq.union(a, b);
    }
    for trial in 0..5 {
        let par = std::sync::Arc::new(AtomicDisjointSets::new(2000));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let par = std::sync::Arc::clone(&par);
                let edges = &edges;
                scope.spawn(move || {
                    // Interleave differently per thread and trial.
                    let mut i = (t + trial) % 4;
                    while i < edges.len() {
                        let (a, b) = edges[i];
                        par.union(a, b);
                        i += 4;
                    }
                    // Each thread also applies a disjoint slice fully.
                    let chunk = edges.len() / 4;
                    for &(a, b) in &edges[t * chunk..(t + 1) * chunk] {
                        par.union(a, b);
                    }
                });
            }
        });
        // Same-set relation must match on sampled pairs + set count.
        assert_eq!(par.num_sets(), seq.num_sets(), "trial {trial}");
        for step in [1usize, 7, 113, 997] {
            let mut i = 0;
            while i + step < 2000 {
                let (a, b) = (i as u32, (i + step) as u32);
                assert_eq!(
                    par.find(a) == par.find(b),
                    seq.find(a) == seq.find(b),
                    "pair ({a},{b}) trial {trial}"
                );
                i += step * 3 + 1;
            }
        }
    }
}

#[test]
fn contraction_terminates_in_log_rounds() {
    // Boruvka halves the component count per round: iterations must be
    // O(log V) on every family.
    for el in [
        gen::path(4096, 1),
        gen::complete(64, 2),
        gen::gnm(5000, 20_000, 3),
        gen::web_crawl(4000, 30_000, gen::CrawlParams::default(), 4),
    ] {
        let mut cg = CGraph::from_edge_list(&el);
        let out = local_boruvka(
            &mut cg,
            ExcpCond::None,
            FreezePolicy::Sticky,
            StopPolicy::Exhaustive,
        );
        let bound = 2 * (el.num_vertices() as f64).log2().ceil() as usize + 2;
        assert!(
            out.work.num_iterations() <= bound,
            "{} iterations for V={}",
            out.work.num_iterations(),
            el.num_vertices()
        );
    }
}
