//! Oracle tests for the parallel holding plane (DESIGN.md §5e).
//!
//! The determinism contract says every policy-aware kernel produces output
//! **byte-identical** to the sequential reference — for any chunk size, any
//! crossover and any rayon worker count. These tests force the parallel
//! path onto small fixtures with adversarial chunkings (1, a prime, and
//! `usize::MAX`) and diff entire holdings against `KernelPolicy::seq()`.

use mnd_graph::partition::partition_1d;
use mnd_graph::{gen, CsrGraph, EdgeList};
use mnd_kernels::boruvka::local_boruvka_with;
use mnd_kernels::cgraph::{CGraph, CompId};
use mnd_kernels::policy::{ExcpCond, FreezePolicy, KernelPolicy, StopPolicy};
use mnd_kernels::reduce::{apply_ghost_parents_with, reduce_holding_with};
use mnd_kernels::scan::min_edge_scan_with;

/// Adversarial chunk sizes: degenerate single-row chunks, a prime that
/// never divides the fixture sizes, and one chunk covering everything.
const CHUNKS: [usize; 3] = [1, 13, usize::MAX];

/// Graph families the paper evaluates: skewed (RMAT), uniform (ER/gnm)
/// and high-diameter (road grid).
fn fixtures() -> Vec<(&'static str, EdgeList)> {
    vec![
        ("rmat", gen::rmat(512, 4096, gen::RmatProbs::GRAPH500, 31)),
        ("er", gen::gnm(400, 2400, 32)),
        ("road", gen::road_grid(20, 20, 0.02, 0.38, 33)),
    ]
}

/// A 4-way partitioned holding (has cut edges) for kernels that need one.
fn partitioned(el: &EdgeList) -> Vec<CGraph> {
    let csr = CsrGraph::from_edge_list(el);
    partition_1d(&csr, 4, 1.0)
        .into_iter()
        .map(|r| CGraph::from_partition(&csr, r))
        .collect()
}

#[test]
fn reduce_holding_matches_seq_for_any_chunking() {
    for (name, el) in fixtures() {
        let mut expect = CGraph::from_edge_list(&el);
        let expect_stats = reduce_holding_with(&mut expect, &KernelPolicy::seq());
        for chunk in CHUNKS {
            let mut got = CGraph::from_edge_list(&el);
            let got_stats = reduce_holding_with(&mut got, &KernelPolicy::force_par(chunk));
            assert_eq!(got_stats, expect_stats, "{name} chunk={chunk}");
            assert_eq!(got, expect, "{name} chunk={chunk}");
        }
    }
}

#[test]
fn ghost_apply_matches_seq_for_any_chunking() {
    for (name, el) in fixtures() {
        for (part, base) in partitioned(&el).into_iter().enumerate() {
            // Rename every ghost endpoint to a fresh id, like a real
            // mergeParts round would after remote contractions.
            let resident: Vec<CompId> = base.resident().to_vec();
            let mut updates: Vec<(CompId, CompId)> = base
                .iter_edges()
                .flat_map(|e| [e.a, e.b])
                .filter(|c| resident.binary_search(c).is_err())
                .map(|c| (c, c / 2 + 1_000_000))
                .collect();
            updates.sort_unstable();
            updates.dedup();

            let mut expect = base.clone();
            apply_ghost_parents_with(&mut expect, &KernelPolicy::seq(), &updates);
            for chunk in CHUNKS {
                let mut got = base.clone();
                apply_ghost_parents_with(&mut got, &KernelPolicy::force_par(chunk), &updates);
                assert_eq!(got, expect, "{name} part={part} chunk={chunk}");
            }
        }
    }
}

#[test]
fn min_edge_scan_matches_seq_for_any_chunking() {
    for (name, el) in fixtures() {
        let cg = CGraph::from_edge_list(&el);
        let expect = min_edge_scan_with(&cg, &KernelPolicy::seq());
        for chunk in CHUNKS {
            let got = min_edge_scan_with(&cg, &KernelPolicy::force_par(chunk));
            assert_eq!(got, expect, "{name} chunk={chunk}");
        }
    }
}

#[test]
fn incident_counts_match_seq_for_any_chunking() {
    for (name, el) in fixtures() {
        let mut cg = CGraph::from_edge_list(&el);
        let expect = cg.incident_counts_with(&KernelPolicy::seq()).to_vec();
        for chunk in CHUNKS {
            let got = cg
                .incident_counts_with(&KernelPolicy::force_par(chunk))
                .to_vec();
            assert_eq!(got, expect, "{name} chunk={chunk}");
        }
    }
}

#[test]
fn local_boruvka_matches_seq_for_any_chunking() {
    for (name, el) in fixtures() {
        for excp in [ExcpCond::BorderEdge, ExcpCond::BorderVertex] {
            for freeze in [FreezePolicy::Sticky, FreezePolicy::Recheck] {
                for (part, base) in partitioned(&el).into_iter().enumerate() {
                    let mut expect_cg = base.clone();
                    let expect = local_boruvka_with(
                        &mut expect_cg,
                        &KernelPolicy::seq(),
                        excp,
                        freeze,
                        StopPolicy::Exhaustive,
                    );
                    for chunk in CHUNKS {
                        let mut got_cg = base.clone();
                        let got = local_boruvka_with(
                            &mut got_cg,
                            &KernelPolicy::force_par(chunk),
                            excp,
                            freeze,
                            StopPolicy::Exhaustive,
                        );
                        let tag = format!("{name} {excp:?}/{freeze:?} part={part} chunk={chunk}");
                        assert_eq!(got.msf_edges, expect.msf_edges, "{tag}");
                        assert_eq!(got.relabel, expect.relabel, "{tag}");
                        assert_eq!(got.work, expect.work, "{tag}");
                        assert_eq!(got_cg, expect_cg, "{tag}");
                        assert_eq!(got_cg.frozen(), expect_cg.frozen(), "{tag}");
                    }
                }
            }
        }
    }
}

/// Worker count must not change anything either: the same forced-parallel
/// pipeline run under 1, 2 and 8 rayon threads yields one answer. The shim
/// reads `RAYON_NUM_THREADS` per call, so a single test can sweep it (other
/// tests running concurrently only see their worker counts change, never
/// their results — that is the point of the contract).
#[test]
fn thread_count_does_not_change_results() {
    let el = gen::rmat(512, 4096, gen::RmatProbs::GRAPH500, 37);
    let run = || -> (Vec<CGraph>, Vec<mnd_graph::WEdge>) {
        let policy = KernelPolicy::force_par(13);
        let mut holdings = partitioned(&el);
        let mut msf = Vec::new();
        for cg in &mut holdings {
            let out = local_boruvka_with(
                cg,
                &policy,
                ExcpCond::BorderEdge,
                FreezePolicy::Sticky,
                StopPolicy::Exhaustive,
            );
            msf.extend(out.msf_edges);
            reduce_holding_with(cg, &policy);
            cg.incident_counts_with(&policy);
        }
        (holdings, msf)
    };

    let mut results = Vec::new();
    for threads in ["1", "2", "8"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        results.push(run());
    }
    std::env::remove_var("RAYON_NUM_THREADS");
    let (first_holdings, first_msf) = &results[0];
    for (i, (holdings, msf)) in results.iter().enumerate().skip(1) {
        assert_eq!(holdings, first_holdings, "thread sweep entry {i}");
        assert_eq!(msf, first_msf, "thread sweep entry {i}");
    }
}
