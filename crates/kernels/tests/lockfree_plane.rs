//! Oracle tests for the lock-free kernel plane (DESIGN.md §5h).
//!
//! The determinism contract extends to the atomic variants: the packed
//! fetch-min election, the lock-free incident counts and the concurrent
//! DSU must all produce output **byte-identical** to the sequential
//! reference — for any chunk size, any rayon worker count, and adversarial
//! weight ties (where the packed fast path is insufficient and the full
//! edge-key fallback must kick in).

use proptest::prelude::*;

use mnd_graph::edgelist::splitmix64;
use mnd_graph::partition::partition_1d;
use mnd_graph::{gen, CsrGraph, EdgeList};
use mnd_kernels::boruvka::local_boruvka_with;
use mnd_kernels::cgraph::CGraph;
use mnd_kernels::dsu::AtomicDisjointSets;
use mnd_kernels::policy::{ExcpCond, FreezePolicy, KernelPolicy, StopPolicy};
use mnd_kernels::scan::min_edge_scan_with;
use rayon::prelude::*;

/// Adversarial chunk sizes: degenerate single-row chunks, a prime that
/// never divides the fixture sizes, and one chunk covering everything.
const CHUNKS: [usize; 3] = [1, 13, usize::MAX];

fn fixtures() -> Vec<(&'static str, EdgeList)> {
    vec![
        ("rmat", gen::rmat(512, 4096, gen::RmatProbs::GRAPH500, 41)),
        ("er", gen::gnm(400, 2400, 42)),
        ("road", gen::road_grid(20, 20, 0.02, 0.38, 43)),
    ]
}

/// An adversarial all-ties fixture: every edge has the same weight, so the
/// packed `(weight << 32) | row` comparison ties on its fast path for
/// *every* pair of candidates and the election is decided entirely by the
/// `(edge key, row)` fallback.
fn all_ties_fixture() -> EdgeList {
    let mut el = EdgeList::new(120);
    let mut s = 7u64;
    for i in 0..700u32 {
        s = splitmix64(s ^ i as u64);
        let a = (s % 120) as u32;
        let b = ((s >> 16) % 120) as u32;
        if a != b {
            el.push(a, b, 5); // one shared weight: maximal tie pressure
        }
    }
    el
}

fn partitioned(el: &EdgeList) -> Vec<CGraph> {
    let csr = CsrGraph::from_edge_list(el);
    partition_1d(&csr, 4, 1.0)
        .into_iter()
        .map(|r| CGraph::from_partition(&csr, r))
        .collect()
}

#[test]
fn lockfree_scan_and_counts_match_seq_for_any_chunking() {
    for (name, el) in fixtures().into_iter().chain([("ties", all_ties_fixture())]) {
        let mut cg = CGraph::from_edge_list(&el);
        let expect_scan = min_edge_scan_with(&cg, &KernelPolicy::seq());
        let expect_counts = cg.incident_counts_with(&KernelPolicy::seq()).to_vec();
        for chunk in CHUNKS {
            let policy = KernelPolicy::force_lockfree(chunk);
            assert_eq!(
                min_edge_scan_with(&cg, &policy),
                expect_scan,
                "{name} chunk={chunk}"
            );
            assert_eq!(
                cg.incident_counts_with(&policy).to_vec(),
                expect_counts,
                "{name} chunk={chunk}"
            );
        }
    }
}

#[test]
fn lockfree_boruvka_matches_seq_for_any_chunking() {
    for (name, el) in fixtures().into_iter().chain([("ties", all_ties_fixture())]) {
        for freeze in [FreezePolicy::Sticky, FreezePolicy::Recheck] {
            for (part, base) in partitioned(&el).into_iter().enumerate() {
                let mut expect_cg = base.clone();
                let expect = local_boruvka_with(
                    &mut expect_cg,
                    &KernelPolicy::seq(),
                    ExcpCond::BorderEdge,
                    freeze,
                    StopPolicy::Exhaustive,
                );
                for chunk in CHUNKS {
                    let mut got_cg = base.clone();
                    let got = local_boruvka_with(
                        &mut got_cg,
                        &KernelPolicy::force_lockfree(chunk),
                        ExcpCond::BorderEdge,
                        freeze,
                        StopPolicy::Exhaustive,
                    );
                    let tag = format!("{name} {freeze:?} part={part} chunk={chunk}");
                    assert_eq!(got.msf_edges, expect.msf_edges, "{tag}");
                    assert_eq!(got.relabel, expect.relabel, "{tag}");
                    assert_eq!(got.work, expect.work, "{tag}");
                    assert_eq!(got_cg, expect_cg, "{tag}");
                    assert_eq!(got_cg.frozen(), expect_cg.frozen(), "{tag}");
                }
            }
        }
    }
}

/// Worker count must not change anything: the same forced-lock-free
/// pipeline run under 1, 2 and 8 rayon threads yields one answer. The shim
/// reads `RAYON_NUM_THREADS` per call, so a single test can sweep it.
#[test]
fn lockfree_thread_count_does_not_change_results() {
    let el = gen::rmat(512, 4096, gen::RmatProbs::GRAPH500, 47);
    let run = || -> (Vec<CGraph>, Vec<mnd_graph::WEdge>) {
        let policy = KernelPolicy::force_lockfree(13);
        let mut holdings = partitioned(&el);
        let mut msf = Vec::new();
        for cg in &mut holdings {
            let out = local_boruvka_with(
                cg,
                &policy,
                ExcpCond::BorderEdge,
                FreezePolicy::Sticky,
                StopPolicy::Exhaustive,
            );
            msf.extend(out.msf_edges);
            cg.incident_counts_with(&policy);
        }
        (holdings, msf)
    };
    let mut results = Vec::new();
    for threads in ["1", "2", "8"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        results.push(run());
    }
    std::env::remove_var("RAYON_NUM_THREADS");
    let (first_holdings, first_msf) = &results[0];
    for (i, (holdings, msf)) in results.iter().enumerate().skip(1) {
        assert_eq!(holdings, first_holdings, "thread sweep entry {i}");
        assert_eq!(msf, first_msf, "thread sweep entry {i}");
    }
}

/// Sequential min-root reference: the semantics `MinDsu` (and the atomic
/// DSU's union-by-smaller-id orientation) guarantee — every element's
/// representative is the smallest member of its component, regardless of
/// union order or interleaving.
fn min_root_reference(n: u32, ops: &[(u32, u32)]) -> Vec<u32> {
    let mut parent: Vec<u32> = (0..n).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            let gp = parent[parent[x as usize] as usize];
            parent[x as usize] = gp;
            x = gp;
        }
        x
    }
    for &(a, b) in ops {
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            parent[hi as usize] = lo;
        }
    }
    (0..n).map(|x| find(&mut parent, x)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Concurrent DSU stress: seeded random union batches executed across a
    /// swept `RAYON_NUM_THREADS` must land on exactly the components (and
    /// exactly the min-root representatives) the sequential reference
    /// computes — for any interleaving the scheduler happens to produce.
    #[test]
    fn concurrent_dsu_matches_sequential_min_dsu(
        n in 2u32..300,
        seed in 0u64..u64::MAX,
        ops_len in 1usize..500,
    ) {
        let ops: Vec<(u32, u32)> = (0..ops_len)
            .map(|i| {
                let s = splitmix64(seed ^ i as u64);
                ((s % n as u64) as u32, ((s >> 24) % n as u64) as u32)
            })
            .collect();
        let expect = min_root_reference(n, &ops);
        for threads in ["1", "3", "8"] {
            std::env::set_var("RAYON_NUM_THREADS", threads);
            let d = AtomicDisjointSets::new(n as usize);
            ops.par_iter().for_each(|&(a, b)| {
                d.union(a, b);
            });
            d.compress_all();
            let got: Vec<u32> = (0..n).map(|x| d.find(x)).collect();
            prop_assert_eq!(&got, &expect, "threads={}", threads);
        }
        std::env::remove_var("RAYON_NUM_THREADS");
    }
}
