//! Oracle test for the SoA reduction pass: `reduce_holding` on the
//! column-stored holding must produce **edge-for-edge** the same result as
//! the original array-of-structs implementation (self-edge retain, then a
//! hash-table of per-pair minimums, then canonical sort). The reference is
//! reimplemented inline here exactly as the seed wrote it.

use mnd_graph::gen;
use mnd_graph::types::WEdge;
use mnd_kernels::cgraph::{CEdge, CGraph, CompId};
use mnd_kernels::reduce::reduce_holding;
use proptest::prelude::*;

/// The seed's AoS reduction, verbatim semantics: retain non-self edges in
/// order, keep the minimum-key edge per component pair via a hash table,
/// then sort by original-edge key.
fn aos_reference_reduce(mut edges: Vec<CEdge>) -> Vec<CEdge> {
    edges.retain(|e| !e.is_self());
    let mut best: std::collections::HashMap<(CompId, CompId), CEdge> =
        std::collections::HashMap::new();
    for e in edges {
        best.entry((e.a, e.b))
            .and_modify(|cur| {
                if e.key() < cur.key() {
                    *cur = e;
                }
            })
            .or_insert(e);
    }
    let mut out: Vec<CEdge> = best.into_values().collect();
    out.sort_unstable_by_key(|e| e.key());
    out
}

/// Builds a holding whose component structure forces self and multi edges:
/// vertices are assigned to components by `v / group`, so every group of
/// `group` consecutive vertices collapses into one component and any edges
/// between the same two groups become parallel multi-edges.
fn contracted_holding(el: &mnd_graph::EdgeList, group: u32) -> (CGraph, Vec<CEdge>) {
    let comp = |v: u32| (v / group) * group; // component named by min member
    let cedges: Vec<CEdge> = el
        .edges()
        .iter()
        .map(|e| CEdge::new(comp(e.u), comp(e.v), *e))
        .collect();
    let mut resident: Vec<CompId> = (0..el.num_vertices()).map(comp).collect();
    resident.sort_unstable();
    resident.dedup();
    // from_parts would dedup-check; the raw edge set may hold duplicates of
    // nothing (original edges are unique), so construction is safe.
    let cg = CGraph::from_parts(resident, cedges.clone(), vec![]);
    (cg, cedges)
}

fn assert_reduce_matches_oracle(el: &mnd_graph::EdgeList, group: u32) {
    let (mut cg, aos) = contracted_holding(el, group);
    let expect = aos_reference_reduce(aos);
    let stats = reduce_holding(&mut cg);
    assert_eq!(
        cg.edges_vec(),
        expect,
        "SoA reduce diverged from AoS oracle"
    );
    assert_eq!(stats.edges_after as usize, expect.len());
    assert_eq!(
        stats.edges_before - stats.self_removed - stats.multi_removed,
        stats.edges_after
    );
}

#[test]
fn soa_reduce_matches_aos_on_rmat() {
    for seed in [1, 7, 42] {
        let el = gen::rmat(512, 4000, gen::RmatProbs::GRAPH500, seed); // skewed degrees
        for group in [2, 8, 32] {
            assert_reduce_matches_oracle(&el, group);
        }
    }
}

#[test]
fn soa_reduce_matches_aos_on_er() {
    for seed in [3, 11] {
        let el = gen::gnm(400, 2400, seed);
        for group in [2, 5, 20] {
            assert_reduce_matches_oracle(&el, group);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random graphs, random contraction granularity: SoA == AoS always.
    #[test]
    fn soa_reduce_matches_aos_randomised(
        n in 10u32..200,
        m_per in 1u64..8,
        seed in 0u64..10_000,
        group in 1u32..16,
    ) {
        let el = gen::gnm(n, n as u64 * m_per, seed);
        let (mut cg, aos) = contracted_holding(&el, group);
        let expect = aos_reference_reduce(aos);
        reduce_holding(&mut cg);
        prop_assert_eq!(cg.edges_vec(), expect);
        cg.validate().unwrap();
    }

    /// Reduction is idempotent: a second pass removes nothing.
    #[test]
    fn reduce_is_idempotent(n in 10u32..120, seed in 0u64..1000, group in 1u32..10) {
        let el = gen::gnm(n, n as u64 * 4, seed);
        let (mut cg, _) = contracted_holding(&el, group);
        reduce_holding(&mut cg);
        let once = cg.clone();
        let stats = reduce_holding(&mut cg);
        prop_assert_eq!(stats.self_removed, 0);
        prop_assert_eq!(stats.multi_removed, 0);
        prop_assert_eq!(&cg, &once);
    }
}

#[test]
fn reference_sanity() {
    // Hand-checked tiny case pinning the oracle itself.
    let e = |a: u32, b: u32, u: u32, v: u32, w: u32| CEdge::new(a, b, WEdge::new(u, v, w));
    let input = vec![
        e(0, 0, 0, 1, 1), // self
        e(0, 2, 0, 2, 5),
        e(0, 2, 1, 3, 2), // lighter multi of 0~2
        e(2, 4, 3, 4, 9),
    ];
    let out = aos_reference_reduce(input);
    assert_eq!(out, vec![e(0, 2, 1, 3, 2), e(2, 4, 3, 4, 9)]);
}
