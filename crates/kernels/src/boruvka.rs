//! Boruvka's algorithm: the whole-graph variant and the paper's
//! exception-condition variant for partitions (§3.2).
//!
//! Both operate on the contracted-graph representation ([`CGraph`]) so the
//! same kernel serves level-0 partitions (components = vertices) and every
//! later merging level (components = merged supervertices).
//!
//! ## Correctness of freezing (the §3.2 exception)
//!
//! In each iteration a resident component elects its lightest incident edge
//! *considering every edge it holds, cut edges included*. If the winner is
//! a cut edge the component freezes instead of expanding; otherwise the
//! winner connects two resident components and is contracted. Because the
//! contracted edge is the minimum over **all** edges leaving the component,
//! the cut property guarantees it belongs to the (unique) MSF — no edge is
//! ever contracted speculatively.
//!
//! ## Deterministic parallel election
//!
//! Above the [`KernelPolicy`] crossover the election runs the policy's
//! variant. **Chunk-merge**: worklist chunks sweep on rayon workers, each
//! producing a partial winner table; partials merge in chunk order under
//! the total order `(original edge, worklist row)`, so the merged table is
//! byte-identical to the sequential sweep for any chunking. The union-find
//! is fully path-compressed before each election (`compress_all`), so
//! workers can resolve roots through a shared reference without mutation.
//! **Lock-free**: workers CAS packed `(weight << 32) | row` words into one
//! atomic slot per root ([`crate::lockfree::fetch_min_edge`], weight ties
//! falling back to the full edge key) and resolve roots through the
//! concurrent [`AtomicDisjointSets`] — no partial tables, no merge phase.
//! A fetch-min under a total order is commutative, so every interleaving
//! elects the same winners as the sequential sweep.
//!
//! Either way, contraction then visits winner slots sequentially in
//! root-index order — safe because the elected edges form a forest under
//! the total edge order (mutual elections are the same edge), so the union
//! *set* is order-independent, and making the order fixed makes the whole
//! kernel deterministic across policies and thread counts.
//!
//! Election scratch — the atomic min-edge array, its decoded winner buffer
//! and the DSU parent array — is allocated once per invocation and *reset*
//! (the drain swaps slots back to empty) per round, mirroring the
//! `incident_counts_with` scratch pattern.

use std::sync::atomic::AtomicU64;

use mnd_graph::types::WEdge;
use rayon::prelude::*;

use crate::cgraph::{CGraph, CompId};
use crate::dsu::AtomicDisjointSets;
use crate::lockfree::{fetch_min_edge, pack, row_of, NONE_KEY};
use crate::msf::MsfResult;
use crate::policy::{
    ExcpCond, FreezePolicy, IterWork, KernelClass, KernelPolicy, ParVariant, StopPolicy,
    WorkProfile,
};

/// Output of one `indComp` invocation on a holding.
#[derive(Clone, Debug, Default)]
pub struct LocalOutput {
    /// Original-graph edges contracted by this invocation (a subset of the
    /// global MSF).
    pub msf_edges: Vec<WEdge>,
    /// Renaming applied to previously-resident components:
    /// `(old_id, new_id)` for every old id whose id changed.
    pub relabel: Vec<(CompId, CompId)>,
    /// Work profile for the device cost model.
    pub work: WorkProfile,
}

/// Runs Boruvka with the given exception condition on the holding,
/// mutating it in place:
///
/// * resident components become the merged components (named by their
///   smallest member id),
/// * edge endpoints on the resident side are relabelled,
/// * self edges produced by contraction are removed (the paper's separate
///   `removeSelfEdges` step is fused here for efficiency; multi-edge
///   removal stays separate because it needs ghost communication),
/// * frozen components are recorded in the holding.
///
/// `ExcpCond::None` is only legal when the holding has no cut edges; the
/// kernel panics otherwise (using it on a real partition silently corrupts
/// the MSF — we make that a loud error instead).
pub fn local_boruvka(
    cg: &mut CGraph,
    excp: ExcpCond,
    freeze: FreezePolicy,
    stop: StopPolicy,
) -> LocalOutput {
    local_boruvka_with(cg, &KernelPolicy::default(), excp, freeze, stop)
}

/// As [`local_boruvka`], under an explicit (typically calibrated)
/// [`KernelPolicy`] governing the election sweep, the commit relabel and
/// the fused self-edge compaction. Output is identical for every policy.
pub fn local_boruvka_with(
    cg: &mut CGraph,
    policy: &KernelPolicy,
    excp: ExcpCond,
    freeze: FreezePolicy,
    stop: StopPolicy,
) -> LocalOutput {
    if excp == ExcpCond::None {
        assert_eq!(
            cg.num_cut_edges(),
            0,
            "ExcpCond::None on a holding with cut edges would corrupt the MSF"
        );
    }

    let resident: Vec<CompId> = cg.resident().to_vec();
    let n = resident.len();
    // Local dense index per resident component.
    let index_of = |c: CompId| -> Option<u32> { resident.binary_search(&c).ok().map(|i| i as u32) };

    // The election mode is fixed per invocation (the DSU flavour must not
    // switch mid-run): lock-free when the policy routes elections through
    // the atomic plane and the initial worklist clears the crossover —
    // worklists only shrink, and late small rounds cost the same either way.
    let lockfree = policy.variant_for(KernelClass::Election) == ParVariant::LockFree
        && policy.use_par_for(KernelClass::Election, cg.num_edges());
    let mut dsu = if lockfree {
        ElectionDsu::LockFree(AtomicDisjointSets::new(n))
    } else {
        ElectionDsu::Seq(MinDsu::new(n))
    };
    // Lock-free election scratch: allocated once here, reset per round (the
    // drain swaps every hit slot back to NONE_KEY; winners are refilled).
    let mut lf_scratch = lockfree.then(|| LockFreeElection::new(n));
    let mut frozen = vec![false; n];
    // Freeze marks surviving from a previous invocation stay sticky.
    for f in cg.frozen() {
        if let Some(i) = index_of(*f) {
            frozen[i as usize] = true;
        }
    }

    // BorderVertex: freeze every component touching the border up front.
    if excp == ExcpCond::BorderVertex {
        for e in cg.iter_edges() {
            let a_res = index_of(e.a);
            let b_res = index_of(e.b);
            if a_res.is_none() || b_res.is_none() {
                if let Some(i) = a_res.or(b_res) {
                    frozen[i as usize] = true;
                }
            }
        }
    }

    let mut msf_edges: Vec<WEdge> = Vec::new();
    let mut work = WorkProfile::default();
    // Data-driven worklist: only edges that can still matter are rescanned.
    let mut worklist: Vec<CEdgeLocal> = cg
        .iter_edges()
        .map(|e| CEdgeLocal {
            a: index_of(e.a),
            b: index_of(e.b),
            orig: e.orig,
        })
        .collect();

    let mut prev_cost: Option<u64> = None;
    loop {
        // --- Min-edge election ------------------------------------------
        // Roots are fully compressed up front so the sweep — sequential,
        // chunked across workers, or atomic — resolves them in ~one hop.
        dsu.compress_all();
        let scanned = worklist.len() as u64;
        let best_owned: Vec<Option<Winner>>;
        let best: &[Option<Winner>] = match &mut lf_scratch {
            Some(lf) => {
                let adsu = match &dsu {
                    ElectionDsu::LockFree(d) => d,
                    ElectionDsu::Seq(_) => unreachable!("scratch without lock-free DSU"),
                };
                lf.elect(&worklist, policy, adsu, &frozen, freeze);
                &lf.winners
            }
            None => {
                let dsu_seq = match &dsu {
                    ElectionDsu::Seq(d) => d,
                    ElectionDsu::LockFree(_) => unreachable!("lock-free mode without scratch"),
                };
                best_owned = if policy.use_par_for(KernelClass::Election, worklist.len()) {
                    let frozen_ref = &frozen;
                    let rows: &[CEdgeLocal] = &worklist;
                    let partials: Vec<Vec<Option<Winner>>> = policy
                        .chunk_ranges(rows.len())
                        .into_par_iter()
                        .map(|(lo, hi)| {
                            let mut part = vec![None; n];
                            elect_rows(&rows[lo..hi], lo, dsu_seq, frozen_ref, freeze, &mut part);
                            part
                        })
                        .collect();
                    // Merge partial tables in chunk order; the (edge, row)
                    // key makes the merge associative, so this equals the
                    // sequential sweep.
                    let mut best = vec![None; n];
                    for part in partials {
                        for (slot, cand) in best.iter_mut().zip(part) {
                            if let Some(w) = cand {
                                take_winner(slot, w);
                            }
                        }
                    }
                    best
                } else {
                    let mut best = vec![None; n];
                    elect_rows(&worklist, 0, dsu_seq, &frozen, freeze, &mut best);
                    best
                };
                &best_owned
            }
        };

        // --- Contraction / freezing -------------------------------------
        // Recheck policy re-derives freezes every round.
        if freeze == FreezePolicy::Recheck {
            for f in frozen.iter_mut() {
                *f = false;
            }
        }
        let mut unions = 0u64;
        let active = best.iter().filter(|s| s.is_some()).count() as u64;
        // Winner slots are visited in root-index order (not election order):
        // the elected edges form a forest, so any visit order unions the
        // same edge set — the fixed order keeps the kernel deterministic.
        for r in 0..n as u32 {
            let (win, _, ea, eb) = match best[r as usize] {
                Some(w) => w,
                None => continue,
            };
            // Endpoints were resolved to roots during election; re-resolve
            // (cheap, path-halved) since earlier unions this round may have
            // merged them further.
            let ra = ea.map(|i| dsu.find(i));
            let rb = eb.map(|i| dsu.find(i));
            match (ra, rb) {
                (Some(x), Some(y)) => {
                    if x != y && dsu.union(x, y) {
                        msf_edges.push(win);
                        unions += 1;
                        // Sticky: a merge involving a frozen side freezes
                        // the result.
                        let root = dsu.find(x);
                        if freeze == FreezePolicy::Sticky
                            && (frozen[x as usize] || frozen[y as usize])
                        {
                            frozen[root as usize] = true;
                        }
                    }
                }
                // Winner is a cut edge: freeze the resident side.
                (Some(x), None) | (None, Some(x)) => {
                    frozen[dsu.find(x) as usize] = true;
                }
                (None, None) => unreachable!("edge with no resident endpoint elected"),
            }
        }

        work.iters.push(IterWork {
            active_components: active,
            edges_scanned: scanned,
            unions,
        });

        if unions == 0 {
            break;
        }
        // Data-driven shrink: drop edges that became internal self edges.
        worklist.retain(|e| {
            let ra = e.a.map(|i| dsu.find(i));
            let rb = e.b.map(|i| dsu.find(i));
            !matches!((ra, rb), (Some(x), Some(y)) if x == y)
        });
        // Diminishing-benefit early stop (§4.3.2): compare iteration costs.
        if let Some(prev) = prev_cost {
            if !stop.should_continue(prev, scanned) {
                break;
            }
        }
        prev_cost = Some(scanned);
    }

    // --- Commit the contraction to the holding ---------------------------
    // New id of a resident component = smallest member id = resident[root].
    let mut relabel = Vec::new();
    let mut new_resident = Vec::with_capacity(n);
    let mut new_frozen = Vec::new();
    for i in 0..n as u32 {
        let root = dsu.find(i);
        let new_id = resident[root as usize];
        if root == i {
            new_resident.push(new_id);
            if frozen[i as usize] {
                new_frozen.push(new_id);
            }
        }
        if new_id != resident[i as usize] {
            relabel.push((resident[i as usize], new_id));
        }
    }
    // dsu is path-compressed by the loop above; a const find suffices.
    let resident_ref = &resident;
    let dsu_ref = &dsu;
    cg.relabel_with(policy, |c| match resident_ref.binary_search(&c) {
        Ok(i) => resident_ref[dsu_ref.find_const(i as u32) as usize],
        Err(_) => c,
    });
    cg.remove_self_edges_with(policy);
    cg.set_resident(new_resident);
    cg.set_frozen(new_frozen);

    LocalOutput {
        msf_edges,
        relabel,
        work,
    }
}

/// Whole-graph Boruvka MSF over an edge list — the single-device baseline
/// and the post-process kernel. Equivalent to
/// [`local_boruvka`] with `ExcpCond::None` on a whole-graph holding.
pub fn boruvka_msf(el: &mnd_graph::EdgeList) -> MsfResult {
    let mut cg = CGraph::from_edge_list(el);
    let out = local_boruvka(
        &mut cg,
        ExcpCond::None,
        FreezePolicy::Sticky,
        StopPolicy::Exhaustive,
    );
    MsfResult::from_edges(el.num_vertices(), out.msf_edges)
}

/// A per-root election winner: the elected original edge, its worklist row
/// (tie-break making the election order-free), and the edge's local
/// endpoint indices (election-time roots in the chunk-merge plane, raw
/// locals in the lock-free drain — contraction re-resolves through the
/// union-find either way, so the two are interchangeable).
type Winner = (WEdge, u32, Option<u32>, Option<u32>);

/// The per-invocation union-find in the flavour the election mode needs:
/// sequential [`MinDsu`] for the seq/chunk-merge plane, the concurrent
/// [`AtomicDisjointSets`] for the lock-free plane. Both orient unions
/// larger-root-under-smaller, so roots — and therefore every output byte —
/// are identical across modes.
enum ElectionDsu {
    Seq(MinDsu),
    LockFree(AtomicDisjointSets),
}

impl ElectionDsu {
    #[inline]
    fn find(&mut self, x: u32) -> u32 {
        match self {
            ElectionDsu::Seq(d) => d.find(x),
            ElectionDsu::LockFree(d) => d.find(x),
        }
    }

    #[inline]
    fn find_const(&self, x: u32) -> u32 {
        match self {
            ElectionDsu::Seq(d) => d.find_const(x),
            // The atomic find is interior-mutable and thread-safe, so it
            // serves as the shared-reference find (relabel workers may call
            // this concurrently).
            ElectionDsu::LockFree(d) => d.find(x),
        }
    }

    #[inline]
    fn union(&mut self, a: u32, b: u32) -> bool {
        match self {
            ElectionDsu::Seq(d) => d.union(a, b),
            ElectionDsu::LockFree(d) => d.union(a, b),
        }
    }

    fn compress_all(&mut self) {
        match self {
            ElectionDsu::Seq(d) => d.compress_all(),
            ElectionDsu::LockFree(d) => d.compress_all(),
        }
    }
}

/// Reusable lock-free election scratch: one packed atomic word per root
/// plus the decoded winner table the shared contraction loop reads. Both
/// buffers are allocated once per invocation; [`LockFreeElection::elect`]
/// leaves every `best` slot back at [`NONE_KEY`], so rounds reuse the
/// arrays without reallocating.
struct LockFreeElection {
    best: Vec<AtomicU64>,
    winners: Vec<Option<Winner>>,
}

impl LockFreeElection {
    fn new(n: usize) -> Self {
        LockFreeElection {
            best: (0..n).map(|_| AtomicU64::new(NONE_KEY)).collect(),
            winners: vec![None; n],
        }
    }

    /// One round's election: a chunked parallel sweep CASes packed
    /// `(weight << 32) | row` keys into `best` (weight ties fall back to
    /// the full `(edge, row)` order, so winners equal the sequential
    /// sweep's for any interleaving), then a sequential drain decodes the
    /// winner table — swapping each hit slot back to [`NONE_KEY`], which
    /// is exactly the reset the next round needs.
    fn elect(
        &mut self,
        rows: &[CEdgeLocal],
        policy: &KernelPolicy,
        dsu: &AtomicDisjointSets,
        frozen: &[bool],
        freeze: FreezePolicy,
    ) {
        let best = &self.best;
        let orig_of = |row: u32| rows[row as usize].orig;
        policy
            .chunk_ranges(rows.len())
            .into_par_iter()
            .for_each(|(lo, hi)| {
                for (k, e) in rows[lo..hi].iter().enumerate() {
                    let row = (lo + k) as u32;
                    // No unions race the election (contraction is a later,
                    // sequential phase), so every concurrent find resolves
                    // to the round's unique root.
                    let ra = e.a.map(|i| dsu.find(i));
                    let rb = e.b.map(|i| dsu.find(i));
                    if let (Some(x), Some(y)) = (ra, rb) {
                        if x == y {
                            continue; // self edge at current contraction
                        }
                    }
                    let key = pack(e.orig.w, row);
                    for r in [ra, rb].into_iter().flatten() {
                        if frozen[r as usize] && freeze == FreezePolicy::Sticky {
                            continue;
                        }
                        fetch_min_edge(&best[r as usize], key, &orig_of);
                    }
                }
            });
        for (slot, win) in self.best.iter().zip(self.winners.iter_mut()) {
            let key = slot.swap(NONE_KEY, std::sync::atomic::Ordering::Relaxed);
            *win = (key != NONE_KEY).then(|| {
                let row = row_of(key);
                let e = &rows[row as usize];
                (e.orig, row, e.a, e.b)
            });
        }
    }
}

/// Elects over `rows` (worklist rows starting at global index `lo`) into
/// `best`, one slot per resident root. Reads the union-find through
/// [`MinDsu::find_const`] — callers compress fully first — so chunks can
/// run on rayon workers against the shared `&MinDsu`.
fn elect_rows(
    rows: &[CEdgeLocal],
    lo: usize,
    dsu: &MinDsu,
    frozen: &[bool],
    freeze: FreezePolicy,
    best: &mut [Option<Winner>],
) {
    for (k, e) in rows.iter().enumerate() {
        let row = (lo + k) as u32;
        let ra = e.a.map(|i| dsu.find_const(i));
        let rb = e.b.map(|i| dsu.find_const(i));
        if let (Some(x), Some(y)) = (ra, rb) {
            if x == y {
                continue; // self edge at current contraction
            }
        }
        for r in [ra, rb].into_iter().flatten() {
            if frozen[r as usize] && freeze == FreezePolicy::Sticky {
                continue;
            }
            take_winner(&mut best[r as usize], (e.orig, row, ra, rb));
        }
    }
}

/// Replaces `slot` with `cand` if the candidate's `(edge, row)` key is
/// smaller — the total order both the sweep and the chunk merge use.
#[inline]
fn take_winner(slot: &mut Option<Winner>, cand: Winner) {
    let lighter = match slot {
        Some((cur, cur_row, _, _)) => (cand.0, cand.1) < (*cur, *cur_row),
        None => true,
    };
    if lighter {
        *slot = Some(cand);
    }
}

/// Min-representative DSU: links always orient the larger root under the
/// smaller, so the representative of a set is its minimum element — the
/// property that makes component ids globally consistent without
/// coordination.
struct MinDsu {
    parent: Vec<u32>,
}

impl MinDsu {
    fn new(n: usize) -> Self {
        MinDsu {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    fn find_const(&self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    /// Fully path-compresses: afterwards `parent[x]` is `x`'s root, so
    /// [`MinDsu::find_const`] resolves in one hop from shared references.
    fn compress_all(&mut self) {
        for i in 0..self.parent.len() as u32 {
            let r = self.find(i);
            self.parent[i as usize] = r;
        }
    }

    fn union(&mut self, a: u32, b: u32) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi as usize] = lo;
        true
    }
}

/// Local-index edge used by the kernel's worklist (`None` = non-resident
/// endpoint).
#[derive(Clone, Copy, Debug)]
struct CEdgeLocal {
    a: Option<u32>,
    b: Option<u32>,
    orig: WEdge,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msf::verify_msf;
    use crate::oracle::kruskal_msf;
    use mnd_graph::gen;
    use mnd_graph::partition::VertexRange;
    use mnd_graph::CsrGraph;

    fn run_whole(el: &mnd_graph::EdgeList) {
        let msf = boruvka_msf(el);
        verify_msf(el, &msf).unwrap();
    }

    #[test]
    fn whole_graph_matches_kruskal_on_families() {
        run_whole(&gen::path(20, 1));
        run_whole(&gen::cycle(15, 2));
        run_whole(&gen::star(12, 3));
        run_whole(&gen::complete(10, 4));
        run_whole(&gen::gnm(200, 600, 5));
        run_whole(&gen::watts_strogatz(100, 4, 0.3, 6));
        run_whole(&gen::rmat(128, 512, gen::RmatProbs::GRAPH500, 7));
        run_whole(&gen::road_grid(12, 12, 0.02, 0.38, 8));
    }

    #[test]
    fn whole_graph_handles_disconnected() {
        let u = gen::disconnected_union(&[gen::path(5, 1), gen::cycle(6, 2), gen::gnm(30, 60, 3)]);
        run_whole(&u);
    }

    #[test]
    fn empty_and_trivial_inputs() {
        run_whole(&mnd_graph::EdgeList::new(0));
        run_whole(&mnd_graph::EdgeList::new(1));
        run_whole(&mnd_graph::EdgeList::new(10)); // edgeless
    }

    #[test]
    #[should_panic(expected = "cut edges")]
    fn none_exception_rejects_partitions() {
        let g = CsrGraph::from_edge_list(&gen::path(6, 1));
        let mut cg = CGraph::from_partition(&g, VertexRange { start: 0, end: 3 });
        local_boruvka(
            &mut cg,
            ExcpCond::None,
            FreezePolicy::Sticky,
            StopPolicy::Exhaustive,
        );
    }

    #[test]
    fn partition_kernel_contracts_only_msf_edges() {
        // Property: every contracted edge must be in the oracle MSF.
        for seed in 0..5 {
            let el = gen::gnm(100, 400, seed);
            let oracle: std::collections::HashSet<_> = kruskal_msf(&el).edges.into_iter().collect();
            let g = CsrGraph::from_edge_list(&el);
            for (lo, hi) in [(0, 50), (25, 75), (0, 100)] {
                let mut cg = CGraph::from_partition(&g, VertexRange { start: lo, end: hi });
                let out = local_boruvka(
                    &mut cg,
                    ExcpCond::BorderEdge,
                    FreezePolicy::Sticky,
                    StopPolicy::Exhaustive,
                );
                for e in &out.msf_edges {
                    assert!(
                        oracle.contains(e),
                        "seed {seed} [{lo},{hi}): {e:?} not in MSF"
                    );
                }
                cg.validate().unwrap();
            }
        }
    }

    #[test]
    fn border_vertex_is_more_conservative_than_border_edge() {
        let el = gen::gnm(200, 800, 11);
        let g = CsrGraph::from_edge_list(&el);
        let range = VertexRange { start: 0, end: 100 };
        let mut cg_e = CGraph::from_partition(&g, range);
        let mut cg_v = CGraph::from_partition(&g, range);
        let out_e = local_boruvka(
            &mut cg_e,
            ExcpCond::BorderEdge,
            FreezePolicy::Sticky,
            StopPolicy::Exhaustive,
        );
        let out_v = local_boruvka(
            &mut cg_v,
            ExcpCond::BorderVertex,
            FreezePolicy::Sticky,
            StopPolicy::Exhaustive,
        );
        assert!(out_v.msf_edges.len() <= out_e.msf_edges.len());
        assert!(cg_v.num_resident() >= cg_e.num_resident());
    }

    #[test]
    fn resident_ids_become_min_member() {
        let el = gen::path(4, 1); // 0-1-2-3, whole graph
        let mut cg = CGraph::from_edge_list(&el);
        local_boruvka(
            &mut cg,
            ExcpCond::None,
            FreezePolicy::Sticky,
            StopPolicy::Exhaustive,
        );
        assert_eq!(cg.resident(), &[0]); // single component named 0
        assert_eq!(cg.num_edges(), 0);
    }

    #[test]
    fn relabel_reports_only_changes() {
        let el = gen::path(3, 1);
        let mut cg = CGraph::from_edge_list(&el);
        let out = local_boruvka(
            &mut cg,
            ExcpCond::None,
            FreezePolicy::Sticky,
            StopPolicy::Exhaustive,
        );
        // 1 and 2 renamed to 0; 0 unchanged.
        let mut r = out.relabel.clone();
        r.sort_unstable();
        assert_eq!(r, vec![(1, 0), (2, 0)]);
    }

    #[test]
    fn frozen_components_survive_in_holding() {
        // Path 0-1-2-3 split in half: with BorderEdge, whether a side
        // freezes depends on whether its internal edge is lighter than its
        // cut edge, but the *union* of contracted edges must stay within
        // the oracle MSF and residency must stay consistent.
        let el = gen::path(4, 5);
        let g = CsrGraph::from_edge_list(&el);
        let mut cg = CGraph::from_partition(&g, VertexRange { start: 0, end: 2 });
        let out = local_boruvka(
            &mut cg,
            ExcpCond::BorderEdge,
            FreezePolicy::Sticky,
            StopPolicy::Exhaustive,
        );
        let oracle: std::collections::HashSet<_> = kruskal_msf(&el).edges.into_iter().collect();
        for e in &out.msf_edges {
            assert!(oracle.contains(e));
        }
        for f in cg.frozen() {
            assert!(cg.is_resident(*f));
        }
    }

    #[test]
    fn work_profile_is_recorded() {
        let el = gen::gnm(100, 300, 9);
        let mut cg = CGraph::from_edge_list(&el);
        let out = local_boruvka(
            &mut cg,
            ExcpCond::None,
            FreezePolicy::Sticky,
            StopPolicy::Exhaustive,
        );
        assert!(out.work.num_iterations() >= 1);
        assert!(out.work.total_scanned() > 0);
        // Boruvka halves components per round: few iterations expected.
        assert!(out.work.num_iterations() <= 20);
    }

    #[test]
    fn recheck_freeze_contracts_at_least_as_much() {
        let el = gen::gnm(150, 500, 13);
        let g = CsrGraph::from_edge_list(&el);
        let range = VertexRange { start: 0, end: 75 };
        let mut cg_s = CGraph::from_partition(&g, range);
        let mut cg_r = CGraph::from_partition(&g, range);
        let s = local_boruvka(
            &mut cg_s,
            ExcpCond::BorderEdge,
            FreezePolicy::Sticky,
            StopPolicy::Exhaustive,
        );
        let r = local_boruvka(
            &mut cg_r,
            ExcpCond::BorderEdge,
            FreezePolicy::Recheck,
            StopPolicy::Exhaustive,
        );
        assert!(r.msf_edges.len() >= s.msf_edges.len());
        let oracle: std::collections::HashSet<_> = kruskal_msf(&el).edges.into_iter().collect();
        for e in r.msf_edges.iter().chain(s.msf_edges.iter()) {
            assert!(oracle.contains(e));
        }
    }

    #[test]
    fn diminishing_benefit_stops_early_but_stays_correct() {
        let el = gen::gnm(300, 900, 17);
        let mut cg = CGraph::from_edge_list(&el);
        let out = local_boruvka(
            &mut cg,
            ExcpCond::None,
            FreezePolicy::Sticky,
            StopPolicy::DiminishingBenefit {
                min_improvement: 0.5,
            },
        );
        let oracle: std::collections::HashSet<_> = kruskal_msf(&el).edges.into_iter().collect();
        for e in &out.msf_edges {
            assert!(oracle.contains(e));
        }
        // Early stop leaves residue: resident components remain and can be
        // finished later (the recursion / postProcess path).
        assert!(cg.num_resident() >= 1);
    }
}
