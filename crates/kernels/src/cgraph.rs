//! The *contracted graph*: components plus inter-component edges with
//! original-edge provenance.
//!
//! After the first round of independent computations, every stage of
//! MND-MST (self/multi-edge removal, ring segment exchange, leader merges,
//! post-processing) manipulates graphs whose "vertices" are component ids.
//! [`CGraph`] is that uniform representation:
//!
//! * **resident** components — the ones this processor currently owns,
//! * **edges** — inter-component edges; each carries the original graph
//!   edge ([`CEdge::orig`]) so the final MSF can be reported in terms of
//!   input edges, and so weight ties break identically everywhere.
//!
//! An edge may connect a resident component to a *non-resident* one (the
//! paper's ghost component); such edges are exactly the ones the exception
//! condition of `indComp` refuses to contract.
//!
//! Edge ownership rule (see DESIGN.md): when a segment of components moves
//! between processors, edges internal to the segment move with it, while
//! edges linking the segment to components left behind are **duplicated**
//! (both processors need them to compute min edges and freezes).
//! [`CGraph::dedup_edges`] removes the duplicates whenever two holdings
//! recombine — original edges are unique per vertex pair, so identity is
//! `(orig.u, orig.v)`.

use mnd_graph::partition::VertexRange;
use mnd_graph::types::{VertexId, WEdge};
use mnd_graph::{CsrGraph, EdgeList};

/// A component identifier. Components are named by the smallest original
/// vertex they contain, so ids stay globally consistent without any central
/// allocator.
pub type CompId = u32;

/// An inter-component edge: current component endpoints plus the original
/// graph edge it stands for.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct CEdge {
    /// One component endpoint.
    pub a: CompId,
    /// The other component endpoint.
    pub b: CompId,
    /// The original graph edge (weight + global tie-break + provenance).
    pub orig: WEdge,
}

impl CEdge {
    /// Creates an edge; component endpoints are stored canonically
    /// (`a <= b`).
    #[inline]
    pub fn new(a: CompId, b: CompId, orig: WEdge) -> Self {
        if a <= b {
            CEdge { a, b, orig }
        } else {
            CEdge { a: b, b: a, orig }
        }
    }

    /// True if both endpoints are the same component.
    #[inline]
    pub fn is_self(&self) -> bool {
        self.a == self.b
    }

    /// The component endpoint other than `c` (debug-checked).
    #[inline]
    pub fn other(&self, c: CompId) -> CompId {
        debug_assert!(c == self.a || c == self.b);
        if c == self.a {
            self.b
        } else {
            self.a
        }
    }

    /// Total-order key: the original edge's `(w, u, v)`.
    #[inline]
    pub fn key(&self) -> (u32, VertexId, VertexId) {
        self.orig.key()
    }
}

impl PartialOrd for CEdge {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CEdge {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

impl std::fmt::Debug for CEdge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[c{}~c{} via {:?}]", self.a, self.b, self.orig)
    }
}

/// A processor's current holding: resident components and the edges it
/// knows about.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CGraph {
    /// Sorted, deduplicated resident component ids.
    resident: Vec<CompId>,
    /// Edges held by this processor (each endpoint may be non-resident).
    edges: Vec<CEdge>,
    /// Components frozen by a previous `indComp` invocation (sticky across
    /// stages until a relabel merges them away or they move processors).
    frozen: Vec<CompId>,
}

impl CGraph {
    /// Empty holding.
    pub fn new() -> Self {
        CGraph::default()
    }

    /// Builds the level-0 holding for a partition of the input graph:
    /// every owned vertex is a singleton component; edges are all edges
    /// touching the range (cut edges included, held by the inside endpoint;
    /// internal edges held once).
    pub fn from_partition(g: &CsrGraph, range: VertexRange) -> Self {
        let resident: Vec<CompId> = range.iter().collect();
        let edges = g
            .edges_touching_range(range.start, range.end)
            .into_iter()
            .map(|e| CEdge::new(e.u, e.v, e))
            .collect();
        CGraph { resident, edges, frozen: Vec::new() }
    }

    /// Builds a whole-graph holding (single-device execution): all vertices
    /// resident, all edges held.
    pub fn from_edge_list(el: &EdgeList) -> Self {
        CGraph {
            resident: (0..el.num_vertices()).collect(),
            edges: el.edges().iter().map(|e| CEdge::new(e.u, e.v, *e)).collect(),
            frozen: Vec::new(),
        }
    }

    /// Constructs from parts (used by segment transfer). `resident` must be
    /// sorted and deduplicated.
    pub fn from_parts(resident: Vec<CompId>, edges: Vec<CEdge>, frozen: Vec<CompId>) -> Self {
        debug_assert!(resident.windows(2).all(|w| w[0] < w[1]));
        CGraph { resident, edges, frozen }
    }

    /// Resident component ids (sorted).
    #[inline]
    pub fn resident(&self) -> &[CompId] {
        &self.resident
    }

    /// Number of resident components.
    #[inline]
    pub fn num_resident(&self) -> usize {
        self.resident.len()
    }

    /// Held edges.
    #[inline]
    pub fn edges(&self) -> &[CEdge] {
        &self.edges
    }

    /// Mutable access for kernels in this crate and the driver.
    #[inline]
    pub fn edges_mut(&mut self) -> &mut Vec<CEdge> {
        &mut self.edges
    }

    /// Components frozen by the last independent computation.
    #[inline]
    pub fn frozen(&self) -> &[CompId] {
        &self.frozen
    }

    /// Replaces the frozen set (kernels call this after an invocation).
    pub fn set_frozen(&mut self, mut frozen: Vec<CompId>) {
        frozen.sort_unstable();
        frozen.dedup();
        self.frozen = frozen;
    }

    /// Clears freeze marks (done when residency changes — a component that
    /// froze on a cut edge may be able to expand once its neighbour becomes
    /// resident).
    pub fn clear_frozen(&mut self) {
        self.frozen.clear();
    }

    /// True if `c` is resident here.
    #[inline]
    pub fn is_resident(&self, c: CompId) -> bool {
        self.resident.binary_search(&c).is_ok()
    }

    /// True if the holding has no resident components and no edges.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty() && self.edges.is_empty()
    }

    /// Number of edges with a non-resident endpoint (the holding's "ghost
    /// degree" — drives communication volume).
    pub fn num_cut_edges(&self) -> usize {
        self.edges
            .iter()
            .filter(|e| !self.is_resident(e.a) || !self.is_resident(e.b))
            .count()
    }

    /// Replaces the resident set (sorted + deduplicated by this call).
    pub fn set_resident(&mut self, mut resident: Vec<CompId>) {
        resident.sort_unstable();
        resident.dedup();
        self.resident = resident;
    }

    /// Applies a component renaming to **all** edge endpoints. `map` returns
    /// the new id of a component (identity for unknown ids). Resident ids
    /// and frozen marks are remapped too.
    pub fn relabel(&mut self, map: impl Fn(CompId) -> CompId) {
        for e in &mut self.edges {
            *e = CEdge::new(map(e.a), map(e.b), e.orig);
        }
        for r in &mut self.resident {
            *r = map(*r);
        }
        self.resident.sort_unstable();
        self.resident.dedup();
        for f in &mut self.frozen {
            *f = map(*f);
        }
        self.frozen.sort_unstable();
        self.frozen.dedup();
    }

    /// Removes self edges (endpoints in the same component) — the paper's
    /// `removeSelfEdges` (§3.3).
    pub fn remove_self_edges(&mut self) {
        self.edges.retain(|e| !e.is_self());
    }

    /// Keeps only the lightest edge between every component pair — the
    /// paper's `removeMultiEdges` (§3.3), implemented with the same
    /// hash-table-of-minimums it describes.
    pub fn remove_multi_edges(&mut self) {
        let mut best: std::collections::HashMap<(CompId, CompId), CEdge> =
            std::collections::HashMap::with_capacity(self.edges.len());
        for &e in &self.edges {
            debug_assert!(!e.is_self(), "run remove_self_edges first");
            match best.entry((e.a, e.b)) {
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    if e < *o.get() {
                        o.insert(e);
                    }
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(e);
                }
            }
        }
        self.edges = best.into_values().collect();
        self.sort_edges();
    }

    /// Removes duplicate holdings of the *same original edge* (arises when
    /// a moved segment recombines with a holding that kept a boundary copy).
    pub fn dedup_edges(&mut self) {
        self.edges.sort_unstable_by_key(|e| (e.orig.u, e.orig.v, e.a, e.b));
        self.edges.dedup_by_key(|e| (e.orig.u, e.orig.v));
        self.sort_edges();
    }

    /// Canonical deterministic edge order (by original-edge key).
    pub fn sort_edges(&mut self) {
        self.edges.sort_unstable();
    }

    /// Absorbs another holding: unions resident sets, concatenates edges,
    /// dedups same-original edges, merges freeze marks.
    pub fn absorb(&mut self, other: CGraph) {
        self.resident.extend(other.resident);
        self.resident.sort_unstable();
        self.resident.dedup();
        self.edges.extend(other.edges);
        self.dedup_edges();
        self.frozen.extend(other.frozen);
        self.frozen.sort_unstable();
        self.frozen.dedup();
    }

    /// Splits off the components in `take` (must be a subset of resident)
    /// into a new holding. Edges fully inside `take` move; boundary edges
    /// (one endpoint in `take`, one resident endpoint remaining) are
    /// **copied** to the new holding and retained here; edges with a
    /// non-resident endpoint in `take`'s perspective follow the same rule.
    pub fn split_off(&mut self, take: &[CompId]) -> CGraph {
        let take_set: std::collections::HashSet<CompId> = take.iter().copied().collect();
        debug_assert!(take.iter().all(|c| self.is_resident(*c)), "take ⊄ resident");

        let mut moved_edges = Vec::new();
        let mut kept_edges = Vec::new();
        for &e in &self.edges {
            let a_in = take_set.contains(&e.a);
            let b_in = take_set.contains(&e.b);
            match (a_in, b_in) {
                (true, true) => moved_edges.push(e),
                (false, false) => kept_edges.push(e),
                _ => {
                    // Boundary edge: the mover always needs it; the holder
                    // keeps a copy only if its side of the edge remains
                    // resident (otherwise the edge is pure ghost-to-ghost
                    // here and would only waste memory).
                    moved_edges.push(e);
                    let stay_end = if a_in { e.b } else { e.a };
                    if self.is_resident(stay_end) {
                        kept_edges.push(e);
                    }
                }
            }
        }
        self.edges = kept_edges;
        let mut new_resident: Vec<CompId> = take.to_vec();
        new_resident.sort_unstable();
        new_resident.dedup();
        self.resident.retain(|c| !take_set.contains(c));
        let moved_frozen: Vec<CompId> =
            self.frozen.iter().copied().filter(|c| take_set.contains(c)).collect();
        self.frozen.retain(|c| !take_set.contains(c));
        CGraph { resident: new_resident, edges: moved_edges, frozen: moved_frozen }
    }

    /// Approximate in-memory footprint in bytes — the quantity the
    /// hierarchical merge compares against a node's memory capacity.
    pub fn approx_bytes(&self) -> usize {
        self.resident.len() * 4 + self.edges.len() * std::mem::size_of::<CEdge>()
    }

    /// Structural sanity check for tests: resident sorted/deduped, no edge
    /// duplicated by original identity.
    pub fn validate(&self) -> Result<(), String> {
        if !self.resident.windows(2).all(|w| w[0] < w[1]) {
            return Err("resident not sorted+dedup".into());
        }
        let mut seen = std::collections::HashSet::with_capacity(self.edges.len());
        for e in &self.edges {
            if !seen.insert((e.orig.u, e.orig.v)) {
                return Err(format!("duplicate original edge {:?}", e.orig));
            }
        }
        for f in &self.frozen {
            if !self.is_resident(*f) {
                return Err(format!("frozen non-resident component {f}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnd_graph::gen;

    fn path4() -> CsrGraph {
        CsrGraph::from_edge_list(&gen::path(4, 1))
    }

    #[test]
    fn from_partition_includes_cut_edges() {
        let g = path4();
        let cg = CGraph::from_partition(&g, VertexRange { start: 1, end: 3 });
        assert_eq!(cg.resident(), &[1, 2]);
        assert_eq!(cg.edges().len(), 3); // 0-1 (cut), 1-2 (internal), 2-3 (cut)
        assert_eq!(cg.num_cut_edges(), 2);
        cg.validate().unwrap();
    }

    #[test]
    fn whole_graph_has_no_cut_edges() {
        let el = gen::gnm(50, 100, 3);
        let cg = CGraph::from_edge_list(&el);
        assert_eq!(cg.num_cut_edges(), 0);
        assert_eq!(cg.num_resident(), 50);
    }

    #[test]
    fn relabel_merges_resident_ids() {
        let g = path4();
        let mut cg = CGraph::from_partition(&g, VertexRange { start: 0, end: 4 });
        cg.relabel(|c| if c == 1 { 0 } else { c });
        assert_eq!(cg.resident(), &[0, 2, 3]);
        // Edge 0-1 became a self edge.
        assert_eq!(cg.edges().iter().filter(|e| e.is_self()).count(), 1);
        cg.remove_self_edges();
        assert_eq!(cg.edges().len(), 2);
    }

    #[test]
    fn multi_edge_removal_keeps_lightest() {
        let e1 = WEdge::new(0, 2, 5);
        let e2 = WEdge::new(1, 3, 2);
        let mut cg = CGraph::from_parts(
            vec![0, 1],
            vec![CEdge::new(0, 1, e1), CEdge::new(0, 1, e2)],
            vec![],
        );
        cg.remove_multi_edges();
        assert_eq!(cg.edges().len(), 1);
        assert_eq!(cg.edges()[0].orig, e2);
    }

    #[test]
    fn split_off_copies_boundary_edges() {
        // Components 0,1,2 resident; edges 0-1, 1-2, 2-9 (9 non-resident).
        let mut cg = CGraph::from_parts(
            vec![0, 1, 2],
            vec![
                CEdge::new(0, 1, WEdge::new(0, 1, 1)),
                CEdge::new(1, 2, WEdge::new(1, 2, 2)),
                CEdge::new(2, 9, WEdge::new(2, 9, 3)),
            ],
            vec![],
        );
        let seg = cg.split_off(&[2]);
        assert_eq!(seg.resident(), &[2]);
        // Segment takes 1-2 (boundary, copied) and 2-9 (its only resident
        // endpoint is moving, so it moves as a "boundary" copy as well).
        assert_eq!(seg.edges().len(), 2);
        assert_eq!(cg.resident(), &[0, 1]);
        // Holder keeps 0-1 and the boundary copy of 1-2, but drops 2-9
        // (after the split neither endpoint 2 nor 9 is resident here).
        assert_eq!(cg.edges().len(), 2);
        assert!(cg.edges().iter().any(|e| e.orig == WEdge::new(1, 2, 2)));
        assert!(!cg.edges().iter().any(|e| e.orig == WEdge::new(2, 9, 3)));
    }

    #[test]
    fn absorb_dedups_boundary_copies() {
        let shared = CEdge::new(1, 2, WEdge::new(1, 2, 2));
        let mut a = CGraph::from_parts(vec![1], vec![shared], vec![]);
        let b = CGraph::from_parts(vec![2], vec![shared], vec![]);
        a.absorb(b);
        assert_eq!(a.resident(), &[1, 2]);
        assert_eq!(a.edges().len(), 1);
        a.validate().unwrap();
    }

    #[test]
    fn approx_bytes_grows_with_content() {
        let empty = CGraph::new();
        let el = gen::gnm(100, 400, 1);
        let cg = CGraph::from_edge_list(&el);
        assert!(cg.approx_bytes() > empty.approx_bytes());
    }

    #[test]
    fn validate_catches_duplicates() {
        let e = CEdge::new(0, 1, WEdge::new(0, 1, 1));
        let cg = CGraph::from_parts(vec![0, 1], vec![e, e], vec![]);
        assert!(cg.validate().is_err());
    }
}
