//! The *contracted graph*: components plus inter-component edges with
//! original-edge provenance.
//!
//! After the first round of independent computations, every stage of
//! MND-MST (self/multi-edge removal, ring segment exchange, leader merges,
//! post-processing) manipulates graphs whose "vertices" are component ids.
//! [`CGraph`] is that uniform representation:
//!
//! * **resident** components — the ones this processor currently owns,
//! * **edges** — inter-component edges; each carries the original graph
//!   edge ([`CEdge::orig`]) so the final MSF can be reported in terms of
//!   input edges, and so weight ties break identically everywhere.
//!
//! Edges are stored **structure-of-arrays**: three parallel columns
//! (`ea`, `eb`, `eorig`) instead of a `Vec<CEdge>`. The reduce passes
//! (relabel, self/multi-edge removal, dedup) are the hot path of every
//! merge level and sweep the columns linearly; SoA keeps those sweeps
//! compact and lets them run fully in place — sorting goes through a
//! reusable index-permutation scratch buffer, and removal compacts with a
//! write cursor, so no pass allocates a new edge vector. [`CEdge`] remains
//! the *view* type: [`CGraph::edge`], [`CGraph::iter_edges`] and
//! [`CGraph::edges_vec`] materialize rows on demand for callers that want
//! the old AoS shape.
//!
//! An edge may connect a resident component to a *non-resident* one (the
//! paper's ghost component); such edges are exactly the ones the exception
//! condition of `indComp` refuses to contract.
//!
//! Edge ownership rule (see DESIGN.md): when a segment of components moves
//! between processors, edges internal to the segment move with it, while
//! edges linking the segment to components left behind are **duplicated**
//! (both processors need them to compute min edges and freezes).
//! [`CGraph::dedup_edges`] removes the duplicates whenever two holdings
//! recombine — original edges are unique per vertex pair, so identity is
//! `(orig.u, orig.v)`.

use mnd_graph::partition::VertexRange;
use mnd_graph::types::{VertexId, WEdge};
use mnd_graph::{CsrGraph, EdgeList};
use mnd_wire::Wire;
use rayon::prelude::*;

use crate::lockfree::{as_atomic_u64, SlotLookup};
use crate::policy::{KernelClass, KernelPolicy, ParVariant};

/// A component identifier. Components are named by the smallest original
/// vertex they contain, so ids stay globally consistent without any central
/// allocator.
pub type CompId = u32;

/// An inter-component edge: current component endpoints plus the original
/// graph edge it stands for. This is the row *view* over the SoA columns
/// of [`CGraph`] (and the unit that crosses the wire inside segment
/// messages).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct CEdge {
    /// One component endpoint.
    pub a: CompId,
    /// The other component endpoint.
    pub b: CompId,
    /// The original graph edge (weight + global tie-break + provenance).
    pub orig: WEdge,
}

impl CEdge {
    /// Creates an edge; component endpoints are stored canonically
    /// (`a <= b`).
    #[inline]
    pub fn new(a: CompId, b: CompId, orig: WEdge) -> Self {
        if a <= b {
            CEdge { a, b, orig }
        } else {
            CEdge { a: b, b: a, orig }
        }
    }

    /// True if both endpoints are the same component.
    #[inline]
    pub fn is_self(&self) -> bool {
        self.a == self.b
    }

    /// The component endpoint other than `c` (debug-checked).
    #[inline]
    pub fn other(&self, c: CompId) -> CompId {
        debug_assert!(c == self.a || c == self.b);
        if c == self.a {
            self.b
        } else {
            self.a
        }
    }

    /// Total-order key: the original edge's `(w, u, v)`.
    #[inline]
    pub fn key(&self) -> (u32, VertexId, VertexId) {
        self.orig.key()
    }
}

impl Wire for CEdge {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        // Two packed endpoints + the original edge (u, v, w).
        (2 * std::mem::size_of::<CompId>() as u64) + self.orig.wire_bytes()
    }
}

impl PartialOrd for CEdge {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CEdge {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

impl std::fmt::Debug for CEdge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[c{}~c{} via {:?}]", self.a, self.b, self.orig)
    }
}

/// Sentinel marking an already-placed slot during in-place permutation.
const PLACED: u32 = u32::MAX;

/// A processor's current holding: resident components and the edges it
/// knows about (SoA columns).
#[derive(Clone, Debug, Default)]
pub struct CGraph {
    /// Sorted, deduplicated resident component ids.
    resident: Vec<CompId>,
    /// Edge endpoint column `a` (canonical `a <= b` per row).
    ea: Vec<CompId>,
    /// Edge endpoint column `b`.
    eb: Vec<CompId>,
    /// Original-edge column (provenance + tie-break).
    eorig: Vec<WEdge>,
    /// Components frozen by a previous `indComp` invocation (sticky across
    /// stages until a relabel merges them away or they move processors).
    frozen: Vec<CompId>,
    /// Reusable index buffer for in-place sorts; never part of identity.
    scratch: Vec<u32>,
    /// Reusable per-resident incident-count column (see
    /// [`CGraph::incident_counts_with`]); never part of identity.
    counts: Vec<u64>,
}

impl PartialEq for CGraph {
    fn eq(&self, other: &Self) -> bool {
        self.resident == other.resident
            && self.ea == other.ea
            && self.eb == other.eb
            && self.eorig == other.eorig
            && self.frozen == other.frozen
    }
}

impl CGraph {
    /// Empty holding.
    pub fn new() -> Self {
        CGraph::default()
    }

    /// Builds the level-0 holding for a partition of the input graph:
    /// every owned vertex is a singleton component; edges are all edges
    /// touching the range (cut edges included, held by the inside endpoint;
    /// internal edges held once).
    pub fn from_partition(g: &CsrGraph, range: VertexRange) -> Self {
        let mut cg = CGraph {
            resident: range.iter().collect(),
            ..CGraph::default()
        };
        for e in g.edges_touching_range(range.start, range.end) {
            cg.push_edge(CEdge::new(e.u, e.v, e));
        }
        cg
    }

    /// Builds a whole-graph holding (single-device execution): all vertices
    /// resident, all edges held.
    pub fn from_edge_list(el: &EdgeList) -> Self {
        let mut cg = CGraph {
            resident: (0..el.num_vertices()).collect(),
            ..CGraph::default()
        };
        for e in el.edges() {
            cg.push_edge(CEdge::new(e.u, e.v, *e));
        }
        cg
    }

    /// Constructs from parts (used by segment transfer). `resident` must be
    /// sorted and deduplicated.
    pub fn from_parts(resident: Vec<CompId>, edges: Vec<CEdge>, frozen: Vec<CompId>) -> Self {
        debug_assert!(resident.windows(2).all(|w| w[0] < w[1]));
        let mut cg = CGraph {
            resident,
            frozen,
            ..CGraph::default()
        };
        cg.ea.reserve(edges.len());
        cg.eb.reserve(edges.len());
        cg.eorig.reserve(edges.len());
        for e in edges {
            cg.push_edge(e);
        }
        cg
    }

    /// Resident component ids (sorted).
    #[inline]
    pub fn resident(&self) -> &[CompId] {
        &self.resident
    }

    /// Number of resident components.
    #[inline]
    pub fn num_resident(&self) -> usize {
        self.resident.len()
    }

    /// Number of held edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.ea.len()
    }

    /// The `i`-th edge as a row view.
    #[inline]
    pub fn edge(&self, i: usize) -> CEdge {
        CEdge {
            a: self.ea[i],
            b: self.eb[i],
            orig: self.eorig[i],
        }
    }

    /// Iterates the edges as row views, in storage order.
    #[inline]
    pub fn iter_edges(&self) -> impl Iterator<Item = CEdge> + '_ {
        self.ea
            .iter()
            .zip(&self.eb)
            .zip(&self.eorig)
            .map(|((&a, &b), &orig)| CEdge { a, b, orig })
    }

    /// The edge endpoint columns `(a, b)` (canonical `a <= b` per row).
    #[inline]
    pub fn endpoint_cols(&self) -> (&[CompId], &[CompId]) {
        (&self.ea, &self.eb)
    }

    /// The original-edge column.
    #[inline]
    pub fn orig_col(&self) -> &[WEdge] {
        &self.eorig
    }

    /// Materializes the edges as an AoS vector (compatibility accessor for
    /// tests and message assembly; hot paths use the columns directly).
    pub fn edges_vec(&self) -> Vec<CEdge> {
        self.iter_edges().collect()
    }

    /// Appends one edge.
    #[inline]
    pub fn push_edge(&mut self, e: CEdge) {
        self.ea.push(e.a);
        self.eb.push(e.b);
        self.eorig.push(e.orig);
    }

    /// Components frozen by the last independent computation.
    #[inline]
    pub fn frozen(&self) -> &[CompId] {
        &self.frozen
    }

    /// Replaces the frozen set (kernels call this after an invocation).
    pub fn set_frozen(&mut self, mut frozen: Vec<CompId>) {
        frozen.sort_unstable();
        frozen.dedup();
        self.frozen = frozen;
    }

    /// Clears freeze marks (done when residency changes — a component that
    /// froze on a cut edge may be able to expand once its neighbour becomes
    /// resident).
    pub fn clear_frozen(&mut self) {
        self.frozen.clear();
    }

    /// True if `c` is resident here.
    #[inline]
    pub fn is_resident(&self, c: CompId) -> bool {
        self.resident.binary_search(&c).is_ok()
    }

    /// True if the holding has no resident components and no edges.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty() && self.ea.is_empty()
    }

    /// Number of edges with a non-resident endpoint (the holding's "ghost
    /// degree" — drives communication volume).
    pub fn num_cut_edges(&self) -> usize {
        self.ea
            .iter()
            .zip(&self.eb)
            .filter(|&(&a, &b)| !self.is_resident(a) || !self.is_resident(b))
            .count()
    }

    /// Replaces the resident set (sorted + deduplicated by this call).
    pub fn set_resident(&mut self, mut resident: Vec<CompId>) {
        resident.sort_unstable();
        resident.dedup();
        self.resident = resident;
    }

    /// Applies a component renaming to **all** edge endpoints. `map` returns
    /// the new id of a component (identity for unknown ids). Resident ids
    /// and frozen marks are remapped too.
    pub fn relabel(&mut self, map: impl Fn(CompId) -> CompId + Sync) {
        self.relabel_with(&KernelPolicy::default(), map);
    }

    /// As [`CGraph::relabel`], with the endpoint sweep chunked across rayon
    /// workers when the policy says the holding is big enough. Rows are
    /// independent, so any chunking produces the sequential result.
    pub fn relabel_with(&mut self, policy: &KernelPolicy, map: impl Fn(CompId) -> CompId + Sync) {
        let remap_rows = |ca: &mut [CompId], cb: &mut [CompId]| {
            for (a, b) in ca.iter_mut().zip(cb.iter_mut()) {
                let na = map(*a);
                let nb = map(*b);
                // Keep the per-row canonical a <= b invariant.
                if na <= nb {
                    *a = na;
                    *b = nb;
                } else {
                    *a = nb;
                    *b = na;
                }
            }
        };
        if policy.use_par_for(KernelClass::Relabel, self.ea.len()) {
            let chunk = policy.chunk_rows.max(1);
            let pairs: Vec<(&mut [CompId], &mut [CompId])> = self
                .ea
                .chunks_mut(chunk)
                .zip(self.eb.chunks_mut(chunk))
                .collect();
            pairs
                .into_par_iter()
                .for_each(|(ca, cb)| remap_rows(ca, cb));
        } else {
            remap_rows(&mut self.ea, &mut self.eb);
        }
        for r in &mut self.resident {
            *r = map(*r);
        }
        self.resident.sort_unstable();
        self.resident.dedup();
        for f in &mut self.frozen {
            *f = map(*f);
        }
        self.frozen.sort_unstable();
        self.frozen.dedup();
    }

    /// In-place column compaction: keeps row `i` iff `keep(i)`, preserving
    /// order. Below the policy's crossover this is the allocation-free
    /// write-cursor sweep; above it the predicate is evaluated over row
    /// chunks on rayon workers first and the (memory-bound) compaction
    /// follows the precomputed flags, so any chunking yields the
    /// sequential result.
    fn retain_rows_with(
        &mut self,
        policy: &KernelPolicy,
        keep: impl Fn(&Self, usize) -> bool + Sync,
    ) {
        let n = self.ea.len();
        if policy.use_par_for(KernelClass::Reduce, n) {
            let this: &Self = self;
            let flags: Vec<Vec<bool>> = policy
                .chunk_ranges(n)
                .into_par_iter()
                .map(|(lo, hi)| (lo..hi).map(|i| keep(this, i)).collect())
                .collect();
            let mut w = 0usize;
            let mut flat = flags.iter().flatten();
            for i in 0..n {
                if *flat.next().expect("one flag per row") {
                    if w != i {
                        self.ea[w] = self.ea[i];
                        self.eb[w] = self.eb[i];
                        self.eorig[w] = self.eorig[i];
                    }
                    w += 1;
                }
            }
            self.truncate_rows(w);
            return;
        }
        let mut w = 0usize;
        for i in 0..n {
            if keep(self, i) {
                if w != i {
                    self.ea[w] = self.ea[i];
                    self.eb[w] = self.eb[i];
                    self.eorig[w] = self.eorig[i];
                }
                w += 1;
            }
        }
        self.truncate_rows(w);
    }

    /// Keeps exactly the rows whose flag is `true` (one flag per current
    /// row, storage order preserved). The external-mask companion to the
    /// predicate-driven reductions: callers that computed a keep decision
    /// elsewhere (e.g. the filter-Boruvka sweep) compact through the same
    /// write-cursor path.
    pub fn retain_edge_rows(&mut self, keep: &[bool]) {
        assert_eq!(keep.len(), self.num_edges(), "one flag per edge row");
        self.retain_rows_with(&KernelPolicy::default(), |_, i| keep[i]);
    }

    /// Drops every row past `w` from the three columns.
    fn truncate_rows(&mut self, w: usize) {
        self.ea.truncate(w);
        self.eb.truncate(w);
        self.eorig.truncate(w);
    }

    /// Applies permutation `perm` (result row `i` = current row `perm[i]`)
    /// to all three columns in place by cycle-walking; `perm` is consumed
    /// (overwritten with [`PLACED`] marks).
    fn apply_perm(&mut self, perm: &mut [u32]) {
        let n = perm.len();
        for start in 0..n {
            if perm[start] == PLACED || perm[start] as usize == start {
                continue;
            }
            let (ta, tb, torig) = (self.ea[start], self.eb[start], self.eorig[start]);
            let mut dst = start;
            loop {
                let src = perm[dst] as usize;
                perm[dst] = PLACED;
                if src == start {
                    self.ea[dst] = ta;
                    self.eb[dst] = tb;
                    self.eorig[dst] = torig;
                    break;
                }
                self.ea[dst] = self.ea[src];
                self.eb[dst] = self.eb[src];
                self.eorig[dst] = self.eorig[src];
                dst = src;
            }
        }
    }

    /// Sorts the edge rows by `key` without allocating a row vector: an
    /// index permutation is built in the reusable scratch buffer, sorted
    /// (sequentially or, above the policy crossover, with the rayon
    /// chunk-sort-and-merge), and applied across the columns by
    /// cycle-walking. The sort key is made injective by appending the row
    /// index, so the permutation — and therefore the row order — is the
    /// same whichever path ran.
    fn sort_rows_by_key<K: Ord + Send>(
        &mut self,
        policy: &KernelPolicy,
        key: impl Fn(&Self, usize) -> K + Sync,
    ) {
        let n = self.ea.len();
        let mut perm = std::mem::take(&mut self.scratch);
        perm.clear();
        perm.extend(0..n as u32);
        if policy.use_par_for(KernelClass::Reduce, n) {
            perm.par_sort_unstable_by_key(|&i| (key(self, i as usize), i));
        } else {
            perm.sort_unstable_by_key(|&i| (key(self, i as usize), i));
        }
        self.apply_perm(&mut perm);
        self.scratch = perm;
    }

    /// Removes self edges (endpoints in the same component) — the paper's
    /// `removeSelfEdges` (§3.3). In-place compaction.
    pub fn remove_self_edges(&mut self) {
        self.remove_self_edges_with(&KernelPolicy::default());
    }

    /// Policy-aware [`CGraph::remove_self_edges`].
    pub fn remove_self_edges_with(&mut self, policy: &KernelPolicy) {
        self.retain_rows_with(policy, |cg, i| cg.ea[i] != cg.eb[i]);
    }

    /// Keeps only the lightest edge between every component pair — the
    /// paper's `removeMultiEdges` (§3.3). In place: rows are co-sorted by
    /// `(a, b, orig key)` through the index scratch, each `(a, b)` run is
    /// compacted to its first (= lightest) row, then canonical order is
    /// restored. Equivalent to the hash-table-of-minimums the paper
    /// describes, without the table.
    pub fn remove_multi_edges(&mut self) {
        self.remove_multi_edges_with(&KernelPolicy::default());
    }

    /// Policy-aware [`CGraph::remove_multi_edges`].
    pub fn remove_multi_edges_with(&mut self, policy: &KernelPolicy) {
        debug_assert!(
            self.ea.iter().zip(&self.eb).all(|(a, b)| a != b),
            "run remove_self_edges first"
        );
        self.sort_rows_by_key(policy, |cg, i| (cg.ea[i], cg.eb[i], cg.eorig[i].key()));
        self.retain_rows_with(policy, |cg, i| {
            i == 0 || cg.ea[i] != cg.ea[i - 1] || cg.eb[i] != cg.eb[i - 1]
        });
        self.sort_edges_with(policy);
    }

    /// Removes duplicate holdings of the *same original edge* (arises when
    /// a moved segment recombines with a holding that kept a boundary copy).
    /// In place, same sort-compact-restore scheme as multi-edge removal.
    pub fn dedup_edges(&mut self) {
        self.dedup_edges_with(&KernelPolicy::default());
    }

    /// Policy-aware [`CGraph::dedup_edges`].
    pub fn dedup_edges_with(&mut self, policy: &KernelPolicy) {
        self.sort_rows_by_key(policy, |cg, i| {
            (cg.eorig[i].u, cg.eorig[i].v, cg.ea[i], cg.eb[i])
        });
        self.retain_rows_with(policy, |cg, i| {
            i == 0 || cg.eorig[i].u != cg.eorig[i - 1].u || cg.eorig[i].v != cg.eorig[i - 1].v
        });
        self.sort_edges_with(policy);
    }

    /// Canonical deterministic edge order (by original-edge key).
    pub fn sort_edges(&mut self) {
        self.sort_edges_with(&KernelPolicy::default());
    }

    /// Policy-aware [`CGraph::sort_edges`].
    pub fn sort_edges_with(&mut self, policy: &KernelPolicy) {
        self.sort_rows_by_key(policy, |cg, i| cg.eorig[i].key());
    }

    /// Per-resident-component incident-edge counts (slot `i` counts edges
    /// touching `resident()[i]`; a self edge counts twice, matching a
    /// per-endpoint tally). The column lives in reusable scratch so the
    /// repeated callers — device splitting, skew estimation, segment
    /// choice — stop rebuilding a hash map per call. Above the `Count`
    /// crossover the tally follows the policy's count variant: lock-free
    /// `fetch_add`s straight into the scratch column (viewed atomically,
    /// slots resolved through the dense [`SlotLookup`]) or the chunked
    /// reduction whose per-chunk partial counts are summed in chunk order.
    /// Additions commute, so every path is byte-identical.
    pub fn incident_counts_with(&mut self, policy: &KernelPolicy) -> &[u64] {
        let n = self.resident.len();
        let rows = self.ea.len();
        let mut counts = std::mem::take(&mut self.counts);
        counts.clear();
        counts.resize(n, 0);
        let tally = |range: (usize, usize), counts: &mut [u64]| {
            for i in range.0..range.1 {
                for c in [self.ea[i], self.eb[i]] {
                    if let Ok(slot) = self.resident.binary_search(&c) {
                        counts[slot] += 1;
                    }
                }
            }
        };
        if policy.use_par_for(KernelClass::Count, rows) {
            match policy.variant_for(KernelClass::Count) {
                ParVariant::LockFree => {
                    let lookup = SlotLookup::new(&self.resident);
                    let slots = as_atomic_u64(&mut counts);
                    policy
                        .chunk_ranges(rows)
                        .into_par_iter()
                        .for_each(|(lo, hi)| {
                            for i in lo..hi {
                                for c in [self.ea[i], self.eb[i]] {
                                    if let Some(slot) = lookup.get(c) {
                                        slots[slot as usize]
                                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                    }
                                }
                            }
                        });
                }
                ParVariant::ChunkMerge => {
                    let partials: Vec<Vec<u64>> = policy
                        .chunk_ranges(rows)
                        .into_par_iter()
                        .map(|range| {
                            let mut part = vec![0u64; n];
                            tally(range, &mut part);
                            part
                        })
                        .collect();
                    for part in partials {
                        for (dst, v) in counts.iter_mut().zip(part) {
                            *dst += v;
                        }
                    }
                }
            }
        } else {
            tally((0, rows), &mut counts);
        }
        self.counts = counts;
        &self.counts
    }

    /// [`CGraph::incident_counts_with`] under the default policy.
    pub fn incident_counts(&mut self) -> &[u64] {
        self.incident_counts_with(&KernelPolicy::default())
    }

    /// Absorbs another holding: unions resident sets, concatenates edges,
    /// dedups same-original edges, merges freeze marks.
    pub fn absorb(&mut self, other: CGraph) {
        self.resident.extend(other.resident);
        self.resident.sort_unstable();
        self.resident.dedup();
        self.ea.extend(other.ea);
        self.eb.extend(other.eb);
        self.eorig.extend(other.eorig);
        self.dedup_edges();
        self.frozen.extend(other.frozen);
        self.frozen.sort_unstable();
        self.frozen.dedup();
    }

    /// Splits off the components in `take` (must be a subset of resident)
    /// into a new holding. Edges fully inside `take` move; boundary edges
    /// (one endpoint in `take`, one resident endpoint remaining) are
    /// **copied** to the new holding and retained here; edges with a
    /// non-resident endpoint in `take`'s perspective follow the same rule.
    pub fn split_off(&mut self, take: &[CompId]) -> CGraph {
        let take_set: std::collections::HashSet<CompId> = take.iter().copied().collect();
        debug_assert!(take.iter().all(|c| self.is_resident(*c)), "take ⊄ resident");

        let mut moved = CGraph::new();
        // Single sweep: rows moving to the segment are pushed to `moved`,
        // rows staying are compacted in place with a write cursor.
        let n = self.ea.len();
        let mut w = 0usize;
        for i in 0..n {
            let (a, b) = (self.ea[i], self.eb[i]);
            let a_in = take_set.contains(&a);
            let b_in = take_set.contains(&b);
            let (goes, stays) = match (a_in, b_in) {
                (true, true) => (true, false),
                (false, false) => (false, true),
                _ => {
                    // Boundary edge: the mover always needs it; the holder
                    // keeps a copy only if its side of the edge remains
                    // resident (otherwise the edge is pure ghost-to-ghost
                    // here and would only waste memory).
                    let stay_end = if a_in { b } else { a };
                    (true, self.is_resident(stay_end))
                }
            };
            if goes {
                moved.push_edge(CEdge {
                    a,
                    b,
                    orig: self.eorig[i],
                });
            }
            if stays {
                if w != i {
                    self.ea[w] = self.ea[i];
                    self.eb[w] = self.eb[i];
                    self.eorig[w] = self.eorig[i];
                }
                w += 1;
            }
        }
        self.ea.truncate(w);
        self.eb.truncate(w);
        self.eorig.truncate(w);

        let mut new_resident: Vec<CompId> = take.to_vec();
        new_resident.sort_unstable();
        new_resident.dedup();
        moved.resident = new_resident;
        self.resident.retain(|c| !take_set.contains(c));
        moved.frozen = self
            .frozen
            .iter()
            .copied()
            .filter(|c| take_set.contains(c))
            .collect();
        self.frozen.retain(|c| !take_set.contains(c));
        moved
    }

    /// Approximate in-memory footprint in bytes — the quantity the
    /// hierarchical merge compares against a node's memory capacity.
    /// (SoA columns total the same 20 bytes/edge as the packed row view.)
    pub fn approx_bytes(&self) -> usize {
        self.resident.len() * 4 + self.ea.len() * std::mem::size_of::<CEdge>()
    }

    /// Structural sanity check for tests: resident sorted/deduped, per-row
    /// canonical endpoints, no edge duplicated by original identity.
    pub fn validate(&self) -> Result<(), String> {
        if !self.resident.windows(2).all(|w| w[0] < w[1]) {
            return Err("resident not sorted+dedup".into());
        }
        if self.ea.len() != self.eb.len() || self.ea.len() != self.eorig.len() {
            return Err("SoA columns out of sync".into());
        }
        let mut seen = std::collections::HashSet::with_capacity(self.ea.len());
        for i in 0..self.ea.len() {
            if self.ea[i] > self.eb[i] {
                return Err(format!("row {i} violates a <= b"));
            }
            let orig = &self.eorig[i];
            if !seen.insert((orig.u, orig.v)) {
                return Err(format!("duplicate original edge {orig:?}"));
            }
        }
        for f in &self.frozen {
            if !self.is_resident(*f) {
                return Err(format!("frozen non-resident component {f}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnd_graph::gen;

    fn path4() -> CsrGraph {
        CsrGraph::from_edge_list(&gen::path(4, 1))
    }

    #[test]
    fn from_partition_includes_cut_edges() {
        let g = path4();
        let cg = CGraph::from_partition(&g, VertexRange { start: 1, end: 3 });
        assert_eq!(cg.resident(), &[1, 2]);
        assert_eq!(cg.num_edges(), 3); // 0-1 (cut), 1-2 (internal), 2-3 (cut)
        assert_eq!(cg.num_cut_edges(), 2);
        cg.validate().unwrap();
    }

    #[test]
    fn whole_graph_has_no_cut_edges() {
        let el = gen::gnm(50, 100, 3);
        let cg = CGraph::from_edge_list(&el);
        assert_eq!(cg.num_cut_edges(), 0);
        assert_eq!(cg.num_resident(), 50);
    }

    #[test]
    fn relabel_merges_resident_ids() {
        let g = path4();
        let mut cg = CGraph::from_partition(&g, VertexRange { start: 0, end: 4 });
        cg.relabel(|c| if c == 1 { 0 } else { c });
        assert_eq!(cg.resident(), &[0, 2, 3]);
        // Edge 0-1 became a self edge.
        assert_eq!(cg.iter_edges().filter(|e| e.is_self()).count(), 1);
        cg.remove_self_edges();
        assert_eq!(cg.num_edges(), 2);
    }

    #[test]
    fn multi_edge_removal_keeps_lightest() {
        let e1 = WEdge::new(0, 2, 5);
        let e2 = WEdge::new(1, 3, 2);
        let mut cg = CGraph::from_parts(
            vec![0, 1],
            vec![CEdge::new(0, 1, e1), CEdge::new(0, 1, e2)],
            vec![],
        );
        cg.remove_multi_edges();
        assert_eq!(cg.num_edges(), 1);
        assert_eq!(cg.edge(0).orig, e2);
    }

    #[test]
    fn in_place_sort_matches_aos_sort() {
        // The permutation sort over SoA columns must order rows exactly as
        // sorting the materialized CEdge vector would.
        let el = gen::gnm(60, 300, 17);
        let mut cg = CGraph::from_edge_list(&el);
        let mut rows = cg.edges_vec();
        cg.sort_rows_by_key(&KernelPolicy::default(), |cg, i| {
            (cg.eb[i], cg.ea[i], cg.eorig[i].key())
        });
        rows.sort_unstable_by_key(|e| (e.b, e.a, e.key()));
        assert_eq!(cg.edges_vec(), rows);
        // And the scratch buffer is reused across calls, not regrown.
        let cap = cg.scratch.capacity();
        cg.sort_edges();
        assert_eq!(cg.scratch.capacity(), cap);
    }

    #[test]
    fn split_off_copies_boundary_edges() {
        // Components 0,1,2 resident; edges 0-1, 1-2, 2-9 (9 non-resident).
        let mut cg = CGraph::from_parts(
            vec![0, 1, 2],
            vec![
                CEdge::new(0, 1, WEdge::new(0, 1, 1)),
                CEdge::new(1, 2, WEdge::new(1, 2, 2)),
                CEdge::new(2, 9, WEdge::new(2, 9, 3)),
            ],
            vec![],
        );
        let seg = cg.split_off(&[2]);
        assert_eq!(seg.resident(), &[2]);
        // Segment takes 1-2 (boundary, copied) and 2-9 (its only resident
        // endpoint is moving, so it moves as a "boundary" copy as well).
        assert_eq!(seg.num_edges(), 2);
        assert_eq!(cg.resident(), &[0, 1]);
        // Holder keeps 0-1 and the boundary copy of 1-2, but drops 2-9
        // (after the split neither endpoint 2 nor 9 is resident here).
        assert_eq!(cg.num_edges(), 2);
        assert!(cg.iter_edges().any(|e| e.orig == WEdge::new(1, 2, 2)));
        assert!(!cg.iter_edges().any(|e| e.orig == WEdge::new(2, 9, 3)));
    }

    #[test]
    fn absorb_dedups_boundary_copies() {
        let shared = CEdge::new(1, 2, WEdge::new(1, 2, 2));
        let mut a = CGraph::from_parts(vec![1], vec![shared], vec![]);
        let b = CGraph::from_parts(vec![2], vec![shared], vec![]);
        a.absorb(b);
        assert_eq!(a.resident(), &[1, 2]);
        assert_eq!(a.num_edges(), 1);
        a.validate().unwrap();
    }

    #[test]
    fn approx_bytes_grows_with_content() {
        let empty = CGraph::new();
        let el = gen::gnm(100, 400, 1);
        let cg = CGraph::from_edge_list(&el);
        assert!(cg.approx_bytes() > empty.approx_bytes());
    }

    #[test]
    fn validate_catches_duplicates() {
        let e = CEdge::new(0, 1, WEdge::new(0, 1, 1));
        let cg = CGraph::from_parts(vec![0, 1], vec![e, e], vec![]);
        assert!(cg.validate().is_err());
    }

    #[test]
    fn cedge_wire_bytes_is_packed_row_size() {
        let e = CEdge::new(0, 1, WEdge::new(0, 1, 1));
        assert_eq!(e.wire_bytes(), std::mem::size_of::<CEdge>() as u64);
    }
}
