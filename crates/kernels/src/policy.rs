//! Execution policies for the independent-computation kernel, plus the work
//! profile it reports to the cost model.
//!
//! [`KernelPolicy`] governs the *parallel holding plane*: every hot sweep
//! over a holding's SoA columns — min-edge election, permutation sorts,
//! compaction, ghost relabels, incident-count reductions — consults it to
//! decide sequential vs. rayon-chunked execution and, above the crossover,
//! which chunk size to use. The numbers are platform-dependent (Durbhakula
//! 2020), so the `mnd-device` calibration plane measures them at startup
//! rather than hard-coding constants; [`KernelPolicy::default`] provides
//! conservative fallbacks for uncalibrated contexts.
//!
//! **Determinism contract:** for any policy, any chunk size and any worker
//! count, every kernel must produce output *byte-identical* to
//! [`KernelPolicy::seq`] — parallel merges are ordered by `(key, row)` so
//! they are associative, and sorts use injective keys. The oracle tests in
//! `tests/parallel_plane_oracle.rs` assert this across adversarial
//! chunkings.

/// The four kernel families of the holding plane, each with its own
/// seq/par crossover: their per-row work differs by an order of magnitude
/// (an election row is a compare, a reduction row may hash, a count row is
/// two lookups + increments, a relabel row is two table lookups plus a
/// write), so one shared threshold either under-parallelises elections or
/// thrashes relabels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// Min-edge election scans (the per-iteration winner search).
    Election,
    /// Reductions and permutations: compaction, key sorts.
    Reduce,
    /// Incident-count tallies (device splitting, skew estimation).
    Count,
    /// Ghost/parent relabels (two lookups + write per row).
    Relabel,
}

/// How a class's parallel path is implemented. Both variants are
/// byte-identical to sequential (the determinism contract); they differ
/// only in cost structure, so calibration picks per class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ParVariant {
    /// Per-chunk partial tables merged in chunk order (the PR 3 plane).
    /// Pays one table allocation + one merge pass per chunk.
    ChunkMerge,
    /// One CAS'd atomic word per slot (packed `(weight << 32) | row`
    /// fetch-min; `fetch_add` counts) — no partial tables, no merge phase.
    #[default]
    LockFree,
}

/// Seq/par crossover sizes, per-class parallel variants and chunk
/// granularity for the holding-plane kernels (election scans, permutation
/// sorts, compactions, counts, relabels).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelPolicy {
    /// Row count at or below which election kernels stay sequential
    /// (thread spawn + partial-table merge would dominate).
    pub par_threshold: usize,
    /// Crossover for reduction kernels (compaction, sorts).
    pub reduce_par_threshold: usize,
    /// Crossover for incident-count kernels. Separate from `Reduce` so a
    /// calibration clamp on one (see `calibrate_kernel_policy`) cannot
    /// disable a profitable parallel path on the other.
    pub count_par_threshold: usize,
    /// Crossover for relabel kernels.
    pub relabel_par_threshold: usize,
    /// Parallel implementation for election sweeps above the crossover.
    pub election_variant: ParVariant,
    /// Parallel implementation for count sweeps above the crossover.
    pub count_variant: ParVariant,
    /// Rows per parallel chunk above the threshold.
    pub chunk_rows: usize,
}

impl Default for KernelPolicy {
    /// Uncalibrated fallback: one default chunk of slack before going
    /// parallel, 4K-row chunks (matches the pre-policy scan constant), all
    /// classes at the same conservative crossover, lock-free variants.
    fn default() -> Self {
        KernelPolicy {
            par_threshold: 4096,
            reduce_par_threshold: 4096,
            count_par_threshold: 4096,
            relabel_par_threshold: 4096,
            election_variant: ParVariant::LockFree,
            count_variant: ParVariant::LockFree,
            chunk_rows: 4096,
        }
    }
}

impl KernelPolicy {
    /// A policy that never parallelises — the sequential reference the
    /// oracle tests compare against, and the right choice inside contexts
    /// that are already running on a rayon worker.
    pub fn seq() -> Self {
        KernelPolicy {
            par_threshold: usize::MAX,
            reduce_par_threshold: usize::MAX,
            count_par_threshold: usize::MAX,
            relabel_par_threshold: usize::MAX,
            election_variant: ParVariant::LockFree,
            count_variant: ParVariant::LockFree,
            chunk_rows: usize::MAX,
        }
    }

    /// A policy that parallelises everything with the given chunk size via
    /// the chunk-and-merge variants (tests use this to force that path
    /// onto tiny fixtures).
    pub fn force_par(chunk_rows: usize) -> Self {
        assert!(chunk_rows > 0, "chunk_rows must be positive");
        KernelPolicy {
            par_threshold: 0,
            reduce_par_threshold: 0,
            count_par_threshold: 0,
            relabel_par_threshold: 0,
            election_variant: ParVariant::ChunkMerge,
            count_variant: ParVariant::ChunkMerge,
            chunk_rows,
        }
    }

    /// As [`KernelPolicy::force_par`], but routing every class that has a
    /// lock-free implementation through it (tests use this to force the
    /// atomic path onto tiny fixtures).
    pub fn force_lockfree(chunk_rows: usize) -> Self {
        KernelPolicy {
            election_variant: ParVariant::LockFree,
            count_variant: ParVariant::LockFree,
            ..KernelPolicy::force_par(chunk_rows)
        }
    }

    /// The parallel implementation a class routes through above its
    /// crossover. Reduce and relabel only have the chunked path (their
    /// sorts/compactions have no slot to CAS; the chunked relabel is
    /// already merge-free).
    #[inline]
    pub fn variant_for(&self, class: KernelClass) -> ParVariant {
        match class {
            KernelClass::Election => self.election_variant,
            KernelClass::Count => self.count_variant,
            KernelClass::Reduce | KernelClass::Relabel => ParVariant::ChunkMerge,
        }
    }

    /// Whether an *election* sweep over `rows` rows should take the
    /// parallel path (the historical single-threshold query; kernels with
    /// a known class use [`KernelPolicy::use_par_for`]).
    #[inline]
    pub fn use_par(&self, rows: usize) -> bool {
        self.use_par_for(KernelClass::Election, rows)
    }

    /// Whether a sweep of `class` over `rows` rows should take the
    /// parallel path, judged against that class's own crossover.
    #[inline]
    pub fn use_par_for(&self, class: KernelClass, rows: usize) -> bool {
        let threshold = match class {
            KernelClass::Election => self.par_threshold,
            KernelClass::Reduce => self.reduce_par_threshold,
            KernelClass::Count => self.count_par_threshold,
            KernelClass::Relabel => self.relabel_par_threshold,
        };
        rows > threshold
    }

    /// The row ranges a parallel sweep over `rows` rows is chunked into.
    pub fn chunk_ranges(&self, rows: usize) -> Vec<(usize, usize)> {
        let chunk = self.chunk_rows.max(1);
        (0..rows)
            .step_by(chunk)
            .map(|lo| (lo, lo.saturating_add(chunk).min(rows)))
            .collect()
    }
}

/// Exception condition of the HyPar `indComp` API (§4.1.2).
///
/// Running plain Boruvka on a partition is incorrect because a component's
/// lightest edge may be a *cut edge* into another partition. The exception
/// condition says which expansions the kernel must refuse:
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExcpCond {
    /// No exception: the input is a whole graph (single-device execution or
    /// the final post-process step). Using this on a real partition produces
    /// wrong results — tests assert the kernel rejects it when cut edges are
    /// present.
    None,
    /// `EXCPT_BORDER_EDGE`: a component freezes exactly when its lightest
    /// incident edge is a cut edge (the semantics §3.2 describes). This is
    /// the default used by the MND-MST driver.
    #[default]
    BorderEdge,
    /// `EXCPT_BORDER_VERTEX`: more conservative — any component that *touches*
    /// the partition border (has at least one cut edge) freezes immediately,
    /// before expanding at all. Correct but leaves more components; the
    /// `ablation-excp` experiment quantifies the difference.
    BorderVertex,
}

/// How freezing interacts with later merges (paper §3.2 says a frozen
/// component "is not expanded further"; whether a *neighbour* may still
/// absorb it is left open, so both readings are provided).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FreezePolicy {
    /// Paper-literal: once frozen, a component never participates again this
    /// invocation, and a component formed by merging into a frozen one
    /// inherits the freeze.
    #[default]
    Sticky,
    /// Optimisation: a component's frozen status is re-derived every round
    /// from its current lightest edge (safe by the cut property; see
    /// DESIGN.md §5). Usually converges in fewer rounds.
    Recheck,
}

/// When to stop the iterative independent computation (§4.3.2): the HyPar
/// runtime watches per-iteration cost and bails out "when the execution time
/// does not show further decrease".
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum StopPolicy {
    /// Iterate until no component can expand (a fixpoint).
    #[default]
    Exhaustive,
    /// Stop early once an iteration's work (edges scanned) fails to shrink
    /// by at least `min_improvement` (fraction in `[0, 1)`) relative to the
    /// previous iteration. Mirrors the runtime's diminishing-benefits
    /// detector with modelled work standing in for measured time.
    DiminishingBenefit {
        /// Required relative per-iteration improvement, e.g. `0.05`.
        min_improvement: f64,
    },
}

impl StopPolicy {
    /// Decides whether to continue after observing consecutive iteration
    /// costs `prev` then `curr`.
    pub fn should_continue(&self, prev: u64, curr: u64) -> bool {
        match *self {
            StopPolicy::Exhaustive => true,
            StopPolicy::DiminishingBenefit { min_improvement } => {
                (curr as f64) < (prev as f64) * (1.0 - min_improvement)
            }
        }
    }
}

/// Work performed by one Boruvka iteration — the quantities the device cost
/// models convert into simulated time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IterWork {
    /// Components still active (not frozen, not merged away) at the start.
    pub active_components: u64,
    /// Edges scanned during min-edge election.
    pub edges_scanned: u64,
    /// Successful unions (components merged).
    pub unions: u64,
}

/// Per-invocation work profile.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkProfile {
    /// One entry per Boruvka iteration, in order.
    pub iters: Vec<IterWork>,
}

impl WorkProfile {
    /// Total edges scanned across iterations.
    pub fn total_scanned(&self) -> u64 {
        self.iters.iter().map(|i| i.edges_scanned).sum()
    }

    /// Total unions across iterations.
    pub fn total_unions(&self) -> u64 {
        self.iters.iter().map(|i| i.unions).sum()
    }

    /// Number of iterations.
    pub fn num_iterations(&self) -> usize {
        self.iters.len()
    }

    /// Merges another profile (e.g. across recursion levels) by
    /// concatenating iterations.
    pub fn extend(&mut self, other: &WorkProfile) {
        self.iters.extend_from_slice(&other.iters);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_crossover_and_chunking() {
        let p = KernelPolicy::default();
        assert!(!p.use_par(p.par_threshold));
        assert!(p.use_par(p.par_threshold + 1));
        assert!(!KernelPolicy::seq().use_par(usize::MAX - 1));
        assert!(KernelPolicy::force_par(8).use_par(1));
        let ranges = KernelPolicy::force_par(3).chunk_ranges(8);
        assert_eq!(ranges, vec![(0, 3), (3, 6), (6, 8)]);
        assert!(KernelPolicy::force_par(usize::MAX).chunk_ranges(5) == vec![(0, 5)]);
        assert!(p.chunk_ranges(0).is_empty());
    }

    #[test]
    fn per_class_crossovers_are_independent() {
        let p = KernelPolicy {
            par_threshold: 10,
            reduce_par_threshold: 100,
            count_par_threshold: 500,
            relabel_par_threshold: 1000,
            ..KernelPolicy::default()
        };
        assert!(p.use_par_for(KernelClass::Election, 11));
        assert!(!p.use_par_for(KernelClass::Reduce, 11));
        assert!(!p.use_par_for(KernelClass::Relabel, 11));
        assert!(p.use_par_for(KernelClass::Reduce, 101));
        assert!(!p.use_par_for(KernelClass::Count, 101));
        assert!(!p.use_par_for(KernelClass::Relabel, 101));
        assert!(p.use_par_for(KernelClass::Count, 501));
        assert!(p.use_par_for(KernelClass::Relabel, 1001));
        // The legacy single-threshold query is the election class.
        assert_eq!(p.use_par(11), p.use_par_for(KernelClass::Election, 11));
    }

    #[test]
    fn variants_route_per_class() {
        let par = KernelPolicy::force_par(8);
        let lf = KernelPolicy::force_lockfree(8);
        assert_eq!(
            par.variant_for(KernelClass::Election),
            ParVariant::ChunkMerge
        );
        assert_eq!(lf.variant_for(KernelClass::Election), ParVariant::LockFree);
        assert_eq!(lf.variant_for(KernelClass::Count), ParVariant::LockFree);
        // Classes without a lock-free implementation always report the
        // chunked path, whatever the policy says about the others.
        assert_eq!(lf.variant_for(KernelClass::Reduce), ParVariant::ChunkMerge);
        assert_eq!(lf.variant_for(KernelClass::Relabel), ParVariant::ChunkMerge);
        assert!(lf.use_par_for(KernelClass::Count, 1));
    }

    #[test]
    fn exhaustive_always_continues() {
        assert!(StopPolicy::Exhaustive.should_continue(100, 100));
        assert!(StopPolicy::Exhaustive.should_continue(100, 1000));
    }

    #[test]
    fn diminishing_benefit_stops_on_plateau() {
        let p = StopPolicy::DiminishingBenefit {
            min_improvement: 0.05,
        };
        assert!(p.should_continue(1000, 900)); // 10% better: continue
        assert!(!p.should_continue(1000, 980)); // 2% better: stop
        assert!(!p.should_continue(1000, 1100)); // worse: stop
    }

    #[test]
    fn work_profile_totals() {
        let mut w = WorkProfile::default();
        w.iters.push(IterWork {
            active_components: 10,
            edges_scanned: 100,
            unions: 5,
        });
        w.iters.push(IterWork {
            active_components: 5,
            edges_scanned: 40,
            unions: 2,
        });
        assert_eq!(w.total_scanned(), 140);
        assert_eq!(w.total_unions(), 7);
        assert_eq!(w.num_iterations(), 2);
    }
}
