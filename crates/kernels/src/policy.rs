//! Execution policies for the independent-computation kernel, plus the work
//! profile it reports to the cost model.

/// Exception condition of the HyPar `indComp` API (§4.1.2).
///
/// Running plain Boruvka on a partition is incorrect because a component's
/// lightest edge may be a *cut edge* into another partition. The exception
/// condition says which expansions the kernel must refuse:
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExcpCond {
    /// No exception: the input is a whole graph (single-device execution or
    /// the final post-process step). Using this on a real partition produces
    /// wrong results — tests assert the kernel rejects it when cut edges are
    /// present.
    None,
    /// `EXCPT_BORDER_EDGE`: a component freezes exactly when its lightest
    /// incident edge is a cut edge (the semantics §3.2 describes). This is
    /// the default used by the MND-MST driver.
    #[default]
    BorderEdge,
    /// `EXCPT_BORDER_VERTEX`: more conservative — any component that *touches*
    /// the partition border (has at least one cut edge) freezes immediately,
    /// before expanding at all. Correct but leaves more components; the
    /// `ablation-excp` experiment quantifies the difference.
    BorderVertex,
}

/// How freezing interacts with later merges (paper §3.2 says a frozen
/// component "is not expanded further"; whether a *neighbour* may still
/// absorb it is left open, so both readings are provided).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FreezePolicy {
    /// Paper-literal: once frozen, a component never participates again this
    /// invocation, and a component formed by merging into a frozen one
    /// inherits the freeze.
    #[default]
    Sticky,
    /// Optimisation: a component's frozen status is re-derived every round
    /// from its current lightest edge (safe by the cut property; see
    /// DESIGN.md §5). Usually converges in fewer rounds.
    Recheck,
}

/// When to stop the iterative independent computation (§4.3.2): the HyPar
/// runtime watches per-iteration cost and bails out "when the execution time
/// does not show further decrease".
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum StopPolicy {
    /// Iterate until no component can expand (a fixpoint).
    #[default]
    Exhaustive,
    /// Stop early once an iteration's work (edges scanned) fails to shrink
    /// by at least `min_improvement` (fraction in `[0, 1)`) relative to the
    /// previous iteration. Mirrors the runtime's diminishing-benefits
    /// detector with modelled work standing in for measured time.
    DiminishingBenefit {
        /// Required relative per-iteration improvement, e.g. `0.05`.
        min_improvement: f64,
    },
}

impl StopPolicy {
    /// Decides whether to continue after observing consecutive iteration
    /// costs `prev` then `curr`.
    pub fn should_continue(&self, prev: u64, curr: u64) -> bool {
        match *self {
            StopPolicy::Exhaustive => true,
            StopPolicy::DiminishingBenefit { min_improvement } => {
                (curr as f64) < (prev as f64) * (1.0 - min_improvement)
            }
        }
    }
}

/// Work performed by one Boruvka iteration — the quantities the device cost
/// models convert into simulated time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IterWork {
    /// Components still active (not frozen, not merged away) at the start.
    pub active_components: u64,
    /// Edges scanned during min-edge election.
    pub edges_scanned: u64,
    /// Successful unions (components merged).
    pub unions: u64,
}

/// Per-invocation work profile.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkProfile {
    /// One entry per Boruvka iteration, in order.
    pub iters: Vec<IterWork>,
}

impl WorkProfile {
    /// Total edges scanned across iterations.
    pub fn total_scanned(&self) -> u64 {
        self.iters.iter().map(|i| i.edges_scanned).sum()
    }

    /// Total unions across iterations.
    pub fn total_unions(&self) -> u64 {
        self.iters.iter().map(|i| i.unions).sum()
    }

    /// Number of iterations.
    pub fn num_iterations(&self) -> usize {
        self.iters.len()
    }

    /// Merges another profile (e.g. across recursion levels) by
    /// concatenating iterations.
    pub fn extend(&mut self, other: &WorkProfile) {
        self.iters.extend_from_slice(&other.iters);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_always_continues() {
        assert!(StopPolicy::Exhaustive.should_continue(100, 100));
        assert!(StopPolicy::Exhaustive.should_continue(100, 1000));
    }

    #[test]
    fn diminishing_benefit_stops_on_plateau() {
        let p = StopPolicy::DiminishingBenefit {
            min_improvement: 0.05,
        };
        assert!(p.should_continue(1000, 900)); // 10% better: continue
        assert!(!p.should_continue(1000, 980)); // 2% better: stop
        assert!(!p.should_continue(1000, 1100)); // worse: stop
    }

    #[test]
    fn work_profile_totals() {
        let mut w = WorkProfile::default();
        w.iters.push(IterWork {
            active_components: 10,
            edges_scanned: 100,
            unions: 5,
        });
        w.iters.push(IterWork {
            active_components: 5,
            edges_scanned: 40,
            unions: 2,
        });
        assert_eq!(w.total_scanned(), 140);
        assert_eq!(w.total_unions(), 7);
        assert_eq!(w.num_iterations(), 2);
    }
}
