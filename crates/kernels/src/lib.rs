//! # mnd-kernels — MST kernels for the MND-MST reproduction
//!
//! Everything algorithmic that runs *inside one device* lives here:
//!
//! * [`dsu`] — sequential and lock-free concurrent union-find,
//! * [`filter`] — filter-Boruvka sampling: exact, deterministic pruning of
//!   provably-non-MST edges before the distributed pipeline,
//! * [`oracle`] — Kruskal and Prim reference implementations (the
//!   correctness oracles every distributed test compares against), plus
//!   [`filter_kruskal`] as the practical sequential baseline,
//! * [`cgraph`] — the *contracted graph* representation all merging levels
//!   of MND-MST operate on (components + inter-component edges carrying
//!   original-edge provenance),
//! * [`boruvka`] — Boruvka's algorithm: the classic whole-graph variant and
//!   the paper's *exception-condition* variant (§3.2) that freezes a
//!   component whose lightest edge is a cut edge,
//! * [`parallel`] — the data-driven worklist variant with concurrent
//!   min-edge election (the CPU kernel of §3.5, rayon-backed),
//! * [`reduce`] — self-edge and multi-edge removal (§3.3),
//! * [`scan`] — the standalone min-edge election over the holding's SoA
//!   columns, sequential and rayon-chunked,
//! * [`binning`] — degree-binned adjacency scheduling (the "hierarchical
//!   strategy for processing adjacency lists" of §3.5),
//! * [`policy`] — the diminishing-benefits stop policy (§4.3.2),
//! * [`msf`] — result types and validity checking.

pub mod binning;
pub mod boruvka;
pub mod cgraph;
pub mod contraction;
pub mod dsu;
pub mod filter;
pub mod filter_kruskal;
pub mod lockfree;
pub mod msf;
pub mod oracle;
pub mod parallel;
pub mod policy;
pub mod reduce;
pub mod scan;

pub use boruvka::{boruvka_msf, local_boruvka, local_boruvka_with, LocalOutput};
pub use cgraph::{CEdge, CGraph, CompId};
pub use contraction::contraction_boruvka_msf;
pub use dsu::{AtomicDisjointSets, DisjointSets};
pub use filter::{filter_edge_list, filter_holding, FilterStats};
pub use filter_kruskal::filter_kruskal_msf;
pub use msf::{verify_msf, MsfResult};
pub use oracle::{kruskal_msf, prim_mst};
pub use policy::{ExcpCond, KernelClass, KernelPolicy, ParVariant, StopPolicy};
pub use scan::{
    min_edge_scan, min_edge_scan_lockfree, min_edge_scan_par, min_edge_scan_seq, min_edge_scan_with,
};
