//! Data-structure reduction between computation stages (§3.3): self-edge
//! removal, ghost-parent application, and multi-edge removal.
//!
//! The ghost half works in tandem with the driver: processors exchange
//! `(old component id, new parent id)` pairs for their boundary components;
//! [`apply_ghost_parents`] applies the received pairs to the *non-resident*
//! endpoints of a holding, after which multi-edge removal can collapse
//! parallel inter-component edges correctly even across processor borders.
//!
//! All reductions run **in place** on the holding's SoA columns: removal
//! compacts with a write cursor and ordering goes through the holding's
//! reusable permutation scratch, so a reduce pass allocates nothing
//! proportional to the edge count.

use crate::cgraph::{CGraph, CompId};
use crate::policy::KernelPolicy;

/// Summary of one reduction pass (reported to the cost model; the paper
/// charges these operations to the merge phase).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReduceStats {
    /// Edges before the pass.
    pub edges_before: u64,
    /// Self edges removed.
    pub self_removed: u64,
    /// Multi-edges removed.
    pub multi_removed: u64,
    /// Edges after the pass.
    pub edges_after: u64,
}

/// Runs self-edge removal followed by multi-edge removal on a holding,
/// entirely in place.
pub fn reduce_holding(cg: &mut CGraph) -> ReduceStats {
    reduce_holding_with(cg, &KernelPolicy::default())
}

/// As [`reduce_holding`], under an explicit (typically calibrated)
/// [`KernelPolicy`]: above the crossover the compactions evaluate their
/// predicates over row chunks on rayon workers and the ordering passes use
/// the parallel permutation sort. Oracle-identical for any chunking.
pub fn reduce_holding_with(cg: &mut CGraph, policy: &KernelPolicy) -> ReduceStats {
    let before = cg.num_edges() as u64;
    cg.remove_self_edges_with(policy);
    let after_self = cg.num_edges() as u64;
    cg.remove_multi_edges_with(policy);
    let after = cg.num_edges() as u64;
    ReduceStats {
        edges_before: before,
        self_removed: before - after_self,
        multi_removed: after_self - after,
        edges_after: after,
    }
}

/// Normalises the ghost-parent message a processor sends — the `(old, new)`
/// renaming pairs of its own components, restricted by the driver to ids
/// that other processors may reference — by sorting and deduplicating **in
/// place**. Called once per exchange round per rank, so it must not copy
/// the pair vector. Idempotent: renormalising an already-normalised message
/// leaves it unchanged.
pub fn ghost_parent_message(msg: &mut Vec<(CompId, CompId)>) {
    msg.sort_unstable();
    msg.dedup();
}

/// Applies received ghost-parent pairs to a holding: every edge endpoint
/// matching an `old` id is renamed to `new`. Resident ids are left alone —
/// renames of resident components were already committed by the local
/// kernel; this call is specifically for ghost (non-resident) endpoints.
pub fn apply_ghost_parents(cg: &mut CGraph, updates: &[(CompId, CompId)]) {
    apply_ghost_parents_with(cg, &KernelPolicy::default(), updates);
}

/// As [`apply_ghost_parents`], with the endpoint relabel sweep chunked
/// across rayon workers above the policy crossover (rows are independent,
/// so any chunking produces the sequential result).
pub fn apply_ghost_parents_with(
    cg: &mut CGraph,
    policy: &KernelPolicy,
    updates: &[(CompId, CompId)],
) {
    if updates.is_empty() {
        return;
    }
    let map: std::collections::HashMap<CompId, CompId> = updates.iter().copied().collect();
    let resident: Vec<CompId> = cg.resident().to_vec();
    let is_res = |c: CompId| resident.binary_search(&c).is_ok();
    cg.relabel_with(policy, |c| {
        if is_res(c) {
            c
        } else {
            *map.get(&c).unwrap_or(&c)
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cgraph::CEdge;
    use mnd_graph::types::WEdge;

    #[test]
    fn reduce_removes_both_kinds() {
        let mut cg = CGraph::from_parts(
            vec![0, 5],
            vec![
                CEdge::new(0, 0, WEdge::new(1, 2, 3)), // self
                CEdge::new(0, 5, WEdge::new(0, 5, 9)), // kept? no: heavier multi
                CEdge::new(0, 5, WEdge::new(2, 6, 4)), // kept (lightest 0~5)
            ],
            vec![],
        );
        let stats = reduce_holding(&mut cg);
        assert_eq!(stats.self_removed, 1);
        assert_eq!(stats.multi_removed, 1);
        assert_eq!(stats.edges_after, 1);
        assert_eq!(cg.edge(0).orig, WEdge::new(2, 6, 4));
    }

    #[test]
    fn ghost_parents_rename_only_non_resident() {
        let mut cg = CGraph::from_parts(
            vec![0, 1],
            vec![
                CEdge::new(0, 7, WEdge::new(0, 7, 1)), // ghost endpoint 7
                CEdge::new(1, 0, WEdge::new(0, 1, 2)),
            ],
            vec![],
        );
        // Remote processor reports 7 -> 5; a malicious/stale pair 1 -> 9
        // must not touch our resident component 1.
        apply_ghost_parents(&mut cg, &[(7, 5), (1, 9)]);
        assert!(cg.iter_edges().any(|e| (e.a, e.b) == (0, 5)));
        assert!(cg.iter_edges().any(|e| (e.a, e.b) == (0, 1)));
        assert_eq!(cg.resident(), &[0, 1]);
    }

    #[test]
    fn ghost_message_dedups() {
        let mut msg = vec![(3, 1), (3, 1), (4, 1)];
        ghost_parent_message(&mut msg);
        assert_eq!(msg, vec![(3, 1), (4, 1)]);
    }

    #[test]
    fn ghost_message_normalisation_is_idempotent() {
        // Regression: normalising twice (as happens when a relabel buffer is
        // reused across exchange rounds) must be a no-op the second time,
        // including capacity — the in-place contract means no reallocation.
        let mut msg = vec![(9, 2), (3, 1), (9, 2), (4, 1), (3, 1)];
        ghost_parent_message(&mut msg);
        let once = msg.clone();
        let cap = msg.capacity();
        ghost_parent_message(&mut msg);
        assert_eq!(msg, once);
        assert_eq!(msg.capacity(), cap);
    }

    #[test]
    fn empty_updates_are_noop() {
        let mut cg =
            CGraph::from_parts(vec![2], vec![CEdge::new(2, 8, WEdge::new(2, 8, 1))], vec![]);
        let before = cg.clone();
        apply_ghost_parents(&mut cg, &[]);
        assert_eq!(cg, before);
    }
}
