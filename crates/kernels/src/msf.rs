//! Minimum-spanning-forest result types and validity checking.
//!
//! Because the workspace-wide edge order `(w, u, v)` is total, every simple
//! graph has a *unique* MSF; [`verify_msf`] therefore checks candidate
//! results **edge-for-edge** against the Kruskal oracle, which is a much
//! stronger test than comparing weights.

use mnd_graph::types::{total_weight, VertexId, WEdge, WeightSum};
use mnd_graph::EdgeList;

use crate::dsu::DisjointSets;
use crate::oracle::kruskal_msf;

/// A minimum spanning forest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MsfResult {
    /// Forest edges in canonical sorted order (by `(w, u, v)`).
    pub edges: Vec<WEdge>,
    /// Total weight.
    pub weight: WeightSum,
    /// Number of connected components of the input graph
    /// (`edges.len() == V - num_components` for V-vertex inputs counting
    /// isolated vertices).
    pub num_components: usize,
}

impl MsfResult {
    /// Builds a result from edges, computing weight and the component count
    /// implied for a graph on `num_vertices` vertices.
    pub fn from_edges(num_vertices: VertexId, mut edges: Vec<WEdge>) -> Self {
        edges.sort_unstable();
        let weight = total_weight(&edges);
        // components = V - forest edges (each forest edge reduces count by 1).
        let num_components = num_vertices as usize - edges.len();
        MsfResult {
            edges,
            weight,
            num_components,
        }
    }
}

/// Errors [`verify_msf`] can report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MsfError {
    /// Candidate contains an edge that is not in the input graph (or has the
    /// wrong weight).
    ForeignEdge(WEdge),
    /// Candidate edges contain a cycle.
    Cycle(WEdge),
    /// Candidate does not span: expected/actual edge counts differ.
    WrongEdgeCount { expected: usize, actual: usize },
    /// Total weight differs from the oracle's.
    WrongWeight {
        expected: WeightSum,
        actual: WeightSum,
    },
    /// Edge sets differ even though counts and weight match (possible only
    /// with duplicate weights, which our tie-broken order makes an error).
    DifferentEdges,
}

impl std::fmt::Display for MsfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MsfError::ForeignEdge(e) => write!(f, "candidate edge {e:?} not in input graph"),
            MsfError::Cycle(e) => write!(f, "candidate edge {e:?} closes a cycle"),
            MsfError::WrongEdgeCount { expected, actual } => {
                write!(f, "expected {expected} forest edges, got {actual}")
            }
            MsfError::WrongWeight { expected, actual } => {
                write!(f, "expected total weight {expected}, got {actual}")
            }
            MsfError::DifferentEdges => write!(f, "edge sets differ from unique MSF"),
        }
    }
}

impl std::error::Error for MsfError {}

/// Verifies that `candidate` is exactly the unique MSF of `input`.
///
/// Checks, in order: membership of every candidate edge in the input,
/// acyclicity, edge count vs. the oracle, total weight vs. the oracle, and
/// finally edge-for-edge equality.
pub fn verify_msf(input: &EdgeList, candidate: &MsfResult) -> Result<(), MsfError> {
    // Membership (exact weight too — provenance must be preserved).
    let graph_edges: std::collections::HashSet<WEdge> = input.edges().iter().copied().collect();
    for e in &candidate.edges {
        if !graph_edges.contains(e) {
            return Err(MsfError::ForeignEdge(*e));
        }
    }
    // Acyclicity.
    let mut dsu = DisjointSets::new(input.num_vertices() as usize);
    for e in &candidate.edges {
        if !dsu.union(e.u, e.v) {
            return Err(MsfError::Cycle(*e));
        }
    }
    // Oracle comparison.
    let oracle = kruskal_msf(input);
    if candidate.edges.len() != oracle.edges.len() {
        return Err(MsfError::WrongEdgeCount {
            expected: oracle.edges.len(),
            actual: candidate.edges.len(),
        });
    }
    if candidate.weight != oracle.weight {
        return Err(MsfError::WrongWeight {
            expected: oracle.weight,
            actual: candidate.weight,
        });
    }
    if candidate.edges != oracle.edges {
        return Err(MsfError::DifferentEdges);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnd_graph::gen;

    #[test]
    fn oracle_verifies_itself() {
        let el = gen::gnm(200, 800, 3);
        let msf = kruskal_msf(&el);
        verify_msf(&el, &msf).unwrap();
    }

    #[test]
    fn detects_foreign_edge() {
        let el = gen::path(4, 1);
        let mut msf = kruskal_msf(&el);
        msf.edges[0] = WEdge::new(0, 3, 12345);
        assert!(matches!(
            verify_msf(&el, &msf),
            Err(MsfError::ForeignEdge(_))
        ));
    }

    #[test]
    fn detects_cycle() {
        let el = gen::cycle(4, 1);
        let all = MsfResult::from_edges(4, el.edges().to_vec()); // all 4 cycle edges
        assert!(matches!(verify_msf(&el, &all), Err(MsfError::Cycle(_))));
    }

    #[test]
    fn detects_wrong_count() {
        let el = gen::path(5, 1);
        let msf = kruskal_msf(&el);
        let short = MsfResult::from_edges(5, msf.edges[..3].to_vec());
        assert!(matches!(
            verify_msf(&el, &short),
            Err(MsfError::WrongEdgeCount { .. })
        ));
    }

    #[test]
    fn detects_heavier_spanning_tree() {
        // Cycle: the correct MST drops the heaviest edge; a candidate that
        // drops a lighter one is spanning + acyclic but heavier.
        let el = gen::cycle(5, 2);
        let mut edges = el.edges().to_vec();
        edges.sort_unstable();
        let heaviest = *edges.last().unwrap();
        let lightest = edges[0];
        let wrong: Vec<WEdge> = el
            .edges()
            .iter()
            .copied()
            .filter(|e| *e != lightest)
            .collect();
        assert_eq!(wrong.len(), 4);
        let cand = MsfResult::from_edges(5, wrong);
        let err = verify_msf(&el, &cand).unwrap_err();
        assert!(
            matches!(err, MsfError::WrongWeight { .. }),
            "heaviest {heaviest:?}: unexpected error {err:?}"
        );
    }

    #[test]
    fn from_edges_counts_components() {
        let r = MsfResult::from_edges(10, vec![WEdge::new(0, 1, 1), WEdge::new(2, 3, 1)]);
        assert_eq!(r.num_components, 8);
        assert_eq!(r.weight, 2);
    }
}
