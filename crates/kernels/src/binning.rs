//! Degree-binned adjacency scheduling — the "hierarchical strategy for
//! processing adjacency lists" of §3.5.
//!
//! On a real GPU, assigning one thread per vertex under-utilises the device
//! when degrees are skewed; the standard remedy (Merrill et al.) classifies
//! vertices into bins processed at thread, warp, and block granularity.
//! Here the classification itself is real (and usable by any executor); the
//! GPU *occupancy* consequences are modelled by `mnd-device`, which charges
//! different per-edge costs per bin.

/// Granularity class of a work item.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Bin {
    /// Degree < [`SMALL_LIMIT`]: one thread per item.
    Small,
    /// Degree in `[SMALL_LIMIT, LARGE_LIMIT)`: one warp per item.
    Medium,
    /// Degree >= [`LARGE_LIMIT`]: a whole block/CTA per item.
    Large,
}

/// Items below this degree are thread-sized.
pub const SMALL_LIMIT: u64 = 32;
/// Items at or above this degree are block-sized.
pub const LARGE_LIMIT: u64 = 1024;

/// Classifies one degree.
#[inline]
pub fn bin_of(degree: u64) -> Bin {
    if degree < SMALL_LIMIT {
        Bin::Small
    } else if degree < LARGE_LIMIT {
        Bin::Medium
    } else {
        Bin::Large
    }
}

/// A degree-binned schedule: item indices grouped by bin, plus per-bin edge
/// totals (the quantities the device model consumes).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BinnedSchedule {
    /// Indices of thread-sized items.
    pub small: Vec<u32>,
    /// Indices of warp-sized items.
    pub medium: Vec<u32>,
    /// Indices of block-sized items.
    pub large: Vec<u32>,
    /// Total degree (edges) per bin: `[small, medium, large]`.
    pub edges_per_bin: [u64; 3],
}

impl BinnedSchedule {
    /// Bins items given their degrees.
    pub fn build(degrees: impl IntoIterator<Item = u64>) -> Self {
        let mut s = BinnedSchedule::default();
        for (i, d) in degrees.into_iter().enumerate() {
            let i = i as u32;
            match bin_of(d) {
                Bin::Small => {
                    s.small.push(i);
                    s.edges_per_bin[0] += d;
                }
                Bin::Medium => {
                    s.medium.push(i);
                    s.edges_per_bin[1] += d;
                }
                Bin::Large => {
                    s.large.push(i);
                    s.edges_per_bin[2] += d;
                }
            }
        }
        s
    }

    /// Total items.
    pub fn num_items(&self) -> usize {
        self.small.len() + self.medium.len() + self.large.len()
    }

    /// Total edges.
    pub fn total_edges(&self) -> u64 {
        self.edges_per_bin.iter().sum()
    }

    /// Fraction of edges living in skew-heavy (medium+large) bins — a cheap
    /// skew indicator printed by the repro harness.
    pub fn skew_fraction(&self) -> f64 {
        let t = self.total_edges();
        if t == 0 {
            return 0.0;
        }
        (self.edges_per_bin[1] + self.edges_per_bin[2]) as f64 / t as f64
    }
}

/// Convenience: schedule for the vertices of a CSR graph.
pub fn bin_graph(g: &mnd_graph::CsrGraph) -> BinnedSchedule {
    BinnedSchedule::build((0..g.num_vertices()).map(|v| g.degree(v)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnd_graph::gen;

    #[test]
    fn bin_boundaries() {
        assert_eq!(bin_of(0), Bin::Small);
        assert_eq!(bin_of(31), Bin::Small);
        assert_eq!(bin_of(32), Bin::Medium);
        assert_eq!(bin_of(1023), Bin::Medium);
        assert_eq!(bin_of(1024), Bin::Large);
    }

    #[test]
    fn build_partitions_all_items() {
        let s = BinnedSchedule::build([1, 50, 2000, 3, 40]);
        assert_eq!(s.small, vec![0, 3]);
        assert_eq!(s.medium, vec![1, 4]);
        assert_eq!(s.large, vec![2]);
        assert_eq!(s.num_items(), 5);
        assert_eq!(s.total_edges(), 2094);
        assert_eq!(s.edges_per_bin, [4, 90, 2000]);
    }

    #[test]
    fn road_graph_is_all_small() {
        let g = mnd_graph::CsrGraph::from_edge_list(&gen::road_grid(30, 30, 0.02, 0.38, 1));
        let s = bin_graph(&g);
        assert!(s.medium.is_empty() && s.large.is_empty());
        assert_eq!(s.skew_fraction(), 0.0);
    }

    #[test]
    fn rmat_graph_has_skew() {
        let g = mnd_graph::CsrGraph::from_edge_list(&gen::rmat(
            4096,
            64 * 1024,
            gen::RmatProbs::GRAPH500,
            2,
        ));
        let s = bin_graph(&g);
        assert!(!s.medium.is_empty(), "expected warp-sized hubs");
        assert!(s.skew_fraction() > 0.1);
    }

    #[test]
    fn empty_schedule() {
        let s = BinnedSchedule::build(std::iter::empty());
        assert_eq!(s.num_items(), 0);
        assert_eq!(s.skew_fraction(), 0.0);
    }
}
