//! Disjoint-set (union-find) structures.
//!
//! Two variants:
//! * [`DisjointSets`] — sequential, union by rank + path halving; used by
//!   the oracles and by the per-device Boruvka iterations.
//! * [`AtomicDisjointSets`] — lock-free, CAS-based; used by the parallel
//!   (worklist) kernel where many rayon tasks union concurrently. This is
//!   the standard wait-free-find / lock-free-union structure from Jayanti &
//!   Tarjan, with unions by index order.

use std::sync::atomic::{AtomicU32, Ordering};

/// Sequential union-find over `0..n` with union by rank and path halving.
#[derive(Clone, Debug)]
pub struct DisjointSets {
    parent: Vec<u32>,
    rank: Vec<u8>,
    num_sets: usize,
}

impl DisjointSets {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DisjointSets {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Current number of disjoint sets.
    #[inline]
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Representative of `x`'s set (path halving).
    #[inline]
    pub fn find(&mut self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    /// Read-only find (no compression) — handy when `self` is shared.
    #[inline]
    pub fn find_const(&self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    /// Unions the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.num_sets -= 1;
        true
    }

    /// True if `a` and `b` are in the same set.
    #[inline]
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Lock-free union-find over `0..n`. `find` uses path halving with relaxed
/// CAS repair; `union` links the higher index under the lower via CAS on
/// roots (no ranks — index order keeps it deterministic, and path
/// compression keeps trees shallow in practice).
pub struct AtomicDisjointSets {
    parent: Vec<AtomicU32>,
}

impl AtomicDisjointSets {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        AtomicDisjointSets {
            parent: (0..n as u32).map(AtomicU32::new).collect(),
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the structure tracks no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set. Safe to call concurrently with unions;
    /// the result is some element that was a root of `x`'s set during the
    /// call.
    pub fn find(&self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize].load(Ordering::Acquire);
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize].load(Ordering::Acquire);
            if gp != p {
                // Path halving: best-effort, failure is fine.
                let _ = self.parent[x as usize].compare_exchange_weak(
                    p,
                    gp,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                );
            }
            x = gp;
        }
    }

    /// Unions the sets of `a` and `b`; returns `true` if this call performed
    /// the link. Linearizable: exactly one of any set of racing unions that
    /// would connect the same two sets returns `true`.
    pub fn union(&self, a: u32, b: u32) -> bool {
        let mut ra = self.find(a);
        let mut rb = self.find(b);
        loop {
            if ra == rb {
                return false;
            }
            // Deterministic orientation: larger root points at smaller.
            let (hi, lo) = if ra > rb { (ra, rb) } else { (rb, ra) };
            match self.parent[hi as usize].compare_exchange(
                hi,
                lo,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(_) => {
                    // hi stopped being a root; re-resolve and retry.
                    ra = self.find(hi);
                    rb = self.find(lo);
                }
            }
        }
    }

    /// Wait-free full path compaction: afterwards (quiescent) every parent
    /// pointer aims directly at its root, so the next election round's
    /// concurrent finds resolve in one hop. Plain stores, no CAS — safe
    /// even with racing unions, because a union only ever links a *root*
    /// under another node: `r` stays an ancestor of `x` forever, so
    /// `parent[x] = r` can never skip past a newer link.
    pub fn compress_all(&self) {
        for x in 0..self.len() as u32 {
            let r = self.find(x);
            self.parent[x as usize].store(r, Ordering::Release);
        }
    }

    /// Snapshot of all roots (call only when no unions are racing).
    pub fn roots(&self) -> Vec<u32> {
        (0..self.len() as u32).map(|x| self.find(x)).collect()
    }

    /// Number of sets (quiescent only).
    pub fn num_sets(&self) -> usize {
        (0..self.len() as u32)
            .filter(|&x| self.find(x) == x)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_basics() {
        let mut d = DisjointSets::new(5);
        assert_eq!(d.num_sets(), 5);
        assert!(d.union(0, 1));
        assert!(d.union(3, 4));
        assert!(!d.union(1, 0));
        assert_eq!(d.num_sets(), 3);
        assert!(d.same(0, 1));
        assert!(!d.same(0, 3));
        assert!(d.union(1, 4));
        assert!(d.same(0, 3));
        assert_eq!(d.num_sets(), 2);
    }

    #[test]
    fn find_const_matches_find() {
        let mut d = DisjointSets::new(10);
        d.union(0, 5);
        d.union(5, 9);
        let r = d.find(9);
        assert_eq!(d.find_const(0), r);
        assert_eq!(d.find_const(5), r);
    }

    #[test]
    fn atomic_sequential_semantics() {
        let d = AtomicDisjointSets::new(6);
        assert!(d.union(0, 1));
        assert!(d.union(2, 3));
        assert!(!d.union(1, 0));
        assert!(d.union(1, 3));
        assert_eq!(d.find(0), d.find(2));
        assert_eq!(d.num_sets(), 3); // {0,1,2,3}, {4}, {5}
    }

    #[test]
    fn atomic_orientation_is_min_root() {
        let d = AtomicDisjointSets::new(4);
        d.union(3, 1);
        d.union(1, 0);
        assert_eq!(d.find(3), 0);
    }

    #[test]
    fn compress_all_flattens_to_one_hop() {
        let d = AtomicDisjointSets::new(8);
        d.union(7, 6);
        d.union(6, 5);
        d.union(5, 4);
        d.compress_all();
        for x in 4..8u32 {
            assert_eq!(d.parent[x as usize].load(Ordering::Relaxed), 4);
        }
        assert_eq!(d.num_sets(), 5);
    }

    #[test]
    fn atomic_concurrent_unions_build_one_component() {
        use std::sync::Arc;
        let n = 1000u32;
        let d = Arc::new(AtomicDisjointSets::new(n as usize));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let d = Arc::clone(&d);
                std::thread::spawn(move || {
                    // Each thread links a strided chain; union of all chains
                    // plus stride-1 links from thread 0 connects everything.
                    let stride = t + 1;
                    let mut i = 0u32;
                    while i + stride < n {
                        d.union(i, i + stride);
                        i += stride;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(d.num_sets(), 1);
    }

    #[test]
    fn exactly_one_racing_union_wins() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        for _ in 0..20 {
            let d = Arc::new(AtomicDisjointSets::new(2));
            let wins = Arc::new(AtomicUsize::new(0));
            let hs: Vec<_> = (0..4)
                .map(|_| {
                    let d = Arc::clone(&d);
                    let wins = Arc::clone(&wins);
                    std::thread::spawn(move || {
                        if d.union(0, 1) {
                            wins.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(wins.load(Ordering::SeqCst), 1);
        }
    }
}
