//! Parallel (worklist, data-driven) Boruvka for shared-memory CPUs — the
//! Galois-style kernel of §3.5, built on rayon and the lock-free union-find.
//!
//! The sequential kernel in [`crate::boruvka`] is the semantic reference;
//! this variant must produce the *identical* MSF (unique under the
//! workspace edge order), which the tests assert. Structure per iteration:
//!
//! 1. **Election** — a parallel sweep over the active edge worklist does a
//!    lock-free `fetch_min` of the packed `(weight, edge-index)` key into a
//!    per-component slot ("minimizing atomic accesses" — one atomic per
//!    edge endpoint, no locks).
//! 2. **Contraction** — a parallel sweep over components unions the elected
//!    pairs through the CAS-based [`AtomicDisjointSets`]; the winner of
//!    each racing union records the MST edge.
//! 3. **Compaction** — the worklist is rebuilt data-driven style, dropping
//!    intra-component edges.

use std::sync::atomic::{AtomicU64, Ordering};

use mnd_graph::types::WEdge;
use mnd_graph::EdgeList;
use rayon::prelude::*;

use crate::dsu::AtomicDisjointSets;
use crate::msf::MsfResult;
use crate::policy::{IterWork, WorkProfile};

/// Sentinel for "no candidate yet".
const NONE_KEY: u64 = u64::MAX;

/// Packs `(weight, edge index)` so numeric `min` equals the workspace edge
/// order, provided edges are pre-sorted by `(w, u, v)`.
#[inline]
fn pack(weight: u32, idx: u32) -> u64 {
    ((weight as u64) << 32) | idx as u64
}

/// Parallel whole-graph Boruvka MSF. Deterministic: returns exactly the
/// unique MSF regardless of thread interleaving.
pub fn par_boruvka_msf(el: &EdgeList) -> MsfResult {
    let (res, _) = par_boruvka_msf_profiled(el);
    res
}

/// As [`par_boruvka_msf`], also returning the per-iteration work profile.
pub fn par_boruvka_msf_profiled(el: &EdgeList) -> (MsfResult, WorkProfile) {
    let n = el.num_vertices() as usize;
    // Sort once so edge index order == total edge order.
    let mut edges: Vec<WEdge> = el.edges().to_vec();
    edges.sort_unstable();
    assert!(edges.len() < u32::MAX as usize, "edge index must fit u32");

    let dsu = AtomicDisjointSets::new(n);
    let best: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(NONE_KEY)).collect();
    let mut worklist: Vec<u32> = (0..edges.len() as u32).collect();
    let mut msf: Vec<WEdge> = Vec::new();
    let mut work = WorkProfile::default();

    loop {
        // --- Election ----------------------------------------------------
        worklist.par_iter().for_each(|&idx| {
            let e = edges[idx as usize];
            let ra = dsu.find(e.u);
            let rb = dsu.find(e.v);
            if ra == rb {
                return;
            }
            let key = pack(e.w, idx);
            best[ra as usize].fetch_min(key, Ordering::AcqRel);
            best[rb as usize].fetch_min(key, Ordering::AcqRel);
        });

        // --- Contraction -------------------------------------------------
        let active = AtomicU64::new(0);
        let won: Vec<WEdge> = (0..n as u32)
            .into_par_iter()
            .filter_map(|c| {
                let key = best[c as usize].swap(NONE_KEY, Ordering::AcqRel);
                if key == NONE_KEY {
                    return None;
                }
                active.fetch_add(1, Ordering::Relaxed);
                let e = edges[(key & 0xFFFF_FFFF) as usize];
                // Both endpoints' components may have elected this edge;
                // exactly one union succeeds.
                if dsu.union(e.u, e.v) {
                    Some(e)
                } else {
                    None
                }
            })
            .collect();

        let unions = won.len() as u64;
        work.iters.push(IterWork {
            active_components: active.load(Ordering::Relaxed),
            edges_scanned: worklist.len() as u64,
            unions,
        });
        msf.extend(won);
        if unions == 0 {
            break;
        }

        // --- Compaction (data-driven worklist) ---------------------------
        worklist = worklist
            .into_par_iter()
            .filter(|&idx| {
                let e = edges[idx as usize];
                dsu.find(e.u) != dsu.find(e.v)
            })
            .collect();
        if worklist.is_empty() {
            break;
        }
    }

    (MsfResult::from_edges(el.num_vertices(), msf), work)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boruvka::boruvka_msf;
    use crate::msf::verify_msf;
    use mnd_graph::gen;

    #[test]
    fn matches_sequential_on_families() {
        for el in [
            gen::path(30, 1),
            gen::cycle(25, 2),
            gen::star(40, 3),
            gen::complete(12, 4),
            gen::gnm(500, 2000, 5),
            gen::watts_strogatz(200, 6, 0.2, 6),
            gen::rmat(256, 2048, gen::RmatProbs::GRAPH500, 7),
        ] {
            let seq = boruvka_msf(&el);
            let par = par_boruvka_msf(&el);
            assert_eq!(seq, par);
            verify_msf(&el, &par).unwrap();
        }
    }

    #[test]
    fn handles_disconnected_and_empty() {
        let u = gen::disconnected_union(&[gen::path(10, 1), gen::gnm(50, 120, 2)]);
        let par = par_boruvka_msf(&u);
        verify_msf(&u, &par).unwrap();
        let empty = EdgeList::new(5);
        let r = par_boruvka_msf(&empty);
        assert!(r.edges.is_empty());
        assert_eq!(r.num_components, 5);
    }

    #[test]
    fn deterministic_across_runs() {
        let el = gen::rmat(512, 4096, gen::RmatProbs::MILD, 9);
        let a = par_boruvka_msf(&el);
        let b = par_boruvka_msf(&el);
        assert_eq!(a, b);
    }

    #[test]
    fn profile_shows_geometric_shrink() {
        let el = gen::gnm(1000, 5000, 11);
        let (res, work) = par_boruvka_msf_profiled(&el);
        verify_msf(&el, &res).unwrap();
        assert!(
            work.num_iterations() <= 16,
            "iters {}",
            work.num_iterations()
        );
        // Scanned work must shrink monotonically (data-driven worklist).
        for w in work.iters.windows(2) {
            assert!(w[1].edges_scanned <= w[0].edges_scanned);
        }
    }
}
