//! Filter-Boruvka edge sampling (Sanders & Schimek, arXiv:2302.12199):
//! drop provably-non-MST edges *before* the expensive distributed pipeline.
//!
//! The scheme: sample each edge with probability `prob` by a deterministic
//! hash of its endpoints, build the minimum spanning forest of the sample
//! (Kruskal over the sampled edges), and discard every edge that is heavier
//! than the sample-forest path between its endpoints. We fuse the two steps
//! into one sweep: edges are visited in ascending `(w, u, v)` order while a
//! DSU accumulates the *kept sampled* edges; any edge whose endpoints are
//! already connected closes a cycle of strictly lighter real edges, making
//! it the unique cycle maximum — by the cycle property it cannot be in the
//! (unique) MSF, so dropping it is exact for **any** sample. `prob = 1.0`
//! degenerates to a full local Kruskal filter (only the local forest
//! survives); `prob = 0.0` disables the filter entirely.
//!
//! Determinism matters across ranks: a cut edge is held by both of its
//! endpoint owners, and both must make the same sampling decision. The
//! hash keys on the canonical `(u, v)` endpoints and a config seed, never
//! on rank state.

use mnd_graph::edgelist::splitmix64;
use mnd_graph::{EdgeList, WEdge};

use crate::cgraph::CGraph;
use crate::dsu::DisjointSets;

/// What one filtering sweep saw and did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Edges examined.
    pub input_edges: usize,
    /// Edges the hash selected into the sample.
    pub sampled_edges: usize,
    /// Edges dropped as provable cycle maxima.
    pub dropped_edges: usize,
}

impl FilterStats {
    /// Edges that survived the sweep.
    pub fn kept_edges(&self) -> usize {
        self.input_edges - self.dropped_edges
    }
}

/// Deterministic per-edge sampling decision: hash of the canonical
/// endpoints and `seed`, compared against `prob`. Rank-independent by
/// construction so duplicated cut edges decide identically everywhere.
#[inline]
pub fn edge_sampled(seed: u64, prob: f64, e: &WEdge) -> bool {
    if prob >= 1.0 {
        return true;
    }
    if prob <= 0.0 {
        return false;
    }
    let h = splitmix64(seed ^ (((e.u as u64) << 32) | e.v as u64));
    // Top 53 bits give a uniform draw in [0, 1).
    ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < prob
}

/// Computes the per-edge keep mask for one filtering sweep, in the input's
/// storage order. Exact for any `prob`: a `false` entry is the unique
/// maximum of a cycle of strictly lighter kept sampled edges.
pub fn keep_mask(edges: &[WEdge], prob: f64, seed: u64) -> (Vec<bool>, FilterStats) {
    keep_mask_where(edges, prob, seed, |_| true)
}

/// [`keep_mask`] with a droppability predicate: row `i` can only be marked
/// `false` when `droppable(i)` holds. Non-droppable edges still feed the
/// certification forest when sampled — exactness never depends on the
/// predicate, only which certified-redundant edges we are *allowed* to shed.
pub fn keep_mask_where(
    edges: &[WEdge],
    prob: f64,
    seed: u64,
    droppable: impl Fn(usize) -> bool,
) -> (Vec<bool>, FilterStats) {
    let n = edges.iter().map(|e| e.v as usize + 1).max().unwrap_or(0);
    let mut order: Vec<usize> = (0..edges.len()).collect();
    order.sort_unstable_by_key(|&i| edges[i].key());
    let mut dsu = DisjointSets::new(n);
    let mut keep = vec![true; edges.len()];
    let mut stats = FilterStats {
        input_edges: edges.len(),
        ..FilterStats::default()
    };
    for &i in &order {
        let e = &edges[i];
        let sampled = edge_sampled(seed, prob, e);
        if sampled {
            stats.sampled_edges += 1;
        }
        if dsu.same(e.u, e.v) {
            // Connected through strictly lighter kept sampled edges: `e`
            // closes a cycle it is the maximum of. Provably non-MSF.
            if droppable(i) {
                keep[i] = false;
                stats.dropped_edges += 1;
            }
        } else if sampled {
            dsu.union(e.u, e.v);
        }
    }
    (keep, stats)
}

/// Filters a holding in place (the per-rank hook: runs on the level-0
/// holding right after partitioning, before any exchange pays for the
/// dropped edges). Row order is preserved for the survivors.
///
/// Cut edges (a non-resident endpoint) are never dropped: each cut edge is
/// duplicated on both endpoint owners and the ghost-parent protocol relies
/// on both copies surviving — certification is rank-local (the DSU sees
/// only this holding), so the two holders could disagree on a drop, and
/// the rank that kept its copy would never hear about the other side's
/// renames. Fully-resident edges exist on exactly one rank, so shedding
/// them is safe; sampled cut edges still feed the certification forest.
pub fn filter_holding(cg: &mut CGraph, prob: f64, seed: u64) -> FilterStats {
    let internal: Vec<bool> = cg
        .iter_edges()
        .map(|e| cg.is_resident(e.a) && cg.is_resident(e.b))
        .collect();
    let (mask, stats) = keep_mask_where(cg.orig_col(), prob, seed, |i| internal[i]);
    cg.retain_edge_rows(&mask);
    stats
}

/// Filters a whole edge list (the single-node / oracle-side hook),
/// preserving the relative order of surviving edges.
pub fn filter_edge_list(el: &EdgeList, prob: f64, seed: u64) -> (EdgeList, FilterStats) {
    let (mask, stats) = keep_mask(el.edges(), prob, seed);
    let kept: Vec<WEdge> = el
        .edges()
        .iter()
        .zip(&mask)
        .filter_map(|(e, &k)| k.then_some(*e))
        .collect();
    (EdgeList::from_raw(el.num_vertices(), kept), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::kruskal_msf;
    use mnd_graph::gen;

    fn families() -> Vec<EdgeList> {
        vec![
            gen::path(50, 1),
            gen::cycle(40, 2),
            gen::complete(40, 3),
            gen::gnm(2000, 12_000, 4),
            gen::web_crawl(3000, 20_000, gen::CrawlParams::default(), 5),
            gen::disconnected_union(&[gen::gnm(500, 3000, 1), gen::path(20, 2)]),
        ]
    }

    #[test]
    fn filtered_msf_matches_oracle_at_every_probability() {
        for el in families() {
            let oracle = kruskal_msf(&el);
            for prob in [0.0, 0.1, 0.25, 0.5, 1.0] {
                let (kept, stats) = filter_edge_list(&el, prob, 0xF11);
                assert_eq!(
                    kruskal_msf(&kept),
                    oracle,
                    "prob {prob} changed the MSF (dropped {})",
                    stats.dropped_edges
                );
            }
        }
    }

    #[test]
    fn prob_zero_drops_nothing() {
        for el in families() {
            let (kept, stats) = filter_edge_list(&el, 0.0, 9);
            assert_eq!(kept.edges(), el.edges());
            assert_eq!(stats.sampled_edges, 0);
            assert_eq!(stats.dropped_edges, 0);
        }
    }

    #[test]
    fn prob_one_degenerates_to_kruskal() {
        // Every edge sampled: survivors are exactly the local MSF edges.
        for el in families() {
            let oracle = kruskal_msf(&el);
            let (kept, stats) = filter_edge_list(&el, 1.0, 9);
            assert_eq!(stats.sampled_edges, el.len());
            assert_eq!(stats.kept_edges(), oracle.edges.len());
            let mut kept_edges = kept.edges().to_vec();
            kept_edges.sort_unstable();
            let mut msf_edges = oracle.edges.clone();
            msf_edges.sort_unstable();
            assert_eq!(kept_edges, msf_edges);
        }
    }

    #[test]
    fn sampling_actually_prunes_dense_graphs() {
        // A complete graph is almost all non-MST edges: even a 25% sample's
        // forest should certify a large fraction of them away.
        let el = gen::complete(64, 7);
        let (_, stats) = filter_edge_list(&el, 0.25, 7);
        assert!(
            stats.dropped_edges > el.len() / 2,
            "dropped only {} of {}",
            stats.dropped_edges,
            el.len()
        );
    }

    #[test]
    fn mask_is_deterministic_and_seed_sensitive() {
        let el = gen::gnm(800, 6000, 11);
        let (a, _) = keep_mask(el.edges(), 0.3, 42);
        let (b, _) = keep_mask(el.edges(), 0.3, 42);
        assert_eq!(a, b);
        let (c, _) = keep_mask(el.edges(), 0.3, 43);
        assert_ne!(a, c, "different seeds should sample differently");
    }

    #[test]
    fn holding_filter_never_drops_cut_edges() {
        // Partition a dense graph across two ranks: every cut edge must
        // survive on the rank that filters, however redundant, because its
        // duplicate on the other rank would be certified differently.
        let el = gen::complete(60, 17);
        let csr = mnd_graph::CsrGraph::from_edge_list(&el);
        let range = mnd_graph::partition::VertexRange { start: 0, end: 30 };
        let mut cg = CGraph::from_partition(&csr, range);
        let cut_before: Vec<WEdge> = cg
            .iter_edges()
            .filter(|e| !cg.is_resident(e.a) || !cg.is_resident(e.b))
            .map(|e| e.orig)
            .collect();
        assert!(!cut_before.is_empty(), "fixture must have cut edges");
        let stats = filter_holding(&mut cg, 0.5, 23);
        assert!(stats.dropped_edges > 0, "internal edges should shed");
        let cut_after: Vec<WEdge> = cg
            .iter_edges()
            .filter(|e| !cg.is_resident(e.a) || !cg.is_resident(e.b))
            .map(|e| e.orig)
            .collect();
        assert_eq!(cut_before, cut_after, "cut edges must all survive");
    }

    #[test]
    fn holding_filter_matches_edge_list_filter() {
        let el = gen::web_crawl(1500, 9000, gen::CrawlParams::default(), 13);
        let csr = mnd_graph::CsrGraph::from_edge_list(&el);
        let range = mnd_graph::partition::VertexRange {
            start: 0,
            end: el.num_vertices(),
        };
        let mut cg = CGraph::from_partition(&csr, range);
        let before = cg.num_edges();
        let stats = filter_holding(&mut cg, 0.5, 21);
        assert_eq!(stats.input_edges, before);
        assert_eq!(cg.num_edges(), stats.kept_edges());
        // The survivors are exactly the edges the list-level filter keeps.
        let (kept_el, _) = filter_edge_list(&el, 0.5, 21);
        let mut held: Vec<WEdge> = cg.orig_col().to_vec();
        held.sort_unstable();
        let mut expect: Vec<WEdge> = kept_el.edges().to_vec();
        expect.sort_unstable();
        assert_eq!(held, expect);
    }
}
