//! Reference MST/MSF implementations: Kruskal (the workspace oracle) and
//! Prim (a second, structurally different oracle used to cross-check
//! Kruskal itself in tests).

use mnd_graph::types::{total_weight, VertexId, WEdge};
use mnd_graph::{CsrGraph, EdgeList};

use crate::dsu::DisjointSets;
use crate::msf::MsfResult;

/// Kruskal's algorithm over a canonical edge list. O(E log E).
///
/// Under the workspace-wide total edge order `(w, u, v)` the result is the
/// unique MSF of the graph.
pub fn kruskal_msf(el: &EdgeList) -> MsfResult {
    let mut edges: Vec<WEdge> = el.edges().to_vec();
    edges.sort_unstable();
    let mut dsu = DisjointSets::new(el.num_vertices() as usize);
    let mut out = Vec::new();
    for e in edges {
        if dsu.union(e.u, e.v) {
            out.push(e);
            if dsu.num_sets() == 1 {
                break;
            }
        }
    }
    MsfResult::from_edges(el.num_vertices(), out)
}

/// Prim's algorithm from vertex 0 over a **connected** graph. O(E log V)
/// with a binary heap. Returns `None` if the graph is not connected (Prim
/// only spans one component).
pub fn prim_mst(g: &CsrGraph) -> Option<MsfResult> {
    let n = g.num_vertices() as usize;
    if n == 0 {
        return Some(MsfResult {
            edges: vec![],
            weight: 0,
            num_components: 0,
        });
    }
    let mut in_tree = vec![false; n];
    let mut out: Vec<WEdge> = Vec::with_capacity(n - 1);
    // Heap of candidate edges keyed by the full edge order so ties resolve
    // identically to Kruskal.
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(WEdge, VertexId)>> =
        std::collections::BinaryHeap::new();
    in_tree[0] = true;
    for (v, w) in g.neighbors(0) {
        heap.push(std::cmp::Reverse((WEdge::new(0, v, w), v)));
    }
    while let Some(std::cmp::Reverse((e, new_v))) = heap.pop() {
        if in_tree[new_v as usize] {
            continue;
        }
        in_tree[new_v as usize] = true;
        out.push(e);
        for (t, w) in g.neighbors(new_v) {
            if !in_tree[t as usize] {
                heap.push(std::cmp::Reverse((WEdge::new(new_v, t, w), t)));
            }
        }
    }
    if out.len() != n - 1 {
        return None; // disconnected
    }
    Some(MsfResult::from_edges(g.num_vertices(), out))
}

/// Convenience: total MSF weight by Kruskal.
pub fn msf_weight(el: &EdgeList) -> u128 {
    total_weight(&kruskal_msf(el).edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnd_graph::gen;

    #[test]
    fn kruskal_on_path_takes_all_edges() {
        let el = gen::path(6, 1);
        let msf = kruskal_msf(&el);
        assert_eq!(msf.edges.len(), 5);
        assert_eq!(msf.num_components, 1);
        assert_eq!(msf.weight, total_weight(el.edges()));
    }

    #[test]
    fn kruskal_on_cycle_drops_heaviest() {
        let el = gen::cycle(7, 2);
        let msf = kruskal_msf(&el);
        assert_eq!(msf.edges.len(), 6);
        let heaviest = el.edges().iter().max().unwrap();
        assert!(!msf.edges.contains(heaviest));
    }

    #[test]
    fn kruskal_counts_components_of_forest() {
        let u = gen::disconnected_union(&[gen::path(4, 1), gen::cycle(5, 2), gen::star(3, 3)]);
        let msf = kruskal_msf(&u);
        assert_eq!(msf.num_components, 3);
        assert_eq!(msf.edges.len(), 12 - 3);
    }

    #[test]
    fn prim_matches_kruskal_on_connected_graphs() {
        for seed in 0..5 {
            let el = gen::watts_strogatz(300, 6, 0.2, seed);
            let g = CsrGraph::from_edge_list(&el);
            let k = kruskal_msf(&el);
            let p = prim_mst(&g).expect("connected");
            assert_eq!(k, p, "seed {seed}");
        }
    }

    #[test]
    fn prim_rejects_disconnected() {
        let u = gen::disconnected_union(&[gen::path(3, 1), gen::path(3, 2)]);
        let g = CsrGraph::from_edge_list(&u);
        assert!(prim_mst(&g).is_none());
    }

    #[test]
    fn empty_graph() {
        let el = EdgeList::new(0);
        let msf = kruskal_msf(&el);
        assert!(msf.edges.is_empty());
        assert_eq!(msf.num_components, 0);
    }

    #[test]
    fn edgeless_graph_is_all_components() {
        let el = EdgeList::new(9);
        let msf = kruskal_msf(&el);
        assert_eq!(msf.num_components, 9);
    }
}
