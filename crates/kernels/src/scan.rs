//! Min-edge election scans over the holding's SoA columns.
//!
//! The hottest loop of every Boruvka variant is the per-component
//! lightest-edge election. This module provides it as a standalone kernel
//! over [`CGraph`]'s column storage: [`min_edge_scan_seq`] is the
//! sequential reference, and there are two parallel implementations —
//! [`min_edge_scan_par`] splits the endpoint columns
//! ([`CGraph::endpoint_cols`]) into row chunks, elects per-chunk winners on
//! rayon workers and merges the partial tables, while
//! [`min_edge_scan_lockfree`] races CAS fetch-min loops against one packed
//! atomic word per resident slot (no partial tables, no merge phase; see
//! [`crate::lockfree`]).
//!
//! Winners are ordered by `(edge, row index)` — a total order even with
//! multi-edges — so the parallel merge is associative, the atomic fetch-min
//! is commutative, and all three scans return *identical* tables regardless
//! of chunking or thread count (the oracle tests assert this).

use std::sync::atomic::AtomicU64;

use mnd_graph::types::WEdge;
use rayon::prelude::*;

use crate::cgraph::{CGraph, CompId};
use crate::lockfree::{fetch_min_edge, pack, row_of, SlotLookup, NONE_KEY};
use crate::policy::{KernelClass, KernelPolicy, ParVariant};

/// Default row-chunk size for [`min_edge_scan`]: big enough that the
/// per-chunk winner table amortizes, small enough to load-balance.
pub const DEFAULT_CHUNK_ROWS: usize = 4096;

/// The lightest incident edge per resident component, as a row index into
/// the holding's edge columns (`None` for isolated components). Resident
/// slot `i` corresponds to `cg.resident()[i]`. Self edges (both endpoints
/// the same component) elect nobody.
pub fn min_edge_scan_seq(cg: &CGraph) -> Vec<Option<u32>> {
    let mut best = vec![None; cg.num_resident()];
    scan_rows(cg, 0, cg.num_edges(), &mut best);
    best
}

/// As [`min_edge_scan_seq`], but electing over `chunk_rows`-row column
/// chunks in parallel. Returns exactly the sequential table.
pub fn min_edge_scan_par(cg: &CGraph, chunk_rows: usize) -> Vec<Option<u32>> {
    assert!(chunk_rows > 0, "chunk_rows must be positive");
    let m = cg.num_edges();
    let ranges: Vec<(usize, usize)> = (0..m)
        .step_by(chunk_rows)
        .map(|lo| (lo, (lo + chunk_rows).min(m)))
        .collect();
    let partials: Vec<Vec<Option<u32>>> = ranges
        .into_par_iter()
        .map(|(lo, hi)| {
            let mut best = vec![None; cg.num_resident()];
            scan_rows(cg, lo, hi, &mut best);
            best
        })
        .collect();
    let orig = cg.orig_col();
    let mut best = vec![None; cg.num_resident()];
    for partial in &partials {
        for (slot, &candidate) in best.iter_mut().zip(partial) {
            if let Some(j) = candidate {
                take_if_lighter(slot, j, orig);
            }
        }
    }
    best
}

/// As [`min_edge_scan_seq`], but with workers CAS-ing packed
/// `(weight << 32) | row` words into one atomic slot per resident
/// component — the lock-free plane. No per-chunk winner tables, no merge
/// pass, and resident slots resolve through the dense [`SlotLookup`]
/// instead of a per-endpoint binary search. Weight ties fall back to the
/// full `(edge, row)` order, so the table is byte-identical to the
/// sequential scan for any chunking and thread count.
pub fn min_edge_scan_lockfree(cg: &CGraph, chunk_rows: usize) -> Vec<Option<u32>> {
    assert!(chunk_rows > 0, "chunk_rows must be positive");
    let m = cg.num_edges();
    let best: Vec<AtomicU64> = (0..cg.num_resident())
        .map(|_| AtomicU64::new(NONE_KEY))
        .collect();
    let lookup = SlotLookup::new(cg.resident());
    let (ca, cb) = cg.endpoint_cols();
    let orig = cg.orig_col();
    let orig_of = |row: u32| orig[row as usize];
    let ranges: Vec<(usize, usize)> = (0..m)
        .step_by(chunk_rows)
        .map(|lo| (lo, (lo + chunk_rows).min(m)))
        .collect();
    ranges.into_par_iter().for_each(|(lo, hi)| {
        for row in lo..hi {
            if ca[row] == cb[row] {
                continue;
            }
            let key = pack(orig[row].w, row as u32);
            for c in [ca[row], cb[row]] {
                if let Some(slot) = lookup.get(c) {
                    fetch_min_edge(&best[slot as usize], key, &orig_of);
                }
            }
        }
    });
    best.into_iter()
        .map(|slot| {
            let key = slot.into_inner();
            (key != NONE_KEY).then(|| row_of(key))
        })
        .collect()
}

/// The election with the default parallel policy: sequential for holdings
/// under one chunk of edges (thread spawn would dominate), parallel above.
pub fn min_edge_scan(cg: &CGraph) -> Vec<Option<u32>> {
    min_edge_scan_with(cg, &KernelPolicy::default())
}

/// The election under an explicit (typically calibrated) [`KernelPolicy`]:
/// sequential at or below the crossover, the policy's election variant
/// (lock-free or chunk-and-merge) above it. Identical output every way.
pub fn min_edge_scan_with(cg: &CGraph, policy: &KernelPolicy) -> Vec<Option<u32>> {
    if policy.use_par_for(KernelClass::Election, cg.num_edges()) {
        match policy.variant_for(KernelClass::Election) {
            ParVariant::LockFree => min_edge_scan_lockfree(cg, policy.chunk_rows.max(1)),
            ParVariant::ChunkMerge => min_edge_scan_par(cg, policy.chunk_rows.max(1)),
        }
    } else {
        min_edge_scan_seq(cg)
    }
}

/// Elects over rows `lo..hi` into `best` (one slot per resident index).
fn scan_rows(cg: &CGraph, lo: usize, hi: usize, best: &mut [Option<u32>]) {
    let resident = cg.resident();
    let (ca, cb) = cg.endpoint_cols();
    let orig = cg.orig_col();
    let index_of = |c: CompId| resident.binary_search(&c).ok();
    for row in lo..hi {
        if ca[row] == cb[row] {
            continue;
        }
        for c in [ca[row], cb[row]] {
            if let Some(i) = index_of(c) {
                take_if_lighter(&mut best[i], row as u32, orig);
            }
        }
    }
}

/// Replaces `slot` with `candidate` if the candidate's `(edge, row)` key is
/// smaller — the comparison both scans order winners by.
#[inline]
fn take_if_lighter(slot: &mut Option<u32>, candidate: u32, orig: &[WEdge]) {
    let lighter = match *slot {
        Some(cur) => (orig[candidate as usize], candidate) < (orig[cur as usize], cur),
        None => true,
    };
    if lighter {
        *slot = Some(candidate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnd_graph::gen;

    fn holdings() -> Vec<CGraph> {
        vec![
            CGraph::from_edge_list(&gen::path(40, 1)),
            CGraph::from_edge_list(&gen::complete(25, 2)),
            CGraph::from_edge_list(&gen::gnm(500, 3000, 3)),
            CGraph::from_edge_list(&gen::rmat(256, 2048, gen::RmatProbs::GRAPH500, 4)),
            CGraph::from_edge_list(&gen::disconnected_union(&[
                gen::path(10, 5),
                gen::gnm(50, 150, 6),
            ])),
            CGraph::new(),
        ]
    }

    #[test]
    fn parallel_matches_sequential_for_all_chunkings() {
        for cg in holdings() {
            let seq = min_edge_scan_seq(&cg);
            for chunk in [1, 3, 64, DEFAULT_CHUNK_ROWS, usize::MAX] {
                assert_eq!(min_edge_scan_par(&cg, chunk), seq, "chunk={chunk}");
            }
            assert_eq!(min_edge_scan(&cg), seq);
        }
    }

    #[test]
    fn lockfree_matches_sequential_for_all_chunkings() {
        for cg in holdings() {
            let seq = min_edge_scan_seq(&cg);
            for chunk in [1, 3, 64, DEFAULT_CHUNK_ROWS, usize::MAX] {
                assert_eq!(min_edge_scan_lockfree(&cg, chunk), seq, "chunk={chunk}");
            }
            assert_eq!(
                min_edge_scan_with(&cg, &KernelPolicy::force_lockfree(7)),
                seq
            );
        }
    }

    #[test]
    fn winners_are_the_lightest_incident_edges() {
        let cg = CGraph::from_edge_list(&gen::gnm(200, 1000, 7));
        let best = min_edge_scan_seq(&cg);
        let orig = cg.orig_col();
        for (i, &c) in cg.resident().iter().enumerate() {
            // Brute-force oracle over the AoS view.
            let expected = cg
                .iter_edges()
                .enumerate()
                .filter(|(_, e)| !e.is_self() && (e.a == c || e.b == c))
                .min_by_key(|&(row, e)| (e.orig, row as u32))
                .map(|(row, _)| row as u32);
            assert_eq!(best[i], expected, "component {c}");
            if let Some(row) = best[i] {
                let e = cg.edge(row as usize);
                assert!(e.a == c || e.b == c);
                assert_eq!(e.orig, orig[row as usize]);
            }
        }
    }

    #[test]
    fn isolated_components_elect_nothing() {
        let cg = CGraph::from_edge_list(&mnd_graph::EdgeList::new(5));
        let best = min_edge_scan_seq(&cg);
        assert_eq!(best, vec![None; cg.num_resident()]);
    }

    #[test]
    #[should_panic(expected = "chunk_rows")]
    fn zero_chunk_is_rejected() {
        min_edge_scan_par(&CGraph::new(), 0);
    }
}
