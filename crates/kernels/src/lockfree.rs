//! Lock-free kernel-plane primitives: packed `(weight << 32) | row` atomic
//! words, the CAS fetch-min loop, and O(1) resident-slot lookup.
//!
//! The chunk-and-merge parallel plane (PR 3) pays for its determinism with
//! per-chunk winner tables and a merge pass per chunk. The lock-free plane
//! removes both: every resident slot owns one `AtomicU64` holding the packed
//! key of its current winner, and workers race CAS fetch-min loops against
//! it — the shared-memory design of the SNIPPETS.md exemplars (abarankab's
//! `encode_edge(id, weight)`, pashagoose's `chippestEdgeOut`).
//!
//! ## Why the result is still byte-identical to sequential
//!
//! The sequential election orders candidates by the total order
//! `(original edge key, row index)` = `((w, u, v), row)`. The packed word
//! orders by `(w, row)` — identical whenever weights differ, but under a
//! weight tie the packed order could disagree with the `(u, v)` tie-break
//! the sequential kernel (and Kruskal, and every downstream byte-match
//! oracle) uses. [`fetch_min_edge`] therefore compares the packed words as
//! the fast path and falls back to the full `(edge key, row)` comparison
//! only when the weights are equal. A fetch-min under a total order is
//! commutative and idempotent, so every interleaving of every thread count
//! converges to the same per-slot winner: the global minimum. Memory
//! ordering needs only the CAS's own atomicity for that argument — the
//! sweep is racy by design and correct under any ordering — but winners are
//! published with `AcqRel` so the post-join reader also sees the winning
//! row's payload without relying on the join's barrier.

use std::sync::atomic::{AtomicU64, Ordering};

use mnd_graph::types::WEdge;

use crate::cgraph::CompId;

/// Empty-slot sentinel. `pack(u32::MAX, u32::MAX)` would collide, but a
/// holding with `u32::MAX` rows is unrepresentable (row indices are `u32`
/// and the collision needs *both* halves saturated).
pub const NONE_KEY: u64 = u64::MAX;

/// Packs an election candidate into one atomic word: weight in the high
/// half so the integer order is `(weight, row)`.
#[inline]
pub fn pack(weight: u32, row: u32) -> u64 {
    ((weight as u64) << 32) | row as u64
}

/// The row index a packed word elects.
#[inline]
pub fn row_of(key: u64) -> u32 {
    key as u32
}

/// Lock-free fetch-min of `key` into `slot` under the sequential election's
/// total order. `orig_of` resolves a row index to its original edge and is
/// consulted only on weight ties (see module docs).
#[inline]
pub fn fetch_min_edge(slot: &AtomicU64, key: u64, orig_of: &impl Fn(u32) -> WEdge) {
    let mut cur = slot.load(Ordering::Relaxed);
    loop {
        if cur != NONE_KEY && !precedes(key, cur, orig_of) {
            return;
        }
        match slot.compare_exchange_weak(cur, key, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// `true` when `a` precedes `b` under `((w, u, v), row)` — the packed-word
/// comparison except on weight ties, where the full edge key breaks them.
#[inline]
fn precedes(a: u64, b: u64, orig_of: &impl Fn(u32) -> WEdge) -> bool {
    if (a >> 32) != (b >> 32) {
        return a < b;
    }
    let (ra, rb) = (row_of(a), row_of(b));
    (orig_of(ra), ra) < (orig_of(rb), rb)
}

/// Resident-slot lookup for the lock-free sweeps. The sequential kernels
/// binary-search `resident` per endpoint (~17 branchy probes at 10⁵
/// components); holdings keep their resident ids nearly contiguous (level-0
/// partitions are vertex ranges), so a direct-index table over the id range
/// answers in O(1). Sparse id ranges fall back to the binary search.
pub struct SlotLookup<'a> {
    resident: &'a [CompId],
    /// `(lowest id, table)`: `table[c - lowest]` is the slot of component
    /// `c`, `u32::MAX` when `c` is not resident.
    dense: Option<(CompId, Vec<u32>)>,
}

impl<'a> SlotLookup<'a> {
    /// Builds the lookup over a sorted resident column. Densifies when the
    /// id range is within 4× of the resident count (with a floor so tiny
    /// holdings always densify); beyond that the table would thrash cache
    /// for no probe savings.
    pub fn new(resident: &'a [CompId]) -> Self {
        let dense = match (resident.first(), resident.last()) {
            (Some(&lo), Some(&hi)) => {
                let range = (hi - lo) as usize + 1;
                if range <= resident.len().saturating_mul(4).max(1024) {
                    let mut table = vec![u32::MAX; range];
                    for (slot, &c) in resident.iter().enumerate() {
                        table[(c - lo) as usize] = slot as u32;
                    }
                    Some((lo, table))
                } else {
                    None
                }
            }
            _ => None,
        };
        SlotLookup { resident, dense }
    }

    /// The resident slot of component `c`, if resident.
    #[inline]
    pub fn get(&self, c: CompId) -> Option<u32> {
        match &self.dense {
            Some((lo, table)) => match table.get(c.checked_sub(*lo)? as usize) {
                Some(&slot) if slot != u32::MAX => Some(slot),
                _ => None,
            },
            None => self.resident.binary_search(&c).ok().map(|i| i as u32),
        }
    }
}

// The lock-free count kernel reinterprets the holding's reusable `Vec<u64>`
// scratch as atomic words for the duration of one sweep; both layouts must
// agree exactly for that cast to be sound.
const _: () = assert!(std::mem::size_of::<u64>() == std::mem::size_of::<AtomicU64>());
const _: () = assert!(std::mem::align_of::<u64>() == std::mem::align_of::<AtomicU64>());

/// Views an exclusively-borrowed `u64` slice as atomic words so parallel
/// workers can `fetch_add` into it without a per-chunk partial table. Sound
/// because the borrow is exclusive (no non-atomic access can race) and the
/// layouts are asserted identical above.
pub(crate) fn as_atomic_u64(xs: &mut [u64]) -> &[AtomicU64] {
    // SAFETY: size/align asserted at compile time; `&mut` guarantees no
    // other reference (atomic or plain) aliases the slice for the lifetime
    // of the returned view; every element is a valid AtomicU64 bit pattern.
    unsafe { std::slice::from_raw_parts(xs.as_mut_ptr() as *const AtomicU64, xs.len()) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_orders_by_weight_then_row() {
        assert!(pack(1, 500) < pack(2, 0));
        assert!(pack(3, 1) < pack(3, 2));
        assert_eq!(row_of(pack(7, 42)), 42);
        assert!(pack(u32::MAX, u32::MAX - 1) < NONE_KEY);
    }

    #[test]
    fn fetch_min_keeps_the_smaller_key() {
        let origs = [WEdge::new(0, 1, 5), WEdge::new(2, 3, 3)];
        let orig_of = |r: u32| origs[r as usize];
        let slot = AtomicU64::new(NONE_KEY);
        fetch_min_edge(&slot, pack(5, 0), &orig_of);
        assert_eq!(slot.load(Ordering::Relaxed), pack(5, 0));
        fetch_min_edge(&slot, pack(3, 1), &orig_of);
        assert_eq!(slot.load(Ordering::Relaxed), pack(3, 1));
        fetch_min_edge(&slot, pack(5, 0), &orig_of);
        assert_eq!(slot.load(Ordering::Relaxed), pack(3, 1));
    }

    #[test]
    fn weight_ties_break_on_edge_key_not_row() {
        // Row 1 holds the lexicographically smaller edge despite the larger
        // row index: the tie fallback must pick it, exactly like the
        // sequential `(edge, row)` comparison would.
        let origs = [WEdge::new(9, 9, 4), WEdge::new(0, 1, 4)];
        let orig_of = |r: u32| origs[r as usize];
        let slot = AtomicU64::new(pack(4, 0));
        fetch_min_edge(&slot, pack(4, 1), &orig_of);
        assert_eq!(slot.load(Ordering::Relaxed), pack(4, 1));
    }

    #[test]
    fn slot_lookup_matches_binary_search() {
        for resident in [
            vec![],
            vec![5],
            vec![0, 1, 2, 3],
            vec![10, 20, 30, 999],
            (0..5000u32).step_by(7).collect::<Vec<_>>(),
            // Sparse enough to force the binary-search fallback.
            vec![0, 1 << 20, 1 << 24, u32::MAX - 1],
        ] {
            let lk = SlotLookup::new(&resident);
            for probe in resident
                .iter()
                .copied()
                .chain([0, 1, 6, 100, 1 << 21, u32::MAX])
            {
                assert_eq!(
                    lk.get(probe),
                    resident.binary_search(&probe).ok().map(|i| i as u32),
                    "probe {probe} in {:?}…",
                    &resident[..resident.len().min(6)]
                );
            }
        }
    }

    #[test]
    fn atomic_view_round_trips() {
        let mut xs = vec![1u64, 2, 3];
        let view = as_atomic_u64(&mut xs);
        view[1].fetch_add(40, Ordering::Relaxed);
        assert_eq!(xs, vec![1, 42, 3]);
    }
}
