//! Contraction-based Boruvka (da Silva Sousa, Mariano & Proença, PDP'15).
//!
//! The paper's GPU kernel lineage runs Lonestar-GPU → Sousa et al., whose
//! speedup comes from **physically rebuilding a contracted edge list each
//! round** instead of rescanning a worklist over stale endpoints: after
//! the round's unions, every surviving edge is rewritten to its component
//! endpoints and self edges are dropped, so round `k+1` scans a strictly
//! smaller, dense array with no `find` calls during the scan.
//!
//! [`contraction_boruvka_msf`] is that variant; `benches/kernels.rs`
//! compares it against the worklist kernel ([`crate::boruvka`]) and the
//! sorting baselines — reproducing the design-space ablation behind the
//! paper's §3.5 choice.

use mnd_graph::types::WEdge;
use mnd_graph::EdgeList;

use crate::msf::MsfResult;
use crate::policy::{IterWork, WorkProfile};

/// Whole-graph MSF by repeated physical contraction. Produces exactly the
/// unique MSF (tests assert equality with Kruskal/Boruvka).
pub fn contraction_boruvka_msf(el: &EdgeList) -> MsfResult {
    let (res, _) = contraction_boruvka_profiled(el);
    res
}

/// As [`contraction_boruvka_msf`], also reporting the per-round work.
pub fn contraction_boruvka_profiled(el: &EdgeList) -> (MsfResult, WorkProfile) {
    // Edges carry their current component endpoints; `orig` keeps identity.
    struct CEdge {
        a: u32,
        b: u32,
        orig: WEdge,
    }
    let mut edges: Vec<CEdge> = el
        .edges()
        .iter()
        .map(|e| CEdge {
            a: e.u,
            b: e.v,
            orig: *e,
        })
        .collect();
    let mut msf: Vec<WEdge> = Vec::new();
    let mut work = WorkProfile::default();

    while !edges.is_empty() {
        let scanned = edges.len() as u64;
        // Min-edge election per component: labels are dense enough to use
        // a map keyed by component id (components shrink every round).
        let mut best: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        for (i, e) in edges.iter().enumerate() {
            for c in [e.a, e.b] {
                match best.entry(c) {
                    std::collections::hash_map::Entry::Occupied(mut o) => {
                        if edges[i].orig < edges[*o.get()].orig {
                            o.insert(i);
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(i);
                    }
                }
            }
        }
        // Union the winners through a per-round DSU over component ids.
        let mut parent: std::collections::HashMap<u32, u32> =
            best.keys().map(|&c| (c, c)).collect();
        fn find(parent: &mut std::collections::HashMap<u32, u32>, mut x: u32) -> u32 {
            loop {
                let p = parent[&x];
                if p == x {
                    return x;
                }
                let gp = parent[&p];
                parent.insert(x, gp);
                x = gp;
            }
        }
        let mut unions = 0u64;
        let mut winners: Vec<usize> = best.into_values().collect();
        winners.sort_unstable();
        winners.dedup();
        for i in winners {
            let e = &edges[i];
            let (ra, rb) = (find(&mut parent, e.a), find(&mut parent, e.b));
            if ra != rb {
                // Min-id orientation keeps labels canonical.
                let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
                parent.insert(hi, lo);
                msf.push(e.orig);
                unions += 1;
            }
        }
        work.iters.push(IterWork {
            active_components: parent.len() as u64,
            edges_scanned: scanned,
            unions,
        });
        if unions == 0 {
            break;
        }
        // Physical contraction: rewrite endpoints, drop self edges.
        let mut round_root: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let keys: Vec<u32> = parent.keys().copied().collect();
        for c in keys {
            let r = find(&mut parent, c);
            round_root.insert(c, r);
        }
        for e in edges.iter_mut() {
            e.a = *round_root.get(&e.a).unwrap_or(&e.a);
            e.b = *round_root.get(&e.b).unwrap_or(&e.b);
        }
        edges.retain(|e| e.a != e.b);
    }

    (MsfResult::from_edges(el.num_vertices(), msf), work)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boruvka::boruvka_msf;
    use crate::msf::verify_msf;
    use crate::oracle::kruskal_msf;
    use mnd_graph::gen;
    use mnd_graph::EdgeList;

    #[test]
    fn matches_oracles_on_families() {
        for el in [
            gen::path(40, 1),
            gen::cycle(30, 2),
            gen::complete(25, 3),
            gen::gnm(800, 4000, 4),
            gen::web_crawl(1000, 8000, gen::CrawlParams::default(), 5),
            gen::road_grid(20, 20, 0.02, 0.38, 6),
            gen::disconnected_union(&[gen::path(10, 7), gen::gnm(50, 150, 8)]),
        ] {
            let c = contraction_boruvka_msf(&el);
            assert_eq!(c, kruskal_msf(&el));
            assert_eq!(c, boruvka_msf(&el));
            verify_msf(&el, &c).unwrap();
        }
    }

    #[test]
    fn trivial_inputs() {
        assert!(contraction_boruvka_msf(&EdgeList::new(0)).edges.is_empty());
        assert_eq!(contraction_boruvka_msf(&EdgeList::new(7)).num_components, 7);
    }

    #[test]
    fn edges_shrink_geometrically() {
        let el = gen::gnm(3000, 15_000, 9);
        let (res, work) = contraction_boruvka_profiled(&el);
        verify_msf(&el, &res).unwrap();
        // Scanned work per round must drop monotonically — the point of
        // physical contraction.
        for w in work.iters.windows(2) {
            assert!(w[1].edges_scanned <= w[0].edges_scanned);
        }
        assert!(work.num_iterations() <= 2 * (3000f64).log2().ceil() as usize);
    }
}
