//! Filter-Kruskal (Osipov, Sanders & Singler, ALENEX'09): the practical
//! sequential MST champion, included as a third oracle/baseline (Sousa et
//! al., whom the paper builds its GPU kernel on, benchmark against it).
//!
//! Quicksort-style recursion on edge weight: below a threshold fall back
//! to plain Kruskal; otherwise partition edges around a pivot, solve the
//! light half, **filter** the heavy half (drop edges already intra-
//! component — the step that skips sorting most heavy edges entirely),
//! then solve what survives.

use mnd_graph::types::WEdge;
use mnd_graph::EdgeList;

use crate::dsu::DisjointSets;
use crate::msf::MsfResult;

/// Below this many edges a recursion leaf just sorts (plain Kruskal).
const KRUSKAL_THRESHOLD: usize = 1024;

/// Computes the (unique) MSF with Filter-Kruskal.
pub fn filter_kruskal_msf(el: &EdgeList) -> MsfResult {
    let mut edges: Vec<WEdge> = el.edges().to_vec();
    let mut dsu = DisjointSets::new(el.num_vertices() as usize);
    let mut out = Vec::new();
    recurse(&mut edges, &mut dsu, &mut out);
    MsfResult::from_edges(el.num_vertices(), out)
}

fn recurse(edges: &mut [WEdge], dsu: &mut DisjointSets, out: &mut Vec<WEdge>) {
    if dsu.num_sets() == 1 || edges.is_empty() {
        return;
    }
    if edges.len() <= KRUSKAL_THRESHOLD {
        edges.sort_unstable();
        for e in edges.iter() {
            if dsu.union(e.u, e.v) {
                out.push(*e);
                if dsu.num_sets() == 1 {
                    return;
                }
            }
        }
        return;
    }
    // Median-of-three pivot on the full (weight, u, v) order so splits stay
    // balanced even under heavy weight ties.
    let pivot = {
        let a = edges[0];
        let b = edges[edges.len() / 2];
        let c = edges[edges.len() - 1];
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        if c <= lo {
            lo
        } else if c >= hi {
            hi
        } else {
            c
        }
    };
    // Partition: light = (<= pivot), heavy = (> pivot). `pivot` itself is
    // in the light half, which guarantees progress.
    let split = partition_in_place(edges, |e| *e <= pivot);
    let (light, heavy) = edges.split_at_mut(split);
    debug_assert!(!light.is_empty(), "pivot must land in the light half");
    recurse(light, dsu, out);
    // Filter: heavy edges whose endpoints already touch are never in the
    // MSF; drop them before recursing (the algorithm's key saving).
    let mut keep = 0;
    for i in 0..heavy.len() {
        if dsu.find(heavy[i].u) != dsu.find(heavy[i].v) {
            heavy.swap(keep, i);
            keep += 1;
        }
    }
    recurse(&mut heavy[..keep], dsu, out);
}

/// Hoare-style stable-enough partition; returns the light-half length.
fn partition_in_place(edges: &mut [WEdge], light: impl Fn(&WEdge) -> bool) -> usize {
    let mut next = 0;
    for i in 0..edges.len() {
        if light(&edges[i]) {
            edges.swap(next, i);
            next += 1;
        }
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msf::verify_msf;
    use crate::oracle::kruskal_msf;
    use mnd_graph::gen;

    #[test]
    fn matches_kruskal_on_families() {
        for el in [
            gen::path(50, 1),
            gen::cycle(40, 2),
            gen::complete(40, 3),
            gen::gnm(2000, 12_000, 4), // above the leaf threshold
            gen::web_crawl(3000, 20_000, gen::CrawlParams::default(), 5),
            gen::road_grid(40, 40, 0.02, 0.38, 6),
        ] {
            let fk = filter_kruskal_msf(&el);
            assert_eq!(fk, kruskal_msf(&el));
            verify_msf(&el, &fk).unwrap();
        }
    }

    #[test]
    fn handles_disconnected_and_trivial() {
        let u = gen::disconnected_union(&[gen::gnm(500, 3000, 1), gen::path(20, 2)]);
        assert_eq!(filter_kruskal_msf(&u), kruskal_msf(&u));
        assert_eq!(
            filter_kruskal_msf(&mnd_graph::EdgeList::new(0)).edges.len(),
            0
        );
        assert_eq!(
            filter_kruskal_msf(&mnd_graph::EdgeList::new(5)).num_components,
            5
        );
    }

    #[test]
    fn survives_massive_weight_ties() {
        // All-equal weights make the pivot degenerate; median-of-three on
        // the full edge order must still split.
        let mut el = gen::gnm(3000, 20_000, 9);
        el.assign_random_weights(3, 2); // weights in {1, 2}
        assert_eq!(filter_kruskal_msf(&el), kruskal_msf(&el));
    }

    #[test]
    fn filter_actually_prunes() {
        // On a dense graph the MSF needs V-1 of E edges: recursion should
        // terminate long before touching every heavy edge. We can't observe
        // the pruning directly, but equality + a generous time bound in a
        // debug test is a reasonable canary.
        let el = gen::gnm(2000, 60_000, 11);
        let t = std::time::Instant::now();
        let fk = filter_kruskal_msf(&el);
        assert_eq!(fk, kruskal_msf(&el));
        assert!(t.elapsed() < std::time::Duration::from_secs(20));
    }
}
