//! A collecting observer for chaos events.
//!
//! Tests and the `repro` binary need to see *which* faults fired and what
//! recovery ran. [`ChaosLog`] is a [`PhaseObserver`] that ignores phase
//! samples and records every [`ChaosEvent`]; attach it with
//! `HyParConfig::with_observer` alongside the `FaultPlan`.

use std::sync::Mutex;

use mnd_hypar::{ChaosEvent, ChaosEventKind, PhaseKind, PhaseObserver, PhaseSample};

/// Collects chaos events across all rank threads, in arrival order.
///
/// Note: *cross-rank* arrival order depends on thread scheduling; use
/// [`ChaosLog::events_sorted`] (rank-major, then boundary/level) when
/// comparing runs.
#[derive(Default)]
pub struct ChaosLog {
    events: Mutex<Vec<ChaosEvent>>,
}

impl ChaosLog {
    /// An empty log.
    pub fn new() -> Self {
        ChaosLog::default()
    }

    /// Snapshot of the recorded events in arrival order.
    pub fn events(&self) -> Vec<ChaosEvent> {
        self.events.lock().expect("chaos log poisoned").clone()
    }

    /// Events in a schedule-independent order: by rank, then boundary,
    /// then level, then kind name — suitable for run-to-run comparison.
    pub fn events_sorted(&self) -> Vec<ChaosEvent> {
        let mut evs = self.events();
        evs.sort_by_key(|e| (e.rank, e.boundary, e.level, e.kind.name()));
        evs
    }

    /// Number of recorded events of `kind`.
    pub fn count(&self, kind: ChaosEventKind) -> usize {
        self.events
            .lock()
            .expect("chaos log poisoned")
            .iter()
            .filter(|e| e.kind == kind)
            .count()
    }
}

impl PhaseObserver for ChaosLog {
    fn on_phase(&self, _kind: PhaseKind, _sample: &PhaseSample) {}

    fn on_chaos(&self, event: &ChaosEvent) {
        self.events.lock().expect("chaos log poisoned").push(*event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(rank: u32, kind: ChaosEventKind, boundary: u32) -> ChaosEvent {
        ChaosEvent {
            rank,
            kind,
            level: 0,
            boundary,
            time: 0.0,
            detail: 0,
        }
    }

    #[test]
    fn collects_and_counts() {
        let log = ChaosLog::new();
        log.on_chaos(&ev(1, ChaosEventKind::Stall, 0));
        log.on_chaos(&ev(0, ChaosEventKind::Crash, 2));
        log.on_chaos(&ev(0, ChaosEventKind::CheckpointRestore, 2));
        assert_eq!(log.events().len(), 3);
        assert_eq!(log.count(ChaosEventKind::Crash), 1);
        assert_eq!(log.count(ChaosEventKind::LeaderFailover), 0);
        let sorted = log.events_sorted();
        assert_eq!(sorted[0].rank, 0);
        assert_eq!(sorted.last().unwrap().rank, 1);
    }
}
