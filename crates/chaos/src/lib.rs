//! # mnd-chaos — deterministic fault plane for the simulated cluster
//!
//! MND-MST's divide-and-conquer pipeline carries long-lived per-rank state
//! (partitions, frozen components, ghost parents, merge segments), which
//! makes it far more sensitive to communication faults than a BSP engine
//! that could simply replay a superstep. This crate provides the fault
//! *schedule*; the machinery that survives it lives where the state lives:
//!
//! * `mnd-net::fault` — retransmission with backoff, duplicate filtering,
//!   per-tag retry/redelivery accounting;
//! * `mnd-mst::phases` — phase-boundary checkpoints, crash restart, and
//!   hierarchical-merge leader re-election.
//!
//! The central type is [`FaultPlan`]: a seeded, immutable plan that
//! implements **both** fault interfaces —
//! [`mnd_net::FaultInjector`] for message-level faults (drop / delay /
//! duplicate / reorder, per-tag and per-source-rank rules) and
//! [`mnd_hypar::ChaosControl`] for phase-level faults (stalls, crashes at
//! checkpoint boundaries, dead merge-group leaders). Every decision is a
//! pure splitmix64 hash of `(seed, message identity)`, so the same seed
//! yields a byte-identical fault schedule, the same recovery path, and the
//! same `RankStats` counters on every run — faults are *replayable*.
//!
//! ```
//! use std::sync::Arc;
//! use mnd_chaos::FaultPlan;
//! use mnd_net::{Cluster, CostModel, Tag};
//!
//! let plan = Arc::new(FaultPlan::new(7).with_drop_rate(0.5));
//! let out = Cluster::new(2, CostModel::default_cluster())
//!     .with_fault_injector(plan)
//!     .run(|c| {
//!         if c.rank() == 0 {
//!             for _ in 0..32 {
//!                 c.send(1, Tag::user(0), 1u64);
//!             }
//!         } else {
//!             for _ in 0..32 {
//!                 let _: u64 = c.recv(0, Tag::user(0));
//!             }
//!         }
//!         c.stats().retries
//!     });
//! assert!(out[0].result > 0, "half the sends should need a retry");
//! ```

pub mod log;
pub mod plan;
pub mod rng;

pub use log::ChaosLog;
pub use plan::{CrashPoint, FaultPlan, FaultRule};
