//! Seeded fault plans.
//!
//! A [`FaultPlan`] is built once, wrapped in an `Arc`, and handed to both
//! fault layers: `Cluster::with_fault_injector(plan.clone())` for the
//! message plane and `HyParConfig::with_chaos(plan)` for the phase plane.
//! The plan itself is immutable; all randomness is hash-derived from the
//! seed and the decision's identity (see [`crate::rng`]).

use std::collections::{BTreeMap, BTreeSet};

use mnd_hypar::ChaosControl;
use mnd_net::{FaultInjector, SendFate, Tag};

use crate::rng::{mix, unit};

/// Where in the pipeline a scheduled crash kills a rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CrashPoint {
    /// At a checkpoint boundary: the classic same-boundary wipe/restore
    /// (no modelled work is lost).
    Boundary(u32),
    /// Inside a phase, just before fabric op `op` of `epoch`: the rank
    /// rolls back to the checkpoint *before* the epoch and replays
    /// (DESIGN.md §5f).
    MidPhase {
        /// Epoch (recovery points passed) in which the crash fires.
        epoch: u32,
        /// Fabric-op ordinal within the epoch.
        op: u64,
    },
}

/// Message-fault probabilities for one traffic class. Rates are per
/// transmission, in `[0, 1]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultRule {
    /// Probability that a copy of the message is lost (each loss costs the
    /// sender a retransmission; losses repeat geometrically up to
    /// `max_retries`).
    pub drop_rate: f64,
    /// Cap on forced retransmissions per message.
    pub max_retries: u32,
    /// Probability of extra transit skew on the delivered copy.
    pub delay_rate: f64,
    /// Maximum skew (virtual seconds); the actual skew is uniform in
    /// `[0, max_delay)`.
    pub max_delay: f64,
    /// Probability that a stale duplicate arrives after the real copy.
    pub duplicate_rate: f64,
    /// Probability that a stale duplicate races *ahead* of the real copy.
    pub reorder_rate: f64,
}

impl Default for FaultRule {
    /// A clean rule: no faults, retry cap 3.
    fn default() -> Self {
        FaultRule {
            drop_rate: 0.0,
            max_retries: 3,
            delay_rate: 0.0,
            max_delay: 0.0,
            duplicate_rate: 0.0,
            reorder_rate: 0.0,
        }
    }
}

/// A deterministic, seedable fault schedule for one run.
///
/// Message faults are governed by [`FaultRule`]s — the most specific rule
/// wins: a per-tag rule, else a per-source-rank rule, else the default
/// rule. Phase-level faults (stalls, crashes, dead leaders) are explicit
/// schedule entries keyed by `(rank, boundary)` / `(rank, level)`.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    default_rule: FaultRule,
    by_tag: BTreeMap<u32, FaultRule>,
    by_src: BTreeMap<usize, FaultRule>,
    stalls: BTreeMap<(usize, u32), f64>,
    crashes: BTreeSet<(usize, u32)>,
    mid_phase_crashes: BTreeMap<(usize, u32), u64>,
    dead_leaders: BTreeSet<(usize, u32)>,
}

impl FaultPlan {
    /// An empty (no-fault) plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            default_rule: FaultRule::default(),
            by_tag: BTreeMap::new(),
            by_src: BTreeMap::new(),
            stalls: BTreeMap::new(),
            crashes: BTreeSet::new(),
            mid_phase_crashes: BTreeMap::new(),
            dead_leaders: BTreeSet::new(),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Replaces the default message-fault rule.
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.default_rule = rule;
        self
    }

    /// Sets the default drop rate.
    pub fn with_drop_rate(mut self, rate: f64) -> Self {
        self.default_rule.drop_rate = rate;
        self
    }

    /// Sets the default delay rate and maximum skew.
    pub fn with_delay(mut self, rate: f64, max_delay: f64) -> Self {
        self.default_rule.delay_rate = rate;
        self.default_rule.max_delay = max_delay;
        self
    }

    /// Sets the default duplicate rate.
    pub fn with_duplicates(mut self, rate: f64) -> Self {
        self.default_rule.duplicate_rate = rate;
        self
    }

    /// Sets the default reorder rate.
    pub fn with_reorder(mut self, rate: f64) -> Self {
        self.default_rule.reorder_rate = rate;
        self
    }

    /// Overrides the rule for one tag (beats the per-source rule).
    pub fn with_rule_for_tag(mut self, tag: Tag, rule: FaultRule) -> Self {
        self.by_tag.insert(tag.id(), rule);
        self
    }

    /// Overrides the rule for messages *sent by* `src`.
    pub fn with_rule_for_src(mut self, src: usize, rule: FaultRule) -> Self {
        self.by_src.insert(src, rule);
        self
    }

    /// Schedules a stall of `seconds` on `rank` at checkpoint boundary
    /// `boundary`.
    pub fn with_stall(mut self, rank: usize, boundary: u32, seconds: f64) -> Self {
        assert!(seconds >= 0.0, "stall must be non-negative");
        self.stalls.insert((rank, boundary), seconds);
        self
    }

    /// Schedules a crash (with checkpoint restart) on `rank` at checkpoint
    /// boundary `boundary`.
    pub fn with_crash(mut self, rank: usize, boundary: u32) -> Self {
        self.crashes.insert((rank, boundary));
        self
    }

    /// Schedules a crash on `rank` *inside* a phase: the rank dies just
    /// before issuing fabric op `op` of `epoch` (epoch = recovery points
    /// passed; epoch 0 is Partition). It restores the checkpoint written
    /// before the epoch, replays logged traffic, and re-executes.
    pub fn with_mid_phase_crash(mut self, rank: usize, epoch: u32, op: u64) -> Self {
        self.mid_phase_crashes.insert((rank, epoch), op);
        self
    }

    /// Schedules a crash at an arbitrary [`CrashPoint`].
    pub fn with_crash_point(self, rank: usize, point: CrashPoint) -> Self {
        match point {
            CrashPoint::Boundary(b) => self.with_crash(rank, b),
            CrashPoint::MidPhase { epoch, op } => self.with_mid_phase_crash(rank, epoch, op),
        }
    }

    /// Marks `rank` as down for leader duty at merge level `level`, forcing
    /// its group to elect another leader.
    pub fn with_dead_leader(mut self, rank: usize, level: u32) -> Self {
        self.dead_leaders.insert((rank, level));
        self
    }

    /// The rule governing a transmission: tag override, else source-rank
    /// override, else the default.
    fn rule_for(&self, src: usize, tag: Tag) -> &FaultRule {
        self.by_tag
            .get(&tag.id())
            .or_else(|| self.by_src.get(&src))
            .unwrap_or(&self.default_rule)
    }

    /// Hash stream for one transmission; `salt` separates the independent
    /// decisions drawn from it.
    fn draw(&self, src: usize, dst: usize, tag: Tag, seq: u64, salt: u64) -> f64 {
        let mut h = mix(self.seed);
        h = mix(h ^ src as u64);
        h = mix(h ^ dst as u64);
        h = mix(h ^ tag.id() as u64);
        h = mix(h ^ seq);
        unit(mix(h ^ salt))
    }
}

impl FaultInjector for FaultPlan {
    fn fate(&self, src: usize, dst: usize, tag: Tag, seq: u64, _bytes: u64) -> SendFate {
        let rule = self.rule_for(src, tag);
        // Geometric losses: each copy is dropped independently until one
        // survives or the retry cap is hit.
        let mut retries = 0u32;
        while retries < rule.max_retries
            && self.draw(src, dst, tag, seq, 0x10 + retries as u64) < rule.drop_rate
        {
            retries += 1;
        }
        let delay = if rule.max_delay > 0.0 && self.draw(src, dst, tag, seq, 0x20) < rule.delay_rate
        {
            self.draw(src, dst, tag, seq, 0x21) * rule.max_delay
        } else {
            0.0
        };
        let duplicates = u32::from(self.draw(src, dst, tag, seq, 0x30) < rule.duplicate_rate);
        let reorder = self.draw(src, dst, tag, seq, 0x40) < rule.reorder_rate;
        SendFate {
            retries,
            delay,
            duplicates,
            reorder,
        }
    }
}

impl ChaosControl for FaultPlan {
    fn stall_seconds(&self, rank: usize, boundary: u32) -> f64 {
        self.stalls.get(&(rank, boundary)).copied().unwrap_or(0.0)
    }

    fn crashes_at(&self, rank: usize, boundary: u32) -> bool {
        self.crashes.contains(&(rank, boundary))
    }

    fn leader_down(&self, rank: usize, level: u32) -> bool {
        self.dead_leaders.contains(&(rank, level))
    }

    fn mid_phase_crash(&self, rank: usize, epoch: u32) -> Option<u64> {
        self.mid_phase_crashes.get(&(rank, epoch)).copied()
    }

    /// The schedule is an explicit table, so the horizon is exact: one
    /// past the last epoch with a scheduled mid-phase crash on `rank`
    /// (`Some(0)` when the plan never crashes `rank` mid-phase).
    fn replay_horizon(&self, rank: usize) -> Option<u32> {
        Some(
            self.mid_phase_crashes
                .keys()
                .filter(|&&(r, _)| r == rank)
                .map(|&(_, epoch)| epoch + 1)
                .max()
                .unwrap_or(0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::new(99)
            .with_drop_rate(0.3)
            .with_delay(0.5, 1e-3)
            .with_duplicates(0.2)
            .with_reorder(0.1);
        let b = a.clone();
        for seq in 0..200 {
            assert_eq!(
                a.fate(0, 1, Tag::user(2), seq, 64),
                b.fate(0, 1, Tag::user(2), seq, 64)
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(1).with_drop_rate(0.5);
        let b = FaultPlan::new(2).with_drop_rate(0.5);
        let fates_a: Vec<_> = (0..64).map(|s| a.fate(0, 1, Tag::user(0), s, 8)).collect();
        let fates_b: Vec<_> = (0..64).map(|s| b.fate(0, 1, Tag::user(0), s, 8)).collect();
        assert_ne!(fates_a, fates_b);
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let plan = FaultPlan::new(7).with_drop_rate(0.25);
        let n = 4000;
        let dropped = (0..n)
            .filter(|&s| plan.fate(0, 1, Tag::user(0), s, 8).retries > 0)
            .count();
        let frac = dropped as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.05, "drop fraction {frac}");
    }

    #[test]
    fn retries_respect_the_cap() {
        let plan = FaultPlan::new(3).with_rule(FaultRule {
            drop_rate: 1.0,
            max_retries: 2,
            ..Default::default()
        });
        for seq in 0..32 {
            assert_eq!(plan.fate(0, 1, Tag::user(0), seq, 8).retries, 2);
        }
    }

    #[test]
    fn rule_precedence_tag_then_src_then_default() {
        let noisy = FaultRule {
            drop_rate: 1.0,
            max_retries: 1,
            ..Default::default()
        };
        let plan = FaultPlan::new(5)
            .with_rule_for_tag(Tag::user(9), noisy)
            .with_rule_for_src(2, noisy);
        // Tag rule fires regardless of source.
        assert_eq!(plan.fate(0, 1, Tag::user(9), 0, 8).retries, 1);
        // Source rule fires for other tags from rank 2.
        assert_eq!(plan.fate(2, 1, Tag::user(0), 0, 8).retries, 1);
        // Everything else is clean.
        assert!(plan.fate(0, 1, Tag::user(0), 0, 8).is_clean());
    }

    #[test]
    fn phase_schedule_lookups() {
        let plan = FaultPlan::new(0)
            .with_stall(2, 1, 0.75)
            .with_crash(3, 4)
            .with_mid_phase_crash(1, 2, 17)
            .with_dead_leader(0, 1);
        assert_eq!(plan.stall_seconds(2, 1), 0.75);
        assert_eq!(plan.stall_seconds(2, 2), 0.0);
        assert!(plan.crashes_at(3, 4));
        assert!(!plan.crashes_at(3, 5));
        assert_eq!(plan.mid_phase_crash(1, 2), Some(17));
        assert_eq!(plan.mid_phase_crash(1, 3), None);
        assert_eq!(plan.mid_phase_crash(0, 2), None);
        assert!(plan.leader_down(0, 1));
        assert!(!plan.leader_down(1, 1));
    }

    #[test]
    fn replay_horizon_covers_the_crash_schedule() {
        let plan = FaultPlan::new(0)
            .with_mid_phase_crash(1, 2, 17)
            .with_mid_phase_crash(1, 5, 3)
            .with_mid_phase_crash(2, 0, 9);
        // One past the last scheduled crash epoch, per rank.
        assert_eq!(plan.replay_horizon(1), Some(6));
        assert_eq!(plan.replay_horizon(2), Some(1));
        // No mid-phase crashes scheduled: the log is never needed.
        assert_eq!(plan.replay_horizon(0), Some(0));
        assert_eq!(FaultPlan::new(1).replay_horizon(3), Some(0));
    }

    #[test]
    fn crash_points_route_to_both_planes() {
        let plan = FaultPlan::new(0)
            .with_crash_point(2, CrashPoint::Boundary(1))
            .with_crash_point(3, CrashPoint::MidPhase { epoch: 1, op: 5 });
        assert!(plan.crashes_at(2, 1));
        assert_eq!(plan.mid_phase_crash(3, 1), Some(5));
    }

    #[test]
    fn delay_is_bounded_by_max() {
        let plan = FaultPlan::new(11).with_delay(1.0, 2e-3);
        for seq in 0..256 {
            let f = plan.fate(1, 0, Tag::user(4), seq, 8);
            assert!(f.delay >= 0.0 && f.delay < 2e-3);
        }
    }
}
