//! Pure hash-based randomness for fault decisions.
//!
//! Fault injectors are consulted concurrently from every rank thread, so
//! they cannot share a stateful RNG without making the fault schedule
//! depend on OS scheduling. Instead every decision hashes its inputs
//! (seed, message identity, decision salt) through the splitmix64
//! finalizer — a stateless function with good avalanche behaviour, the
//! same construction `assign_random_weights` uses in `mnd-graph`.

/// The splitmix64 finalizer: a bijective mixer with full avalanche.
#[inline]
pub fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a hash to a uniform `f64` in `[0, 1)` (top 53 bits).
#[inline]
pub fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(mix(42), mix(42));
        assert_ne!(mix(42), mix(43));
        // Adjacent inputs flip roughly half the bits.
        let d = (mix(1000) ^ mix(1001)).count_ones();
        assert!((16..=48).contains(&d), "poor avalanche: {d} bits");
    }

    #[test]
    fn unit_is_in_range_and_roughly_uniform() {
        let mut sum = 0.0;
        for i in 0..10_000u64 {
            let u = unit(mix(i));
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
