//! Property tests on the graph substrate: serialisation round trips,
//! generator invariants, partitioning bounds, transform correctness.

use mnd_graph::gen::{self, cut_fraction, CrawlParams};
use mnd_graph::io;
use mnd_graph::partition::{
    edge_imbalance, owner_of, partition_1d, split_range_by_ratio, VertexRange,
};
use mnd_graph::transform::{bfs_relabel, largest_component, sort_by_degree};
use mnd_graph::types::WEdge;
use mnd_graph::{connected_components, CsrGraph, EdgeList};
use proptest::prelude::*;

fn arb_edges(max_v: u32, max_e: usize) -> impl Strategy<Value = EdgeList> {
    (
        1..max_v,
        proptest::collection::vec((0u32..max_v, 0u32..max_v, 1u32..10_000), 0..max_e),
    )
        .prop_map(|(n, raw)| {
            EdgeList::from_raw(
                n,
                raw.into_iter()
                    .map(|(a, b, w)| WEdge::new(a % n, b % n, w))
                    .collect(),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn binary_io_round_trip(el in arb_edges(200, 600)) {
        let mut buf = Vec::new();
        io::write_binary(&el, &mut buf).unwrap();
        prop_assert_eq!(io::read_binary(&buf[..]).unwrap(), el);
    }

    #[test]
    fn text_io_round_trip(el in arb_edges(150, 400)) {
        let mut buf = Vec::new();
        io::write_text(&el, &mut buf).unwrap();
        prop_assert_eq!(io::read_text(&buf[..]).unwrap(), el);
    }

    #[test]
    fn csr_symmetry_and_arc_count(el in arb_edges(150, 500)) {
        let g = CsrGraph::from_edge_list(&el);
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.num_undirected_edges() as usize, el.len());
        let degree_sum: u64 = (0..g.num_vertices()).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, g.num_arcs());
    }

    #[test]
    fn owner_of_agrees_with_ranges(el in arb_edges(300, 800), parts in 1usize..10) {
        let g = CsrGraph::from_edge_list(&el);
        let ranges = partition_1d(&g, parts, 0.5);
        for v in 0..g.num_vertices() {
            let o = owner_of(&ranges, v);
            prop_assert!(ranges[o].contains(v));
        }
    }

    #[test]
    fn ratio_split_is_exhaustive_and_ordered(
        el in arb_edges(200, 600),
        ratio in 0.0f64..1.0,
    ) {
        let g = CsrGraph::from_edge_list(&el);
        let whole = VertexRange { start: 0, end: g.num_vertices() };
        let (a, b) = split_range_by_ratio(&g, whole, ratio);
        prop_assert_eq!(a.start, 0);
        prop_assert_eq!(a.end, b.start);
        prop_assert_eq!(b.end, g.num_vertices());
    }

    #[test]
    fn generators_respect_bounds(n in 4u32..200, m in 1u64..2000, seed in 0u64..50) {
        for el in [
            gen::gnm(n, m, seed),
            gen::web_crawl(n.max(2), m, CrawlParams::default(), seed),
        ] {
            for e in el.edges() {
                prop_assert!(e.u < e.v, "canonical order");
                prop_assert!(e.v < el.num_vertices());
                prop_assert!(e.w >= 1);
            }
        }
    }

    #[test]
    fn transforms_preserve_weight_multiset(el in arb_edges(120, 400)) {
        let weights = |e: &EdgeList| {
            let mut w: Vec<u32> = e.edges().iter().map(|x| x.w).collect();
            w.sort_unstable();
            w
        };
        let base = weights(&el);
        prop_assert_eq!(weights(&bfs_relabel(&el)), base.clone());
        prop_assert_eq!(weights(&sort_by_degree(&el)), base);
    }

    #[test]
    fn transforms_preserve_component_structure(el in arb_edges(100, 300)) {
        let comp_sizes = |e: &EdgeList| {
            let comp = connected_components(&CsrGraph::from_edge_list(e));
            let mut m = std::collections::HashMap::new();
            for c in comp {
                *m.entry(c).or_insert(0u32) += 1;
            }
            let mut sizes: Vec<u32> = m.into_values().collect();
            sizes.sort_unstable();
            sizes
        };
        prop_assert_eq!(comp_sizes(&bfs_relabel(&el)), comp_sizes(&el));
        // largest_component's vertex count equals the max size.
        let big = largest_component(&el);
        let sizes = comp_sizes(&el);
        prop_assert_eq!(big.num_vertices(), *sizes.last().unwrap_or(&0));
    }

    #[test]
    fn cut_fraction_in_unit_interval(el in arb_edges(100, 300), parts in 1u32..20) {
        let f = cut_fraction(&el, parts);
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert_eq!(cut_fraction(&el, 1), 0.0);
    }
}

#[test]
fn partition_balance_on_large_uniform_graph() {
    let g = CsrGraph::from_edge_list(&gen::gnm(20_000, 120_000, 1));
    for parts in [2, 4, 8, 16, 32] {
        let ranges = partition_1d(&g, parts, 0.0);
        let imb = edge_imbalance(&g, &ranges);
        assert!(imb < 1.1, "parts={parts} imbalance {imb}");
    }
}

#[test]
fn presets_generate_at_extreme_scales() {
    // No preset may panic at any plausible scale.
    for p in mnd_graph::presets::Preset::ALL {
        for scale in [4096, 16384, 262144, 10_000_000] {
            let el = p.generate(scale, 1);
            assert!(el.num_vertices() >= 2, "{} @{scale}", p.name());
        }
    }
}
