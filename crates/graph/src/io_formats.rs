//! Readers for common external graph formats, so the library runs on the
//! paper's *actual* inputs when they are available:
//!
//! * **DIMACS** `.gr` (9th DIMACS shortest-path challenge) — the format
//!   road_usa ships in (`c`/`p sp n m`/`a u v w` lines, 1-based ids,
//!   directed arcs that we fold to undirected edges);
//! * **METIS** — the common partitioning-community format (header
//!   `n m [fmt]`, then one adjacency line per vertex, 1-based);
//! * **edge-list text** — plain `u v [w]` lines with no header (SNAP-style),
//!   ids 0-based, vertex count inferred.
//!
//! All readers canonicalise (undirected, no self loops, parallel edges
//! collapsed to the minimum weight) and, where the source format has no
//! weights, leave weight 1 — callers wanting the paper's "assigned random
//! weights" preprocessing follow with
//! [`EdgeList::assign_random_weights`].

use std::io::{self, BufRead, BufReader, Read};

use crate::edgelist::EdgeList;
use crate::types::{VertexId, WEdge, Weight};

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Reads DIMACS `.gr`: `c` comments, one `p sp <n> <m>` header, `a <u> <v>
/// <w>` arcs with 1-based vertex ids.
pub fn read_dimacs<R: Read>(input: R) -> io::Result<EdgeList> {
    let r = BufReader::new(input);
    let mut n: Option<VertexId> = None;
    let mut edges: Vec<WEdge> = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        match line.chars().next() {
            None | Some('c') => continue,
            Some('p') => {
                let mut it = line.split_whitespace();
                let (_p, sp) = (it.next(), it.next());
                if sp != Some("sp") {
                    return Err(bad(format!("line {}: expected 'p sp n m'", lineno + 1)));
                }
                let nv: u64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad(format!("line {}: bad vertex count", lineno + 1)))?;
                if nv > VertexId::MAX as u64 {
                    return Err(bad("vertex count exceeds u32".into()));
                }
                n = Some(nv as VertexId);
            }
            Some('a') => {
                let nv = n.ok_or_else(|| bad("arc before 'p sp' header".into()))?;
                let mut it = line.split_whitespace().skip(1);
                let u: u64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad(format!("line {}: bad arc source", lineno + 1)))?;
                let v: u64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad(format!("line {}: bad arc target", lineno + 1)))?;
                let w: Weight = it.next().and_then(|s| s.parse().ok()).unwrap_or(1);
                if u == 0 || v == 0 || u > nv as u64 || v > nv as u64 {
                    return Err(bad(format!("line {}: arc ids out of 1..={nv}", lineno + 1)));
                }
                edges.push(WEdge::new((u - 1) as VertexId, (v - 1) as VertexId, w));
            }
            Some(other) => {
                return Err(bad(format!(
                    "line {}: unknown record '{other}'",
                    lineno + 1
                )));
            }
        }
    }
    let n = n.ok_or_else(|| bad("missing 'p sp' header".into()))?;
    Ok(EdgeList::from_raw(n, edges))
}

/// Reads METIS: header `n m [fmt [ncon]]`, then vertex `i`'s adjacency on
/// line `i` (1-based neighbour ids). `fmt` 0/none = unweighted; 1 = edge
/// weights (`v1 w1 v2 w2 …`); vertex weights (`fmt >= 10`) unsupported.
pub fn read_metis<R: Read>(input: R) -> io::Result<EdgeList> {
    let r = BufReader::new(input);
    let mut lines = r.lines().map_while(Result::ok).filter(|l| {
        let t = l.trim();
        !t.is_empty() && !t.starts_with('%')
    });
    let header = lines.next().ok_or_else(|| bad("empty METIS file".into()))?;
    let mut it = header.split_whitespace();
    let n: u64 = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad vertex count".into()))?;
    let _m: u64 = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad edge count".into()))?;
    let fmt = it.next().unwrap_or("0");
    let edge_weighted = match fmt {
        "0" | "00" => false,
        "1" | "01" => true,
        other => return Err(bad(format!("unsupported METIS fmt {other:?}"))),
    };
    if n > VertexId::MAX as u64 {
        return Err(bad("vertex count exceeds u32".into()));
    }
    let mut edges = Vec::new();
    let mut u: VertexId = 0;
    for line in lines {
        if u as u64 >= n {
            return Err(bad("more adjacency lines than vertices".into()));
        }
        let mut toks = line.split_whitespace();
        while let Some(vt) = toks.next() {
            let v: u64 = vt
                .parse()
                .map_err(|_| bad(format!("vertex {u}: bad neighbour {vt:?}")))?;
            if v == 0 || v > n {
                return Err(bad(format!("vertex {u}: neighbour {v} out of 1..={n}")));
            }
            let w: Weight = if edge_weighted {
                toks.next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad(format!("vertex {u}: missing edge weight")))?
            } else {
                1
            };
            edges.push(WEdge::new(u, (v - 1) as VertexId, w));
        }
        u += 1;
    }
    if (u as u64) != n {
        return Err(bad(format!("expected {n} adjacency lines, got {u}")));
    }
    Ok(EdgeList::from_raw(n as VertexId, edges))
}

/// Reads SNAP-style plain edge lists: `u v [w]` per line, `#` comments,
/// 0-based ids, vertex count = max id + 1.
pub fn read_snap<R: Read>(input: R) -> io::Result<EdgeList> {
    let r = BufReader::new(input);
    let mut edges: Vec<WEdge> = Vec::new();
    let mut max_id: u64 = 0;
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let u: u64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(format!("line {}: bad source", lineno + 1)))?;
        let v: u64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(format!("line {}: bad target", lineno + 1)))?;
        let w: Weight = it.next().and_then(|s| s.parse().ok()).unwrap_or(1);
        max_id = max_id.max(u).max(v);
        if max_id >= VertexId::MAX as u64 {
            return Err(bad("vertex ids exceed u32".into()));
        }
        edges.push(WEdge::new(u as VertexId, v as VertexId, w));
    }
    let n = if edges.is_empty() {
        0
    } else {
        max_id as VertexId + 1
    };
    Ok(EdgeList::from_raw(n, edges))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimacs_round_trip_semantics() {
        let input = "c road fragment\n\
                     p sp 4 5\n\
                     a 1 2 10\n\
                     a 2 1 10\n\
                     a 2 3 5\n\
                     a 3 4 2\n\
                     a 4 1 9\n";
        let el = read_dimacs(input.as_bytes()).unwrap();
        assert_eq!(el.num_vertices(), 4);
        assert_eq!(el.len(), 4); // the reverse arc collapses
        assert!(el.edges().contains(&WEdge::new(0, 1, 10)));
        assert!(el.edges().contains(&WEdge::new(2, 3, 2)));
    }

    #[test]
    fn dimacs_rejects_malformed() {
        assert!(read_dimacs("a 1 2 3\n".as_bytes()).is_err()); // arc before header
        assert!(read_dimacs("p sp 2 1\na 1 5 1\n".as_bytes()).is_err()); // id range
        assert!(read_dimacs("p tw 2 1\n".as_bytes()).is_err()); // wrong problem
        assert!(read_dimacs("p sp 2 1\nz nonsense\n".as_bytes()).is_err());
    }

    #[test]
    fn metis_unweighted() {
        // Triangle plus pendant: 4 vertices, 4 edges.
        let input = "4 4\n2 3\n1 3\n1 2 4\n3\n";
        let el = read_metis(input.as_bytes()).unwrap();
        assert_eq!(el.num_vertices(), 4);
        assert_eq!(el.len(), 4);
        assert!(el.edges().iter().all(|e| e.w == 1));
    }

    #[test]
    fn metis_edge_weighted() {
        let input = "% comment\n3 3 1\n2 7 3 4\n1 7 3 1\n1 4 2 1\n";
        let el = read_metis(input.as_bytes()).unwrap();
        assert_eq!(el.len(), 3);
        assert!(el.edges().contains(&WEdge::new(0, 1, 7)));
        assert!(el.edges().contains(&WEdge::new(0, 2, 4)));
    }

    #[test]
    fn metis_rejects_malformed() {
        assert!(read_metis("".as_bytes()).is_err());
        assert!(read_metis("2 1\n2\n1\n3\n".as_bytes()).is_err()); // extra line
        assert!(read_metis("2 1 9\n2\n1\n".as_bytes()).is_err()); // fmt 9
        assert!(read_metis("2 1\n5\n\u{20}\n".as_bytes()).is_err()); // id range
    }

    #[test]
    fn snap_basic_and_weighted() {
        let input = "# comment\n0 3\n3 1 9\n1 0\n";
        let el = read_snap(input.as_bytes()).unwrap();
        assert_eq!(el.num_vertices(), 4);
        assert_eq!(el.len(), 3);
        assert!(el.edges().contains(&WEdge::new(1, 3, 9)));
    }

    #[test]
    fn snap_empty_is_empty() {
        let el = read_snap("# nothing\n".as_bytes()).unwrap();
        assert_eq!(el.num_vertices(), 0);
    }

    #[test]
    fn formats_feed_the_mst_pipeline() {
        // End-to-end: DIMACS text → MSF.
        let input = "p sp 5 6\na 1 2 4\na 2 3 1\na 3 4 7\na 4 5 2\na 5 1 3\na 2 4 6\n";
        let el = read_dimacs(input.as_bytes()).unwrap();
        let msf = crate::io_formats::tests::kruskal_weight(&el);
        assert_eq!(msf, 1 + 2 + 3 + 4); // edges (2,3),(4,5),(5,1),(1,2)
    }

    // Minimal local Kruskal so this crate's tests stay dependency-free.
    fn kruskal_weight(el: &EdgeList) -> u64 {
        let mut edges = el.edges().to_vec();
        edges.sort_unstable();
        let mut parent: Vec<u32> = (0..el.num_vertices()).collect();
        fn find(p: &mut [u32], mut x: u32) -> u32 {
            while p[x as usize] != x {
                p[x as usize] = p[p[x as usize] as usize];
                x = p[x as usize];
            }
            x
        }
        let mut total = 0u64;
        for e in edges {
            let (a, b) = (find(&mut parent, e.u), find(&mut parent, e.v));
            if a != b {
                parent[a as usize] = b;
                total += e.w as u64;
            }
        }
        total
    }
}
