//! Gemini-style contiguous 1D partitioning (§3.1 of the paper).
//!
//! "Based on the degrees, a 1D partitioning scheme is used to balance the
//! number of edges across computing units" — each partition is a contiguous
//! vertex range, chosen so every range carries roughly the same number of
//! arcs. Gemini's actual balance objective is `α·V + E`; we expose `alpha`
//! so the hybrid objective is available too (`alpha = 0` is pure edge
//! balance, which is what the paper uses for MST).

use crate::csr::CsrGraph;
use crate::types::VertexId;

/// A contiguous vertex range `[start, end)` owned by one computing unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VertexRange {
    /// First owned vertex.
    pub start: VertexId,
    /// One past the last owned vertex.
    pub end: VertexId,
}

impl VertexRange {
    /// Number of vertices in the range.
    #[inline]
    pub fn len(&self) -> u64 {
        (self.end - self.start) as u64
    }

    /// True for empty ranges (legal: more partitions than vertices).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// True if `v` falls inside the range.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        v >= self.start && v < self.end
    }

    /// Iterates the owned vertices.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = VertexId> {
        self.start..self.end
    }
}

/// Splits `0..V` into `parts` contiguous ranges balancing `alpha·V_i + E_i`
/// (arc counts). A greedy prefix scan: close the current range once its
/// score reaches the ideal share of the remaining total — the same
/// linear-time chunking Gemini performs after its allreduce of degrees.
pub fn partition_1d(g: &CsrGraph, parts: usize, alpha: f64) -> Vec<VertexRange> {
    let degrees: Vec<u64> = (0..g.num_vertices()).map(|v| g.degree(v)).collect();
    partition_1d_by_degrees(&degrees, parts, alpha)
}

/// As [`partition_1d`], but from a degree vector — the form the distributed
/// driver uses after the Gemini-style allreduce of per-slice degrees
/// (§3.1: each rank reads an offset slice of the file, degrees are summed
/// globally, then every rank derives the same cut points).
pub fn partition_1d_by_degrees(degrees: &[u64], parts: usize, alpha: f64) -> Vec<VertexRange> {
    assert!(parts >= 1);
    let n = degrees.len() as VertexId;
    let total_arcs: u64 = degrees.iter().sum();
    let total_score: f64 = alpha * n as f64 + total_arcs as f64;
    let mut out = Vec::with_capacity(parts);
    let mut cursor: VertexId = 0;
    let mut consumed = 0.0f64;
    for p in 0..parts {
        let remaining_parts = (parts - p) as f64;
        let target = (total_score - consumed) / remaining_parts;
        let start = cursor;
        let mut score = 0.0f64;
        while cursor < n {
            let v_score = alpha + degrees[cursor as usize] as f64;
            // Take the vertex if the range is empty or if taking it keeps us
            // at-or-below target better than stopping short.
            if score > 0.0 && (score + v_score) - target > target - score {
                break;
            }
            score += v_score;
            cursor += 1;
            if score >= target {
                break;
            }
        }
        consumed += score;
        out.push(VertexRange { start, end: cursor });
    }
    // Any tail (rounding) goes to the last partition.
    if let Some(last) = out.last_mut() {
        last.end = n;
    }
    out
}

/// Splits a single range into two by a ratio in `[0, 1]` of its arc count —
/// the intra-node CPU/GPU cut (§3.1: "divide the CSR arrays … into two
/// contiguous segments based on the ratio of CPU and GPU performance").
/// Returns `(first, second)` where `first` receives `ratio` of the arcs.
pub fn split_range_by_ratio(
    g: &CsrGraph,
    range: VertexRange,
    ratio: f64,
) -> (VertexRange, VertexRange) {
    assert!((0.0..=1.0).contains(&ratio));
    let total: u64 = range.iter().map(|v| g.degree(v)).sum();
    let target = (total as f64 * ratio).round() as u64;
    let mut acc = 0u64;
    let mut cut = range.start;
    for v in range.iter() {
        if acc >= target {
            break;
        }
        acc += g.degree(v);
        cut = v + 1;
    }
    (
        VertexRange {
            start: range.start,
            end: cut,
        },
        VertexRange {
            start: cut,
            end: range.end,
        },
    )
}

/// Maximum/average arc-count imbalance across ranges: `max_i E_i / mean E_i`.
/// Returns 1.0 for perfectly balanced partitions.
pub fn edge_imbalance(g: &CsrGraph, ranges: &[VertexRange]) -> f64 {
    let loads: Vec<u64> = ranges
        .iter()
        .map(|r| r.iter().map(|v| g.degree(v)).sum())
        .collect();
    let total: u64 = loads.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / loads.len() as f64;
    loads.iter().copied().max().unwrap_or(0) as f64 / mean
}

/// Finds which partition owns vertex `v` by binary search over range starts.
pub fn owner_of(ranges: &[VertexRange], v: VertexId) -> usize {
    debug_assert!(!ranges.is_empty());
    let mut lo = 0usize;
    let mut hi = ranges.len();
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if ranges[mid].start <= v {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // Empty ranges may share a start; walk forward to the one containing v.
    let mut i = lo;
    while i + 1 < ranges.len() && !ranges[i].contains(v) {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn covers_all_vertices_contiguously() {
        let g = CsrGraph::from_edge_list(&gen::gnm(1000, 4000, 3));
        for parts in [1, 2, 3, 7, 16] {
            let rs = partition_1d(&g, parts, 0.0);
            assert_eq!(rs.len(), parts);
            assert_eq!(rs[0].start, 0);
            assert_eq!(rs.last().unwrap().end, 1000);
            for w in rs.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
    }

    #[test]
    fn balances_edges_on_uniform_graph() {
        let g = CsrGraph::from_edge_list(&gen::gnm(2000, 10000, 5));
        let rs = partition_1d(&g, 8, 0.0);
        assert!(
            edge_imbalance(&g, &rs) < 1.25,
            "imbalance {}",
            edge_imbalance(&g, &rs)
        );
    }

    #[test]
    fn handles_more_parts_than_vertices() {
        let g = CsrGraph::from_edge_list(&gen::path(3, 0));
        let rs = partition_1d(&g, 8, 1.0);
        assert_eq!(rs.len(), 8);
        assert_eq!(rs.last().unwrap().end, 3);
        let owned: u64 = rs.iter().map(|r| r.len()).sum();
        assert_eq!(owned, 3);
    }

    #[test]
    fn ratio_split_respects_ratio() {
        let g = CsrGraph::from_edge_list(&gen::gnm(1000, 5000, 1));
        let whole = VertexRange {
            start: 0,
            end: 1000,
        };
        let (a, b) = split_range_by_ratio(&g, whole, 0.25);
        assert_eq!(a.end, b.start);
        let la: u64 = a.iter().map(|v| g.degree(v)).sum();
        let lb: u64 = b.iter().map(|v| g.degree(v)).sum();
        let frac = la as f64 / (la + lb) as f64;
        assert!((0.2..0.3).contains(&frac), "got {frac}");
    }

    #[test]
    fn ratio_split_extremes() {
        let g = CsrGraph::from_edge_list(&gen::path(10, 0));
        let whole = VertexRange { start: 0, end: 10 };
        let (a, b) = split_range_by_ratio(&g, whole, 0.0);
        assert!(a.is_empty());
        assert_eq!(b, whole);
        let (a, b) = split_range_by_ratio(&g, whole, 1.0);
        assert_eq!(a, whole);
        assert!(b.is_empty());
    }

    #[test]
    fn owner_lookup() {
        let g = CsrGraph::from_edge_list(&gen::gnm(100, 500, 2));
        let rs = partition_1d(&g, 4, 0.0);
        for v in 0..100 {
            assert!(rs[owner_of(&rs, v)].contains(v), "vertex {v}");
        }
    }
}
