//! Edge-list I/O: a whitespace text format (`u v w` per line, `#` comments)
//! and a compact little-endian binary format with a magic header.
//!
//! The paper reads its inputs with Gemini's parallel reader (each MPI rank
//! reads an offset slice of the file). [`read_binary_slice`] mirrors that:
//! it reads only the `rank`-th of `nranks` equal record slices, which is the
//! API the distributed driver uses to emulate parallel input.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::edgelist::EdgeList;
use crate::types::{VertexId, WEdge};

/// Magic bytes of the binary format ("MNDG" + version 1).
const MAGIC: &[u8; 8] = b"MNDG\0\0\0\x01";
/// Bytes per binary edge record: u32 u, u32 v, u32 w.
const RECORD: u64 = 12;

/// Writes the text format.
pub fn write_text<W: Write>(el: &EdgeList, out: W) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    writeln!(
        w,
        "# mnd-graph edge list: {} vertices {} edges",
        el.num_vertices(),
        el.len()
    )?;
    writeln!(w, "{}", el.num_vertices())?;
    for e in el.edges() {
        writeln!(w, "{} {} {}", e.u, e.v, e.w)?;
    }
    w.flush()
}

/// Reads the text format (canonicalising on the way in).
pub fn read_text<R: Read>(input: R) -> io::Result<EdgeList> {
    let r = BufReader::new(input);
    let mut num_vertices: Option<VertexId> = None;
    let mut edges = Vec::new();
    for line in r.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if num_vertices.is_none() {
            num_vertices = Some(parse(line, "vertex count")?);
            continue;
        }
        let mut it = line.split_whitespace();
        let u: VertexId = parse(it.next().unwrap_or(""), "u")?;
        let v: VertexId = parse(it.next().unwrap_or(""), "v")?;
        let w = parse(it.next().unwrap_or("1"), "w")?;
        edges.push(WEdge::new(u, v, w));
    }
    let n = num_vertices.ok_or_else(|| bad("missing vertex count line"))?;
    for e in &edges {
        if e.v >= n {
            return Err(bad(&format!("edge {e:?} exceeds vertex count {n}")));
        }
    }
    Ok(EdgeList::from_raw(n, edges))
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> io::Result<T> {
    s.parse().map_err(|_| bad(&format!("bad {what}: {s:?}")))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Writes the binary format.
pub fn write_binary<W: Write>(el: &EdgeList, out: W) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    w.write_all(MAGIC)?;
    w.write_all(&el.num_vertices().to_le_bytes())?;
    w.write_all(&(el.len() as u64).to_le_bytes())?;
    for e in el.edges() {
        w.write_all(&e.u.to_le_bytes())?;
        w.write_all(&e.v.to_le_bytes())?;
        w.write_all(&e.w.to_le_bytes())?;
    }
    w.flush()
}

/// Reads the whole binary file.
pub fn read_binary<R: Read>(mut input: R) -> io::Result<EdgeList> {
    let (n, m) = read_binary_header(&mut input)?;
    let mut edges = Vec::with_capacity(m as usize);
    let mut buf = [0u8; RECORD as usize];
    for _ in 0..m {
        input.read_exact(&mut buf)?;
        edges.push(decode(&buf));
    }
    Ok(EdgeList::from_raw(n, edges))
}

fn read_binary_header<R: Read>(input: &mut R) -> io::Result<(VertexId, u64)> {
    let mut magic = [0u8; 8];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not an mnd-graph binary file"));
    }
    let mut b4 = [0u8; 4];
    input.read_exact(&mut b4)?;
    let n = VertexId::from_le_bytes(b4);
    let mut b8 = [0u8; 8];
    input.read_exact(&mut b8)?;
    Ok((n, u64::from_le_bytes(b8)))
}

/// Gemini-style parallel read: returns the `rank`-th of `nranks` contiguous
/// record slices of the file plus the global vertex count. Every rank calls
/// this with the same path; the union of all slices is the whole edge list.
pub fn read_binary_slice<P: AsRef<Path>>(
    path: P,
    rank: usize,
    nranks: usize,
) -> io::Result<(VertexId, Vec<WEdge>)> {
    assert!(rank < nranks && nranks >= 1);
    let mut f = std::fs::File::open(path)?;
    let (n, m) = read_binary_header(&mut f)?;
    let per = m / nranks as u64;
    let extra = m % nranks as u64;
    // First `extra` ranks take one extra record.
    let start = rank as u64 * per + (rank as u64).min(extra);
    let count = per + if (rank as u64) < extra { 1 } else { 0 };
    let header = (MAGIC.len() + 4 + 8) as u64;
    f.seek(SeekFrom::Start(header + start * RECORD))?;
    let mut out = Vec::with_capacity(count as usize);
    let mut buf = [0u8; RECORD as usize];
    for _ in 0..count {
        f.read_exact(&mut buf)?;
        out.push(decode(&buf));
    }
    Ok((n, out))
}

fn decode(buf: &[u8; RECORD as usize]) -> WEdge {
    let u = VertexId::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
    let v = VertexId::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    let w = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
    WEdge::new(u, v, w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn text_round_trip() {
        let el = gen::gnm(50, 200, 4);
        let mut buf = Vec::new();
        write_text(&el, &mut buf).unwrap();
        let back = read_text(&buf[..]).unwrap();
        assert_eq!(el, back);
    }

    #[test]
    fn text_rejects_out_of_range_edges() {
        let input = "3\n0 5 1\n";
        assert!(read_text(input.as_bytes()).is_err());
    }

    #[test]
    fn text_defaults_weight_to_one() {
        let input = "# comment\n4\n0 1\n2 3 9\n";
        let el = read_text(input.as_bytes()).unwrap();
        assert_eq!(el.edges()[0].w, 1);
        assert_eq!(el.edges()[1].w, 9);
    }

    #[test]
    fn binary_round_trip() {
        let el = gen::rmat(64, 512, gen::RmatProbs::GRAPH500, 11);
        let mut buf = Vec::new();
        write_binary(&el, &mut buf).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(el, back);
    }

    #[test]
    fn binary_rejects_wrong_magic() {
        let buf = b"NOTGRAPH........".to_vec();
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn parallel_slices_cover_file() {
        let el = gen::gnm(40, 123, 8);
        let dir = std::env::temp_dir().join("mnd_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("slices.bin");
        write_binary(&el, std::fs::File::create(&path).unwrap()).unwrap();

        for nranks in [1usize, 3, 5, 16] {
            let mut all = Vec::new();
            for rank in 0..nranks {
                let (n, slice) = read_binary_slice(&path, rank, nranks).unwrap();
                assert_eq!(n, 40);
                all.extend(slice);
            }
            let rebuilt = EdgeList::from_raw(40, all);
            assert_eq!(rebuilt, el, "nranks={nranks}");
        }
        std::fs::remove_file(&path).ok();
    }
}
