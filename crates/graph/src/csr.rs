//! Compressed Sparse Row graph representation.
//!
//! The paper stores partitions as CSR arrays and splits them with contiguous
//! 1D cuts (§3.1). [`CsrGraph`] is the symmetric (undirected) CSR: every
//! undirected edge `{u, v}` appears in both adjacency lists, each arc
//! carrying the same weight.

use crate::edgelist::EdgeList;
use crate::types::{EdgeId, VertexId, WEdge, Weight};

/// Symmetric CSR adjacency structure for a weighted undirected graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` indexes `targets`/`weights` for vertex `v`.
    offsets: Vec<EdgeId>,
    /// Arc heads.
    targets: Vec<VertexId>,
    /// Arc weights (duplicated per direction).
    weights: Vec<Weight>,
}

impl CsrGraph {
    /// Builds the symmetric CSR from canonical undirected edges.
    ///
    /// `edges` need not be sorted but must be canonical (no self loops, no
    /// duplicates) — [`EdgeList::canonicalize`] guarantees this. Runs in
    /// O(V + E) via counting sort.
    pub fn from_edges(num_vertices: VertexId, edges: &[WEdge]) -> Self {
        let n = num_vertices as usize;
        let mut degree = vec![0u64; n];
        for e in edges {
            debug_assert!(!e.is_self_loop(), "self loop {e:?} in CSR input");
            debug_assert!((e.v as usize) < n, "edge {e:?} out of range {n}");
            degree[e.u as usize] += 1;
            degree[e.v as usize] += 1;
        }
        let mut offsets = vec![0u64; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let m2 = offsets[n] as usize;
        let mut targets = vec![0 as VertexId; m2];
        let mut weights = vec![0 as Weight; m2];
        let mut cursor = offsets.clone();
        for e in edges {
            let cu = cursor[e.u as usize] as usize;
            targets[cu] = e.v;
            weights[cu] = e.w;
            cursor[e.u as usize] += 1;
            let cv = cursor[e.v as usize] as usize;
            targets[cv] = e.u;
            weights[cv] = e.w;
            cursor[e.v as usize] += 1;
        }
        CsrGraph {
            offsets,
            targets,
            weights,
        }
    }

    /// Builds from an [`EdgeList`].
    pub fn from_edge_list(el: &EdgeList) -> Self {
        Self::from_edges(el.num_vertices(), el.edges())
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> VertexId {
        (self.offsets.len() - 1) as VertexId
    }

    /// Number of directed arcs (2 × undirected edges).
    #[inline]
    pub fn num_arcs(&self) -> EdgeId {
        *self.offsets.last().expect("offsets never empty")
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_undirected_edges(&self) -> EdgeId {
        self.num_arcs() / 2
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u64 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Raw offsets array (`len == num_vertices + 1`).
    #[inline]
    pub fn offsets(&self) -> &[EdgeId] {
        &self.offsets
    }

    /// Neighbours of `v` with arc weights.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }

    /// Adjacency slice of `v` (targets only).
    #[inline]
    pub fn adj(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Iterates all vertices.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices()
    }

    /// Recovers the canonical undirected edge list (each edge once, from the
    /// lower endpoint).
    pub fn to_edge_list(&self) -> EdgeList {
        let mut el = EdgeList::new(self.num_vertices());
        for u in self.vertices() {
            for (v, w) in self.neighbors(u) {
                if u < v {
                    el.push(u, v, w);
                }
            }
        }
        el.canonicalize();
        el
    }

    /// The undirected edges incident to a contiguous vertex range
    /// `lo..hi`, each reported once. Edges with exactly one endpoint inside
    /// the range are included (they are that partition's *ghost edges*).
    pub fn edges_touching_range(&self, lo: VertexId, hi: VertexId) -> Vec<WEdge> {
        let mut out = Vec::new();
        for u in lo..hi {
            for (v, w) in self.neighbors(u) {
                // Report once: owner of the lower endpoint reports internal
                // edges; boundary edges are reported by the inside endpoint.
                let inside_v = v >= lo && v < hi;
                if !inside_v || u < v {
                    out.push(WEdge::new(u, v, w));
                }
            }
        }
        out
    }

    /// Induced subgraph on `keep` (a sorted, deduplicated vertex set),
    /// relabelled to `0..keep.len()`. Used for §4.3.1 calibration samples.
    pub fn induced_subgraph(&self, keep: &[VertexId]) -> CsrGraph {
        debug_assert!(
            keep.windows(2).all(|w| w[0] < w[1]),
            "keep must be sorted+dedup"
        );
        let n_new = keep.len() as VertexId;
        let mut rank_of = std::collections::HashMap::with_capacity(keep.len());
        for (i, &v) in keep.iter().enumerate() {
            rank_of.insert(v, i as VertexId);
        }
        let mut edges = Vec::new();
        for (i, &u) in keep.iter().enumerate() {
            for (v, w) in self.neighbors(u) {
                if u < v {
                    if let Some(&j) = rank_of.get(&v) {
                        edges.push(WEdge::new(i as VertexId, j, w));
                    }
                }
            }
        }
        CsrGraph::from_edges(n_new, &edges)
    }

    /// Validates structural invariants; returns a description of the first
    /// violation, if any. Cheap enough to run in tests on every generated
    /// graph.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_vertices() as usize;
        if self.offsets.len() != n + 1 {
            return Err("offsets length != V + 1".into());
        }
        if self.offsets[0] != 0 {
            return Err("offsets[0] != 0".into());
        }
        for v in 0..n {
            if self.offsets[v] > self.offsets[v + 1] {
                return Err(format!("offsets not monotone at {v}"));
            }
        }
        if self.targets.len() as u64 != self.num_arcs() || self.weights.len() != self.targets.len()
        {
            return Err("targets/weights length mismatch".into());
        }
        if !self.num_arcs().is_multiple_of(2) {
            return Err("odd arc count (asymmetric)".into());
        }
        for u in 0..n as VertexId {
            for (v, w) in self.neighbors(u) {
                if v as usize >= n {
                    return Err(format!("target {v} out of range"));
                }
                if v == u {
                    return Err(format!("self loop at {u}"));
                }
                // Symmetry: the reverse arc must exist with equal weight.
                if !self.neighbors(v).any(|(t, wt)| t == u && wt == w) {
                    return Err(format!("missing reverse arc {v}->{u}"));
                }
            }
        }
        Ok(())
    }

    /// Approximate in-memory size in bytes (for the memory-capacity
    /// accounting of the hierarchical merge).
    pub fn approx_bytes(&self) -> usize {
        self.offsets.len() * 8 + self.targets.len() * 4 + self.weights.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        CsrGraph::from_edges(
            3,
            &[
                WEdge::new(0, 1, 5),
                WEdge::new(1, 2, 3),
                WEdge::new(0, 2, 9),
            ],
        )
    }

    #[test]
    fn builds_symmetric_csr() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.num_undirected_edges(), 3);
        assert_eq!(g.degree(0), 2);
        g.validate().unwrap();
    }

    #[test]
    fn neighbors_carry_weights_both_ways() {
        let g = triangle();
        let mut n0: Vec<_> = g.neighbors(0).collect();
        n0.sort_unstable();
        assert_eq!(n0, vec![(1, 5), (2, 9)]);
        assert!(g.neighbors(2).any(|(t, w)| t == 0 && w == 9));
    }

    #[test]
    fn round_trips_edge_list() {
        let el = EdgeList::from_raw(
            5,
            vec![
                WEdge::new(0, 4, 2),
                WEdge::new(1, 2, 7),
                WEdge::new(2, 3, 1),
            ],
        );
        let g = CsrGraph::from_edge_list(&el);
        assert_eq!(g.to_edge_list(), el);
    }

    #[test]
    fn empty_and_isolated_vertices() {
        let g = CsrGraph::from_edges(4, &[]);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_arcs(), 0);
        g.validate().unwrap();
        let g = CsrGraph::from_edges(4, &[WEdge::new(0, 1, 1)]);
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn edges_touching_range_reports_internal_once_and_ghosts() {
        // 0-1-2-3 path, range 1..3 (vertices 1, 2).
        let g = CsrGraph::from_edges(
            4,
            &[
                WEdge::new(0, 1, 1),
                WEdge::new(1, 2, 2),
                WEdge::new(2, 3, 3),
            ],
        );
        let mut es = g.edges_touching_range(1, 3);
        es.sort_unstable();
        assert_eq!(
            es,
            vec![
                WEdge::new(0, 1, 1),
                WEdge::new(1, 2, 2),
                WEdge::new(2, 3, 3)
            ]
        );
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = CsrGraph::from_edges(
            5,
            &[
                WEdge::new(0, 2, 1),
                WEdge::new(2, 4, 2),
                WEdge::new(1, 3, 3),
            ],
        );
        let sub = g.induced_subgraph(&[0, 2, 4]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_undirected_edges(), 2);
        assert!(sub.neighbors(0).any(|(t, w)| t == 1 && w == 1)); // 0-2 -> 0-1
        assert!(sub.neighbors(1).any(|(t, w)| t == 2 && w == 2)); // 2-4 -> 1-2
        sub.validate().unwrap();
    }

    #[test]
    fn validate_catches_violations() {
        let mut g = triangle();
        g.weights[0] ^= 1; // break symmetry of one arc weight
        assert!(g.validate().is_err());
    }
}
