//! Connectivity via breadth-first search.
//!
//! The MSF of a graph with `k` connected components has exactly `V - k`
//! edges (§3 of the paper); every oracle test uses [`num_components`] to
//! check that count on the distributed result.

use crate::csr::CsrGraph;
use crate::types::VertexId;

/// Component id per vertex (ids are the smallest vertex of each component,
/// so they are stable and comparable across implementations).
pub fn connected_components(g: &CsrGraph) -> Vec<VertexId> {
    let n = g.num_vertices() as usize;
    let mut comp = vec![VertexId::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n as VertexId {
        if comp[start as usize] != VertexId::MAX {
            continue;
        }
        comp[start as usize] = start;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for (v, _) in g.neighbors(u) {
                if comp[v as usize] == VertexId::MAX {
                    comp[v as usize] = start;
                    queue.push_back(v);
                }
            }
        }
    }
    comp
}

/// Number of connected components.
pub fn num_components(g: &CsrGraph) -> usize {
    let comp = connected_components(g);
    comp.iter()
        .enumerate()
        .filter(|&(i, &c)| c == i as VertexId)
        .count()
}

/// Single-source BFS distances (`u64::MAX` = unreachable); used by the
/// approximate-diameter statistic.
pub fn bfs_distances(g: &CsrGraph, source: VertexId) -> Vec<u64> {
    let n = g.num_vertices() as usize;
    let mut dist = vec![u64::MAX; n];
    dist[source as usize] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for (v, _) in g.neighbors(u) {
            if dist[v as usize] == u64::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn path_is_one_component() {
        let g = CsrGraph::from_edge_list(&gen::path(10, 0));
        assert_eq!(num_components(&g), 1);
    }

    #[test]
    fn edgeless_graph_is_all_singletons() {
        let g = CsrGraph::from_edges(7, &[]);
        assert_eq!(num_components(&g), 7);
        let comp = connected_components(&g);
        for (i, &c) in comp.iter().enumerate() {
            assert_eq!(c, i as VertexId);
        }
    }

    #[test]
    fn union_counts_parts() {
        let u = gen::disconnected_union(&[gen::path(4, 1), gen::path(6, 2)]);
        let g = CsrGraph::from_edge_list(&u);
        assert_eq!(num_components(&g), 2);
    }

    #[test]
    fn component_ids_are_min_vertex() {
        let u = gen::disconnected_union(&[gen::path(3, 1), gen::path(3, 2)]);
        let g = CsrGraph::from_edge_list(&u);
        let comp = connected_components(&g);
        assert_eq!(comp, vec![0, 0, 0, 3, 3, 3]);
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = CsrGraph::from_edge_list(&gen::path(5, 0));
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }
}
