//! Degree and diameter statistics — used to print our Table 2 analogue and
//! to check that preset stand-ins match the paper's degree signatures.

use crate::components::bfs_distances;
use crate::csr::CsrGraph;
use crate::edgelist::splitmix64;
use crate::types::VertexId;

/// Summary statistics in the shape of the paper's Table 2 row.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub num_vertices: u64,
    /// Number of undirected edges.
    pub num_edges: u64,
    /// Average degree (arcs / vertices).
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: u64,
    /// Approximate diameter from BFS sweeps (lower bound).
    pub approx_diameter: u64,
}

/// Computes [`GraphStats`]. The diameter estimate does `sweeps` rounds of
/// the classic double-sweep heuristic from pseudo-random start vertices —
/// a lower bound that is near-exact on road networks and close on crawls.
pub fn graph_stats(g: &CsrGraph, sweeps: u32, seed: u64) -> GraphStats {
    let n = g.num_vertices();
    let max_degree = (0..n).map(|v| g.degree(v)).max().unwrap_or(0);
    GraphStats {
        num_vertices: n as u64,
        num_edges: g.num_undirected_edges(),
        avg_degree: if n == 0 {
            0.0
        } else {
            g.num_arcs() as f64 / n as f64
        },
        max_degree,
        approx_diameter: approx_diameter(g, sweeps, seed),
    }
}

/// Double-sweep diameter lower bound.
pub fn approx_diameter(g: &CsrGraph, sweeps: u32, seed: u64) -> u64 {
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    let mut best = 0u64;
    let mut state = seed;
    for _ in 0..sweeps {
        state = splitmix64(state);
        let start = (state % n as u64) as VertexId;
        let d1 = bfs_distances(g, start);
        // Farthest reachable vertex from `start`…
        let (far, dist) = d1
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d != u64::MAX)
            .max_by_key(|&(_, &d)| d)
            .map(|(i, &d)| (i as VertexId, d))
            .unwrap_or((start, 0));
        best = best.max(dist);
        // …then sweep again from there.
        let d2 = bfs_distances(g, far);
        let dist2 = d2
            .iter()
            .filter(|&&d| d != u64::MAX)
            .max()
            .copied()
            .unwrap_or(0);
        best = best.max(dist2);
    }
    best
}

/// Degree histogram in power-of-two buckets: `hist[i]` counts vertices with
/// degree in `[2^i, 2^(i+1))`; `hist[0]` counts degree 0 and 1.
pub fn degree_histogram(g: &CsrGraph) -> Vec<u64> {
    let mut hist = Vec::new();
    for v in 0..g.num_vertices() {
        let d = g.degree(v);
        let bucket = if d <= 1 {
            0
        } else {
            64 - (d.leading_zeros() as usize) - 1
        };
        if hist.len() <= bucket {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn stats_of_path() {
        let g = CsrGraph::from_edge_list(&gen::path(10, 0));
        let s = graph_stats(&g, 2, 1);
        assert_eq!(s.num_vertices, 10);
        assert_eq!(s.num_edges, 9);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.approx_diameter, 9); // double sweep is exact on a path
    }

    #[test]
    fn stats_of_star() {
        let g = CsrGraph::from_edge_list(&gen::star(9, 0));
        let s = graph_stats(&g, 2, 1);
        assert_eq!(s.max_degree, 8);
        assert_eq!(s.approx_diameter, 2);
    }

    #[test]
    fn histogram_buckets() {
        let g = CsrGraph::from_edge_list(&gen::star(9, 0));
        let h = degree_histogram(&g);
        // 8 leaves of degree 1 in bucket 0; hub degree 8 in bucket 3.
        assert_eq!(h[0], 8);
        assert_eq!(h[3], 1);
    }

    #[test]
    fn empty_graph_stats() {
        let g = CsrGraph::from_edges(0, &[]);
        let s = graph_stats(&g, 1, 0);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.avg_degree, 0.0);
    }
}
