//! Scaled stand-ins for the paper's Table 2 graphs.
//!
//! The paper's inputs are billion-edge web crawls plus road_usa. We cannot
//! hold those; instead each preset generates a graph whose *degree
//! signature* (average degree, skew, max-degree order) and *locality*
//! character match the original at a configurable fraction of the size.
//!
//! Locality is the property that drives the paper's per-graph behaviour:
//! contiguous 1D partitions of crawls keep most edges internal (so
//! independent Boruvka grows big components), while gsh-2015-tpd — a
//! top-private-domain aggregation with little id locality — shatters into
//! many frozen components and becomes communication-bound (§5.2, §5.3).
//! We reproduce that by *scrambling* vertex ids for the gsh stand-in only.

use crate::edgelist::EdgeList;
use crate::gen::{self, CrawlParams};
use crate::types::VertexId;

/// One of the six evaluation graphs of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Preset {
    /// USA road network: avg deg 2.41, max 9, diameter ~6262.
    RoadUsa,
    /// gsh-2015-tpd web graph (top private domains): avg 37.7, max 2.2M,
    /// little id locality — the paper's hard case.
    Gsh2015Tpd,
    /// arabic-2005 crawl: avg 55.5, max 576K.
    Arabic2005,
    /// it-2004 crawl: avg 55.0, max 1.3M.
    It2004,
    /// sk-2005 crawl: avg 71.5, max 8.6M — heaviest skew.
    Sk2005,
    /// uk-2007 crawl: 105M vertices, 6.6B edges — the largest input.
    Uk2007,
}

/// Paper-reported specification (Table 2) for reference printing.
#[derive(Clone, Copy, Debug)]
pub struct PaperRow {
    /// Vertices in the real graph.
    pub vertices: u64,
    /// Undirected edges in the real graph.
    pub edges: u64,
    /// Reported approximate diameter.
    pub diameter: f64,
    /// Reported average degree.
    pub avg_degree: f64,
    /// Reported maximum degree.
    pub max_degree: u64,
}

impl Preset {
    /// All six presets in Table 2 order.
    pub const ALL: [Preset; 6] = [
        Preset::RoadUsa,
        Preset::Gsh2015Tpd,
        Preset::Arabic2005,
        Preset::It2004,
        Preset::Sk2005,
        Preset::Uk2007,
    ];

    /// The graph's name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Preset::RoadUsa => "road_usa",
            Preset::Gsh2015Tpd => "gsh-2015-tpd",
            Preset::Arabic2005 => "arabic-2005",
            Preset::It2004 => "it-2004",
            Preset::Sk2005 => "sk-2005",
            Preset::Uk2007 => "uk-2007",
        }
    }

    /// Parses a preset from its paper name.
    pub fn from_name(name: &str) -> Option<Preset> {
        Preset::ALL.iter().copied().find(|p| p.name() == name)
    }

    /// Table 2 row for the real graph.
    pub fn paper_row(self) -> PaperRow {
        match self {
            Preset::RoadUsa => PaperRow {
                vertices: 23_900_000,
                edges: 57_700_000,
                diameter: 6262.0,
                avg_degree: 2.41,
                max_degree: 9,
            },
            Preset::Gsh2015Tpd => PaperRow {
                vertices: 30_800_000,
                edges: 1_160_000_000,
                diameter: 9.0,
                avg_degree: 37.73,
                max_degree: 2_176_721,
            },
            Preset::Arabic2005 => PaperRow {
                vertices: 22_700_000,
                edges: 1_260_000_000,
                diameter: 29.0,
                avg_degree: 55.50,
                max_degree: 575_662,
            },
            Preset::It2004 => PaperRow {
                vertices: 41_200_000,
                edges: 2_270_000_000,
                diameter: 27.0,
                avg_degree: 55.01,
                max_degree: 1_326_756,
            },
            Preset::Sk2005 => PaperRow {
                vertices: 50_600_000,
                edges: 3_620_000_000,
                diameter: 17.56,
                avg_degree: 71.49,
                max_degree: 8_563_816,
            },
            Preset::Uk2007 => PaperRow {
                vertices: 105_000_000,
                edges: 6_600_000_000,
                diameter: 22.78,
                avg_degree: 62.76,
                max_degree: 975_419,
            },
        }
    }

    /// True for the weak-locality stand-in (gsh-2015-tpd: a top-private-
    /// domain aggregation whose vertex order carries far less locality
    /// than the page-level crawls; modelled with `global_prob = 0.5`).
    pub fn weak_locality(self) -> bool {
        matches!(self, Preset::Gsh2015Tpd)
    }

    /// Generates the stand-in at `1/scale_div` of the paper's size.
    ///
    /// `scale_div = 2048` (the default used by the repro harness) yields
    /// graphs between ~28K edges (road_usa) and ~3.2M edges (uk-2007), all
    /// of which fit this environment while preserving relative sizes.
    pub fn generate(self, scale_div: u64, seed: u64) -> EdgeList {
        assert!(scale_div >= 1);
        let row = self.paper_row();
        let seed = seed ^ (self as u64).wrapping_mul(0x9E37_79B9);
        match self {
            Preset::RoadUsa => {
                // Grid with the paper's width/height aspect ~4:3 and enough
                // diagonals + deletions to hit avg 2.41 / max <= 9.
                let n_target = (row.vertices / scale_div).max(64);
                let width = ((n_target as f64 * 4.0 / 3.0).sqrt()).round() as u32;
                let height = ((n_target as f64) / width as f64).round().max(1.0) as u32;
                // ~38% deletion brings the lattice's natural avg degree ~4
                // down to road_usa's 2.41 while staying above the bond
                // percolation threshold; the deletions strand small islands,
                // so keep the giant component (road_usa is connected).
                let el = gen::road_grid(width, height, 0.02, 0.38, seed);
                crate::transform::largest_component(&el)
            }
            _ => {
                let n = (row.vertices / scale_div).max(64) as VertexId;
                let m = (row.edges / scale_div).max(128);
                // Cap density for tiny scales: the canonicaliser collapses
                // duplicates anyway, but requesting >25% of all pairs wastes
                // generation work.
                let m = m.min(n as u64 * n as u64 / 4);
                // hub_prob tuned so the top hub's share of edges matches the
                // paper's max_degree / |E| ratio (theta = 2, so the top hub
                // draws ~num_hubs^{-1/2} of hub traffic).
                let params = match self {
                    Preset::Sk2005 => CrawlParams {
                        hub_prob: 0.077,
                        ..Default::default()
                    },
                    Preset::Gsh2015Tpd => CrawlParams {
                        hub_prob: 0.060,
                        global_prob: 0.5,
                        ..Default::default()
                    },
                    Preset::It2004 => CrawlParams {
                        hub_prob: 0.019,
                        ..Default::default()
                    },
                    Preset::Arabic2005 => CrawlParams {
                        hub_prob: 0.015,
                        ..Default::default()
                    },
                    _ => CrawlParams {
                        hub_prob: 0.005,
                        ..Default::default()
                    }, // uk-2007
                };
                gen::web_crawl(n, m, params, seed)
            }
        }
    }
}

/// Deterministically permutes vertex ids (bijection) to destroy 1D locality.
/// Multiplication by a constant coprime with `n` is a bijection mod `n`.
pub fn scramble_ids(el: &EdgeList, seed: u64) -> EdgeList {
    let n = el.num_vertices();
    assert!(n >= 1);
    let mut mult = (crate::edgelist::splitmix64(seed) % n as u64).max(2) as VertexId | 1;
    while gcd(mult as u64, n as u64) != 1 {
        mult += 2;
    }
    el.relabel(n, |v| {
        Some(((v as u64 * mult as u64) % n as u64) as VertexId)
    })
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::graph_stats;
    use crate::CsrGraph;

    #[test]
    fn names_round_trip() {
        for p in Preset::ALL {
            assert_eq!(Preset::from_name(p.name()), Some(p));
        }
        assert_eq!(Preset::from_name("nope"), None);
    }

    #[test]
    fn relative_sizes_preserved() {
        // uk-2007 must remain the biggest, road_usa the edge-smallest.
        let sizes: Vec<(Preset, usize)> = Preset::ALL
            .iter()
            .map(|&p| (p, p.generate(16384, 1).len()))
            .collect();
        let uk = sizes.iter().find(|(p, _)| *p == Preset::Uk2007).unwrap().1;
        let road = sizes.iter().find(|(p, _)| *p == Preset::RoadUsa).unwrap().1;
        for &(p, m) in &sizes {
            assert!(m <= uk, "{} bigger than uk-2007", p.name());
            if p != Preset::RoadUsa {
                assert!(m >= road, "{} smaller than road_usa", p.name());
            }
        }
    }

    #[test]
    fn road_signature() {
        let el = Preset::RoadUsa.generate(4096, 7);
        let g = CsrGraph::from_edge_list(&el);
        let s = graph_stats(&g, 2, 1);
        assert!((2.0..2.9).contains(&s.avg_degree), "avg {}", s.avg_degree);
        assert!(s.max_degree <= 9);
    }

    #[test]
    fn crawl_signature_is_skewed() {
        // At the design scale the top hub's degree should land near
        // paper_max / scale (hubs scale down with the edge count), sitting
        // on top of the local-degree floor.
        let scale = 2048;
        for p in [Preset::Arabic2005, Preset::It2004] {
            let el = p.generate(scale, 7);
            let g = CsrGraph::from_edge_list(&el);
            let s = graph_stats(&g, 1, 1);
            let row = p.paper_row();
            let expected = row.max_degree as f64 / scale as f64 + s.avg_degree;
            let ratio = s.max_degree as f64 / expected;
            assert!(
                (0.4..2.5).contains(&ratio),
                "{}: max degree {} vs expected ~{expected:.0}",
                p.name(),
                s.max_degree
            );
            // And the hub must stand clearly above the typical vertex.
            assert!(s.max_degree as f64 > 2.0 * s.avg_degree);
        }
    }

    #[test]
    fn crawls_have_locality_except_gsh() {
        use crate::gen::cut_fraction;
        // Locality is a designed property at the default harness scale
        // (2048); extreme scale-down shrinks partitions below the local
        // link window and the property degrades, so test where it is used.
        for p in [Preset::Arabic2005, Preset::It2004, Preset::Uk2007] {
            let el = p.generate(2048, 3);
            let f = cut_fraction(&el, 16);
            assert!(f < 0.35, "{}: cut fraction {f}", p.name());
        }
        let gsh = Preset::Gsh2015Tpd.generate(2048, 3);
        assert!(cut_fraction(&gsh, 16) > 0.4, "gsh must have weak locality");
    }

    #[test]
    fn scramble_is_bijective() {
        let el = Preset::Arabic2005.generate(32768, 3);
        let s = scramble_ids(&el, 5);
        assert_eq!(s.len(), el.len());
        assert_eq!(s.num_vertices(), el.num_vertices());
        // Total weight is preserved only as a multiset if the weight rides
        // along with the edge — relabel keeps w.
        let mut a: Vec<u32> = el.edges().iter().map(|e| e.w).collect();
        let mut b: Vec<u32> = s.edges().iter().map(|e| e.w).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_generation() {
        for p in [Preset::RoadUsa, Preset::Gsh2015Tpd, Preset::Uk2007] {
            assert_eq!(p.generate(32768, 9), p.generate(32768, 9));
        }
    }
}
