//! Weighted edge lists: the interchange format between generators, I/O and
//! the CSR builder.
//!
//! All of the paper's input graphs are "converted to undirected graphs and
//! assigned random weights" (§5.1). [`EdgeList`] mirrors that pipeline:
//! generators may emit directed, duplicated or self-loop edges, and
//! [`EdgeList::canonicalize`] normalises them into a simple weighted
//! undirected graph with a deterministic weight per vertex pair.

use crate::types::{VertexId, WEdge, Weight};

/// A list of canonical weighted undirected edges plus the vertex-count bound.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeList {
    num_vertices: VertexId,
    edges: Vec<WEdge>,
}

impl EdgeList {
    /// Creates an empty edge list over `num_vertices` vertices.
    pub fn new(num_vertices: VertexId) -> Self {
        EdgeList {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Creates an edge list from raw edges, canonicalising on the way in
    /// (self loops dropped, duplicates collapsed to the minimum weight).
    pub fn from_raw(num_vertices: VertexId, raw: Vec<WEdge>) -> Self {
        let mut el = EdgeList {
            num_vertices,
            edges: raw,
        };
        el.canonicalize();
        el
    }

    /// Number of vertices (an upper bound on ids + 1; isolated vertices are
    /// allowed).
    #[inline]
    pub fn num_vertices(&self) -> VertexId {
        self.num_vertices
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if there are no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The canonical edges.
    #[inline]
    pub fn edges(&self) -> &[WEdge] {
        &self.edges
    }

    /// Consumes the list, returning the edges.
    pub fn into_edges(self) -> Vec<WEdge> {
        self.edges
    }

    /// Adds an edge (canonicalised). Call [`Self::canonicalize`] afterwards
    /// if duplicates or self loops may have been introduced.
    #[inline]
    pub fn push(&mut self, a: VertexId, b: VertexId, w: Weight) {
        debug_assert!(a < self.num_vertices && b < self.num_vertices);
        self.edges.push(WEdge::new(a, b, w));
    }

    /// Normalises the list into a simple undirected graph:
    ///
    /// 1. every edge is stored with `u <= v`,
    /// 2. self loops are removed (they can never be MST edges),
    /// 3. parallel edges between the same pair collapse to the **minimum**
    ///    weight (exactly the paper's "multi-edge removal" applied at input
    ///    time),
    /// 4. edges are sorted by `(u, v, w)` for reproducible iteration order.
    pub fn canonicalize(&mut self) {
        for e in &mut self.edges {
            *e = WEdge::new(e.u, e.v, e.w);
        }
        self.edges.retain(|e| !e.is_self_loop());
        self.edges.sort_unstable_by_key(|e| (e.u, e.v, e.w));
        self.edges.dedup_by(|next, prev| {
            // List is sorted by (u, v, w): the first edge of each (u, v) run
            // has the minimum weight, so dropping later duplicates keeps it.
            next.u == prev.u && next.v == prev.v
        });
    }

    /// Re-weights every edge deterministically from a seed and the canonical
    /// endpoints, emulating the paper's "assigned random weights" step in a
    /// way that is independent of edge order (important: every rank, device
    /// and oracle must agree on the weight of an edge it sees).
    ///
    /// Weights are in `1..=max_weight`.
    pub fn assign_random_weights(&mut self, seed: u64, max_weight: Weight) {
        assert!(max_weight >= 1);
        for e in &mut self.edges {
            e.w = pair_weight(seed, e.u, e.v, max_weight);
        }
    }

    /// Renumbers vertices by a mapping; edges incident to unmapped vertices
    /// (`None`) are dropped. Used to build induced subgraphs for the §4.3.1
    /// device-calibration step.
    pub fn relabel(
        &self,
        new_num_vertices: VertexId,
        map: impl Fn(VertexId) -> Option<VertexId>,
    ) -> EdgeList {
        let mut out = EdgeList::new(new_num_vertices);
        for e in &self.edges {
            if let (Some(a), Some(b)) = (map(e.u), map(e.v)) {
                debug_assert!(a < new_num_vertices && b < new_num_vertices);
                out.edges.push(WEdge::new(a, b, e.w));
            }
        }
        out.canonicalize();
        out
    }

    /// Merges another edge list into this one (vertex spaces must already
    /// agree), re-canonicalising.
    pub fn union(&mut self, other: &EdgeList) {
        assert_eq!(
            self.num_vertices, other.num_vertices,
            "vertex spaces differ"
        );
        self.edges.extend_from_slice(&other.edges);
        self.canonicalize();
    }

    /// Maximum vertex id actually used, or `None` if edgeless.
    pub fn max_used_vertex(&self) -> Option<VertexId> {
        self.edges.iter().map(|e| e.v).max()
    }
}

/// Deterministic weight for the unordered pair `(u, v)` under `seed`,
/// uniform-ish in `1..=max_weight`.
///
/// This is a fixed-key variant of splitmix64 over the packed pair; quality is
/// far beyond what an MST needs (we only need "no adversarial structure").
pub fn pair_weight(seed: u64, u: VertexId, v: VertexId, max_weight: Weight) -> Weight {
    let (a, b) = if u <= v { (u, v) } else { (v, u) };
    let x = ((a as u64) << 32) | b as u64;
    let h = splitmix64(x ^ splitmix64(seed));
    (h % max_weight as u64) as Weight + 1
}

/// The splitmix64 finaliser. Public so generators can reuse it for
/// deterministic per-element decisions.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalize_removes_self_loops_and_dups() {
        let el = EdgeList::from_raw(
            5,
            vec![
                WEdge::new(1, 0, 9),
                WEdge::new(0, 1, 4), // duplicate pair, lighter
                WEdge::new(2, 2, 1), // self loop
                WEdge::new(3, 4, 7),
            ],
        );
        assert_eq!(el.len(), 2);
        assert_eq!(el.edges()[0], WEdge::new(0, 1, 4));
        assert_eq!(el.edges()[1], WEdge::new(3, 4, 7));
    }

    #[test]
    fn duplicate_collapse_keeps_min_weight() {
        let el = EdgeList::from_raw(
            3,
            vec![
                WEdge::new(0, 1, 5),
                WEdge::new(1, 0, 2),
                WEdge::new(0, 1, 8),
            ],
        );
        assert_eq!(el.len(), 1);
        assert_eq!(el.edges()[0].w, 2);
    }

    #[test]
    fn weights_are_order_independent() {
        let mut a = EdgeList::from_raw(4, vec![WEdge::new(0, 1, 0), WEdge::new(2, 3, 0)]);
        let mut b = EdgeList::from_raw(4, vec![WEdge::new(3, 2, 0), WEdge::new(1, 0, 0)]);
        a.assign_random_weights(99, 1000);
        b.assign_random_weights(99, 1000);
        assert_eq!(a, b);
    }

    #[test]
    fn pair_weight_in_range_and_symmetric() {
        for i in 0..100u32 {
            let w = pair_weight(7, i, i + 1, 10);
            assert!((1..=10).contains(&w));
            assert_eq!(w, pair_weight(7, i + 1, i, 10));
        }
    }

    #[test]
    fn relabel_builds_induced_subgraph() {
        let el = EdgeList::from_raw(
            6,
            vec![
                WEdge::new(0, 1, 1),
                WEdge::new(1, 2, 2),
                WEdge::new(4, 5, 3),
            ],
        );
        // Keep only vertices 0..3, identity-mapped.
        let sub = el.relabel(3, |v| (v < 3).then_some(v));
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.edges()[0], WEdge::new(0, 1, 1));
        assert_eq!(sub.edges()[1], WEdge::new(1, 2, 2));
    }

    #[test]
    fn union_merges_and_dedups() {
        let mut a = EdgeList::from_raw(4, vec![WEdge::new(0, 1, 3)]);
        let b = EdgeList::from_raw(4, vec![WEdge::new(0, 1, 1), WEdge::new(2, 3, 2)]);
        a.union(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.edges()[0].w, 1);
    }

    #[test]
    fn empty_list_behaviour() {
        let el = EdgeList::new(10);
        assert!(el.is_empty());
        assert_eq!(el.max_used_vertex(), None);
    }
}
