//! R-MAT recursive-matrix generator (Chakrabarti et al.), the standard model
//! for power-law web/social graphs like the paper's crawls.

use crate::edgelist::{splitmix64, EdgeList};
use crate::gen::DEFAULT_MAX_WEIGHT;
use crate::types::{VertexId, WEdge};

/// R-MAT quadrant probabilities `(a, b, c)` with `d = 1 - a - b - c`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatProbs {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
}

impl RmatProbs {
    /// Graph500 reference parameters — heavy skew, max degrees in the
    /// hundreds of thousands at web-crawl scale, matching the crawls of
    /// Table 2 (e.g. sk-2005: avg 71, max 8.5M).
    pub const GRAPH500: RmatProbs = RmatProbs {
        a: 0.57,
        b: 0.19,
        c: 0.19,
    };

    /// Milder skew: still power-law but with smaller hubs; used for the
    /// gsh-2015-tpd stand-in whose independent computations shatter into
    /// many small components (§5.2's outlier case).
    pub const MILD: RmatProbs = RmatProbs {
        a: 0.45,
        b: 0.22,
        c: 0.22,
    };

    /// Near-uniform (degenerates towards Erdős–Rényi).
    pub const UNIFORM: RmatProbs = RmatProbs {
        a: 0.25,
        b: 0.25,
        c: 0.25,
    };

    fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generates an R-MAT graph with `num_vertices` (must be a power of two) and
/// approximately `num_edges` undirected edges (self loops and duplicates are
/// canonicalised away, so the final count is slightly lower — exactly the
/// behaviour of the reference generator).
///
/// Deterministic in `seed`; weights come from
/// [`pair_weight`](crate::edgelist::pair_weight) so they are
/// stable regardless of generation order.
pub fn rmat(num_vertices: VertexId, num_edges: u64, probs: RmatProbs, seed: u64) -> EdgeList {
    assert!(
        num_vertices.is_power_of_two(),
        "R-MAT needs a power-of-two vertex count"
    );
    let scale = num_vertices.trailing_zeros();
    let d = probs.d();
    assert!(
        probs.a > 0.0 && probs.b >= 0.0 && probs.c >= 0.0 && d > 0.0,
        "bad quadrant probabilities"
    );

    let mut raw = Vec::with_capacity(num_edges as usize);
    let mut state = splitmix64(seed ^ RMAT_TAG);
    let mut next_f64 = move || {
        state = splitmix64(state);
        // 53 random bits into [0, 1).
        (state >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    };

    for _ in 0..num_edges {
        let (mut u, mut v) = (0u32, 0u32);
        for bit in (0..scale).rev() {
            // Noise each level slightly (±10%) to avoid the "staircase"
            // artifact of pure R-MAT, as the reference implementation does.
            let r = next_f64();
            let noise = 0.9 + 0.2 * next_f64();
            let a = probs.a * noise;
            let b = probs.b * noise;
            let c = probs.c * noise;
            let total = a + b + c + d * noise;
            let r = r * total;
            if r < a {
                // top-left: neither bit set
            } else if r < a + b {
                v |= 1 << bit;
            } else if r < a + b + c {
                u |= 1 << bit;
            } else {
                u |= 1 << bit;
                v |= 1 << bit;
            }
        }
        if u != v {
            raw.push(WEdge::new(u, v, 0));
        }
    }
    let mut el = EdgeList::from_raw(num_vertices, raw);
    el.assign_random_weights(seed, DEFAULT_MAX_WEIGHT);
    el
}

/// Seed-separation tag so different generators never share a random stream.
const RMAT_TAG: u64 = 0x524D_4154; // "RMAT"

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = rmat(256, 1024, RmatProbs::GRAPH500, 1);
        let b = rmat(256, 1024, RmatProbs::GRAPH500, 1);
        let c = rmat(256, 1024, RmatProbs::GRAPH500, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn respects_vertex_bound_and_canonical() {
        let el = rmat(128, 2000, RmatProbs::GRAPH500, 7);
        for e in el.edges() {
            assert!(e.u < 128 && e.v < 128);
            assert!(e.u < e.v);
            assert!(e.w >= 1);
        }
    }

    #[test]
    fn skewed_probs_produce_hubs() {
        let el = rmat(1024, 16 * 1024, RmatProbs::GRAPH500, 3);
        let g = crate::CsrGraph::from_edge_list(&el);
        let max_deg = (0..1024).map(|v| g.degree(v)).max().unwrap();
        let avg = g.num_arcs() as f64 / 1024.0;
        assert!(
            max_deg as f64 > 6.0 * avg,
            "expected a hub: max {max_deg} vs avg {avg:.1}"
        );
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two() {
        rmat(100, 10, RmatProbs::GRAPH500, 0);
    }
}
