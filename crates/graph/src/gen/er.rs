//! Erdős–Rényi G(n, m) generator — uniform random graphs, useful as a
//! structure-free control in tests and ablations.

use crate::edgelist::{splitmix64, EdgeList};
use crate::gen::DEFAULT_MAX_WEIGHT;
use crate::types::{VertexId, WEdge};

/// Generates a uniform random graph with `num_vertices` and approximately
/// `num_edges` undirected edges (duplicates/self loops canonicalised away).
/// Deterministic in `seed`.
pub fn gnm(num_vertices: VertexId, num_edges: u64, seed: u64) -> EdgeList {
    assert!(num_vertices >= 1);
    let mut raw = Vec::with_capacity(num_edges as usize);
    let mut state = splitmix64(seed ^ ER_TAG);
    let mut next = move || {
        state = splitmix64(state);
        state
    };
    for _ in 0..num_edges {
        let u = (next() % num_vertices as u64) as VertexId;
        let v = (next() % num_vertices as u64) as VertexId;
        if u != v {
            raw.push(WEdge::new(u, v, 0));
        }
    }
    let mut el = EdgeList::from_raw(num_vertices, raw);
    el.assign_random_weights(seed, DEFAULT_MAX_WEIGHT);
    el
}

const ER_TAG: u64 = 0x4552_4e4d; // "ERNM"

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_canonical() {
        let a = gnm(100, 500, 5);
        assert_eq!(a, gnm(100, 500, 5));
        for e in a.edges() {
            assert!(e.u < e.v && e.v < 100);
        }
    }

    #[test]
    fn edge_count_close_to_requested() {
        let el = gnm(1000, 5000, 9);
        // Collisions/self loops remove a few percent at this density.
        assert!(el.len() > 4700 && el.len() <= 5000, "got {}", el.len());
    }

    #[test]
    fn single_vertex_graph_is_edgeless() {
        assert!(gnm(1, 100, 0).is_empty());
    }
}
