//! Barabási–Albert preferential attachment — scale-free graphs grown by
//! degree-proportional attachment. A standard test family complementing
//! R-MAT (which gets skew from recursion) and the crawl model (which gets
//! it from explicit hubs): BA's hubs *emerge*, and vertex ids correlate
//! with age, giving a distinctive mild locality (old↔old edges cluster at
//! low ids).

use crate::edgelist::{splitmix64, EdgeList};
use crate::gen::DEFAULT_MAX_WEIGHT;
use crate::types::VertexId;

/// Grows a BA graph: starts from a small clique, then each new vertex
/// attaches to `m` existing vertices chosen proportionally to degree
/// (the classic repeated-endpoint sampling). `m >= 1`, `num_vertices > m`.
/// Deterministic in `seed`.
pub fn barabasi_albert(num_vertices: VertexId, m: u32, seed: u64) -> EdgeList {
    assert!(m >= 1, "attachment count must be >= 1");
    assert!(num_vertices > m, "need more vertices than attachments");
    let mut state = splitmix64(seed ^ BA_TAG);
    let mut next = move || {
        state = splitmix64(state);
        state
    };

    // Endpoint multiset: each edge contributes both endpoints, so sampling
    // uniformly from it is degree-proportional sampling.
    let mut endpoints: Vec<VertexId> = Vec::new();
    let mut el = EdgeList::new(num_vertices);

    // Seed clique over the first m+1 vertices.
    for u in 0..=m {
        for v in (u + 1)..=m {
            el.push(u, v, 0);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for u in (m + 1)..num_vertices {
        // Sample m distinct targets (retry on duplicates; m is small).
        let mut targets: Vec<VertexId> = Vec::with_capacity(m as usize);
        while targets.len() < m as usize {
            let t = endpoints[(next() % endpoints.len() as u64) as usize];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for t in targets {
            el.push(u, t, 0);
            endpoints.push(u);
            endpoints.push(t);
        }
    }
    el.canonicalize();
    el.assign_random_weights(seed, DEFAULT_MAX_WEIGHT);
    el
}

const BA_TAG: u64 = 0x4241_4C42; // "BALB"

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::num_components;
    use crate::stats::graph_stats;
    use crate::CsrGraph;

    #[test]
    fn size_and_connectivity() {
        let el = barabasi_albert(1000, 3, 7);
        // Clique (4 choose 2) = 6, plus 3 per later vertex.
        assert_eq!(el.len(), 6 + 3 * (1000 - 4));
        let g = CsrGraph::from_edge_list(&el);
        assert_eq!(
            num_components(&g),
            1,
            "BA graphs are connected by construction"
        );
    }

    #[test]
    fn power_law_hubs_emerge() {
        let el = barabasi_albert(5000, 2, 3);
        let g = CsrGraph::from_edge_list(&el);
        let s = graph_stats(&g, 1, 1);
        assert!(
            s.max_degree as f64 > 10.0 * s.avg_degree,
            "max {} avg {}",
            s.max_degree,
            s.avg_degree
        );
        // Hubs are the oldest vertices.
        let oldest_max = (0..50).map(|v| g.degree(v)).max().unwrap();
        let newest_max = (4950..5000).map(|v| g.degree(v)).max().unwrap();
        assert!(oldest_max > 5 * newest_max);
    }

    #[test]
    fn deterministic() {
        assert_eq!(barabasi_albert(300, 2, 9), barabasi_albert(300, 2, 9));
    }

    #[test]
    #[should_panic(expected = "more vertices")]
    fn rejects_degenerate_sizes() {
        barabasi_albert(3, 3, 0);
    }
}
