//! Euclidean point clouds and exact k-nearest-neighbour graphs.
//!
//! The Euclidean MST workload (Prokopenko, Sao & Lebrun-Grandié,
//! arXiv:2207.00514) is the opposite regime from the paper's Zipf web
//! crawls: geometry-induced locality, bounded degree (≤ a small k), no
//! hubs. A k-NN graph over a point cloud, weighted by *squared* Euclidean
//! distance, is the standard reduction — EMST algorithms prune the
//! complete graph down to exactly such neighbour graphs.
//!
//! Everything here is deterministic in the seed:
//!
//! * points live on an integer lattice (`[0, SIDE)` per axis) so squared
//!   distances are exact `u64`s that fit the `u32` weight type,
//! * the k-NN search is **exact** — grid-bucketed ring expansion with the
//!   textbook stopping bound (after scanning all cells within Chebyshev
//!   ring `r`, every unscanned point is at distance ≥ `r·cell`), never a
//!   heuristic cutoff,
//! * neighbour ties break on `(sq_dist, id)`, so the adjacency (and
//!   therefore every downstream MSF) is reproducible bit-for-bit.
//!
//! [`GeoPreset`] wires the regimes (uniform/clustered × 2-D/3-D) into
//! named workloads the bench harness sweeps next to the Table 2 crawls.

use crate::edgelist::{splitmix64, EdgeList};
use crate::types::{VertexId, Weight};

/// Coordinate range per axis: `[0, SIDE)`. Chosen so the worst-case 3-D
/// squared distance `3·(SIDE-1)²` still fits the `u32` edge weight.
pub const SIDE: u32 = 1 << 15;

const GEO_TAG: u64 = 0x4745_4f4d; // "GEOM"

/// A deterministic point cloud on the integer lattice.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PointCloud {
    dim: u8,
    pts: Vec<[u32; 3]>, // z is 0 for dim == 2
}

impl PointCloud {
    /// `n` points uniform over the `dim`-cube (`dim` ∈ {2, 3}).
    pub fn uniform(n: u32, dim: u8, seed: u64) -> Self {
        assert!(dim == 2 || dim == 3, "dim must be 2 or 3");
        let mut state = splitmix64(seed ^ GEO_TAG);
        let mut next = move || {
            state = splitmix64(state);
            state
        };
        let pts = (0..n)
            .map(|_| {
                let mut p = [0u32; 3];
                for c in p.iter_mut().take(dim as usize) {
                    *c = (next() % SIDE as u64) as u32;
                }
                p
            })
            .collect();
        PointCloud { dim, pts }
    }

    /// `n` points in `clusters` uniform blobs of half-width `spread`
    /// (clamped to the lattice), plus a 1-in-8 uniform background-noise
    /// fraction. Models the clustered regime where nearest-neighbour
    /// distances are bimodal: tight inside a blob, long between blobs.
    /// The noise matters: with disjoint blobs alone, the k-NN graph only
    /// connects once k exceeds the blob *population* (which grows with
    /// n), destroying the bounded-degree property the regime exists to
    /// test. Sparse noise bridges blobs at small k instead — a noise
    /// point near a blob adopts blob points into its own k-list (the
    /// mirrored edge survives even though no blob point reciprocates),
    /// and noise-to-noise chains span the empty regions.
    pub fn clustered(n: u32, dim: u8, clusters: u32, spread: u32, seed: u64) -> Self {
        assert!(dim == 2 || dim == 3, "dim must be 2 or 3");
        assert!(clusters >= 1);
        let mut state = splitmix64(seed ^ GEO_TAG ^ 0xC1C1);
        let mut next = move || {
            state = splitmix64(state);
            state
        };
        let centers: Vec<[u32; 3]> = (0..clusters)
            .map(|_| {
                let mut c = [0u32; 3];
                for x in c.iter_mut().take(dim as usize) {
                    *x = (next() % SIDE as u64) as u32;
                }
                c
            })
            .collect();
        let pts = (0..n)
            .map(|i| {
                let mut p = [0u32; 3];
                if i % 8 == 7 {
                    // Background noise: uniform over the whole lattice.
                    for x in p.iter_mut().take(dim as usize) {
                        *x = (next() % SIDE as u64) as u32;
                    }
                } else {
                    let c = centers[(next() % clusters as u64) as usize];
                    for (x, cx) in p.iter_mut().zip(c.iter()).take(dim as usize) {
                        let off = (next() % (2 * spread as u64 + 1)) as i64 - spread as i64;
                        *x = (*cx as i64 + off).clamp(0, SIDE as i64 - 1) as u32;
                    }
                }
                p
            })
            .collect();
        PointCloud { dim, pts }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.pts.len()
    }

    /// True if the cloud has no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pts.is_empty()
    }

    /// Dimensionality (2 or 3).
    #[inline]
    pub fn dim(&self) -> u8 {
        self.dim
    }

    /// The `i`-th point (z = 0 when `dim == 2`).
    #[inline]
    pub fn point(&self, i: VertexId) -> [u32; 3] {
        self.pts[i as usize]
    }

    /// Exact squared Euclidean distance between points `i` and `j`.
    #[inline]
    pub fn sq_dist(&self, i: VertexId, j: VertexId) -> u64 {
        let (a, b) = (self.pts[i as usize], self.pts[j as usize]);
        (0..3).fold(0u64, |acc, c| {
            let d = a[c] as i64 - b[c] as i64;
            acc + (d * d) as u64
        })
    }

    /// Reflects every point through the lattice (`x → SIDE-1-x` per used
    /// axis). Distance-preserving, so the k-NN graph — ids, weights and
    /// all — must be identical (the proptested mirror invariance).
    pub fn mirrored(&self) -> Self {
        let pts = self
            .pts
            .iter()
            .map(|p| {
                let mut q = [0u32; 3];
                for c in 0..self.dim as usize {
                    q[c] = SIDE - 1 - p[c];
                }
                q
            })
            .collect();
        PointCloud { dim: self.dim, pts }
    }

    /// The complete graph over the cloud, weighted by squared distance —
    /// the brute-force EMST oracle's input. Quadratic: small `n` only.
    pub fn complete_graph(&self) -> EdgeList {
        let n = self.len() as VertexId;
        let mut el = EdgeList::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                el.push(i, j, self.sq_dist(i, j) as Weight);
            }
        }
        el.canonicalize();
        el
    }

    /// Exact k-nearest-neighbour graph: every point contributes edges to
    /// its `k` nearest neighbours (ties on `(sq_dist, id)`), mirrored into
    /// an undirected [`EdgeList`] weighted by squared distance.
    ///
    /// Grid-bucketed: points hash into cells of a `g×g(×g)` grid sized for
    /// a few points per cell, and each query expands Chebyshev rings until
    /// the k-th best distance is at most the ring lower bound — exact by
    /// the standard argument, near-linear on uniform clouds.
    pub fn knn_graph(&self, k: usize) -> EdgeList {
        let n = self.len() as VertexId;
        let mut el = EdgeList::new(n);
        if n <= 1 || k == 0 {
            return el;
        }
        let k = k.min(n as usize - 1);

        // Cell count per axis: ~2 points per cell on uniform clouds.
        let g = ((n as f64 / 2.0).powf(1.0 / self.dim as f64).floor() as u32).clamp(1, SIDE);
        let cell_w = SIDE.div_ceil(g);
        let gz = if self.dim == 3 { g } else { 1 };
        let cell_of = |p: [u32; 3]| -> (u32, u32, u32) {
            (
                (p[0] / cell_w).min(g - 1),
                (p[1] / cell_w).min(g - 1),
                (p[2] / cell_w).min(gz - 1),
            )
        };
        let idx = |cx: u32, cy: u32, cz: u32| -> usize {
            ((cz as u64 * g as u64 + cy as u64) * g as u64 + cx as u64) as usize
        };
        let mut buckets: Vec<Vec<VertexId>> =
            vec![Vec::new(); (g as u64 * g as u64 * gz as u64) as usize];
        for (i, &p) in self.pts.iter().enumerate() {
            let (cx, cy, cz) = cell_of(p);
            buckets[idx(cx, cy, cz)].push(i as VertexId);
        }

        // best: ascending (sq_dist, id), at most k entries.
        let mut best: Vec<(u64, VertexId)> = Vec::with_capacity(k + 1);
        for i in 0..n {
            best.clear();
            let (cx, cy, cz) = cell_of(self.pts[i as usize]);
            let max_ring = g.max(gz);
            for r in 0..max_ring {
                // Scan every cell at Chebyshev ring distance exactly r.
                self.scan_ring(&buckets, g, gz, idx, cx, cy, cz, r, i, k, &mut best);
                if best.len() == k {
                    // Unscanned cells are at Chebyshev distance > r, so
                    // every point in them is ≥ r·cell_w away.
                    let bound = r as u64 * cell_w as u64;
                    if best[k - 1].0 <= bound * bound {
                        break;
                    }
                }
            }
            for &(d, j) in &best {
                el.push(i.min(j), i.max(j), d as Weight);
            }
        }
        el.canonicalize();
        el
    }

    #[allow(clippy::too_many_arguments)]
    fn scan_ring(
        &self,
        buckets: &[Vec<VertexId>],
        g: u32,
        gz: u32,
        idx: impl Fn(u32, u32, u32) -> usize,
        cx: u32,
        cy: u32,
        cz: u32,
        r: u32,
        i: VertexId,
        k: usize,
        best: &mut Vec<(u64, VertexId)>,
    ) {
        let span = |c: u32, lim: u32| -> (u32, u32) { (c.saturating_sub(r), (c + r).min(lim - 1)) };
        let (x0, x1) = span(cx, g);
        let (y0, y1) = span(cy, g);
        let (z0, z1) = span(cz, gz);
        let ring = |a: u32, b: u32| a.abs_diff(b) == r;
        for z in z0..=z1 {
            for y in y0..=y1 {
                for x in x0..=x1 {
                    // Ring r = cells whose Chebyshev distance is exactly r.
                    if !(ring(x, cx) || ring(y, cy) || ring(z, cz)) {
                        continue;
                    }
                    for &j in &buckets[idx(x, y, z)] {
                        if j == i {
                            continue;
                        }
                        let cand = (self.sq_dist(i, j), j);
                        if best.len() == k && cand >= best[k - 1] {
                            continue;
                        }
                        let pos = best.partition_point(|&b| b < cand);
                        best.insert(pos, cand);
                        best.truncate(k);
                    }
                }
            }
        }
    }

    /// k-NN graph bumped (k doubling) until connected; returns the graph
    /// and the k that connected it. Clustered clouds with far-apart blobs
    /// need a larger k than uniform ones — this is the "connectivity
    /// threshold" the EMST oracle reasons about.
    pub fn knn_connected(&self, k0: usize) -> (EdgeList, usize) {
        let n = self.len();
        if n <= 1 {
            return (EdgeList::new(n as VertexId), k0);
        }
        let mut k = k0.max(1);
        loop {
            let el = self.knn_graph(k);
            let g = crate::CsrGraph::from_edge_list(&el);
            if crate::components::num_components(&g) == 1 || k >= n - 1 {
                return (el, k.min(n - 1));
            }
            k *= 2;
        }
    }
}

/// The geometric workload family: named regimes the bench harness sweeps
/// next to the Table 2 crawls. Each entry is a (distribution, dimension)
/// pair with a per-regime base `k`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GeoPreset {
    /// Uniform points in the unit square, k = 8. The pure bounded-degree
    /// regime: degrees concentrate at ~2k·(1±ε), no hubs at all.
    Uniform2d,
    /// Uniform points in the unit cube, k = 10 (EMST edges sit deeper in
    /// the neighbour ranking as dimension grows).
    Uniform3d,
    /// 32 tight clusters in the square, k = 8. Bimodal neighbour
    /// distances: intra-blob edges are tiny, the MST's inter-blob bridges
    /// are orders of magnitude heavier.
    Cluster2d,
    /// 32 tight clusters in the cube, k = 10.
    Cluster3d,
}

impl GeoPreset {
    /// All geometric presets, sweep order.
    pub const ALL: [GeoPreset; 4] = [
        GeoPreset::Uniform2d,
        GeoPreset::Uniform3d,
        GeoPreset::Cluster2d,
        GeoPreset::Cluster3d,
    ];

    /// Preset name as printed by the harness (and used in BENCH row keys).
    pub fn name(self) -> &'static str {
        match self {
            GeoPreset::Uniform2d => "geo-uniform-2d",
            GeoPreset::Uniform3d => "geo-uniform-3d",
            GeoPreset::Cluster2d => "geo-cluster-2d",
            GeoPreset::Cluster3d => "geo-cluster-3d",
        }
    }

    /// Parses a preset from its name.
    pub fn from_name(name: &str) -> Option<GeoPreset> {
        GeoPreset::ALL.iter().copied().find(|p| p.name() == name)
    }

    /// Dimensionality of the regime.
    pub fn dim(self) -> u8 {
        match self {
            GeoPreset::Uniform2d | GeoPreset::Cluster2d => 2,
            GeoPreset::Uniform3d | GeoPreset::Cluster3d => 3,
        }
    }

    /// Base neighbour count. The generator bumps it (doubling) if the
    /// graph comes out disconnected, so this is a floor, not a promise.
    pub fn base_k(self) -> usize {
        match self.dim() {
            2 => 8,
            _ => 10,
        }
    }

    /// Notional full-scale point count (`2²⁴ ≈ 16.8M`): the same
    /// `1/scale_div` convention as the Table 2 stand-ins, so geometric
    /// instances scale down alongside the crawls.
    pub fn paper_points(self) -> u64 {
        1 << 24
    }

    /// The point cloud at `n` points for this regime.
    pub fn points(self, n: u32, seed: u64) -> PointCloud {
        let seed = seed ^ splitmix64(self as u64 ^ GEO_TAG);
        match self {
            GeoPreset::Uniform2d | GeoPreset::Uniform3d => PointCloud::uniform(n, self.dim(), seed),
            GeoPreset::Cluster2d | GeoPreset::Cluster3d => {
                PointCloud::clustered(n, self.dim(), 32, SIDE / 24, seed)
            }
        }
    }

    /// Generates the k-NN graph at `1/scale_div` of the full-scale point
    /// count, with `k` bumped until connected. Deterministic in the seed.
    pub fn generate(self, scale_div: u64, seed: u64) -> EdgeList {
        let (el, _) = self.generate_with_k(scale_div, seed);
        el
    }

    /// [`GeoPreset::generate`], also returning the k that connected the
    /// graph.
    pub fn generate_with_k(self, scale_div: u64, seed: u64) -> (EdgeList, usize) {
        assert!(scale_div >= 1);
        let n = (self.paper_points() / scale_div).max(64) as u32;
        self.points(n, seed).knn_connected(self.base_k())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::graph_stats;
    use crate::CsrGraph;

    #[test]
    fn names_round_trip() {
        for p in GeoPreset::ALL {
            assert_eq!(GeoPreset::from_name(p.name()), Some(p));
        }
        assert_eq!(GeoPreset::from_name("geo-nope"), None);
    }

    #[test]
    fn knn_is_exact_against_brute_force() {
        // The grid-bucketed search must return exactly the k smallest
        // (sq_dist, id) pairs per point — checked against a quadratic scan.
        for (dim, seed) in [(2u8, 3u64), (3, 4)] {
            let cloud = PointCloud::uniform(200, dim, seed);
            let k = 5;
            let el = cloud.knn_graph(k);
            let mut expect = EdgeList::new(cloud.len() as VertexId);
            for i in 0..cloud.len() as VertexId {
                let mut cands: Vec<(u64, VertexId)> = (0..cloud.len() as VertexId)
                    .filter(|&j| j != i)
                    .map(|j| (cloud.sq_dist(i, j), j))
                    .collect();
                cands.sort_unstable();
                for &(d, j) in cands.iter().take(k) {
                    expect.push(i.min(j), i.max(j), d as Weight);
                }
            }
            expect.canonicalize();
            assert_eq!(el, expect, "dim {dim}");
        }
    }

    #[test]
    fn knn_weights_are_squared_distances() {
        let cloud = PointCloud::uniform(128, 2, 9);
        let el = cloud.knn_graph(6);
        for e in el.edges() {
            assert_eq!(e.w as u64, cloud.sq_dist(e.u, e.v));
        }
    }

    #[test]
    fn degrees_are_bounded_no_hubs() {
        // The defining contrast with the crawls: max degree stays within a
        // small multiple of k (each point is in ≤ O(1) other points' lists
        // on uniform clouds), and there is no hub tail.
        let el = GeoPreset::Uniform2d.generate(1 << 13, 7); // 2048 points
        let g = CsrGraph::from_edge_list(&el);
        let s = graph_stats(&g, 1, 1);
        assert!(s.max_degree <= 4 * 8, "max degree {}", s.max_degree);
        assert!(s.avg_degree >= 8.0, "avg degree {}", s.avg_degree);
    }

    #[test]
    fn presets_generate_connected_graphs() {
        for p in GeoPreset::ALL {
            let el = p.generate(1 << 16, 11); // 256 points
            let g = CsrGraph::from_edge_list(&el);
            assert_eq!(
                crate::components::num_components(&g),
                1,
                "{} disconnected",
                p.name()
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        for p in [GeoPreset::Uniform3d, GeoPreset::Cluster2d] {
            assert_eq!(p.generate(1 << 16, 5), p.generate(1 << 16, 5));
            assert_ne!(p.generate(1 << 16, 5), p.generate(1 << 16, 6));
        }
    }

    #[test]
    fn mirror_invariance() {
        // Reflection preserves every pairwise distance and every id, so
        // the k-NN graph must be identical edge-for-edge.
        for p in GeoPreset::ALL {
            let cloud = p.points(300, 13);
            assert_eq!(
                cloud.knn_graph(7),
                cloud.mirrored().knn_graph(7),
                "{}",
                p.name()
            );
        }
    }

    #[test]
    fn cluster_bridges_are_heavy() {
        // The clustered regime's MST must cross between blobs on edges far
        // heavier than the intra-blob median — the property that stresses
        // exception-condition freezing differently from crawls.
        let el = GeoPreset::Cluster2d.generate(1 << 15, 3); // 512 points
        let mut ws: Vec<Weight> = el.edges().iter().map(|e| e.w).collect();
        ws.sort_unstable();
        let median = ws[ws.len() / 2];
        let max = *ws.last().unwrap();
        assert!(
            max as u64 > 16 * median.max(1) as u64,
            "max {max} vs median {median}"
        );
    }

    #[test]
    fn tiny_clouds_behave() {
        let one = PointCloud::uniform(1, 2, 0);
        assert!(one.knn_graph(4).is_empty());
        let (el, k) = PointCloud::uniform(5, 2, 1).knn_connected(64);
        assert_eq!(k, 4); // clamped to n-1
        let g = CsrGraph::from_edge_list(&el);
        assert_eq!(crate::components::num_components(&g), 1);
    }
}
