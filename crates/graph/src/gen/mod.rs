//! Synthetic graph generators.
//!
//! The paper's evaluation inputs (Table 2) are web crawls with power-law
//! degree distributions plus the road_usa network. These generators produce
//! scaled stand-ins with matching degree signatures; [`crate::presets`] wires
//! them to the specific Table 2 rows.
//!
//! All generators are deterministic in their seed, emit an
//! [`EdgeList`](crate::EdgeList) that
//! has already been canonicalised, and assign deterministic per-pair random
//! weights (see [`crate::edgelist::pair_weight`]).

mod ba;
mod crawl;
mod er;
mod geometric;
mod rmat;
mod road;
mod smallworld;
mod special;

pub use ba::barabasi_albert;
pub use crawl::{cut_fraction, web_crawl, CrawlParams};
pub use er::gnm;
pub use geometric::{GeoPreset, PointCloud, SIDE};
pub use rmat::{rmat, RmatProbs};
pub use road::road_grid;
pub use smallworld::watts_strogatz;
pub use special::{complete, cycle, disconnected_union, path, star};

/// Default weight range used by all generators (`1..=DEFAULT_MAX_WEIGHT`).
///
/// Wide enough that ties are rare on our graph sizes, which keeps MSTs
/// "interesting", while tie-breaking by endpoints keeps them unique anyway.
pub const DEFAULT_MAX_WEIGHT: crate::types::Weight = 1 << 20;
