//! Watts–Strogatz small-world generator — ring lattice with rewiring.
//!
//! Used in tests and ablations as a family that is connected, regular-ish,
//! and has tunable locality (1D-partition-friendly at low rewiring, hostile
//! at high rewiring — a good probe for the paper's claim that contiguous 1D
//! partitioning preserves natural locality, §3.1).

use crate::edgelist::{splitmix64, EdgeList};
use crate::gen::DEFAULT_MAX_WEIGHT;
use crate::types::VertexId;

/// Watts–Strogatz: `num_vertices` on a ring, each joined to `k/2` neighbours
/// on each side, each edge rewired with probability `beta`. `k` must be even
/// and `< num_vertices`. Deterministic in `seed`.
pub fn watts_strogatz(num_vertices: VertexId, k: u32, beta: f64, seed: u64) -> EdgeList {
    assert!(k.is_multiple_of(2), "k must be even");
    assert!(k < num_vertices, "k must be < num_vertices");
    assert!((0.0..=1.0).contains(&beta));
    let n = num_vertices as u64;
    let mut el = EdgeList::new(num_vertices);
    let mut state = splitmix64(seed ^ WS_TAG);
    let mut next = move || {
        state = splitmix64(state);
        state
    };

    for u in 0..n {
        for j in 1..=(k / 2) as u64 {
            let v = (u + j) % n;
            let rewire = ((next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < beta;
            let target = if rewire {
                // Uniform target avoiding self loop; duplicates handled by
                // canonicalisation (matches the classic formulation closely
                // enough for a test-family generator).
                let mut t = next() % n;
                if t == u {
                    t = (t + 1) % n;
                }
                t
            } else {
                v
            };
            el.push(u as VertexId, target as VertexId, 0);
        }
    }
    el.canonicalize();
    el.assign_random_weights(seed, DEFAULT_MAX_WEIGHT);
    el
}

const WS_TAG: u64 = 0x5753_4d57; // "WSMW"

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::num_components;
    use crate::CsrGraph;

    #[test]
    fn zero_beta_is_ring_lattice() {
        let el = watts_strogatz(10, 4, 0.0, 1);
        assert_eq!(el.len(), 20); // n * k / 2
        let g = CsrGraph::from_edge_list(&el);
        for v in 0..10 {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn ring_is_connected_even_after_rewiring() {
        for beta in [0.0, 0.1, 0.5] {
            let el = watts_strogatz(200, 6, beta, 3);
            let g = CsrGraph::from_edge_list(&el);
            // With k=6 the graph stays connected w.h.p.; deterministic seed
            // makes this a stable assertion rather than a flaky one.
            assert_eq!(num_components(&g), 1, "beta={beta}");
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(watts_strogatz(50, 4, 0.3, 9), watts_strogatz(50, 4, 0.3, 9));
    }
}
