//! Small deterministic graph families used throughout the test suites:
//! paths, cycles, stars, complete graphs and disconnected unions.
//!
//! These have MSTs that are easy to reason about by hand, which makes them
//! the right fixtures for kernel unit tests (e.g. the MST of a path is the
//! path; the MSF of a disconnected union is the union of per-part MSTs).

use crate::edgelist::EdgeList;
use crate::gen::DEFAULT_MAX_WEIGHT;
use crate::types::{VertexId, WEdge};

/// Path 0-1-2-…-(n-1). Weights deterministic from `seed`.
pub fn path(n: VertexId, seed: u64) -> EdgeList {
    let mut el = EdgeList::new(n);
    for v in 1..n {
        el.push(v - 1, v, 0);
    }
    el.canonicalize();
    el.assign_random_weights(seed, DEFAULT_MAX_WEIGHT);
    el
}

/// Cycle over `n >= 3` vertices.
pub fn cycle(n: VertexId, seed: u64) -> EdgeList {
    assert!(n >= 3, "cycle needs >= 3 vertices");
    let mut el = path(n, seed);
    let mut edges = el.into_edges();
    edges.push(WEdge::new(0, n - 1, 0));
    el = EdgeList::from_raw(n, edges);
    el.assign_random_weights(seed, DEFAULT_MAX_WEIGHT);
    el
}

/// Star: vertex 0 joined to all others — the degenerate hub that stresses
/// the degree-binned GPU schedule and LALP-style mirroring.
pub fn star(n: VertexId, seed: u64) -> EdgeList {
    assert!(n >= 2);
    let mut el = EdgeList::new(n);
    for v in 1..n {
        el.push(0, v, 0);
    }
    el.canonicalize();
    el.assign_random_weights(seed, DEFAULT_MAX_WEIGHT);
    el
}

/// Complete graph K_n (keep `n` small; this is O(n²)).
pub fn complete(n: VertexId, seed: u64) -> EdgeList {
    let mut el = EdgeList::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            el.push(u, v, 0);
        }
    }
    el.canonicalize();
    el.assign_random_weights(seed, DEFAULT_MAX_WEIGHT);
    el
}

/// Disjoint union of the given edge lists, renumbered into one vertex space.
/// The result is disconnected (assuming each part is nonempty), exercising
/// the minimum spanning *forest* paths of every kernel.
pub fn disconnected_union(parts: &[EdgeList]) -> EdgeList {
    let total: u64 = parts.iter().map(|p| p.num_vertices() as u64).sum();
    assert!(total <= VertexId::MAX as u64);
    let mut el = EdgeList::new(total as VertexId);
    let mut base: VertexId = 0;
    let mut edges = Vec::new();
    for p in parts {
        for e in p.edges() {
            edges.push(WEdge::new(e.u + base, e.v + base, e.w));
        }
        base += p.num_vertices();
    }
    el = EdgeList::from_raw(el.num_vertices(), edges);
    el
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::num_components;
    use crate::CsrGraph;

    #[test]
    fn path_shape() {
        let el = path(5, 0);
        assert_eq!(el.len(), 4);
        let g = CsrGraph::from_edge_list(&el);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn cycle_shape() {
        let el = cycle(6, 0);
        assert_eq!(el.len(), 6);
        let g = CsrGraph::from_edge_list(&el);
        for v in 0..6 {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn star_shape() {
        let el = star(8, 0);
        let g = CsrGraph::from_edge_list(&el);
        assert_eq!(g.degree(0), 7);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn complete_shape() {
        let el = complete(5, 0);
        assert_eq!(el.len(), 10);
    }

    #[test]
    fn union_is_disconnected() {
        let u = disconnected_union(&[path(4, 1), cycle(5, 2), star(3, 3)]);
        assert_eq!(u.num_vertices(), 12);
        let g = CsrGraph::from_edge_list(&u);
        assert_eq!(num_components(&g), 3);
    }

    #[test]
    fn union_preserves_weights() {
        let p = path(3, 7);
        let u = disconnected_union(&[p.clone(), p.clone()]);
        assert_eq!(u.edges()[0].w, p.edges()[0].w);
        // Second copy is shifted by 3 but carries the same weights.
        assert_eq!(u.edges()[2].w, p.edges()[0].w);
    }
}
