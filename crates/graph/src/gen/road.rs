//! Road-network stand-in: a 2D lattice with random diagonal shortcuts and
//! random deletions.
//!
//! road_usa (Table 2) has average degree 2.41, max degree 9 and diameter
//! ~6262 — a near-planar, low-degree, huge-diameter mesh. A width×height
//! grid with a sprinkle of diagonals and a small deletion probability has
//! the same signature at any scale, and reproduces the paper's road_usa
//! behaviour (tiny components per partition, postProcess-dominated,
//! communication-bound at high node counts — §5.3).

use crate::edgelist::{splitmix64, EdgeList};
use crate::gen::DEFAULT_MAX_WEIGHT;
use crate::types::VertexId;

/// Generates a `width × height` road-like lattice.
///
/// * Each vertex connects to its right and down neighbours unless deleted
///   (probability `delete_prob`).
/// * Each cell gains a down-right diagonal with probability `diag_prob`
///   (bumps average degree above 2 and max degree towards ~8, like
///   road_usa's 2.41 avg / 9 max).
///
/// Deterministic in `seed`.
pub fn road_grid(width: u32, height: u32, diag_prob: f64, delete_prob: f64, seed: u64) -> EdgeList {
    assert!(width >= 1 && height >= 1);
    assert!((0.0..1.0).contains(&delete_prob) && (0.0..=1.0).contains(&diag_prob));
    let n = width as u64 * height as u64;
    assert!(
        n <= VertexId::MAX as u64,
        "grid too large for u32 vertex ids"
    );
    let id = |x: u32, y: u32| -> VertexId { (y as u64 * width as u64 + x as u64) as VertexId };

    let mut el = EdgeList::new(n as VertexId);
    let mut state = splitmix64(seed ^ ROAD_TAG);
    let mut chance = move |p: f64| {
        state = splitmix64(state);
        ((state >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    };

    for y in 0..height {
        for x in 0..width {
            if x + 1 < width && !chance(delete_prob) {
                el.push(id(x, y), id(x + 1, y), 0);
            }
            if y + 1 < height && !chance(delete_prob) {
                el.push(id(x, y), id(x, y + 1), 0);
            }
            if x + 1 < width && y + 1 < height && chance(diag_prob) {
                el.push(id(x, y), id(x + 1, y + 1), 0);
            }
        }
    }
    el.canonicalize();
    el.assign_random_weights(seed, DEFAULT_MAX_WEIGHT);
    el
}

const ROAD_TAG: u64 = 0x524f_4144; // "ROAD"

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrGraph;

    #[test]
    fn grid_without_noise_is_a_full_lattice() {
        let el = road_grid(4, 3, 0.0, 0.0, 1);
        // 4x3 grid: horizontal 3*3=9, vertical 4*2=8.
        assert_eq!(el.len(), 17);
    }

    #[test]
    fn degree_signature_matches_road_usa() {
        // A full lattice has average degree ~4; road_usa sits at 2.41, so
        // the stand-in deletes ~38% of lattice edges (still above the bond
        // percolation threshold, keeping a giant component).
        let el = road_grid(100, 100, 0.02, 0.38, 42);
        let g = CsrGraph::from_edge_list(&el);
        let avg = g.num_arcs() as f64 / g.num_vertices() as f64;
        let max = (0..g.num_vertices()).map(|v| g.degree(v)).max().unwrap();
        assert!((2.0..2.9).contains(&avg), "avg degree {avg:.2}");
        assert!(max <= 9, "max degree {max}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            road_grid(10, 10, 0.3, 0.1, 7),
            road_grid(10, 10, 0.3, 0.1, 7)
        );
    }

    #[test]
    fn single_cell() {
        let el = road_grid(1, 1, 0.5, 0.0, 0);
        assert!(el.is_empty());
        assert_eq!(el.num_vertices(), 1);
    }
}
