//! Web-crawl stand-in generator: 1D-local edges with power-law hubs.
//!
//! Real crawls (arabic-2005, uk-2007, …) in WebGraph BFS/URL order have two
//! properties that drive the paper's results and that plain R-MAT loses at
//! reduced scale:
//!
//! 1. **locality** — most links connect vertices that are close in id
//!    (same host/directory), so a contiguous 1D partition keeps most edges
//!    internal and independent Boruvka grows large components (§3.1, §5.2);
//! 2. **hubs** — a small set of vertices has enormous in-degree
//!    (Table 2's max degrees in the millions), stressing the degree-binned
//!    GPU schedule and LALP mirroring.
//!
//! This generator reproduces both directly, at any scale: each edge picks
//! a uniform source, then either a **hub** target (probability
//! [`CrawlParams::hub_prob`], hub chosen with a Zipf-like skew) or a
//! **local** target at a signed Pareto-distributed id offset. The
//! boundary-to-volume ratio of 1D partitions is therefore governed by
//! `hub_prob` plus a vanishing short-range term — the same as in the real
//! crawls — instead of growing as the graph shrinks.

use crate::edgelist::{splitmix64, EdgeList};
use crate::gen::DEFAULT_MAX_WEIGHT;
use crate::types::{VertexId, WEdge};

/// Tunables of the crawl model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CrawlParams {
    /// Fraction of edges that attach to a hub (≈ the non-local fraction).
    pub hub_prob: f64,
    /// Number of hub vertices (spread pseudo-randomly over the id space).
    pub num_hubs: u32,
    /// Zipf skew across hubs: hub rank is drawn as `floor(H · u^theta)`,
    /// so `theta = 2` gives the top hub ≈ `H^(-1/2)` of hub traffic.
    pub theta: f64,
    /// Pareto tail exponent of local offsets (`1.5` keeps the expected
    /// offset at ~3x the minimum: strong locality with an occasional long
    /// link).
    pub alpha: f64,
    /// Fraction of edges with a uniformly random (locality-free) target —
    /// models inputs whose vertex order carries little locality, like the
    /// top-private-domain aggregation gsh-2015-tpd.
    pub global_prob: f64,
}

impl Default for CrawlParams {
    fn default() -> Self {
        CrawlParams {
            hub_prob: 0.02,
            num_hubs: 1024,
            theta: 2.0,
            alpha: 1.5,
            global_prob: 0.0,
        }
    }
}

/// Generates a crawl-like graph with `num_vertices` and ~`num_edges`
/// undirected edges (duplicates/self-loops canonicalised away).
/// Deterministic in `seed`.
///
/// # Panics
///
/// If `num_vertices < 2`, if any probability is outside `[0, 1]`, or if
/// `hub_prob + global_prob > 1`.
pub fn web_crawl(
    num_vertices: VertexId,
    num_edges: u64,
    params: CrawlParams,
    seed: u64,
) -> EdgeList {
    assert!(num_vertices >= 2);
    assert!((0.0..=1.0).contains(&params.hub_prob));
    assert!((0.0..=1.0).contains(&params.global_prob));
    assert!(params.hub_prob + params.global_prob <= 1.0);
    assert!(params.alpha > 0.0 && params.theta > 0.0);
    let n = num_vertices as u64;
    let h = (params.num_hubs as u64).clamp(1, n);
    // Local offsets start at half the average degree so a vertex's local
    // links spread over a neighbourhood wide enough to stay distinct (real
    // crawls link to many nearby pages, not all to v±1) while staying far
    // narrower than a 1D partition chunk.
    let x_min = (num_edges as f64 / num_vertices as f64 / 2.0).max(1.0);
    let mut state = splitmix64(seed ^ CRAWL_TAG);
    let mut next = move || {
        state = splitmix64(state);
        state
    };
    let f64_of = |x: u64| (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64);

    // Hubs at evenly spaced, jittered, *distinct* positions: random
    // placement would collide at small vertex counts and merge hubs into
    // artificial mega-hubs, breaking the scale-free max-degree share.
    let stride = (n / h).max(1);
    let hubs: Vec<VertexId> = (0..h)
        .map(|i| {
            let jitter = splitmix64(seed ^ hub_seed(i)) % stride;
            ((i * stride + jitter) % n) as VertexId
        })
        .collect();

    let mut raw = Vec::with_capacity(num_edges as usize);
    let mut local_offset = {
        let mut state2 = splitmix64(seed ^ CRAWL_TAG ^ 0x4F46_4653);
        move |alpha: f64| -> u64 {
            state2 = splitmix64(state2);
            let z = ((state2 >> 11) as f64 * (1.0 / (1u64 << 53) as f64)).max(1e-12);
            ((x_min * z.powf(-1.0 / alpha)) as u64).clamp(1, n / 2)
        }
    };
    for _ in 0..num_edges {
        let r = f64_of(next());
        let (u, v) = if r < params.hub_prob {
            // Link-farm edge: a Zipf-picked hub linked from its *farm* — a
            // contiguous id window sized to the hub's expected traffic
            // (real crawls' mega-hubs are spam farms and site-wide
            // navigation: huge in-degree from id-local pages, so hub edges
            // mostly stay inside a 1D partition; only the biggest farms
            // span several).
            let z = f64_of(next());
            let rank = ((h as f64) * z.powf(params.theta)) as u64;
            let rank = rank.min(h - 1);
            let hub = hubs[rank as usize] as u64;
            // Expected edges of this hub under the Zipf pick: spread the
            // farm over ~4x that many ids to keep sources distinct.
            let expected = params.hub_prob
                * num_edges as f64
                * (((rank + 1) as f64).sqrt() - (rank as f64).sqrt())
                / (h as f64).sqrt();
            // (max-then-min rather than clamp: tiny graphs can have
            // 8*x_min exceed n/2, which clamp would panic on.)
            let window = ((4.0 * expected) as u64)
                .max((8.0 * x_min) as u64)
                .min(n / 2)
                .max(1);
            let off = (next() % window).max(1);
            let sign_pos = next() & 1 == 0;
            let src = if sign_pos {
                (hub + off) % n
            } else {
                (hub + n - off) % n
            };
            (src as VertexId, hub as VertexId)
        } else if r < params.hub_prob + params.global_prob {
            // Locality-free long link.
            ((next() % n) as VertexId, (next() % n) as VertexId)
        } else {
            // Local: signed Pareto offset, wrapped into range.
            let u = (next() % n) as VertexId;
            let off = local_offset(params.alpha);
            let sign_pos = next() & 1 == 0;
            let uu = u as u64;
            let v = if sign_pos {
                (uu + off) % n
            } else {
                (uu + n - off) % n
            };
            (u, v as VertexId)
        };
        if u != v {
            raw.push(WEdge::new(u, v, 0));
        }
    }
    let mut el = EdgeList::from_raw(num_vertices, raw);
    el.assign_random_weights(seed, DEFAULT_MAX_WEIGHT);
    el
}

/// Fraction of edges whose endpoints fall in different chunks when the id
/// space is cut into `parts` equal contiguous chunks — the cut-edge ratio
/// a 1D partitioning would see (diagnostic used in tests and the harness).
pub fn cut_fraction(el: &EdgeList, parts: u32) -> f64 {
    if el.is_empty() {
        return 0.0;
    }
    let n = el.num_vertices() as u64;
    let chunk = (n / parts as u64).max(1);
    let cut = el
        .edges()
        .iter()
        .filter(|e| (e.u as u64 / chunk) != (e.v as u64 / chunk))
        .count();
    cut as f64 / el.len() as f64
}

const CRAWL_TAG: u64 = 0x4352_4157; // "CRAW"

/// Seed separation for hub placement.
fn hub_seed(i: u64) -> u64 {
    0x4855_4221u64.rotate_left(17) ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::graph_stats;
    use crate::CsrGraph;

    fn gen100k() -> EdgeList {
        web_crawl(20_000, 150_000, CrawlParams::default(), 7)
    }

    #[test]
    fn deterministic() {
        assert_eq!(gen100k(), gen100k());
    }

    #[test]
    fn locality_keeps_cut_fraction_low() {
        let el = gen100k();
        let f = cut_fraction(&el, 16);
        assert!(f < 0.20, "cut fraction {f}");
        // And far lower than a locality-free control of the same density.
        let er = crate::gen::gnm(20_000, 150_000, 7);
        assert!(cut_fraction(&er, 16) > 0.8);
    }

    #[test]
    fn hubs_create_degree_skew() {
        let el = web_crawl(
            20_000,
            150_000,
            CrawlParams {
                hub_prob: 0.05,
                ..Default::default()
            },
            3,
        );
        let g = CsrGraph::from_edge_list(&el);
        let s = graph_stats(&g, 1, 1);
        assert!(
            s.max_degree as f64 > 20.0 * s.avg_degree,
            "max {} avg {}",
            s.max_degree,
            s.avg_degree
        );
    }

    #[test]
    fn avg_degree_tracks_request() {
        let el = web_crawl(10_000, 80_000, CrawlParams::default(), 9);
        // Low-degree graphs lose more to duplicate collapse (the local
        // window is only a few ids wide); at crawl densities (deg ≥ 35)
        // the loss drops to ~20%.
        assert!(el.len() as f64 > 0.60 * 80_000.0, "len {}", el.len());
        let dense = web_crawl(10_000, 400_000, CrawlParams::default(), 9);
        assert!(dense.len() as f64 > 0.65 * 400_000.0, "len {}", dense.len());
    }

    #[test]
    fn top_hub_share_is_scale_free() {
        // The same hub parameters must give the same top-hub edge share at
        // two different scales (the property presets rely on).
        let share = |n: u32, m: u64| {
            let el = web_crawl(
                n,
                m,
                CrawlParams {
                    hub_prob: 0.06,
                    ..Default::default()
                },
                5,
            );
            let g = CsrGraph::from_edge_list(&el);
            let max = (0..g.num_vertices()).map(|v| g.degree(v)).max().unwrap();
            max as f64 / el.len() as f64
        };
        let a = share(5_000, 60_000);
        let b = share(20_000, 240_000);
        assert!(a / b < 2.5 && b / a < 2.5, "shares {a} vs {b}");
    }

    #[test]
    fn global_prob_raises_cut_fraction() {
        let local = web_crawl(10_000, 80_000, CrawlParams::default(), 3);
        let global = web_crawl(
            10_000,
            80_000,
            CrawlParams {
                global_prob: 0.5,
                ..Default::default()
            },
            3,
        );
        let fl = cut_fraction(&local, 16);
        let fg = cut_fraction(&global, 16);
        assert!(fg > fl + 0.3, "local {fl} vs global {fg}");
    }

    #[test]
    fn cut_fraction_edge_cases() {
        let empty = EdgeList::new(10);
        assert_eq!(cut_fraction(&empty, 4), 0.0);
        let el = crate::gen::path(4, 1);
        assert!(cut_fraction(&el, 1) == 0.0);
    }
}
