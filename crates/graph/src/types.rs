//! Core scalar and edge types shared across the workspace.
//!
//! Vertex ids are `u32` (the paper's largest graph has 105M vertices; our
//! scaled stand-ins are far below `u32::MAX`), edge counts are `u64`
//! (billion-edge graphs overflow `u32`), and weights are `u32` (the paper
//! assigns random integer weights to the crawls).

/// A vertex identifier. Dense, zero-based.
pub type VertexId = u32;

/// An edge identifier / edge count. `u64` because the paper's graphs have up
/// to 6.6B (directed) edges.
pub type EdgeId = u64;

/// An edge weight. The paper assigns uniform random weights to the web
/// crawls; `u32` keeps `WEdge` at 12 bytes and sums fit in `u64`/`u128`.
pub type Weight = u32;

/// A weighted undirected edge.
///
/// Stored **canonically**: `u <= v`. The total order used everywhere in the
/// workspace is `(w, u, v)`, which makes the minimum spanning forest of any
/// simple graph *unique* — the property every distributed-vs-oracle test
/// relies on (see DESIGN.md §5).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct WEdge {
    /// Smaller endpoint (after canonicalisation).
    pub u: VertexId,
    /// Larger endpoint (after canonicalisation).
    pub v: VertexId,
    /// Weight.
    pub w: Weight,
}

impl WEdge {
    /// Creates a canonical edge (endpoints are swapped so `u <= v`).
    #[inline]
    pub fn new(a: VertexId, b: VertexId, w: Weight) -> Self {
        if a <= b {
            WEdge { u: a, v: b, w }
        } else {
            WEdge { u: b, v: a, w }
        }
    }

    /// True if the edge is a self loop. Self loops can never be part of an
    /// MST and are dropped by [`crate::EdgeList::canonicalize`].
    #[inline]
    pub fn is_self_loop(&self) -> bool {
        self.u == self.v
    }

    /// Endpoint opposite to `x`. Panics in debug builds if `x` is not an
    /// endpoint.
    #[inline]
    pub fn other(&self, x: VertexId) -> VertexId {
        debug_assert!(x == self.u || x == self.v);
        if x == self.u {
            self.v
        } else {
            self.u
        }
    }

    /// The workspace-wide total order key: `(w, u, v)`.
    #[inline]
    pub fn key(&self) -> (Weight, VertexId, VertexId) {
        (self.w, self.u, self.v)
    }
}

impl mnd_wire::Wire for WEdge {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        // Two u32 endpoints + u32 weight, packed (matches size_of::<WEdge>()).
        std::mem::size_of::<WEdge>() as u64
    }
}

impl PartialOrd for WEdge {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WEdge {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

impl std::fmt::Debug for WEdge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}-{} w{})", self.u, self.v, self.w)
    }
}

/// Sum of weights that cannot overflow for any graph we handle
/// (`< 2^32` edges of weight `< 2^32` each fits in `u128`; `u64` is already
/// enough for our scaled graphs but `u128` removes the need to reason about
/// it).
pub type WeightSum = u128;

/// Sums edge weights without overflow.
pub fn total_weight<'a, I: IntoIterator<Item = &'a WEdge>>(edges: I) -> WeightSum {
    edges.into_iter().map(|e| e.w as WeightSum).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalizes_endpoints() {
        let e = WEdge::new(7, 3, 10);
        assert_eq!((e.u, e.v), (3, 7));
        let e = WEdge::new(3, 7, 10);
        assert_eq!((e.u, e.v), (3, 7));
    }

    #[test]
    fn order_is_weight_then_endpoints() {
        let a = WEdge::new(0, 1, 5);
        let b = WEdge::new(0, 2, 5);
        let c = WEdge::new(9, 10, 4);
        assert!(c < a);
        assert!(a < b);
    }

    #[test]
    fn other_endpoint() {
        let e = WEdge::new(2, 9, 1);
        assert_eq!(e.other(2), 9);
        assert_eq!(e.other(9), 2);
    }

    #[test]
    fn self_loop_detection() {
        assert!(WEdge::new(4, 4, 0).is_self_loop());
        assert!(!WEdge::new(4, 5, 0).is_self_loop());
    }

    #[test]
    fn total_weight_sums() {
        let es = [WEdge::new(0, 1, 3), WEdge::new(1, 2, 4)];
        assert_eq!(total_weight(&es), 7);
    }

    #[test]
    fn wedge_is_12_bytes() {
        assert_eq!(std::mem::size_of::<WEdge>(), 12);
    }
}
