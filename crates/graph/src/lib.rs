//! # mnd-graph — graph substrate for the MND-MST reproduction
//!
//! This crate provides every graph-side building block the MND-MST algorithm
//! (Panja & Vadhiyar, ICPP 2018) needs:
//!
//! * compact **CSR** graphs with `u32` vertex ids and `u64` edge offsets
//!   ([`CsrGraph`]),
//! * weighted **edge lists** with canonicalisation and deterministic random
//!   weights ([`EdgeList`]),
//! * **generators** for the synthetic stand-ins of the paper's graphs
//!   ([`gen`], [`presets`]),
//! * Gemini-style degree-balanced contiguous **1D partitioning**
//!   ([`partition`]),
//! * degree/diameter **statistics** ([`stats`]), connectivity
//!   ([`components`]), and edge-list **I/O** ([`io`]),
//! * stable 128-bit **fingerprints** ([`fingerprint`]) — the serving
//!   plane's result-cache key.
//!
//! The paper evaluates on billion-edge web crawls (arabic-2005, uk-2007, …)
//! and the road_usa network. Those inputs do not fit this environment, so
//! [`presets`] exposes scaled generators whose degree signatures (average
//! degree, maximum degree, skew) match Table 2 of the paper; see `DESIGN.md`
//! for the substitution argument.
//!
//! ## Quick example
//!
//! ```
//! use mnd_graph::{gen, CsrGraph};
//!
//! let edges = gen::rmat(1 << 10, 8 << 10, gen::RmatProbs::GRAPH500, 42);
//! let g = CsrGraph::from_edges(1 << 10, edges.edges());
//! assert_eq!(g.num_vertices(), 1 << 10);
//! assert!(g.num_undirected_edges() <= 8 << 10);
//! ```

pub mod components;
pub mod csr;
pub mod edgelist;
pub mod fingerprint;
pub mod gen;
pub mod io;
pub mod io_formats;
pub mod partition;
pub mod presets;
pub mod stats;
pub mod transform;
pub mod types;
pub mod weights;

pub use components::{connected_components, num_components};
pub use csr::CsrGraph;
pub use edgelist::EdgeList;
pub use fingerprint::Fingerprint;
pub use partition::{partition_1d, VertexRange};
pub use types::{EdgeId, VertexId, WEdge, Weight};
