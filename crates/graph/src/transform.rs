//! Graph transforms: relabelings and subgraph extraction.
//!
//! The MND-MST paper leans on the "natural locality" of its inputs (§3.1,
//! citing Gemini): contiguous 1D partitions only work well when adjacent
//! vertices have nearby ids. These transforms let a user *manufacture* or
//! *destroy* that property on any graph:
//!
//! * [`bfs_relabel`] renumbers vertices in BFS visitation order — the
//!   classic cheap locality restoration (WebGraph-style orderings are
//!   BFS-flavoured), turning an id-scrambled graph back into a
//!   1D-partitionable one;
//! * [`sort_by_degree`] renumbers by descending degree (hubs first) — the
//!   layout GPU frameworks like to schedule;
//! * [`largest_component`] extracts the giant component (useful when a
//!   generator leaves small islands and a connected input is wanted).

use crate::components::connected_components;
use crate::csr::CsrGraph;
use crate::edgelist::EdgeList;
use crate::types::VertexId;

/// Renumbers vertices in BFS visitation order (roots chosen by ascending
/// old id across components), so neighbours get nearby new ids. Returns
/// the relabelled graph.
pub fn bfs_relabel(el: &EdgeList) -> EdgeList {
    let g = CsrGraph::from_edge_list(el);
    let n = g.num_vertices();
    let mut new_id = vec![VertexId::MAX; n as usize];
    let mut next: VertexId = 0;
    let mut queue = std::collections::VecDeque::new();
    for root in 0..n {
        if new_id[root as usize] != VertexId::MAX {
            continue;
        }
        new_id[root as usize] = next;
        next += 1;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            for (v, _) in g.neighbors(u) {
                if new_id[v as usize] == VertexId::MAX {
                    new_id[v as usize] = next;
                    next += 1;
                    queue.push_back(v);
                }
            }
        }
    }
    el.relabel(n, |v| Some(new_id[v as usize]))
}

/// Renumbers vertices by descending degree (ties by old id).
pub fn sort_by_degree(el: &EdgeList) -> EdgeList {
    let g = CsrGraph::from_edge_list(el);
    let n = g.num_vertices();
    let mut order: Vec<VertexId> = (0..n).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    let mut new_id = vec![0 as VertexId; n as usize];
    for (rank, &v) in order.iter().enumerate() {
        new_id[v as usize] = rank as VertexId;
    }
    el.relabel(n, |v| Some(new_id[v as usize]))
}

/// Extracts the largest connected component (by vertex count), relabelled
/// to `0..k` preserving relative order. Ties broken by smallest root id.
pub fn largest_component(el: &EdgeList) -> EdgeList {
    let g = CsrGraph::from_edge_list(el);
    let comp = connected_components(&g);
    let mut sizes: std::collections::HashMap<VertexId, u64> = std::collections::HashMap::new();
    for &c in &comp {
        *sizes.entry(c).or_insert(0) += 1;
    }
    let Some((&best, _)) = sizes
        .iter()
        .max_by_key(|&(&c, &s)| (s, std::cmp::Reverse(c)))
    else {
        return EdgeList::new(0);
    };
    let mut new_id = vec![VertexId::MAX; comp.len()];
    let mut next: VertexId = 0;
    for (v, &c) in comp.iter().enumerate() {
        if c == best {
            new_id[v] = next;
            next += 1;
        }
    }
    el.relabel(next, |v| {
        let id = new_id[v as usize];
        (id != VertexId::MAX).then_some(id)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{self, cut_fraction};
    use crate::presets::scramble_ids;

    #[test]
    fn bfs_relabel_restores_locality() {
        // Scramble a local crawl, then BFS-relabel: the cut fraction of a
        // 16-way 1D partition must drop back near the original's.
        let el = gen::web_crawl(10_000, 60_000, gen::CrawlParams::default(), 5);
        let scrambled = scramble_ids(&el, 9);
        let restored = bfs_relabel(&scrambled);
        let f_orig = cut_fraction(&el, 16);
        let f_scrambled = cut_fraction(&scrambled, 16);
        let f_restored = cut_fraction(&restored, 16);
        assert!(
            f_scrambled > 0.8,
            "scramble must destroy locality ({f_scrambled})"
        );
        // BFS frontiers are wide, so restoration is partial (real systems
        // use layered label propagation for more) — but it must cut the
        // scrambled cut-fraction at least in half.
        assert!(
            f_restored < f_scrambled / 2.0,
            "BFS relabel must restore locality ({f_restored} vs {f_scrambled})"
        );
        let _ = f_orig;
    }

    #[test]
    fn bfs_relabel_preserves_structure() {
        let el = gen::gnm(500, 2000, 3);
        let relabelled = bfs_relabel(&el);
        assert_eq!(relabelled.len(), el.len());
        // Weight multiset preserved (edges only renamed).
        let mut a: Vec<u32> = el.edges().iter().map(|e| e.w).collect();
        let mut b: Vec<u32> = relabelled.edges().iter().map(|e| e.w).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn degree_sort_puts_hub_first() {
        let el = gen::star(100, 1);
        let sorted = sort_by_degree(&el);
        let g = CsrGraph::from_edge_list(&sorted);
        assert_eq!(g.degree(0), 99, "hub must be vertex 0 after sorting");
    }

    #[test]
    fn largest_component_extraction() {
        let u = gen::disconnected_union(&[gen::path(5, 1), gen::cycle(20, 2), gen::path(3, 3)]);
        let big = largest_component(&u);
        assert_eq!(big.num_vertices(), 20);
        assert_eq!(big.len(), 20); // the cycle
        let g = CsrGraph::from_edge_list(&big);
        assert_eq!(crate::components::num_components(&g), 1);
    }

    #[test]
    fn largest_component_of_empty() {
        assert_eq!(largest_component(&EdgeList::new(0)).num_vertices(), 0);
        // Edgeless: every vertex is a singleton; the "largest" is one vertex.
        let one = largest_component(&EdgeList::new(5));
        assert_eq!(one.num_vertices(), 1);
    }
}
