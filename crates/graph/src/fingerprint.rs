//! Stable graph fingerprints: the cache key of the serving plane.
//!
//! A [`Fingerprint`] is a 128-bit chained hash over a canonical
//! [`EdgeList`] — vertex-count bound, edge count, and every `(u, v, w)`
//! triple in the canonical `(u, v)` sort order. Because canonicalisation
//! already normalises endpoint order, drops self loops, collapses parallel
//! edges and sorts, two edge lists fingerprint equal **iff** they describe
//! the same weighted graph over the same vertex ids. In particular,
//! isomorphic-but-relabelled graphs hash differently: the fingerprint
//! identifies *the input*, not its isomorphism class, which is exactly
//! what a result cache needs (a relabelled graph has a relabelled MSF).
//!
//! The hash is two independent splitmix64 chains (different seeds) over
//! the same stream, giving 128 bits. Each edge's endpoint pair and weight
//! are absorbed in *separate* chained splitmix64 steps — never XOR-ed
//! into the same state word — so no linear combination of field tweaks
//! can cancel, and the chain construction makes the value
//! order-dependent, so "same multiset of edges in a different canonical
//! order" (impossible after canonicalisation anyway) cannot alias.

use crate::edgelist::{splitmix64, EdgeList};

/// A 128-bit stable hash of a canonical edge list. `Ord`/`Hash` so it can
/// key both tree and hash maps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint {
    /// Low 64 bits (chain seeded with `FP_SEED_LO`).
    pub lo: u64,
    /// High 64 bits (chain seeded with `FP_SEED_HI`).
    pub hi: u64,
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Seed of the low chain (`splitmix64` of the ASCII tag "mnd-fp-lo").
const FP_SEED_LO: u64 = 0x6d6e_642d_6670_6c6f;
/// Seed of the high chain.
const FP_SEED_HI: u64 = 0x6d6e_642d_6670_6869;

/// Fingerprints a canonical edge list. `O(E)`, no allocation.
pub fn fingerprint(el: &EdgeList) -> Fingerprint {
    let mut lo = splitmix64(FP_SEED_LO ^ el.num_vertices() as u64);
    let mut hi = splitmix64(FP_SEED_HI ^ el.num_vertices() as u64);
    lo = splitmix64(lo ^ el.len() as u64);
    hi = splitmix64(hi ^ (el.len() as u64).rotate_left(17));
    for e in el.edges() {
        let pair = ((e.u as u64) << 32) | e.v as u64;
        let w = e.w as u64;
        // `pair` and `w` are absorbed in separate chained steps: XOR-ing
        // both into one state word would let a crafted (pair', w') pair
        // cancel — splitmix64 between the two absorptions makes the
        // combined edge contribution non-linear in either field.
        lo = splitmix64(splitmix64(lo ^ pair) ^ w);
        hi = splitmix64(splitmix64(hi ^ w) ^ pair);
    }
    Fingerprint { lo, hi }
}

impl EdgeList {
    /// The stable [`Fingerprint`] of this (canonical) edge list — the
    /// serving plane's cache key.
    pub fn fingerprint(&self) -> Fingerprint {
        fingerprint(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::WEdge;

    fn el(n: u32, raw: &[(u32, u32, u32)]) -> EdgeList {
        EdgeList::from_raw(
            n,
            raw.iter().map(|&(a, b, w)| WEdge::new(a, b, w)).collect(),
        )
    }

    #[test]
    fn equal_graphs_fingerprint_equal_regardless_of_input_order() {
        let a = el(5, &[(0, 1, 3), (2, 3, 4), (1, 4, 9)]);
        let b = el(5, &[(4, 1, 9), (1, 0, 3), (3, 2, 4)]);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn weight_endpoint_and_bound_changes_all_move_the_fingerprint() {
        let base = el(5, &[(0, 1, 3), (2, 3, 4)]);
        let heavier = el(5, &[(0, 1, 7), (2, 3, 4)]);
        let rewired = el(5, &[(0, 2, 3), (2, 3, 4)]);
        let wider = el(6, &[(0, 1, 3), (2, 3, 4)]);
        for other in [&heavier, &rewired, &wider] {
            assert_ne!(base.fingerprint(), other.fingerprint());
        }
    }

    #[test]
    fn isomorphic_but_relabelled_graphs_differ() {
        // A path 0-1-2 and the same path relabelled 2-1-0: isomorphic,
        // same degree sequence, same weights — different inputs, so they
        // must not share a cache slot.
        let a = el(3, &[(0, 1, 5), (1, 2, 6)]);
        let b = el(3, &[(2, 1, 5), (1, 0, 6)]);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn crafted_rotation_cancelling_pair_does_not_collide() {
        // Regression: an earlier construction absorbed `pair ^ rotl(w,41)`
        // into one chain and `rotl(pair,23) ^ w` into the other; with
        // 41 + 23 = 64 the rotations cancelled, so for any error word `e`
        // the edge (pair ^ rotl(e,41), w ^ e) fed both chains identically.
        // With e = 1 that maps (0,600,2) onto (512,600,3): 512<<32 is
        // exactly rotl64(1,41). These must not share a cache slot.
        let a = el(1000, &[(0, 600, 2)]);
        let b = el(1000, &[(512, 600, 3)]);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn empty_lists_with_different_bounds_differ() {
        assert_ne!(
            EdgeList::new(0).fingerprint(),
            EdgeList::new(1).fingerprint()
        );
    }

    #[test]
    fn display_is_32_hex_chars() {
        let s = el(4, &[(0, 1, 1)]).fingerprint().to_string();
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
