//! Edge-weight distributions.
//!
//! The paper "assigned random weights" (§5.1) without specifying the
//! distribution. MST algorithms can be sensitive to weight structure
//! (ties, skew, degree correlation), so this module provides several
//! deterministic assignments and the harness runs an `ablation-weights`
//! sweep showing MND-MST's advantage is distribution-robust.

use crate::csr::CsrGraph;
use crate::edgelist::{pair_weight, splitmix64, EdgeList};
use crate::types::{WEdge, Weight};

/// A deterministic weight assignment policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WeightDistribution {
    /// Uniform in `1..=max` (the default everywhere else).
    Uniform {
        /// Inclusive upper bound.
        max: Weight,
    },
    /// Geometric-ish skew: most edges light, a heavy tail — models
    /// latency/cost networks. `w = floor(scale · (1/u - 1)) + 1` capped.
    HeavyTail {
        /// Scale of the tail (≈ median weight).
        scale: u32,
    },
    /// All weights equal — maximum tie stress; the MSF is decided purely
    /// by the endpoint tie-break.
    Unit,
    /// Weight grows with the endpoints' degrees (hub edges expensive, like
    /// congested links): `w = deg(u) + deg(v) + jitter`.
    DegreeCorrelated,
    /// Weight shrinks with the endpoints' degrees (hub edges cheap — the
    /// adversarial case for Boruvka hub contraction).
    InverseDegree,
}

/// Applies a distribution to every edge, deterministically in `seed` and
/// independent of edge order.
pub fn assign_weights(el: &mut EdgeList, dist: WeightDistribution, seed: u64) {
    match dist {
        WeightDistribution::Uniform { max } => el.assign_random_weights(seed, max),
        WeightDistribution::Unit => el.assign_random_weights(seed, 1),
        WeightDistribution::HeavyTail { scale } => {
            let edges: Vec<WEdge> = el
                .edges()
                .iter()
                .map(|e| {
                    let h = pair_weight(seed, e.u, e.v, 1 << 20) as u64;
                    let u01 = (h as f64 + 1.0) / (1u64 << 20) as f64;
                    let w = (scale as f64 * (1.0 / u01 - 1.0)) as u64;
                    WEdge::new(e.u, e.v, (w + 1).min(u32::MAX as u64 / 2) as Weight)
                })
                .collect();
            *el = EdgeList::from_raw(el.num_vertices(), edges);
        }
        WeightDistribution::DegreeCorrelated | WeightDistribution::InverseDegree => {
            let g = CsrGraph::from_edge_list(el);
            let max_deg = (0..g.num_vertices())
                .map(|v| g.degree(v))
                .max()
                .unwrap_or(0);
            let edges: Vec<WEdge> = el
                .edges()
                .iter()
                .map(|e| {
                    let d = g.degree(e.u) + g.degree(e.v);
                    let jitter = splitmix64(seed ^ ((e.u as u64) << 32 | e.v as u64)) % 8;
                    let w = match dist {
                        WeightDistribution::DegreeCorrelated => d + jitter + 1,
                        _ => 2 * max_deg + 2 + jitter - d, // inverse: hubs lightest
                    };
                    WEdge::new(e.u, e.v, w.min(u32::MAX as u64 / 2) as Weight)
                })
                .collect();
            *el = EdgeList::from_raw(el.num_vertices(), edges);
        }
    }
}

/// All distributions, with harness labels.
pub const ALL_DISTRIBUTIONS: [(&str, WeightDistribution); 5] = [
    ("uniform", WeightDistribution::Uniform { max: 1 << 20 }),
    ("heavy-tail", WeightDistribution::HeavyTail { scale: 16 }),
    ("unit (all ties)", WeightDistribution::Unit),
    ("degree-correlated", WeightDistribution::DegreeCorrelated),
    ("inverse-degree", WeightDistribution::InverseDegree),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn deterministic_and_order_independent() {
        for (_, dist) in ALL_DISTRIBUTIONS {
            let mut a = gen::gnm(200, 800, 3);
            let mut b = EdgeList::from_raw(200, {
                let mut e = a.edges().to_vec();
                e.reverse();
                e
            });
            assign_weights(&mut a, dist, 9);
            assign_weights(&mut b, dist, 9);
            assert_eq!(a, b, "{dist:?}");
        }
    }

    #[test]
    fn unit_is_all_ones() {
        let mut el = gen::gnm(100, 300, 1);
        assign_weights(&mut el, WeightDistribution::Unit, 5);
        assert!(el.edges().iter().all(|e| e.w == 1));
    }

    #[test]
    fn heavy_tail_is_skewed() {
        let mut el = gen::gnm(2000, 10_000, 2);
        assign_weights(&mut el, WeightDistribution::HeavyTail { scale: 16 }, 5);
        let mut ws: Vec<u32> = el.edges().iter().map(|e| e.w).collect();
        ws.sort_unstable();
        let median = ws[ws.len() / 2] as f64;
        let p99 = ws[ws.len() * 99 / 100] as f64;
        assert!(p99 > 10.0 * median, "p99 {p99} vs median {median}");
    }

    #[test]
    fn degree_correlation_signs() {
        let mut hub_heavy = gen::star(50, 1);
        assign_weights(&mut hub_heavy, WeightDistribution::DegreeCorrelated, 3);
        let mut hub_light = gen::star(50, 1);
        assign_weights(&mut hub_light, WeightDistribution::InverseDegree, 3);
        // In a star all edges touch the hub equally; compare against a path
        // appended... simpler: on a path+star union, star edges must be
        // heavier than path edges under DegreeCorrelated.
        let union = gen::disconnected_union(&[gen::path(10, 2), gen::star(50, 1)]);
        let mut u1 = union.clone();
        assign_weights(&mut u1, WeightDistribution::DegreeCorrelated, 3);
        let path_max = u1
            .edges()
            .iter()
            .filter(|e| e.v < 10)
            .map(|e| e.w)
            .max()
            .unwrap();
        let star_min = u1
            .edges()
            .iter()
            .filter(|e| e.u >= 10)
            .map(|e| e.w)
            .min()
            .unwrap();
        assert!(star_min > path_max);
    }

    #[test]
    fn weights_stay_positive() {
        for (_, dist) in ALL_DISTRIBUTIONS {
            let mut el = gen::web_crawl(500, 4000, gen::CrawlParams::default(), 7);
            assign_weights(&mut el, dist, 11);
            assert!(el.edges().iter().all(|e| e.w >= 1), "{dist:?}");
        }
    }
}
