//! Tenants: admission limits, fair-share weights, and per-tenant
//! latency/throughput reporting.

/// A tenant of the serving plane.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Display name.
    pub name: String,
    /// Fair-share weight: a tenant with weight 2 drains its queue twice as
    /// fast (in cost units) as one with weight 1 under contention.
    pub weight: f64,
    /// Admission bound: submissions arriving while this many jobs are
    /// already queued (not yet dispatched) are rejected.
    pub max_queue: usize,
}

impl TenantSpec {
    /// A tenant with the given name, weight, and queue bound.
    pub fn new(name: impl Into<String>, weight: f64, max_queue: usize) -> Self {
        assert!(weight > 0.0, "fair-share weight must be positive");
        assert!(max_queue >= 1, "a tenant must be able to queue one job");
        TenantSpec {
            name: name.into(),
            weight,
            max_queue,
        }
    }
}

/// Per-tenant outcome of a serve run.
#[derive(Clone, Debug)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Jobs submitted (admitted + rejected).
    pub submitted: usize,
    /// Jobs completed.
    pub completed: usize,
    /// Jobs refused at admission.
    pub rejected: usize,
    /// Completions served from the result cache.
    pub cache_hits: usize,
    /// Median latency (seconds, nearest-rank).
    pub p50: f64,
    /// 95th-percentile latency.
    pub p95: f64,
    /// 99th-percentile latency.
    pub p99: f64,
    /// Mean latency.
    pub mean_latency: f64,
    /// Completed jobs per simulated second over the run's makespan.
    pub throughput: f64,
}

/// Nearest-rank percentile (`p` in [0, 100]) over latency samples; 0 when
/// empty. Sorts a copy — sample counts here are per-tenant job counts.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 95.0), 95.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert_eq!(percentile(&[], 95.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn zero_weight_is_rejected() {
        TenantSpec::new("bad", 0.0, 1);
    }
}
