//! The job model: what tenants submit and what comes back.

use std::sync::Arc;

use mnd_graph::types::{VertexId, WEdge};
use mnd_graph::EdgeList;
use mnd_kernels::msf::MsfResult;

/// What a job asks the plane to compute.
#[derive(Clone, Debug)]
pub enum JobKind {
    /// Minimum spanning forest of the job's graph.
    Mst,
    /// Connected-component labels (derived from the MSF, so an MSF cache
    /// hit makes this a frontend-only job).
    Cc,
    /// Single-source BFS hop distances.
    Bfs {
        /// Source vertex (must be `< num_vertices`).
        source: VertexId,
    },
    /// Streaming mutation of the tenant's incremental-MSF session:
    /// canonical weighted insertions and `(u, v)` deletions, applied in
    /// order (inserts first). Returns the updated forest.
    Update {
        /// Edges to insert (an existing `(u, v)` pair is re-weighted).
        inserts: Vec<WEdge>,
        /// Endpoint pairs to delete (absent pairs are no-ops).
        deletes: Vec<(VertexId, VertexId)>,
    },
}

impl JobKind {
    /// Short label for traces and tables.
    pub fn label(&self) -> &'static str {
        match self {
            JobKind::Mst => "mst",
            JobKind::Cc => "cc",
            JobKind::Bfs { .. } => "bfs",
            JobKind::Update { .. } => "update",
        }
    }

    /// Number of mutation operations (0 for queries).
    pub fn num_ops(&self) -> usize {
        match self {
            JobKind::Update { inserts, deletes } => inserts.len() + deletes.len(),
            _ => 0,
        }
    }
}

/// A submitted job: which tenant, what to compute, over which graph, when
/// (in simulated seconds). For `Update` jobs the graph identifies the
/// tenant's session base — the first update seeds the session from it.
#[derive(Clone)]
pub struct JobSpec {
    /// Index into the plane's tenant list.
    pub tenant: usize,
    /// The query or mutation.
    pub kind: JobKind,
    /// Input graph (shared; the plane never mutates it).
    pub graph: Arc<EdgeList>,
    /// Submission time on the simulated clock.
    pub submit: f64,
}

/// How a completed job was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServedBy {
    /// Result cache hit: frontend lookup only, no cluster compute.
    Cache,
    /// Cold run on the backend engine.
    Backend,
    /// Incremental MSF maintenance on the frontend.
    Incremental,
    /// Full recompute of the session graph (the incremental path's
    /// comparison arm).
    Recompute,
}

/// The payload a completed job hands back.
#[derive(Clone, Debug)]
pub enum JobResult {
    /// Forest for `Mst` and `Update` jobs.
    Msf(Arc<MsfResult>),
    /// Labels for `Cc` jobs (smallest vertex id per component).
    Cc {
        /// Component label per vertex.
        labels: Arc<Vec<VertexId>>,
        /// Number of connected components.
        num_components: usize,
    },
    /// Hop distances for `Bfs` jobs (`u64::MAX` = unreachable).
    Bfs(Arc<Vec<u64>>),
}

/// Completion record: the scheduling history plus the result.
#[derive(Clone)]
pub struct Completion {
    /// Index of the job in the submitted batch.
    pub job: usize,
    /// Tenant index.
    pub tenant: usize,
    /// `JobKind::label()` of the job.
    pub kind: &'static str,
    /// Serving path taken.
    pub served_by: ServedBy,
    /// Ranks the job occupied while executing.
    pub ranks: usize,
    /// Submission time.
    pub submit: f64,
    /// Dispatch time (start of execution).
    pub start: f64,
    /// Completion time.
    pub finish: f64,
    /// Simulated execution seconds (`finish - start`).
    pub exec_seconds: f64,
    /// The result payload.
    pub result: JobResult,
}

impl Completion {
    /// Queueing + execution latency the tenant observed.
    pub fn latency(&self) -> f64 {
        self.finish - self.submit
    }
}
