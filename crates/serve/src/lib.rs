//! # mnd-serve — the multi-tenant MST-as-a-service job plane
//!
//! The workspace's engines answer *one* query over the simulated cluster.
//! This crate is the layer the roadmap's "serving heavy traffic" north
//! star needs on top: many concurrent MST/CC/BFS jobs from many tenants,
//! multiplexed over the cluster's ranks on the same deterministic virtual
//! clock the engines charge. Four pieces:
//!
//! * **Jobs and tenants** ([`job`], [`tenant`]) — timed submissions with
//!   per-tenant admission control (bounded queues reject overload) and
//!   weighted fair shares.
//! * **The scheduler** ([`scheduler`]) — start-time fair queueing over
//!   per-tenant FIFO queues with rank-demand packing and backfill;
//!   latencies (queueing + execution) land on the simulated clock, and
//!   reports carry per-tenant p50/p95/p99 and throughput.
//! * **The result cache** ([`cache`]) — keyed by the stable 128-bit
//!   [`mnd_graph::Fingerprint`] of the canonical input, so a repeat
//!   submission of the same weighted graph costs a frontend lookup
//!   instead of a cluster run, while isomorphic-but-relabelled inputs
//!   (whose answers differ in id space) never false-hit.
//! * **Incremental MSF sessions** ([`incremental`]) — streaming edge
//!   insertions (cycle-max replacement) and deletions (replacement-edge
//!   search over the affected cut) maintained against the cached forest,
//!   exact under the workspace's strict `(w, u, v)` edge order and
//!   verified edge-for-edge against full recomputes in the tests.
//!
//! Backends ([`backend`]) wrap any registered [`mnd_engine::Engine`] in a
//! [`mnd_engine::Service`] per granted rank count, so reports show
//! backend utilisation next to tenant latency. `repro serve-sweep`
//! drives mixed query/update workloads through all of this; see
//! EXPERIMENTS.md.
//!
//! ## Quick example
//!
//! ```
//! use std::sync::Arc;
//! use mnd_graph::gen;
//! use mnd_serve::backend::EngineBackend;
//! use mnd_serve::job::{JobKind, JobSpec};
//! use mnd_serve::scheduler::{ServeConfig, ServePlane};
//! use mnd_serve::tenant::TenantSpec;
//!
//! let graph = Arc::new(gen::gnm(300, 1500, 7));
//! let mut plane = ServePlane::new(
//!     ServeConfig::new(4),
//!     Box::new(EngineBackend::mnd_mst(1.0)),
//!     vec![TenantSpec::new("alice", 2.0, 8), TenantSpec::new("bob", 1.0, 8)],
//! );
//! let jobs = vec![
//!     JobSpec { tenant: 0, kind: JobKind::Mst, graph: graph.clone(), submit: 0.0 },
//!     JobSpec { tenant: 1, kind: JobKind::Mst, graph: graph.clone(), submit: 0.0 },
//! ];
//! let report = plane.run(jobs);
//! assert_eq!(report.completed(), 2);
//! // Same fingerprint: the second submission hit the cache.
//! assert_eq!(report.cache.hits, 1);
//! ```

pub mod backend;
pub mod cache;
pub mod incremental;
pub mod job;
pub mod scheduler;
pub mod tenant;

pub use backend::{Backend, EngineBackend};
pub use cache::{CacheKey, CacheStats, ResultCache, Variant};
pub use incremental::IncrementalMsf;
pub use job::{Completion, JobKind, JobResult, JobSpec, ServedBy};
pub use scheduler::{ServeConfig, ServePlane, ServeReport, UpdateMode, CACHE_HIT_SECONDS};
pub use tenant::{percentile, TenantReport, TenantSpec};
