//! Incremental minimum-spanning-forest maintenance for streaming edge
//! updates.
//!
//! The workspace's strict total edge order `(w, u, v)` makes the MSF of
//! any graph unique, which turns both classic dynamic-MSF rules into
//! exact ones:
//!
//! * **Insert `e = (u, v, w)`** — if `u` and `v` are in different trees,
//!   `e` joins the forest (cut rule). Otherwise `e` closes one cycle
//!   through the tree path `u..v`; the cycle's maximum edge under the
//!   total order is not in the MSF (cycle rule), so `e` replaces that
//!   edge iff `e` is smaller.
//! * **Delete `(u, v)`** — a non-forest edge leaves the forest untouched
//!   (it was the maximum of some cycle; removing it only shrinks cycles).
//!   Deleting a forest edge splits its tree into two sides; the minimum
//!   edge crossing that cut re-joins them (cut rule), or the component
//!   count grows by one if no edge crosses.
//!
//! Every mutation therefore keeps the forest equal — edge for edge — to a
//! full Kruskal recompute of the current graph, which the tests assert
//! after every batch. Costs are booked as *work units* (vertices touched
//! by tree searches, edges scanned for replacements) that the serving
//! plane drains per update job and charges to the frontend's CPU model;
//! the comparison against charging a full backend recompute instead is
//! the `repro serve-sweep` incremental-vs-recompute experiment.

use std::collections::BTreeMap;

use mnd_graph::types::{VertexId, WEdge, Weight};
use mnd_graph::EdgeList;
use mnd_kernels::msf::MsfResult;

/// A dynamically maintained graph + its minimum spanning forest. The
/// vertex set is fixed at creation; edges stream in and out.
pub struct IncrementalMsf {
    n: VertexId,
    /// Current edge set: canonical `(u <= v)` pair -> weight. One entry
    /// per pair (re-inserting an existing pair re-weights it), matching
    /// `EdgeList::canonicalize`'s parallel-edge collapse.
    edges: BTreeMap<(VertexId, VertexId), Weight>,
    /// Forest adjacency: `adj[u]` lists `(v, w)` for every forest edge
    /// incident to `u`.
    adj: Vec<Vec<(VertexId, Weight)>>,
    /// Epoch-stamped visit marks for tree searches (no per-op clearing).
    mark: Vec<u32>,
    epoch: u32,
    /// Work units accumulated since the last [`IncrementalMsf::drain_work`].
    work: u64,
}

impl IncrementalMsf {
    /// Seeds a session from a graph and its (already computed) forest —
    /// the serving plane passes the backend's cached result here instead
    /// of recomputing.
    pub fn new(el: &EdgeList, msf: &MsfResult) -> Self {
        let n = el.num_vertices();
        let mut inc = IncrementalMsf {
            n,
            edges: el.edges().iter().map(|e| ((e.u, e.v), e.w)).collect(),
            adj: vec![Vec::new(); n as usize],
            mark: vec![0; n as usize],
            epoch: 0,
            work: 0,
        };
        for e in &msf.edges {
            inc.add_forest_edge(*e);
        }
        inc
    }

    /// Seeds a session by computing the forest with Kruskal (test and
    /// standalone convenience).
    pub fn from_graph(el: &EdgeList) -> Self {
        IncrementalMsf::new(el, &mnd_kernels::kruskal_msf(el))
    }

    /// Number of vertices (fixed for the session's lifetime).
    pub fn num_vertices(&self) -> VertexId {
        self.n
    }

    /// Number of edges currently in the graph.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Inserts `(u, v, w)`, re-weighting the pair if already present.
    /// Self loops are ignored (canonical edge lists drop them).
    pub fn insert(&mut self, u: VertexId, v: VertexId, w: Weight) {
        assert!(u < self.n && v < self.n, "endpoint out of range");
        self.work += 1;
        if u == v {
            return;
        }
        let key = (u.min(v), u.max(v));
        if let Some(&old) = self.edges.get(&key) {
            if old == w {
                return;
            }
            // Re-weight = delete + insert; both rules stay exact.
            self.delete(key.0, key.1);
        }
        self.edges.insert(key, w);
        let e = WEdge::new(key.0, key.1, w);
        match self.path_max(key.0, key.1) {
            // Same tree: cycle rule against the path maximum.
            Some(path_max) => {
                if e < path_max {
                    self.remove_forest_edge(path_max.u, path_max.v);
                    self.add_forest_edge(e);
                }
            }
            // Different trees: cut rule joins them.
            None => self.add_forest_edge(e),
        }
    }

    /// Deletes the `(u, v)` pair if present; a forest-edge deletion runs
    /// the replacement search over the affected cut.
    pub fn delete(&mut self, u: VertexId, v: VertexId) {
        assert!(u < self.n && v < self.n, "endpoint out of range");
        self.work += 1;
        if u == v {
            return;
        }
        let key = (u.min(v), u.max(v));
        if self.edges.remove(&key).is_none() || !self.is_forest_edge(key.0, key.1) {
            return;
        }
        self.remove_forest_edge(key.0, key.1);
        // Mark the side containing `u`; the minimum edge with exactly one
        // marked endpoint re-joins the cut.
        self.mark_component(key.0);
        let mut best: Option<WEdge> = None;
        for (&(a, b), &w) in &self.edges {
            self.work += 1;
            if self.marked(a) != self.marked(b) {
                let e = WEdge::new(a, b, w);
                if best.is_none_or(|cur| e < cur) {
                    best = Some(e);
                }
            }
        }
        if let Some(e) = best {
            self.add_forest_edge(e);
        }
    }

    /// The current forest as an [`MsfResult`] — edge-for-edge equal to a
    /// full recompute of [`IncrementalMsf::edge_list`].
    pub fn msf(&self) -> MsfResult {
        let mut edges = Vec::new();
        for (u, nbrs) in self.adj.iter().enumerate() {
            for &(v, w) in nbrs {
                if (u as VertexId) < v {
                    edges.push(WEdge::new(u as VertexId, v, w));
                }
            }
        }
        MsfResult::from_edges(self.n, edges)
    }

    /// The current graph as a canonical edge list (the serving plane
    /// fingerprints this to key updated results).
    pub fn edge_list(&self) -> EdgeList {
        EdgeList::from_raw(
            self.n,
            self.edges
                .iter()
                .map(|(&(u, v), &w)| WEdge::new(u, v, w))
                .collect(),
        )
    }

    /// Takes the work units accumulated since the last drain (vertices
    /// touched by tree searches + edges scanned + one unit per operation).
    pub fn drain_work(&mut self) -> u64 {
        std::mem::take(&mut self.work)
    }

    fn add_forest_edge(&mut self, e: WEdge) {
        self.adj[e.u as usize].push((e.v, e.w));
        self.adj[e.v as usize].push((e.u, e.w));
    }

    fn remove_forest_edge(&mut self, u: VertexId, v: VertexId) {
        self.adj[u as usize].retain(|&(x, _)| x != v);
        self.adj[v as usize].retain(|&(x, _)| x != u);
    }

    fn is_forest_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.adj[u as usize].iter().any(|&(x, _)| x == v)
    }

    /// Maximum edge on the tree path `u..v` under the total order, or
    /// `None` when `u` and `v` are in different trees. BFS over the
    /// forest; work is booked per vertex visited.
    fn path_max(&mut self, u: VertexId, v: VertexId) -> Option<WEdge> {
        self.epoch += 1;
        let epoch = self.epoch;
        // Trace of (vertex, index of parent trace entry, edge to parent).
        let mut trace: Vec<(VertexId, usize, WEdge)> = vec![(u, 0, WEdge::new(u, u, 0))];
        self.mark[u as usize] = epoch;
        let mut head = 0;
        let mut found = None;
        while head < trace.len() {
            let (x, _, _) = trace[head];
            self.work += 1;
            for i in 0..self.adj[x as usize].len() {
                let (y, w) = self.adj[x as usize][i];
                if self.mark[y as usize] == epoch {
                    continue;
                }
                self.mark[y as usize] = epoch;
                trace.push((y, head, WEdge::new(x, y, w)));
                if y == v {
                    found = Some(trace.len() - 1);
                    break;
                }
            }
            if found.is_some() {
                break;
            }
            head += 1;
        }
        let mut at = found?;
        let mut max = trace[at].2;
        while trace[at].1 != at {
            let (_, parent, e) = trace[at];
            max = max.max(e);
            at = parent;
            if at == 0 {
                break;
            }
        }
        // The root's self entry never enters the maximum: its sentinel
        // edge was replaced on the first hop above.
        Some(max)
    }

    /// Marks the tree containing `start` with a fresh epoch.
    fn mark_component(&mut self, start: VertexId) {
        self.epoch += 1;
        let epoch = self.epoch;
        let mut stack = vec![start];
        self.mark[start as usize] = epoch;
        while let Some(x) = stack.pop() {
            self.work += 1;
            for i in 0..self.adj[x as usize].len() {
                let (y, _) = self.adj[x as usize][i];
                if self.mark[y as usize] != epoch {
                    self.mark[y as usize] = epoch;
                    stack.push(y);
                }
            }
        }
    }

    fn marked(&self, x: VertexId) -> bool {
        self.mark[x as usize] == self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnd_graph::gen;
    use mnd_kernels::kruskal_msf;

    fn assert_matches_recompute(inc: &IncrementalMsf, ctx: &str) {
        let oracle = kruskal_msf(&inc.edge_list());
        assert_eq!(inc.msf(), oracle, "{ctx}");
    }

    #[test]
    fn insert_joins_and_replaces() {
        let mut inc = IncrementalMsf::from_graph(&EdgeList::new(4));
        // Joins: build a path.
        inc.insert(0, 1, 10);
        inc.insert(1, 2, 20);
        inc.insert(2, 3, 30);
        assert_eq!(inc.msf().weight, 60);
        // Cycle, lighter than the path max: replaces (2, 3, 30).
        inc.insert(0, 3, 5);
        assert_eq!(inc.msf().weight, 35);
        // Cycle, heavier than every path edge: forest unchanged.
        inc.insert(1, 3, 99);
        assert_eq!(inc.msf().weight, 35);
        assert_matches_recompute(&inc, "after inserts");
    }

    #[test]
    fn delete_finds_replacement_or_splits() {
        let mut el = EdgeList::new(4);
        el.push(0, 1, 1);
        el.push(1, 2, 2);
        el.push(0, 2, 9); // non-forest backup of the 1-2 cut
        el.push(2, 3, 4);
        let mut inc = IncrementalMsf::from_graph(&el);
        assert_eq!(inc.msf().weight, 7);
        // Forest edge with a replacement across the cut.
        inc.delete(1, 2);
        assert_eq!(inc.msf().weight, 1 + 9 + 4);
        assert_matches_recompute(&inc, "after replaced delete");
        // Forest edge with no replacement: component splits off.
        inc.delete(2, 3);
        assert_eq!(inc.msf().num_components, 2);
        assert_matches_recompute(&inc, "after splitting delete");
        // Non-forest deletes and absent pairs are no-ops on the forest.
        inc.insert(0, 3, 50);
        inc.insert(1, 3, 60);
        inc.delete(1, 3);
        inc.delete(1, 3);
        assert_matches_recompute(&inc, "after non-forest deletes");
    }

    #[test]
    fn reweight_and_self_loops() {
        let mut el = EdgeList::new(3);
        el.push(0, 1, 5);
        el.push(1, 2, 6);
        el.push(0, 2, 7);
        let mut inc = IncrementalMsf::from_graph(&el);
        assert_eq!(inc.msf().weight, 11);
        // Re-weighting an existing pair moves it in and out of the forest.
        inc.insert(0, 2, 1);
        assert_eq!(inc.msf().weight, 6);
        inc.insert(0, 2, 100);
        assert_eq!(inc.msf().weight, 11);
        inc.insert(1, 1, 1); // self loop: ignored
        inc.delete(2, 2);
        assert_eq!(inc.num_edges(), 3);
        assert_matches_recompute(&inc, "after reweights");
    }

    #[test]
    fn random_stream_tracks_kruskal() {
        let el = gen::gnm(60, 150, 5);
        let mut inc = IncrementalMsf::from_graph(&el);
        let mut seed = 0xfeed_beefu64;
        let mut rng = move || {
            seed = mnd_graph::edgelist::splitmix64(seed);
            seed
        };
        for step in 0..300 {
            let a = (rng() % 60) as VertexId;
            let b = (rng() % 60) as VertexId;
            if rng() % 3 == 0 {
                inc.delete(a, b);
            } else {
                inc.insert(a, b, (rng() % 1000) as Weight + 1);
            }
            if step % 25 == 0 {
                assert_matches_recompute(&inc, &format!("step {step}"));
            }
        }
        assert_matches_recompute(&inc, "final");
        assert!(inc.drain_work() > 0);
        assert_eq!(inc.drain_work(), 0, "drain resets");
    }
}
