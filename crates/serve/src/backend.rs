//! Execution backends: how the serving plane turns a granted rank set
//! into results and simulated seconds.

use std::cell::RefCell;
use std::collections::BTreeMap;

use mnd_device::NodePlatform;
use mnd_engine::{Engine, Service};
use mnd_graph::types::VertexId;
use mnd_graph::EdgeList;
use mnd_kernels::msf::MsfResult;
use mnd_mst::bfs::distributed_bfs;

/// What the scheduler needs from an execution backend: run a query on a
/// granted number of ranks, report the result plus the simulated seconds
/// it cost, and price frontend work (cache bookkeeping, incremental MSF
/// maintenance) that runs outside the cluster.
pub trait Backend {
    /// Backend name for reports.
    fn name(&self) -> &'static str;

    /// Computes the MSF of `el` on `ranks` ranks; returns the forest and
    /// the simulated makespan.
    fn msf(&self, el: &EdgeList, ranks: usize) -> (MsfResult, f64);

    /// Computes BFS hop distances from `source` on `ranks` ranks.
    fn bfs(&self, el: &EdgeList, source: VertexId, ranks: usize) -> (Vec<u64>, f64);

    /// Simulated seconds `work` frontend units cost on one service node.
    fn frontend_seconds(&self, work: u64) -> f64;

    /// Utilisation per granted rank count: `(ranks, jobs, busy_seconds)`
    /// rows. Backends without per-size accounting return an empty list.
    fn utilisation(&self) -> Vec<(usize, u64, f64)> {
        Vec::new()
    }
}

/// A [`Backend`] over any registered [`Engine`]: an engine factory is
/// instantiated once per granted rank count and wrapped in a
/// [`Service`], so the report can show jobs and busy seconds per size.
/// BFS runs through `mnd_mst::bfs` on the same platform (BFS is not an
/// engine-registry query).
pub struct EngineBackend {
    name: &'static str,
    platform: NodePlatform,
    sim_scale: f64,
    #[allow(clippy::type_complexity)]
    factory: Box<dyn Fn(usize) -> Box<dyn Engine>>,
    services: RefCell<BTreeMap<usize, Service>>,
}

impl EngineBackend {
    /// A backend from an engine factory (`ranks -> engine`). `name` must
    /// match what the factory's engines report.
    pub fn new(
        name: &'static str,
        platform: NodePlatform,
        sim_scale: f64,
        factory: impl Fn(usize) -> Box<dyn Engine> + 'static,
    ) -> Self {
        EngineBackend {
            name,
            platform,
            sim_scale,
            factory: Box::new(factory),
            services: RefCell::new(BTreeMap::new()),
        }
    }

    /// The default serving backend: the paper's D&C engine on the
    /// AMD-cluster platform.
    pub fn mnd_mst(sim_scale: f64) -> Self {
        EngineBackend::new(
            "mnd-mst",
            NodePlatform::amd_cluster(),
            sim_scale,
            move |ranks| {
                Box::new(
                    mnd_mst::MndMstRunner::new(ranks)
                        .with_config(mnd_hypar_config_with_scale(sim_scale)),
                )
            },
        )
    }

    fn with_service<R>(&self, ranks: usize, f: impl FnOnce(&Service) -> R) -> R {
        let mut services = self.services.borrow_mut();
        let svc = services
            .entry(ranks)
            .or_insert_with(|| Service::new((self.factory)(ranks)));
        f(svc)
    }
}

fn mnd_hypar_config_with_scale(sim_scale: f64) -> mnd_hypar::HyParConfig {
    mnd_hypar::HyParConfig::default().with_sim_scale(sim_scale)
}

impl Backend for EngineBackend {
    fn name(&self) -> &'static str {
        self.name
    }

    fn msf(&self, el: &EdgeList, ranks: usize) -> (MsfResult, f64) {
        self.with_service(ranks, |svc| {
            let r = svc.run(el);
            (r.msf, r.total_time)
        })
    }

    fn bfs(&self, el: &EdgeList, source: VertexId, ranks: usize) -> (Vec<u64>, f64) {
        let r = distributed_bfs(el, source, ranks, &self.platform, self.sim_scale);
        (r.dist, r.total_time)
    }

    fn frontend_seconds(&self, work: u64) -> f64 {
        let cpu = &self.platform.cpu;
        work as f64 * self.sim_scale / (cpu.edge_throughput * cpu.efficiency)
    }

    fn utilisation(&self) -> Vec<(usize, u64, f64)> {
        self.services
            .borrow()
            .iter()
            .map(|(&ranks, svc)| (ranks, svc.runs(), svc.busy_seconds()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnd_graph::gen;

    #[test]
    fn engine_backend_runs_and_books_utilisation() {
        let backend = EngineBackend::mnd_mst(1.0);
        let el = gen::gnm(200, 900, 3);
        let (msf, secs) = backend.msf(&el, 2);
        assert_eq!(msf, mnd_kernels::kruskal_msf(&el));
        assert!(secs > 0.0);
        let (msf4, _) = backend.msf(&el, 4);
        assert_eq!(msf4, msf);
        let util = backend.utilisation();
        assert_eq!(util.len(), 2, "one service per granted size");
        assert_eq!(util[0].0, 2);
        assert_eq!(util[0].1, 1);
        assert!(util[0].2 > 0.0);

        let (dist, bfs_secs) = backend.bfs(&el, 0, 2);
        assert_eq!(dist[0], 0);
        assert!(bfs_secs > 0.0);
        assert!(backend.frontend_seconds(1000) > 0.0);
        assert_eq!(backend.name(), "mnd-mst");
    }
}
