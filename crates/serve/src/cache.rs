//! The result cache: fingerprint-keyed memoisation of query results.
//!
//! Keys are [`Fingerprint`]s of the *canonical input* plus a query
//! variant, so a repeat submission of the same weighted graph hits
//! regardless of the edge order the tenant supplied, while
//! isomorphic-but-relabelled graphs (which have different answers in
//! vertex-id space) never alias. Entries remember the cold cost they
//! saved so reports can show simulated seconds avoided.

use std::collections::BTreeMap;
use std::sync::Arc;

use mnd_graph::types::VertexId;
use mnd_graph::Fingerprint;
use mnd_kernels::msf::MsfResult;

/// Which query a cache entry answers. `Cc` shares the `Msf` entry (labels
/// derive from the forest on the frontend), so it has no variant of its
/// own.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Variant {
    /// Minimum spanning forest.
    Msf,
    /// BFS distances from the given source.
    Bfs(VertexId),
}

/// Full cache key: input fingerprint + query variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    /// Fingerprint of the canonical input edge list.
    pub fp: Fingerprint,
    /// Query variant.
    pub variant: Variant,
}

/// A memoised result.
#[derive(Clone, Debug)]
pub enum CachedValue {
    /// Forest (serves `Mst` and, via frontend derivation, `Cc`).
    Msf(Arc<MsfResult>),
    /// BFS distances.
    Bfs(Arc<Vec<u64>>),
}

/// A cache entry: the value plus the cold simulated cost it replaces.
#[derive(Clone, Debug)]
pub struct CacheEntry {
    /// The memoised result.
    pub value: CachedValue,
    /// Simulated seconds the cold computation took (what each hit saves).
    pub cold_seconds: f64,
}

/// Hit/miss counters of a serve run.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Simulated seconds of cold compute the hits avoided.
    pub saved_seconds: f64,
}

/// The fingerprint-keyed result cache. Unbounded: the serving plane's
/// working sets are preset graphs, far below any realistic memory bound,
/// and an eviction policy would only obscure the determinism story.
#[derive(Default)]
pub struct ResultCache {
    map: BTreeMap<CacheKey, CacheEntry>,
    stats: CacheStats,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// Looks up a key, booking a hit (with its saved seconds) or a miss.
    pub fn lookup(&mut self, key: CacheKey) -> Option<CacheEntry> {
        match self.map.get(&key) {
            Some(e) => {
                self.stats.hits += 1;
                self.stats.saved_seconds += e.cold_seconds;
                Some(e.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) an entry.
    pub fn insert(&mut self, key: CacheKey, value: CachedValue, cold_seconds: f64) {
        self.map.insert(
            key,
            CacheEntry {
                value,
                cold_seconds,
            },
        );
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnd_graph::EdgeList;

    fn key(el: &EdgeList, variant: Variant) -> CacheKey {
        CacheKey {
            fp: el.fingerprint(),
            variant,
        }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut el = EdgeList::new(4);
        el.push(0, 1, 3);
        el.push(1, 2, 5);
        let mut cache = ResultCache::new();
        let k = key(&el, Variant::Msf);
        assert!(cache.lookup(k).is_none());
        let msf = Arc::new(mnd_kernels::kruskal_msf(&el));
        cache.insert(k, CachedValue::Msf(msf.clone()), 2.5);
        let hit = cache.lookup(k).expect("inserted");
        match hit.value {
            CachedValue::Msf(m) => assert_eq!(*m, *msf),
            other => panic!("wrong variant: {other:?}"),
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.saved_seconds, 2.5);
    }

    #[test]
    fn variants_do_not_alias() {
        let mut el = EdgeList::new(3);
        el.push(0, 1, 1);
        let mut cache = ResultCache::new();
        cache.insert(
            key(&el, Variant::Bfs(0)),
            CachedValue::Bfs(Arc::new(vec![0, 1, u64::MAX])),
            1.0,
        );
        assert!(cache.lookup(key(&el, Variant::Msf)).is_none());
        assert!(cache.lookup(key(&el, Variant::Bfs(1))).is_none());
        assert!(cache.lookup(key(&el, Variant::Bfs(0))).is_some());
    }

    #[test]
    fn isomorphic_but_relabelled_inputs_miss() {
        // Same shape and weights under a vertex relabelling: the answers
        // differ in id space, so the cache must not serve one for the
        // other.
        let mut a = EdgeList::new(3);
        a.push(0, 1, 5);
        a.push(1, 2, 6);
        let mut b = EdgeList::new(3);
        b.push(2, 1, 5);
        b.push(1, 0, 6);
        let mut cache = ResultCache::new();
        cache.insert(
            key(&a, Variant::Msf),
            CachedValue::Msf(Arc::new(mnd_kernels::kruskal_msf(&a))),
            1.0,
        );
        assert!(cache.lookup(key(&b, Variant::Msf)).is_none());
    }
}
