//! The job plane: weighted fair queueing of multi-tenant jobs over the
//! simulated cluster's ranks, with result caching and incremental-MSF
//! update sessions.
//!
//! The scheduler is start-time fair queueing (SFQ) over per-tenant FIFO
//! queues: each admitted job gets a start tag `max(V, tenant's last
//! finish tag)` and a finish tag `start + cost / weight`, where `V` is
//! the plane's virtual time (the start tag of the last dispatched job)
//! and cost is a size estimate (edges for queries, operations for
//! updates). Dispatch picks the queue head with the smallest finish tag
//! that fits in the free ranks; heads that do not fit are skipped, so
//! small jobs backfill around a wide job waiting for space. Every
//! latency is charged on the deterministic simulated clock — queueing
//! from admission to dispatch, execution from the backend's simulated
//! makespan (or the frontend's CPU model for cache hits and incremental
//! updates).
//!
//! Results are materialised at *dispatch* time: the backend runs — and
//! the result cache and update sessions are populated — the moment a
//! job is dispatched; only the charged finish time is deferred to the
//! sim clock. Consequently a duplicate job dispatched while its
//! producer is still "running" is served from the cache at
//! [`CACHE_HIT_SECONDS`] and can even retire before the job that
//! computed the result. A real system would park the duplicate on the
//! in-flight computation; modelling that would need cache inserts
//! deferred to retirement. Serve-sweep workloads space duplicate
//! submissions apart, so this is a documented modelling assumption, not
//! an accuracy term in the reported latencies.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::sync::Arc;

use mnd_graph::types::VertexId;
use mnd_graph::{connected_components, CsrGraph};

use crate::backend::Backend;
use crate::cache::{CacheKey, CacheStats, CachedValue, ResultCache, Variant};
use crate::incremental::IncrementalMsf;
use crate::job::{Completion, JobKind, JobResult, JobSpec, ServedBy};
use crate::tenant::{percentile, TenantReport, TenantSpec};

/// How `Update` jobs are executed — the serve-sweep's comparison axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateMode {
    /// Maintain the session forest incrementally (cycle-max replacement
    /// on insert, replacement-edge search on delete), charging only the
    /// frontend work the searches actually did.
    Incremental,
    /// Apply the mutation to the session graph, then charge a full
    /// backend MSF recompute of the updated graph.
    Recompute,
}

/// Plane-wide configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Ranks the plane multiplexes jobs over.
    pub nranks: usize,
    /// Rank-demand sizing: a job over `E` edges asks for
    /// `ceil(E / edges_per_rank)` ranks, clamped to `[1, nranks]`.
    pub edges_per_rank: u64,
    /// How update jobs execute.
    pub update_mode: UpdateMode,
    /// Whether the result cache is consulted (off = every query cold).
    pub cache: bool,
}

impl ServeConfig {
    /// A plane over `nranks` ranks with caching and incremental updates.
    pub fn new(nranks: usize) -> Self {
        assert!(nranks >= 1);
        ServeConfig {
            nranks,
            edges_per_rank: 2048,
            update_mode: UpdateMode::Incremental,
            cache: true,
        }
    }

    /// Sets the rank-demand divisor.
    pub fn with_edges_per_rank(mut self, edges_per_rank: u64) -> Self {
        self.edges_per_rank = edges_per_rank.max(1);
        self
    }

    /// Sets the update execution mode.
    pub fn with_update_mode(mut self, mode: UpdateMode) -> Self {
        self.update_mode = mode;
        self
    }

    /// Enables or disables the result cache.
    pub fn with_cache(mut self, cache: bool) -> Self {
        self.cache = cache;
        self
    }
}

/// Outcome of a serve run.
pub struct ServeReport {
    /// Every completed job, in completion order.
    pub completions: Vec<Completion>,
    /// Per-tenant latency/throughput summaries (index-aligned with the
    /// plane's tenant list).
    pub tenants: Vec<TenantReport>,
    /// Cache counters.
    pub cache: CacheStats,
    /// Time the last job completed (0 for an empty run).
    pub makespan: f64,
    /// Jobs refused at admission, all tenants.
    pub rejected: usize,
    /// Backend utilisation rows `(ranks, jobs, busy_seconds)`.
    pub backend: Vec<(usize, u64, f64)>,
    /// Rank-seconds of execution over `makespan * nranks` capacity.
    pub utilisation: f64,
}

impl ServeReport {
    /// Total jobs completed.
    pub fn completed(&self) -> usize {
        self.completions.len()
    }
}

/// Cache-hit execution cost: a metadata lookup on the frontend, matching
/// the storage model's fixed sync constant. The point of the cache is
/// that this does not scale with the graph.
pub const CACHE_HIT_SECONDS: f64 = 1e-4;

/// A queued (admitted, not yet dispatched) job.
struct Queued {
    /// Index into the submitted batch.
    job: usize,
    /// SFQ finish tag.
    finish_tag: f64,
    /// SFQ start tag (becomes the plane's virtual time at dispatch).
    start_tag: f64,
    /// Ranks the job asks for.
    demand: usize,
}

/// An executing job, keyed by completion time in the event heap.
struct Running {
    /// Tie-break: dispatch sequence number (deterministic).
    seq: u64,
    ranks: usize,
    completion: Completion,
}

/// Total-order f64 key for the completion heap.
#[derive(PartialEq)]
struct Tf64(f64);
impl Eq for Tf64 {}
impl PartialOrd for Tf64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Tf64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The multi-tenant serving plane. Owns the backend, the result cache,
/// and one incremental-MSF session per tenant; [`ServePlane::run`]
/// drives a batch of timed submissions to completion.
pub struct ServePlane {
    cfg: ServeConfig,
    backend: Box<dyn Backend>,
    tenants: Vec<TenantSpec>,
    cache: ResultCache,
    /// Incremental session per tenant, seeded by the tenant's first
    /// `Update` job.
    sessions: BTreeMap<usize, IncrementalMsf>,
}

impl ServePlane {
    /// A plane over the given backend and tenants.
    pub fn new(cfg: ServeConfig, backend: Box<dyn Backend>, tenants: Vec<TenantSpec>) -> Self {
        assert!(!tenants.is_empty(), "a plane needs at least one tenant");
        ServePlane {
            cfg,
            backend,
            tenants,
            cache: ResultCache::new(),
            sessions: BTreeMap::new(),
        }
    }

    /// The tenant list (index space of [`JobSpec::tenant`]).
    pub fn tenants(&self) -> &[TenantSpec] {
        &self.tenants
    }

    /// Ranks a job over `edges` edges asks for.
    fn demand(&self, edges: usize) -> usize {
        ((edges as u64).div_ceil(self.cfg.edges_per_rank) as usize).clamp(1, self.cfg.nranks)
    }

    /// Edges an `Update` job actually works over: the tenant's live
    /// session if one exists (the stream has grown or shrunk it), else
    /// the spec's base graph (the seeding job).
    fn update_edges(&self, spec: &JobSpec) -> usize {
        self.sessions
            .get(&spec.tenant)
            .map(|s| s.num_edges())
            .unwrap_or(spec.graph.len())
    }

    /// SFQ cost estimate: proportional to input size, never zero. For
    /// recompute-mode updates the input is the session's *current* edge
    /// list, not the base graph the spec carries.
    fn cost_estimate(&self, spec: &JobSpec) -> f64 {
        match (&spec.kind, self.cfg.update_mode) {
            (JobKind::Update { .. }, UpdateMode::Incremental) => (spec.kind.num_ops() + 1) as f64,
            (JobKind::Update { .. }, UpdateMode::Recompute) => {
                (self.update_edges(spec) + spec.kind.num_ops() + 1) as f64
            }
            _ => (spec.graph.len() + 1) as f64,
        }
    }

    /// Runs a batch of submissions to completion and reports. The batch
    /// is processed in `(submit, index)` order; everything downstream of
    /// the specs is deterministic, so a fixed batch always produces the
    /// same report.
    pub fn run(&mut self, jobs: Vec<JobSpec>) -> ServeReport {
        let nt = self.tenants.len();
        for spec in &jobs {
            assert!(spec.tenant < nt, "job names an unknown tenant");
        }
        // Arrival order: (submit, batch index).
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by(|&a, &b| jobs[a].submit.total_cmp(&jobs[b].submit).then(a.cmp(&b)));
        let mut arrivals = order.into_iter().peekable();

        let mut queues: Vec<VecDeque<Queued>> = (0..nt).map(|_| VecDeque::new()).collect();
        let mut running: BinaryHeap<Reverse<(Tf64, u64, usize)>> = BinaryHeap::new();
        let mut in_flight: BTreeMap<u64, Running> = BTreeMap::new();
        let mut last_finish_tag = vec![0.0f64; nt];
        let mut virtual_time = 0.0f64;
        let mut submitted = vec![0usize; nt];
        let mut rejected = vec![0usize; nt];
        let mut completions: Vec<Completion> = Vec::new();
        let mut clock = 0.0f64;
        let mut free = self.cfg.nranks;
        let mut seq = 0u64;
        let mut busy_rank_seconds = 0.0f64;

        loop {
            // Admit everything that has arrived by now.
            while let Some(&idx) = arrivals.peek() {
                if jobs[idx].submit > clock {
                    break;
                }
                arrivals.next();
                let spec = &jobs[idx];
                submitted[spec.tenant] += 1;
                if queues[spec.tenant].len() >= self.tenants[spec.tenant].max_queue {
                    rejected[spec.tenant] += 1;
                    continue;
                }
                let start_tag = virtual_time.max(last_finish_tag[spec.tenant]);
                let finish_tag =
                    start_tag + self.cost_estimate(spec) / self.tenants[spec.tenant].weight;
                last_finish_tag[spec.tenant] = finish_tag;
                let demand = match (&spec.kind, self.cfg.update_mode) {
                    // Incremental updates run on the frontend only.
                    (JobKind::Update { .. }, UpdateMode::Incremental) => 1,
                    // Recompute runs over the session's current edge
                    // list, which diverges from the base graph as the
                    // stream applies — size the rank ask accordingly.
                    (JobKind::Update { .. }, UpdateMode::Recompute) => {
                        self.demand(self.update_edges(spec))
                    }
                    _ => self.demand(spec.graph.len()),
                };
                queues[spec.tenant].push_back(Queued {
                    job: idx,
                    finish_tag,
                    start_tag,
                    demand,
                });
            }

            // Dispatch queue heads in finish-tag order while ranks fit;
            // a head that does not fit is skipped (backfill), not a
            // barrier.
            loop {
                let mut pick: Option<usize> = None;
                for (t, q) in queues.iter().enumerate() {
                    let Some(head) = q.front() else { continue };
                    if head.demand > free {
                        continue;
                    }
                    let better = match pick {
                        None => true,
                        Some(p) => {
                            head.finish_tag
                                .total_cmp(&queues[p].front().unwrap().finish_tag)
                                == std::cmp::Ordering::Less
                        }
                    };
                    if better {
                        pick = Some(t);
                    }
                }
                let Some(t) = pick else { break };
                let q = queues[t].pop_front().unwrap();
                virtual_time = virtual_time.max(q.start_tag);
                free -= q.demand;
                let completion = self.execute(&jobs[q.job], q.job, q.demand, clock);
                let finish = completion.finish;
                busy_rank_seconds += completion.exec_seconds * q.demand as f64;
                running.push(Reverse((Tf64(finish), seq, q.demand)));
                in_flight.insert(
                    seq,
                    Running {
                        seq,
                        ranks: q.demand,
                        completion,
                    },
                );
                seq += 1;
            }

            // Advance to the next event: completion or arrival.
            let next_completion = running.peek().map(|Reverse((t, _, _))| t.0);
            let next_arrival = arrivals.peek().map(|&idx| jobs[idx].submit);
            clock = match (next_completion, next_arrival) {
                (Some(c), Some(a)) if a.total_cmp(&c).is_lt() => a,
                (None, Some(a)) => a,
                (Some(c), _) => c,
                (None, None) => break,
            };
            // Retire every completion at or before the new clock.
            while let Some(Reverse((t, s, ranks))) = running.peek() {
                if t.0 > clock {
                    break;
                }
                let (_, s, ranks) = (t.0, *s, *ranks);
                running.pop();
                free += ranks;
                let run = in_flight.remove(&s).expect("running job tracked");
                debug_assert_eq!(run.seq, s);
                debug_assert_eq!(run.ranks, ranks);
                completions.push(run.completion);
            }
        }

        let makespan = completions.iter().map(|c| c.finish).fold(0.0f64, f64::max);
        let tenants = self
            .tenants
            .iter()
            .enumerate()
            .map(|(t, spec)| {
                let lat: Vec<f64> = completions
                    .iter()
                    .filter(|c| c.tenant == t)
                    .map(|c| c.latency())
                    .collect();
                let hits = completions
                    .iter()
                    .filter(|c| c.tenant == t && c.served_by == ServedBy::Cache)
                    .count();
                TenantReport {
                    name: spec.name.clone(),
                    submitted: submitted[t],
                    completed: lat.len(),
                    rejected: rejected[t],
                    cache_hits: hits,
                    p50: percentile(&lat, 50.0),
                    p95: percentile(&lat, 95.0),
                    p99: percentile(&lat, 99.0),
                    mean_latency: if lat.is_empty() {
                        0.0
                    } else {
                        lat.iter().sum::<f64>() / lat.len() as f64
                    },
                    throughput: if makespan > 0.0 {
                        lat.len() as f64 / makespan
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        ServeReport {
            completions,
            tenants,
            cache: self.cache.stats(),
            makespan,
            rejected: rejected.iter().sum(),
            backend: self.backend.utilisation(),
            utilisation: if makespan > 0.0 {
                busy_rank_seconds / (makespan * self.cfg.nranks as f64)
            } else {
                0.0
            },
        }
    }

    /// Executes one dispatched job at simulated time `now` and returns
    /// its completion record.
    fn execute(&mut self, spec: &JobSpec, job: usize, ranks: usize, now: f64) -> Completion {
        let (served_by, exec_seconds, result) = match &spec.kind {
            JobKind::Mst => self.exec_msf(&spec.graph, ranks),
            JobKind::Cc => self.exec_cc(&spec.graph, ranks),
            JobKind::Bfs { source } => self.exec_bfs(&spec.graph, *source, ranks),
            JobKind::Update { inserts, deletes } => {
                self.exec_update(spec.tenant, &spec.graph, inserts, deletes, ranks)
            }
        };
        Completion {
            job,
            tenant: spec.tenant,
            kind: spec.kind.label(),
            served_by,
            ranks,
            submit: spec.submit,
            start: now,
            finish: now + exec_seconds,
            exec_seconds,
            result,
        }
    }

    /// MSF with caching: a hit costs [`CACHE_HIT_SECONDS`]; a miss runs
    /// the backend and populates the cache.
    fn exec_msf(
        &mut self,
        graph: &Arc<mnd_graph::EdgeList>,
        ranks: usize,
    ) -> (ServedBy, f64, JobResult) {
        let (msf, served_by, secs) = self.msf_of(graph, ranks);
        (served_by, secs, JobResult::Msf(msf))
    }

    /// CC labels derive from the forest on the frontend, so the heavy
    /// part shares the MSF cache entry.
    fn exec_cc(
        &mut self,
        graph: &Arc<mnd_graph::EdgeList>,
        ranks: usize,
    ) -> (ServedBy, f64, JobResult) {
        let (msf, served_by, msf_secs) = self.msf_of(graph, ranks);
        let derive_work = graph.num_vertices() as u64 + msf.edges.len() as u64;
        let secs = msf_secs + self.backend.frontend_seconds(derive_work);
        let forest = CsrGraph::from_edges(graph.num_vertices(), &msf.edges);
        let labels = connected_components(&forest);
        (
            served_by,
            secs,
            JobResult::Cc {
                labels: Arc::new(labels),
                num_components: msf.num_components,
            },
        )
    }

    fn exec_bfs(
        &mut self,
        graph: &Arc<mnd_graph::EdgeList>,
        source: VertexId,
        ranks: usize,
    ) -> (ServedBy, f64, JobResult) {
        let key = CacheKey {
            fp: graph.fingerprint(),
            variant: Variant::Bfs(source),
        };
        if self.cfg.cache {
            if let Some(hit) = self.cache.lookup(key) {
                if let CachedValue::Bfs(dist) = hit.value {
                    return (ServedBy::Cache, CACHE_HIT_SECONDS, JobResult::Bfs(dist));
                }
            }
        }
        let (dist, secs) = self.backend.bfs(graph, source, ranks);
        let dist = Arc::new(dist);
        if self.cfg.cache {
            self.cache.insert(key, CachedValue::Bfs(dist.clone()), secs);
        }
        (ServedBy::Backend, secs, JobResult::Bfs(dist))
    }

    /// Applies a mutation batch to the tenant's session. The first
    /// update seeds the session from the job's graph (its base forest is
    /// obtained like any MSF query, cache included); later updates
    /// ignore the job's graph and mutate the session.
    fn exec_update(
        &mut self,
        tenant: usize,
        graph: &Arc<mnd_graph::EdgeList>,
        inserts: &[mnd_graph::types::WEdge],
        deletes: &[(VertexId, VertexId)],
        ranks: usize,
    ) -> (ServedBy, f64, JobResult) {
        let mut seed_seconds = 0.0;
        if !self.sessions.contains_key(&tenant) {
            let (msf, _, secs) = self.msf_of(graph, ranks);
            seed_seconds = secs;
            self.sessions
                .insert(tenant, IncrementalMsf::new(graph, &msf));
        }
        let session = self.sessions.get_mut(&tenant).expect("seeded above");
        for e in inserts {
            session.insert(e.u, e.v, e.w);
        }
        for &(u, v) in deletes {
            session.delete(u, v);
        }
        let work = session.drain_work();
        match self.cfg.update_mode {
            UpdateMode::Incremental => {
                let msf = Arc::new(session.msf());
                let secs = seed_seconds + self.backend.frontend_seconds(work);
                if self.cfg.cache {
                    // The updated graph's MSF is now known: let future
                    // queries on it hit.
                    let key = CacheKey {
                        fp: session.edge_list().fingerprint(),
                        variant: Variant::Msf,
                    };
                    self.cache.insert(key, CachedValue::Msf(msf.clone()), secs);
                }
                (ServedBy::Incremental, secs, JobResult::Msf(msf))
            }
            UpdateMode::Recompute => {
                let updated = self.sessions[&tenant].edge_list();
                let (msf, secs) = self.backend.msf(&updated, ranks);
                let msf = Arc::new(msf);
                if self.cfg.cache {
                    let key = CacheKey {
                        fp: updated.fingerprint(),
                        variant: Variant::Msf,
                    };
                    self.cache.insert(key, CachedValue::Msf(msf.clone()), secs);
                }
                (
                    ServedBy::Recompute,
                    seed_seconds + secs,
                    JobResult::Msf(msf),
                )
            }
        }
    }

    /// Shared MSF-with-cache path.
    fn msf_of(
        &mut self,
        graph: &mnd_graph::EdgeList,
        ranks: usize,
    ) -> (Arc<mnd_kernels::msf::MsfResult>, ServedBy, f64) {
        let key = CacheKey {
            fp: graph.fingerprint(),
            variant: Variant::Msf,
        };
        if self.cfg.cache {
            if let Some(hit) = self.cache.lookup(key) {
                if let CachedValue::Msf(msf) = hit.value {
                    return (msf, ServedBy::Cache, CACHE_HIT_SECONDS);
                }
            }
        }
        let (msf, secs) = self.backend.msf(graph, ranks);
        let msf = Arc::new(msf);
        if self.cfg.cache {
            self.cache.insert(key, CachedValue::Msf(msf.clone()), secs);
        }
        (msf, ServedBy::Backend, secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::EngineBackend;
    use mnd_graph::gen;
    use mnd_graph::types::WEdge;
    use mnd_kernels::kruskal_msf;

    fn plane(nranks: usize, tenants: Vec<TenantSpec>) -> ServePlane {
        ServePlane::new(
            ServeConfig::new(nranks).with_edges_per_rank(1024),
            Box::new(EngineBackend::mnd_mst(1.0)),
            tenants,
        )
    }

    fn one_tenant(nranks: usize) -> ServePlane {
        plane(nranks, vec![TenantSpec::new("t0", 1.0, 64)])
    }

    fn mst(tenant: usize, graph: &Arc<mnd_graph::EdgeList>, submit: f64) -> JobSpec {
        JobSpec {
            tenant,
            kind: JobKind::Mst,
            graph: graph.clone(),
            submit,
        }
    }

    #[test]
    fn repeat_submissions_hit_the_cache_at_constant_cost() {
        let g = Arc::new(gen::gnm(400, 2400, 11));
        let mut p = one_tenant(4);
        let report = p.run(vec![mst(0, &g, 0.0), mst(0, &g, 1e6), mst(0, &g, 2e6)]);
        assert_eq!(report.completed(), 3);
        let cold = &report.completions[0];
        assert_eq!(cold.served_by, ServedBy::Backend);
        for hit in &report.completions[1..] {
            assert_eq!(hit.served_by, ServedBy::Cache);
            assert_eq!(hit.exec_seconds, CACHE_HIT_SECONDS);
            assert!(hit.exec_seconds < cold.exec_seconds / 10.0);
            match (&hit.result, &cold.result) {
                (JobResult::Msf(a), JobResult::Msf(b)) => assert_eq!(**a, **b),
                _ => panic!("MST jobs return forests"),
            }
        }
        assert_eq!(report.cache.hits, 2);
        assert!(report.cache.saved_seconds > 0.0);
    }

    #[test]
    fn cc_shares_the_msf_cache_entry_and_bfs_caches_per_source() {
        let g = Arc::new(gen::gnm(300, 1500, 13));
        let mut p = one_tenant(4);
        let jobs = vec![
            mst(0, &g, 0.0),
            JobSpec {
                tenant: 0,
                kind: JobKind::Cc,
                graph: g.clone(),
                submit: 1e6,
            },
            JobSpec {
                tenant: 0,
                kind: JobKind::Bfs { source: 0 },
                graph: g.clone(),
                submit: 2e6,
            },
            JobSpec {
                tenant: 0,
                kind: JobKind::Bfs { source: 0 },
                graph: g.clone(),
                submit: 3e6,
            },
            JobSpec {
                tenant: 0,
                kind: JobKind::Bfs { source: 5 },
                graph: g.clone(),
                submit: 4e6,
            },
        ];
        let report = p.run(jobs);
        let by_job: BTreeMap<usize, &Completion> =
            report.completions.iter().map(|c| (c.job, c)).collect();
        // CC found the forest cached and only paid frontend derivation.
        assert_eq!(by_job[&1].served_by, ServedBy::Cache);
        match &by_job[&1].result {
            JobResult::Cc { labels, .. } => assert_eq!(labels.len(), 300),
            _ => panic!("CC returns labels"),
        }
        // BFS: cold per source, cached per (graph, source).
        assert_eq!(by_job[&2].served_by, ServedBy::Backend);
        assert_eq!(by_job[&3].served_by, ServedBy::Cache);
        assert_eq!(by_job[&4].served_by, ServedBy::Backend);
    }

    #[test]
    fn admission_control_rejects_burst_overflow() {
        let mut p = plane(1, vec![TenantSpec::new("bursty", 1.0, 2)]);
        // Five distinct graphs at t=0 against a queue bound of 2: the
        // burst lands before anything dispatches, so two are admitted
        // and three bounce.
        let jobs: Vec<JobSpec> = (0..5)
            .map(|i| mst(0, &Arc::new(gen::gnm(500, 3000, 100 + i)), 0.0))
            .collect();
        let report = p.run(jobs);
        assert_eq!(report.rejected, 3);
        assert_eq!(report.completed(), 2);
        assert_eq!(report.tenants[0].submitted, 5);
        assert_eq!(report.tenants[0].rejected, 3);
    }

    #[test]
    fn weighted_fair_queueing_favors_the_heavier_tenant() {
        // One rank, both tenants flood distinct graphs at t=0: jobs
        // serialize, and the weight-4 tenant's finish tags interleave 4x
        // as densely, so its latency percentiles come out lower.
        let mut p = plane(
            1,
            vec![
                TenantSpec::new("gold", 4.0, 64),
                TenantSpec::new("best-effort", 1.0, 64),
            ],
        );
        let mut jobs = Vec::new();
        for i in 0..8 {
            jobs.push(mst(0, &Arc::new(gen::gnm(300, 1500, 200 + i)), 0.0));
            jobs.push(mst(1, &Arc::new(gen::gnm(300, 1500, 300 + i)), 0.0));
        }
        let report = p.run(jobs);
        assert_eq!(report.completed(), 16);
        let gold = &report.tenants[0];
        let best_effort = &report.tenants[1];
        assert!(
            gold.mean_latency < best_effort.mean_latency,
            "gold {} vs best-effort {}",
            gold.mean_latency,
            best_effort.mean_latency
        );
        assert!(gold.p95 <= best_effort.p95);
    }

    #[test]
    fn incremental_updates_match_recompute_and_cost_less() {
        let base = Arc::new(gen::gnm(600, 3600, 23));
        let mut stream: Vec<JobKind> = Vec::new();
        let mut seed = 77u64;
        let mut rng = move || {
            seed = mnd_graph::edgelist::splitmix64(seed);
            seed
        };
        for _ in 0..6 {
            let inserts: Vec<WEdge> = (0..5)
                .map(|_| {
                    WEdge::new(
                        (rng() % 600) as u32,
                        (rng() % 600) as u32,
                        (rng() % 10_000) as u32 + 1,
                    )
                })
                .collect();
            let deletes: Vec<(u32, u32)> = (0..3)
                .map(|_| ((rng() % 600) as u32, (rng() % 600) as u32))
                .collect();
            stream.push(JobKind::Update { inserts, deletes });
        }
        let run_mode = |mode: UpdateMode| {
            let mut p = ServePlane::new(
                ServeConfig::new(4).with_update_mode(mode),
                Box::new(EngineBackend::mnd_mst(1.0)),
                vec![TenantSpec::new("updates", 1.0, 64)],
            );
            p.run(
                stream
                    .iter()
                    .enumerate()
                    .map(|(i, kind)| JobSpec {
                        tenant: 0,
                        kind: kind.clone(),
                        graph: base.clone(),
                        submit: i as f64,
                    })
                    .collect(),
            )
        };
        let inc = run_mode(UpdateMode::Incremental);
        let full = run_mode(UpdateMode::Recompute);
        assert_eq!(inc.completed(), full.completed());
        // Identical forests job-for-job (both are the unique MSF of the
        // updated graph), and the incremental path is cheaper after the
        // first job's session seeding.
        let mut inc_exec = 0.0;
        let mut full_exec = 0.0;
        for (a, b) in inc.completions.iter().zip(&full.completions) {
            assert_eq!(a.job, b.job);
            match (&a.result, &b.result) {
                (JobResult::Msf(x), JobResult::Msf(y)) => assert_eq!(**x, **y),
                _ => panic!("updates return forests"),
            }
            inc_exec += a.exec_seconds;
            full_exec += b.exec_seconds;
        }
        assert!(
            inc_exec < full_exec / 2.0,
            "incremental {inc_exec} vs recompute {full_exec}"
        );
        // The oracle agrees with the final forest.
        let last = inc.completions.last().unwrap();
        let mut oracle_inc = IncrementalMsf::from_graph(&base);
        for kind in &stream {
            if let JobKind::Update { inserts, deletes } = kind {
                for e in inserts {
                    oracle_inc.insert(e.u, e.v, e.w);
                }
                for &(u, v) in deletes {
                    oracle_inc.delete(u, v);
                }
            }
        }
        let oracle = kruskal_msf(&oracle_inc.edge_list());
        match &last.result {
            JobResult::Msf(m) => assert_eq!(**m, oracle),
            _ => panic!("updates return forests"),
        }
    }

    #[test]
    fn fixed_workload_is_deterministic() {
        let build_jobs = || {
            let a = Arc::new(gen::gnm(300, 1500, 31));
            let b = Arc::new(gen::gnm(200, 900, 32));
            vec![
                mst(0, &a, 0.0),
                mst(1, &b, 0.0),
                JobSpec {
                    tenant: 0,
                    kind: JobKind::Bfs { source: 3 },
                    graph: a.clone(),
                    submit: 0.5,
                },
                mst(1, &a, 1.0),
                JobSpec {
                    tenant: 1,
                    kind: JobKind::Update {
                        inserts: vec![WEdge::new(1, 2, 3)],
                        deletes: vec![(0, 1)],
                    },
                    graph: b.clone(),
                    submit: 1.5,
                },
            ]
        };
        let run = || {
            let mut p = plane(
                2,
                vec![TenantSpec::new("a", 2.0, 8), TenantSpec::new("b", 1.0, 8)],
            );
            p.run(build_jobs())
        };
        let r1 = run();
        let r2 = run();
        assert_eq!(r1.completed(), r2.completed());
        assert_eq!(r1.makespan, r2.makespan);
        for (x, y) in r1.completions.iter().zip(&r2.completions) {
            assert_eq!(x.job, y.job);
            assert_eq!(x.start, y.start);
            assert_eq!(x.finish, y.finish);
            assert_eq!(x.served_by, y.served_by);
        }
        for (x, y) in r1.tenants.iter().zip(&r2.tenants) {
            assert_eq!(x.p50, y.p50);
            assert_eq!(x.p95, y.p95);
            assert_eq!(x.p99, y.p99);
        }
    }
}
