//! Run reports: the global MSF plus the simulated-time breakdowns the
//! paper's tables and figures are built from.

use mnd_kernels::msf::MsfResult;
use mnd_net::RankStats;

/// Per-rank split of simulated compute time into the paper's phases
/// (Figure 7 plots exactly these three, with communication as the fourth
/// bar segment).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTimes {
    /// Independent computations (`indComp`), including intra-node device
    /// merges and transfers.
    pub ind_comp: f64,
    /// Data-structure reduction sweeps (self/multi-edge removal) and other
    /// merge-side compute.
    pub merge: f64,
    /// Final post-processing kernel.
    pub post_process: f64,
    /// Communication (waiting + send/recv busy time).
    pub comm: f64,
}

impl PhaseTimes {
    /// Total attributed time.
    pub fn total(&self) -> f64 {
        self.ind_comp + self.merge + self.post_process + self.comm
    }
}

/// The outcome of one distributed MND-MST run.
#[derive(Clone, Debug)]
pub struct MndMstReport {
    /// The global minimum spanning forest (unique; comparable to Kruskal).
    pub msf: MsfResult,
    /// Simulated makespan: max final virtual clock across ranks.
    pub total_time: f64,
    /// Max communication time across ranks (the paper's "Comm Time").
    pub comm_time: f64,
    /// Per-rank phase breakdown.
    pub phases: Vec<PhaseTimes>,
    /// Per-rank raw messaging statistics.
    pub rank_stats: Vec<RankStats>,
    /// Merging levels executed (log_{group} P rounds of the hierarchy).
    pub levels: usize,
    /// Total ring-exchange rounds across levels (max over ranks).
    pub exchange_rounds: usize,
    /// Largest holding observed on any rank, in paper-scale bytes — the
    /// quantity the hierarchical merge promises stays under node memory.
    pub max_holding_bytes: u64,
    /// Number of ranks.
    pub nranks: usize,
}

impl MndMstReport {
    /// Mean communication fraction across ranks.
    pub fn comm_fraction(&self) -> f64 {
        if self.rank_stats.is_empty() {
            return 0.0;
        }
        let s: f64 = self.rank_stats.iter().map(|r| r.comm_fraction()).sum();
        s / self.rank_stats.len() as f64
    }

    /// Total bytes sent across all ranks.
    pub fn total_bytes(&self) -> u64 {
        self.rank_stats.iter().map(|r| r.bytes_sent).sum()
    }

    /// Aggregated phase times (max across ranks per phase — phases run
    /// concurrently, so the slowest rank bounds each).
    pub fn phase_max(&self) -> PhaseTimes {
        let mut m = PhaseTimes::default();
        for p in &self.phases {
            m.ind_comp = m.ind_comp.max(p.ind_comp);
            m.merge = m.merge.max(p.merge);
            m.post_process = m.post_process.max(p.post_process);
            m.comm = m.comm.max(p.comm);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_totals() {
        let p = PhaseTimes {
            ind_comp: 1.0,
            merge: 0.5,
            post_process: 0.25,
            comm: 0.25,
        };
        assert_eq!(p.total(), 2.0);
    }

    #[test]
    fn report_aggregates() {
        let report = MndMstReport {
            msf: MsfResult {
                edges: vec![],
                weight: 0,
                num_components: 1,
            },
            total_time: 2.0,
            comm_time: 0.5,
            phases: vec![
                PhaseTimes {
                    ind_comp: 1.0,
                    merge: 0.1,
                    post_process: 0.0,
                    comm: 0.2,
                },
                PhaseTimes {
                    ind_comp: 0.8,
                    merge: 0.3,
                    post_process: 0.5,
                    comm: 0.1,
                },
            ],
            rank_stats: vec![
                RankStats {
                    compute_time: 1.0,
                    comm_time: 1.0,
                    bytes_sent: 10,
                    ..Default::default()
                },
                RankStats {
                    compute_time: 3.0,
                    comm_time: 1.0,
                    bytes_sent: 20,
                    ..Default::default()
                },
            ],
            levels: 2,
            exchange_rounds: 3,
            max_holding_bytes: 100,
            nranks: 2,
        };
        assert_eq!(report.total_bytes(), 30);
        let pm = report.phase_max();
        assert_eq!(pm.ind_comp, 1.0);
        assert_eq!(pm.merge, 0.3);
        assert_eq!(pm.post_process, 0.5);
        // comm fractions: 0.5 and 0.25 -> mean 0.375
        assert!((report.comm_fraction() - 0.375).abs() < 1e-12);
    }
}
