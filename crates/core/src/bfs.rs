//! Distributed BFS with the divide-and-conquer execution model.
//!
//! §4.1.2 of the paper names BFS as the other application the HyPar API
//! carries ("execution of a graph application/algorithm like BFS, MST
//! etc."), with `EXCPT_BORDER_VERTEX` stopping local exploration at the
//! partition border. This module is that application:
//!
//! * **indComp** — every rank runs BFS *to a local fixpoint* inside its
//!   partition (not one level at a time!), starting from whatever frontier
//!   it has;
//! * **mergeParts** — distance candidates for ghost vertices (border
//!   crossings) are exchanged with min-combining;
//! * repeat until a global round produces no improvement.
//!
//! The divide-and-conquer benefit shows directly: global rounds count the
//! number of times the wave crosses partition borders (≈ a handful on a
//! locality-rich graph), instead of one superstep per BFS *level* as in
//! the BSP formulation (`mnd_pregel::bfs`) — the same communication
//! compression MND-MST gets for MST.

use std::sync::Arc;

use mnd_device::NodePlatform;
use mnd_graph::partition::{owner_of, partition_1d};
use mnd_graph::types::VertexId;
use mnd_graph::{CsrGraph, EdgeList};
use mnd_net::{Cluster, Comm, RankStats};

/// Result of a distributed BFS.
#[derive(Clone, Debug)]
pub struct BfsReport {
    /// Hop distance from the source per vertex (`u64::MAX` = unreachable).
    pub dist: Vec<u64>,
    /// Simulated makespan.
    pub total_time: f64,
    /// Max communication time across ranks.
    pub comm_time: f64,
    /// Global exchange rounds (border crossings), *not* BFS levels.
    pub rounds: u64,
    /// Per-rank statistics.
    pub rank_stats: Vec<RankStats>,
}

/// Runs BFS from `source` over `nranks` simulated nodes.
pub fn distributed_bfs(
    el: &EdgeList,
    source: VertexId,
    nranks: usize,
    platform: &NodePlatform,
    sim_scale: f64,
) -> BfsReport {
    assert!(source < el.num_vertices(), "source out of range");
    assert!(nranks >= 1);
    let csr = Arc::new(CsrGraph::from_edge_list(el));
    let cluster = Cluster::new(nranks, platform.network.scaled(sim_scale));
    let outcomes = cluster.run(|comm| rank_bfs(comm, &csr, source, platform, sim_scale));

    let total_time = Cluster::makespan(&outcomes);
    let mut dist = None;
    let mut rounds = 0;
    let mut rank_stats = Vec::new();
    for o in &outcomes {
        let (d, r) = &o.result;
        if let Some(d) = d {
            dist = Some(d.clone());
        }
        rounds = rounds.max(*r);
        rank_stats.push(o.stats.clone());
    }
    let comm_time = rank_stats.iter().map(|s| s.comm_time).fold(0.0, f64::max);
    BfsReport {
        dist: dist.expect("rank 0 gathers distances"),
        total_time,
        comm_time,
        rounds,
        rank_stats,
    }
}

fn rank_bfs(
    comm: &Comm,
    csr: &CsrGraph,
    source: VertexId,
    platform: &NodePlatform,
    sim_scale: f64,
) -> (Option<Vec<u64>>, u64) {
    let me = comm.rank();
    let p = comm.size();
    let charge = |items: u64| {
        let m = &platform.cpu;
        comm.compute(items as f64 * sim_scale / (m.edge_throughput * m.efficiency));
    };
    let ranges = partition_1d(csr, p, 0.0);
    let my = ranges[me];
    let lo = my.start;
    let count = (my.end - my.start) as usize;

    let mut dist = vec![u64::MAX; count];
    let mut frontier: Vec<VertexId> = Vec::new();
    if my.contains(source) {
        dist[(source - lo) as usize] = 0;
        frontier.push(source);
    }

    let mut rounds = 0u64;
    loop {
        // --- indComp: local BFS to fixpoint, collecting border candidates.
        let mut border: Vec<Vec<(VertexId, u64)>> = (0..p).map(|_| Vec::new()).collect();
        let mut scanned = 0u64;
        let mut queue: std::collections::VecDeque<VertexId> = frontier.drain(..).collect();
        while let Some(u) = queue.pop_front() {
            let du = dist[(u - lo) as usize];
            for (v, _) in csr.neighbors(u) {
                scanned += 1;
                if my.contains(v) {
                    let dv = &mut dist[(v - lo) as usize];
                    if *dv > du + 1 {
                        *dv = du + 1;
                        queue.push_back(v);
                    }
                } else {
                    border[owner_of(&ranges, v)].push((v, du + 1));
                }
            }
        }
        charge(scanned);
        // Min-combine per destination vertex before sending.
        for b in border.iter_mut() {
            b.sort_unstable();
            b.dedup_by_key(|(v, _)| *v);
        }

        // --- mergeParts: candidate exchange + global convergence test.
        let inbound = comm.alltoallv(border);
        let mut improved = 0u64;
        for b in inbound {
            for (v, d) in b {
                debug_assert!(my.contains(v));
                let dv = &mut dist[(v - lo) as usize];
                if *dv > d {
                    *dv = d;
                    frontier.push(v);
                    improved += 1;
                }
            }
        }
        charge(improved);
        rounds += 1;
        if comm.allreduce_u64(improved, |a, b| a + b) == 0 {
            break;
        }
    }

    // Gather distances at rank 0 (range order = vertex order).
    let gathered = comm.gather_vec(0, dist);
    (
        gathered.map(|parts| parts.into_iter().flatten().collect()),
        rounds,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnd_graph::components::bfs_distances;
    use mnd_graph::gen;

    fn check(el: &EdgeList, source: VertexId, nranks: usize) -> BfsReport {
        let r = distributed_bfs(el, source, nranks, &NodePlatform::amd_cluster(), 1.0);
        let oracle = bfs_distances(&CsrGraph::from_edge_list(el), source);
        assert_eq!(r.dist, oracle, "nranks={nranks} source={source}");
        r
    }

    #[test]
    fn matches_sequential_on_families() {
        for (el, name) in [
            (gen::path(50, 1), "path"),
            (gen::cycle(40, 2), "cycle"),
            (gen::gnm(300, 1200, 3), "gnm"),
            (
                gen::web_crawl(500, 4000, gen::CrawlParams::default(), 4),
                "crawl",
            ),
            (gen::road_grid(15, 15, 0.02, 0.38, 5), "road"),
        ] {
            for nranks in [1, 3, 5] {
                check(&el, 0, nranks);
            }
            let _ = name;
        }
    }

    #[test]
    fn source_in_any_partition() {
        let el = gen::gnm(400, 1600, 7);
        for source in [0, 150, 399] {
            check(&el, source, 4);
        }
    }

    #[test]
    fn unreachable_vertices_stay_max() {
        let u = gen::disconnected_union(&[gen::path(10, 1), gen::path(10, 2)]);
        let r = check(&u, 0, 3);
        assert!(r.dist[10..].iter().all(|&d| d == u64::MAX));
    }

    #[test]
    fn rounds_are_crossings_not_levels() {
        // A long path within one partition: the wave crosses each border
        // once, so rounds ≈ nranks + 1, far below the path's length (= the
        // level count a BSP BFS would need).
        let el = gen::path(1000, 9);
        let r = check(&el, 0, 4);
        assert!(
            r.rounds <= 6,
            "rounds {} should be ~crossings, not levels",
            r.rounds
        );
    }

    #[test]
    fn deterministic() {
        let el = gen::watts_strogatz(200, 6, 0.2, 11);
        let a = distributed_bfs(&el, 5, 4, &NodePlatform::amd_cluster(), 1.0);
        let b = distributed_bfs(&el, 5, 4, &NodePlatform::amd_cluster(), 1.0);
        assert_eq!(a.dist, b.dist);
        assert_eq!(a.total_time, b.total_time);
    }
}
