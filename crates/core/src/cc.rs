//! Distributed connected components on the MND-MST machinery.
//!
//! The paper closes with "we plan to extend this work to implement more
//! graph applications" on HyPar. Connected components is the natural
//! first one: it is exactly the MND-MST pipeline with weights ignored —
//! independent component growth per partition, freeze at the border,
//! hierarchical merge — so the whole divide-and-conquer runtime is reused
//! as-is and only the output changes (component labels instead of forest
//! edges).

use mnd_graph::types::VertexId;
use mnd_graph::EdgeList;

use crate::runner::MndMstRunner;

/// Result of a distributed connected-components run.
#[derive(Clone, Debug)]
pub struct CcReport {
    /// Component label per vertex: the smallest vertex id in its component
    /// (matching `mnd_graph::connected_components`' convention).
    pub labels: Vec<VertexId>,
    /// Number of connected components.
    pub num_components: usize,
    /// Simulated makespan of the underlying distributed run.
    pub total_time: f64,
    /// Max communication time across ranks.
    pub comm_time: f64,
}

/// Computes connected components with the distributed MND machinery.
///
/// A spanning forest connects `u` and `v` iff the graph does, so the
/// labels derived from the (unique) MSF equal the labels a BFS would
/// produce. The edge weights of `el` are irrelevant to the result.
pub fn distributed_components(el: &EdgeList, runner: &MndMstRunner) -> CcReport {
    let report = runner.run(el);
    let n = el.num_vertices() as usize;
    // Union-find over the forest edges; representative = min member.
    let mut parent: Vec<VertexId> = (0..n as VertexId).collect();
    fn find(parent: &mut [VertexId], mut x: VertexId) -> VertexId {
        while parent[x as usize] != x {
            let gp = parent[parent[x as usize] as usize];
            parent[x as usize] = gp;
            x = gp;
        }
        x
    }
    for e in &report.msf.edges {
        let (ra, rb) = (find(&mut parent, e.u), find(&mut parent, e.v));
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            parent[hi as usize] = lo;
        }
    }
    let labels: Vec<VertexId> = (0..n as VertexId).map(|v| find(&mut parent, v)).collect();
    CcReport {
        num_components: report.msf.num_components,
        labels,
        total_time: report.total_time,
        comm_time: report.comm_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnd_graph::{connected_components, gen, CsrGraph};

    fn check(el: &EdgeList, nranks: usize) {
        let cc = distributed_components(el, &MndMstRunner::new(nranks));
        let oracle = connected_components(&CsrGraph::from_edge_list(el));
        assert_eq!(cc.labels, oracle);
        let distinct: std::collections::HashSet<_> = oracle.iter().collect();
        assert_eq!(cc.num_components, distinct.len());
    }

    #[test]
    fn matches_bfs_labels_on_disconnected_graphs() {
        let u =
            gen::disconnected_union(&[gen::path(30, 1), gen::cycle(25, 2), gen::gnm(100, 250, 3)]);
        check(&u, 4);
    }

    #[test]
    fn single_component_crawl() {
        let el = gen::watts_strogatz(300, 6, 0.2, 5);
        check(&el, 6);
    }

    #[test]
    fn edgeless_graph_all_singletons() {
        let el = EdgeList::new(17);
        let cc = distributed_components(&el, &MndMstRunner::new(3));
        assert_eq!(cc.num_components, 17);
        assert_eq!(cc.labels, (0..17).collect::<Vec<_>>());
    }

    #[test]
    fn labels_are_min_member() {
        let el = gen::path(5, 7);
        let cc = distributed_components(&el, &MndMstRunner::new(2));
        assert_eq!(cc.labels, vec![0, 0, 0, 0, 0]);
    }
}
