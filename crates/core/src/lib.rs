//! # mnd-mst — the Multi-Node Multi-Device MST algorithm
//!
//! This crate is the paper's primary contribution: a divide-and-conquer
//! distributed minimum-spanning-forest algorithm that avoids the BSP
//! model's per-superstep synchronisation (Panja & Vadhiyar, ICPP 2018).
//!
//! The pipeline, per §3 of the paper:
//!
//! 1. **Partitioning** — Gemini-style parallel read + degree allreduce +
//!    contiguous 1D cuts across ranks; within a node a calibrated CPU/GPU
//!    cut (via `mnd-hypar`).
//! 2. **Independent computations** — each device runs Boruvka with the
//!    border-edge exception; components whose lightest edge leaves the
//!    partition freeze (`mnd-kernels`).
//! 3. **mergeParts** — self-edge removal, ghost-parent exchange through a
//!    [`ghost::GhostDirectory`], multi-edge removal.
//! 4. **Hierarchical merging** — groups of ranks ring-exchange component
//!    segments ([`segment`]) and collaboratively re-run Boruvka until the
//!    group's data converges (§4.3.4), then collapse to the group leader;
//!    leaders form the next level's groups, until one rank remains.
//! 5. **postProcess** — the final rank finishes the MSF with a whole-
//!    holding Boruvka run.
//!
//! The driver ([`runner::MndMstRunner`]) executes all of this over the
//! simulated cluster of `mnd-net`, producing the global MSF (validated
//! edge-for-edge against Kruskal in the tests) together with the per-phase
//! simulated-time breakdown the paper's figures report.
//!
//! ```
//! use mnd_mst::runner::MndMstRunner;
//! use mnd_graph::gen;
//!
//! let el = gen::gnm(500, 2500, 42);
//! let report = MndMstRunner::new(4).run(&el);
//! let oracle = mnd_kernels::kruskal_msf(&el);
//! assert_eq!(report.msf, oracle);
//! ```

pub mod bfs;
pub mod cc;
pub mod checkpoint;
pub mod engine;
pub mod ghost;
pub mod phases;
pub mod result;
pub mod runner;
pub mod segment;

pub use cc::{distributed_components, CcReport};
pub use result::{MndMstReport, PhaseTimes};
pub use runner::MndMstRunner;
pub use segment::SegmentStrategy;
