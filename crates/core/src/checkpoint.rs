//! Phase-boundary checkpoints for crash recovery.
//!
//! When a chaos schedule is armed ([`mnd_hypar::HyParConfig::chaos`]),
//! every rank serializes its recoverable state at each *recovery point* —
//! the Partition → IndComp boundary and the boundary after every
//! mergeParts pass — through the shared recovery driver
//! ([`mnd_engine::Recovery`]; the context implements
//! [`mnd_engine::Recoverable`] with this type as its checkpoint payload).
//! An injected crash then restarts the rank from the checkpoint instead of
//! aborting the run.
//!
//! The holding travels in the same [`SegmentMsg`] wire format the ring
//! exchange uses, so a checkpoint's cost is measured in exactly the bytes
//! the fabric would charge for shipping the same state.

use mnd_graph::types::WEdge;
use mnd_net::Wire;

use crate::ghost::GhostDirectory;
use crate::phases::RankCtx;
use crate::segment::SegmentMsg;

/// Everything a rank needs to resume from a recovery point: the evolving
/// holding and directory plus the accumulated outputs. The immutable run
/// inputs (CSR graph, edge list, configuration) are re-read from the
/// shared context on restart, exactly like a real job re-reading its
/// input from the parallel filesystem.
#[derive(Clone, Debug)]
pub struct RankCheckpoint {
    /// The rank's holding, in ring-exchange wire format.
    pub holding: SegmentMsg,
    /// Component → owner directory.
    pub dir: GhostDirectory,
    /// MSF edges contracted by this rank so far.
    pub msf_local: Vec<WEdge>,
    /// Hierarchical-merge levels completed.
    pub levels: usize,
    /// Ring-exchange rounds executed.
    pub exchange_rounds: usize,
}

impl RankCheckpoint {
    /// Snapshots the recoverable state of `cx`.
    pub fn capture(cx: &RankCtx<'_>) -> Self {
        RankCheckpoint {
            holding: SegmentMsg::from_holding(cx.cg.clone()),
            dir: cx.dir.clone(),
            msf_local: cx.msf_local.clone(),
            levels: cx.levels,
            exchange_rounds: cx.exchange_rounds,
        }
    }

    /// Rebuilds the context's recoverable state from this checkpoint.
    pub fn restore(self, cx: &mut RankCtx<'_>) {
        cx.cg = self.holding.into_holding();
        cx.dir = self.dir;
        cx.msf_local = self.msf_local;
        cx.levels = self.levels;
        cx.exchange_rounds = self.exchange_rounds;
    }
}

impl Wire for RankCheckpoint {
    /// Serialized size: the holding in segment format plus the directory,
    /// the local MSF, and the resume metadata.
    fn wire_bytes(&self) -> u64 {
        self.holding.wire_bytes()
            + self.dir.approx_wire_bytes()
            + self.msf_local.wire_bytes()
            + self.levels.wire_bytes()
            + self.exchange_rounds.wire_bytes()
    }
}
