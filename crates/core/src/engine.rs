//! The D&C driver as a registered [`mnd_engine::Engine`].
//!
//! [`MndMstRunner`] is itself the engine object: `run_chaos` clones the
//! runner, splices the shared chaos bundle into its fabric injector,
//! phase-level chaos control, and (when armed) observer slots, and maps
//! the driver's report onto the common [`EngineReport`]. "Recovered
//! units" for this engine are checkpoint restores — each one is a resumed
//! recovery boundary after a crash-at-boundary or mid-phase rollback.

use mnd_engine::{Engine, EngineChaos, EngineReport};
use mnd_graph::EdgeList;

use crate::runner::MndMstRunner;

impl Engine for MndMstRunner {
    fn name(&self) -> &'static str {
        "mnd-mst"
    }

    fn description(&self) -> &'static str {
        "divide-and-conquer Boruvka across nodes with per-device local MSTs (the paper's algorithm)"
    }

    fn run_chaos(&self, el: &EdgeList, chaos: &EngineChaos) -> EngineReport {
        let mut runner = self.clone();
        runner.faults = chaos.faults.clone();
        runner.config.chaos = chaos.control.clone();
        if chaos.observer.is_set() {
            runner.config.observer = chaos.observer.clone();
        }
        let report = runner.run(el);
        let recovered_units = report
            .rank_stats
            .iter()
            .map(|s| s.checkpoint_restores)
            .sum();
        EngineReport {
            msf: report.msf,
            total_time: report.total_time,
            comm_time: report.comm_time,
            rank_stats: report.rank_stats,
            recovered_units,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnd_graph::gen;

    #[test]
    fn engine_adapter_matches_direct_run() {
        let el = gen::gnm(300, 1500, 7);
        let runner = MndMstRunner::new(4);
        let direct = runner.run(&el);
        let via_engine = Engine::run(&runner, &el);
        assert_eq!(direct.msf, via_engine.msf);
        assert!((direct.total_time - via_engine.total_time).abs() < 1e-9);
        assert_eq!(runner.name(), "mnd-mst");
    }

    #[test]
    fn engine_trait_object_runs_fault_free() {
        let el = gen::gnm(200, 900, 11);
        let engine: Box<dyn Engine> = Box::new(MndMstRunner::new(3));
        let report = engine.run(&el);
        let oracle = mnd_kernels::kruskal_msf(&el);
        assert_eq!(report.msf, oracle);
        assert_eq!(report.recovered_units, 0);
    }
}
