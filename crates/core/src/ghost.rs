//! The ghost directory: who currently holds which component.
//!
//! The paper's `ghostList` is "a hash table indexed on the processor id of
//! the ghost vertex" (§3.1). [`GhostDirectory`] is the equivalent
//! structure, generalised to survive the hierarchical merge: it maps a
//! component id to the rank where it is resident.
//!
//! * At level 0 the owner of component `c` (= vertex `c`) follows from the
//!   1D partition, so the directory is seeded from the vertex ranges.
//! * When segments of components move between ranks, every move is
//!   announced (the driver allgathers `(component, new owner)` deltas) and
//!   applied with [`GhostDirectory::apply_moves`].
//! * Relabels shrink the id space: when `old` merges into `new`, `old`
//!   disappears; [`GhostDirectory::apply_relabels`] drops the stale entry.
//!
//! [`relabel_buckets`] computes the paper's ghost-parent message: for each
//! rename `(old, new)` performed locally, a pair is sent to the owner of
//! every ghost component adjacent to `old` — exactly the processors whose
//! holdings reference `old` (each edge is held by the resident ranks of
//! both endpoints; see DESIGN.md).

use std::collections::HashMap;

use mnd_graph::partition::{owner_of, VertexRange};
use mnd_kernels::cgraph::{CGraph, CompId};

/// Component → resident rank map.
#[derive(Clone, Debug, Default)]
pub struct GhostDirectory {
    ranges: Vec<VertexRange>,
    /// Overrides of the range-derived owner (components that moved).
    moved: HashMap<CompId, u32>,
}

impl GhostDirectory {
    /// Seeds the directory from the level-0 partition.
    pub fn from_ranges(ranges: Vec<VertexRange>) -> Self {
        GhostDirectory {
            ranges,
            moved: HashMap::new(),
        }
    }

    /// Current owner of component `c`.
    pub fn owner(&self, c: CompId) -> u32 {
        if let Some(&r) = self.moved.get(&c) {
            return r;
        }
        owner_of(&self.ranges, c) as u32
    }

    /// Applies announced moves (`component -> new owner`).
    pub fn apply_moves(&mut self, moves: &[(CompId, u32)]) {
        for &(c, r) in moves {
            // Keep the map small: an override equal to the range owner can
            // be dropped.
            if owner_of(&self.ranges, c) as u32 == r {
                self.moved.remove(&c);
            } else {
                self.moved.insert(c, r);
            }
        }
    }

    /// Forgets ids that were merged away (`(old, new)` relabels: `old`
    /// no longer exists anywhere).
    pub fn apply_relabels(&mut self, relabels: &[(CompId, CompId)]) {
        for &(old, _) in relabels {
            self.moved.remove(&old);
        }
    }

    /// Approximate serialized size: the ranges table plus one
    /// `(component, owner)` pair per override. Used to cost checkpoint
    /// writes (the directory has no exact wire format — it never travels
    /// over the fabric).
    pub fn approx_wire_bytes(&self) -> u64 {
        8 + self.ranges.len() as u64 * 8 + self.moved.len() as u64 * 8
    }

    /// Number of move overrides currently tracked (diagnostics).
    pub fn num_overrides(&self) -> usize {
        self.moved.len()
    }
}

/// Builds the per-destination ghost-parent buckets for a holding's relabels:
/// pair `(old, new)` goes to every distinct owner of a ghost component
/// adjacent to `old` in `cg` (after the relabel was applied locally, `old`
/// endpoints have already been renamed to `new`, so adjacency is probed via
/// `new`).
///
/// Returns `nranks` buckets (the own-rank bucket stays empty).
pub fn relabel_buckets(
    cg: &CGraph,
    relabels: &[(CompId, CompId)],
    dir: &GhostDirectory,
    my_rank: usize,
    nranks: usize,
) -> Vec<Vec<(CompId, CompId)>> {
    let mut buckets: Vec<Vec<(CompId, CompId)>> = (0..nranks).map(|_| Vec::new()).collect();
    if relabels.is_empty() {
        return buckets;
    }
    // new id -> list of old ids that became it.
    let mut renames_into: HashMap<CompId, Vec<CompId>> = HashMap::new();
    for &(old, new) in relabels {
        renames_into.entry(new).or_default().push(old);
    }
    // For every edge touching a renamed component, the ghost endpoint's
    // owner needs all (old, new) pairs of that component.
    let mut seen: std::collections::HashSet<(u32, CompId, CompId)> =
        std::collections::HashSet::new();
    for e in cg.iter_edges() {
        for (this_end, other_end) in [(e.a, e.b), (e.b, e.a)] {
            let Some(olds) = renames_into.get(&this_end) else {
                continue;
            };
            if cg.is_resident(other_end) {
                continue; // neighbour lives here: already renamed locally
            }
            let owner = dir.owner(other_end);
            if owner as usize == my_rank {
                continue;
            }
            for &old in olds {
                if seen.insert((owner, old, this_end)) {
                    buckets[owner as usize].push((old, this_end));
                }
            }
        }
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnd_graph::types::WEdge;
    use mnd_kernels::cgraph::CEdge;

    fn ranges4() -> Vec<VertexRange> {
        (0..4)
            .map(|i| VertexRange {
                start: i * 10,
                end: (i + 1) * 10,
            })
            .collect()
    }

    #[test]
    fn range_owner_lookup() {
        let d = GhostDirectory::from_ranges(ranges4());
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(15), 1);
        assert_eq!(d.owner(39), 3);
    }

    #[test]
    fn moves_override_and_collapse() {
        let mut d = GhostDirectory::from_ranges(ranges4());
        d.apply_moves(&[(15, 3)]);
        assert_eq!(d.owner(15), 3);
        assert_eq!(d.num_overrides(), 1);
        // Moving back to the natural owner drops the override.
        d.apply_moves(&[(15, 1)]);
        assert_eq!(d.owner(15), 1);
        assert_eq!(d.num_overrides(), 0);
    }

    #[test]
    fn relabels_clean_stale_overrides() {
        let mut d = GhostDirectory::from_ranges(ranges4());
        d.apply_moves(&[(22, 0)]);
        d.apply_relabels(&[(22, 20)]);
        assert_eq!(d.num_overrides(), 0);
    }

    #[test]
    fn buckets_target_ghost_owners_only() {
        // Rank 0 holds comps {0, 5}; it renamed 5 -> 0. Its edges: 0~12
        // (ghost, owner 1), 0~35 (ghost, owner 3), 0~5 impossible (merged).
        let cg = CGraph::from_parts(
            vec![0],
            vec![
                CEdge::new(0, 12, WEdge::new(3, 12, 5)),
                CEdge::new(0, 35, WEdge::new(5, 35, 7)),
            ],
            vec![],
        );
        let d = GhostDirectory::from_ranges(ranges4());
        let buckets = relabel_buckets(&cg, &[(5, 0)], &d, 0, 4);
        assert_eq!(buckets[1], vec![(5, 0)]);
        assert_eq!(buckets[3], vec![(5, 0)]);
        assert!(buckets[0].is_empty() && buckets[2].is_empty());
    }

    #[test]
    fn buckets_dedup_per_destination() {
        // Two edges to ghosts owned by the same rank: one pair, not two.
        let cg = CGraph::from_parts(
            vec![0],
            vec![
                CEdge::new(0, 12, WEdge::new(3, 12, 5)),
                CEdge::new(0, 13, WEdge::new(4, 13, 6)),
            ],
            vec![],
        );
        let d = GhostDirectory::from_ranges(ranges4());
        let buckets = relabel_buckets(&cg, &[(5, 0), (3, 0)], &d, 0, 4);
        let mut b1 = buckets[1].clone();
        b1.sort_unstable();
        assert_eq!(b1, vec![(3, 0), (5, 0)]);
    }

    #[test]
    fn empty_relabels_produce_empty_buckets() {
        let cg = CGraph::new();
        let d = GhostDirectory::from_ranges(ranges4());
        let buckets = relabel_buckets(&cg, &[], &d, 0, 4);
        assert!(buckets.iter().all(|b| b.is_empty()));
    }
}
