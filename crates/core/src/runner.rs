//! The distributed MND-MST driver (Algorithm 1 of the paper).
//!
//! One [`MndMstRunner::run`] call simulates a whole cluster execution:
//! it spins up `nranks` rank threads over `mnd-net`, runs partitioning →
//! independent computations → mergeParts → hierarchical merging →
//! post-processing, and returns the global MSF together with simulated
//! per-phase times.
//!
//! ## Lockstep discipline
//!
//! Every global collective (degree allreduce, ghost alltoallv, ownership
//! allgather, group-size allreduce) is executed by **all** ranks on every
//! round, including ranks that have already merged their data away — their
//! holdings are simply empty, so their contributions are empty. This keeps
//! the communication graph deterministic, mirrors how collectives work on
//! a real MPI job, and lets per-group decisions (§4.3.4) be taken from
//! globally replicated data without extra coordination messages.

use std::sync::Arc;

use mnd_device::NodePlatform;
use mnd_graph::partition::partition_1d_by_degrees;
use mnd_graph::types::WEdge;
use mnd_graph::{CsrGraph, EdgeList};
use mnd_hypar::api::{ind_comp, part_graph, post_process};
use mnd_hypar::runtime::{should_recurse, ExchangeMonitor};
use mnd_hypar::HyParConfig;
use mnd_kernels::cgraph::{CGraph, CompId};
use mnd_kernels::msf::MsfResult;
use mnd_kernels::reduce::{apply_ghost_parents, reduce_holding};
use mnd_net::{Cluster, Comm, Group, Tag};

use crate::ghost::{relabel_buckets, GhostDirectory};
use crate::result::{MndMstReport, PhaseTimes};
use crate::segment::{choose_segment, SegmentMsg};

/// Ring-segment messages.
const TAG_SEG: Tag = Tag::user(1);
/// Whole-holding transfers to the group leader.
const TAG_MERGE: Tag = Tag::user(2);

/// Configuration + entry point for distributed runs.
#[derive(Clone, Debug)]
pub struct MndMstRunner {
    /// Number of simulated cluster nodes (one rank per node).
    pub nranks: usize,
    /// Node hardware + interconnect.
    pub platform: NodePlatform,
    /// HyPar runtime configuration.
    pub config: HyParConfig,
    /// Maximum ghost pairs per exchange phase (§3.1/§3.3: boundary
    /// communication happens "in multiple phases" to bound message sizes).
    pub ghost_phase_size: usize,
    /// Cap on recursion rounds inside one computation step (§4.3.3).
    pub max_recursion_rounds: usize,
}

impl MndMstRunner {
    /// A CPU-only runner on the AMD-cluster platform with paper defaults.
    pub fn new(nranks: usize) -> Self {
        MndMstRunner {
            nranks,
            platform: NodePlatform::amd_cluster(),
            config: HyParConfig::default(),
            ghost_phase_size: 1 << 16,
            max_recursion_rounds: 3,
        }
    }

    /// Replaces the platform (e.g. `NodePlatform::cray_xc40(true)`).
    pub fn with_platform(mut self, platform: NodePlatform) -> Self {
        self.platform = platform;
        self
    }

    /// Replaces the HyPar configuration.
    pub fn with_config(mut self, config: HyParConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs the full distributed algorithm on `el` and reports.
    ///
    /// The result is validated structurally (component counts) here;
    /// edge-for-edge oracle comparison lives in the tests.
    ///
    /// # Panics
    ///
    /// If `nranks == 0`, or on internal invariant violations (a rank
    /// thread panicking is re-raised with its rank id).
    pub fn run(&self, el: &EdgeList) -> MndMstReport {
        assert!(self.nranks >= 1);
        let csr = Arc::new(CsrGraph::from_edge_list(el));
        let el_arc = Arc::new(el.clone());
        let network = self.platform.network.scaled(self.config.sim_scale);
        let cluster = Cluster::new(self.nranks, network);

        let outcomes = cluster.run(|comm| self.rank_main(comm, &csr, &el_arc));

        let total_time = Cluster::makespan(&outcomes);
        let mut msf: Option<MsfResult> = None;
        let mut phases = Vec::with_capacity(self.nranks);
        let mut rank_stats = Vec::with_capacity(self.nranks);
        let mut levels = 0;
        let mut exchange_rounds = 0;
        let mut max_holding_bytes = 0u64;
        for o in &outcomes {
            let r = &o.result;
            if let Some(m) = &r.msf {
                msf = Some(m.clone());
            }
            let mut ph = r.phases;
            ph.comm = o.stats.comm_time;
            phases.push(ph);
            rank_stats.push(o.stats);
            levels = levels.max(r.levels);
            exchange_rounds = exchange_rounds.max(r.exchange_rounds);
            max_holding_bytes = max_holding_bytes.max(r.max_holding_bytes);
        }
        let comm_time = rank_stats.iter().map(|s| s.comm_time).fold(0.0, f64::max);
        MndMstReport {
            msf: msf.expect("rank 0 always produces the final MSF"),
            total_time,
            comm_time,
            phases,
            rank_stats,
            levels,
            exchange_rounds,
            max_holding_bytes,
            nranks: self.nranks,
        }
    }

    /// Seconds a single linear sweep over `items` costs on this node's CPU
    /// (used to charge partitioning/reduction work).
    fn sweep_seconds(&self, items: u64) -> f64 {
        let m = &self.platform.cpu;
        items as f64 * self.config.sim_scale / (m.edge_throughput * m.efficiency)
    }

    /// The per-rank program.
    fn rank_main(&self, comm: &Comm, csr: &CsrGraph, el: &EdgeList) -> RankResult {
        let me = comm.rank();
        let p = comm.size();
        let cfg = &self.config;
        let mut phases = PhaseTimes::default();
        let mut msf_local: Vec<WEdge> = Vec::new();

        // ---- Partitioning (§3.1): Gemini-style slice read + degree
        // allreduce + 1D cuts. ----
        let m_edges = el.len();
        let lo = me * m_edges / p;
        let hi = (me + 1) * m_edges / p;
        let mut partial = vec![0u64; el.num_vertices() as usize];
        for e in &el.edges()[lo..hi] {
            partial[e.u as usize] += 1;
            partial[e.v as usize] += 1;
        }
        let t = self.sweep_seconds((hi - lo) as u64);
        comm.compute(t);
        phases.merge += t;
        let degrees = comm.allreduce_vec_u64(partial, |a, b| a + b);
        let ranges = partition_1d_by_degrees(&degrees, p, 0.0);
        let my_range = ranges[me];

        // Intra-node device split (§4.3.1), calibrated on the local
        // partition's induced subgraph.
        let split = if self.platform.is_hybrid() {
            let keep: Vec<u32> = my_range.iter().collect();
            let local = csr.induced_subgraph(&keep);
            let part = part_graph(&local, 1, &self.platform, cfg);
            // Calibration runs 5-10 small kernels on both devices; charge a
            // sweep over the sampled edges.
            let sampled = (local.num_undirected_edges() as f64
                * cfg.calibration_frac
                * cfg.calibration_samples as f64) as u64;
            let t = self.sweep_seconds(sampled);
            comm.compute(t);
            phases.merge += t;
            part.split
        } else {
            mnd_device::DeviceSplit::cpu_only()
        };

        // ---- Holding + ghost information. ----
        let mut cg = CGraph::from_partition(csr, my_range);
        let t = self.sweep_seconds(cg.edges().len() as u64);
        comm.compute(t);
        phases.merge += t;
        let mut dir = GhostDirectory::from_ranges(ranges.clone());
        let mut max_holding = self.paper_bytes(&cg);

        // makeGhostInformation: exchange boundary vertex ids so every rank
        // can build its ghostList hash table (§3.1). Our GhostDirectory
        // derives owners from the ranges, so the payload itself is only
        // used as a consistency check — but the exchange is performed for
        // its (phased) communication cost, like the paper's.
        {
            let mut buckets: Vec<Vec<CompId>> = (0..p).map(|_| Vec::new()).collect();
            for e in cg.edges() {
                for (mine, ghost) in [(e.a, e.b), (e.b, e.a)] {
                    if cg.is_resident(mine) && !cg.is_resident(ghost) {
                        let owner = dir.owner(ghost) as usize;
                        if owner != me {
                            buckets[owner].push(mine);
                        }
                    }
                }
            }
            for b in &mut buckets {
                b.sort_unstable();
                b.dedup();
            }
            let received = comm.alltoallv_phased(buckets, self.ghost_phase_size);
            // Consistency: every vertex a neighbour reports as its boundary
            // must be non-resident here and owned by that neighbour.
            for (src, verts) in received.iter().enumerate() {
                for &v in verts {
                    debug_assert_eq!(dir.owner(v) as usize, src, "ghost table mismatch");
                }
            }
        }

        // ---- Level-0 computation. ----
        let mut exchange_rounds = 0usize;
        let mut levels = 0usize;
        self.computation_step(comm, &mut cg, &mut dir, &split, &mut phases, &mut msf_local);
        max_holding = max_holding.max(self.paper_bytes(&cg));

        // ---- Hierarchical merging (§3.4). ----
        let mut active: Vec<usize> = (0..p).collect();
        while active.len() > 1 {
            levels += 1;
            // group_size 1 would make every rank its own leader and the
            // hierarchy would never shrink; 2 is the smallest group that
            // makes progress (the paper studies 2/4/8/16).
            let groups = Group::partition(&active, cfg.group_size.max(2));
            let my_group = Group::find(&groups, me).cloned();
            let mut monitors: Vec<ExchangeMonitor> =
                groups.iter().map(|_| ExchangeMonitor::new()).collect();

            // --- Ring-exchange rounds (all ranks in lockstep). ---
            loop {
                // Replicated group sizes: one slot per group.
                let mut sizes = vec![0u64; groups.len()];
                if let Some(g) = &my_group {
                    let gi = groups.iter().position(|x| x == g).expect("own group");
                    sizes[gi] = cg.edges().len() as u64;
                }
                let totals = comm.allreduce_vec_u64(sizes, |a, b| a + b);
                // Every rank evaluates every group's §4.3.4 decision from
                // the same data -> identical flags everywhere.
                let flags: Vec<bool> = groups
                    .iter()
                    .zip(monitors.iter_mut())
                    .zip(totals.iter())
                    .map(|((g, mon), &total)| {
                        !g.is_singleton() && mon.observe_and_continue(cfg, total)
                    })
                    .collect();
                if !flags.iter().any(|&f| f) {
                    break;
                }

                // Ring shift within exchanging groups.
                let mut my_moves: Vec<(CompId, u32)> = Vec::new();
                let mut received_any = false;
                if let Some(g) = &my_group {
                    let gi = groups.iter().position(|x| x == g).expect("own group");
                    if flags[gi] {
                        exchange_rounds += 1;
                        let left = g.left_of(me);
                        let right = g.right_of(me);
                        let cap = self.segment_cap_bytes();
                        let take = choose_segment(&cg, cap);
                        let seg = cg.split_off(&take);
                        let msg = SegmentMsg::from_holding(seg);
                        my_moves = take.iter().map(|&c| (c, left as u32)).collect();
                        let bytes = msg.wire_bytes();
                        let incoming: SegmentMsg =
                            comm.send_recv(left, TAG_SEG, msg, bytes, right, TAG_SEG);
                        if !incoming.is_empty() {
                            received_any = true;
                            cg.absorb(incoming.into_holding());
                        }
                    }
                }
                // Ownership announcements (global, includes empties).
                let all_moves = comm.allgather_vec(my_moves);
                for moves in &all_moves {
                    dir.apply_moves(moves);
                }
                if received_any {
                    // New residents can unfreeze old borders.
                    cg.clear_frozen();
                }
                max_holding = max_holding.max(self.paper_bytes(&cg));

                // Collaborative merging: indComp + ghost + reduce.
                self.computation_step(comm, &mut cg, &mut dir, &split, &mut phases, &mut msf_local);
            }

            // --- Merge each group to its leader. ---
            let mut my_moves: Vec<(CompId, u32)> = Vec::new();
            if let Some(g) = &my_group {
                let leader = g.leader();
                if me == leader {
                    for &member in g.members() {
                        if member == me {
                            continue;
                        }
                        let msg: SegmentMsg = comm.recv(member, TAG_MERGE);
                        if !msg.is_empty() {
                            cg.absorb(msg.into_holding());
                        }
                    }
                    cg.clear_frozen();
                } else {
                    let whole = std::mem::take(&mut cg);
                    my_moves = whole.resident().iter().map(|&c| (c, leader as u32)).collect();
                    let msg = SegmentMsg::from_holding(whole);
                    let bytes = msg.wire_bytes();
                    comm.send_sized(leader, TAG_MERGE, msg, bytes);
                }
            }
            let all_moves = comm.allgather_vec(my_moves);
            for moves in &all_moves {
                dir.apply_moves(moves);
            }
            max_holding = max_holding.max(self.paper_bytes(&cg));

            active = groups.iter().map(|g| g.leader()).collect();

            // Leaders run independent computations on the merged data
            // before the next level ("We again perform independent
            // computation steps on the leader nodes").
            if active.len() > 1 {
                self.computation_step(comm, &mut cg, &mut dir, &split, &mut phases, &mut msf_local);
            }
        }

        // ---- Post-processing on the last rank (always rank 0: leaders are
        // first group members). ----
        let final_rank = 0usize;
        if me == final_rank && !cg.is_empty() {
            debug_assert_eq!(
                cg.num_cut_edges(),
                0,
                "final holding must be self-contained"
            );
            let (edges, t) = post_process(&mut cg, &self.platform, cfg);
            comm.compute(t);
            phases.post_process += t;
            msf_local.extend(edges);
        }

        // ---- Gather the MSF at rank 0. ----
        let gathered = comm.gather_vec(final_rank, msf_local);
        let msf = gathered.map(|parts| {
            let all: Vec<WEdge> = parts.into_iter().flatten().collect();
            MsfResult::from_edges(el.num_vertices(), all)
        });

        RankResult { msf, phases, levels, exchange_rounds, max_holding_bytes: max_holding }
    }

    /// One computation step: (recursively) indComp on the node's devices,
    /// ghost-parent exchange, self/multi-edge reduction. Called in lockstep
    /// by every rank; empty holdings make every part a no-op. Recursion
    /// (§4.3.3) repeats the step while the *global* maximum reduced size
    /// stays over the threshold and progress continues.
    fn computation_step(
        &self,
        comm: &Comm,
        cg: &mut CGraph,
        dir: &mut GhostDirectory,
        split: &mnd_device::DeviceSplit,
        phases: &mut PhaseTimes,
        msf_local: &mut Vec<WEdge>,
    ) {
        let cfg = &self.config;
        let me = comm.rank();
        let p = comm.size();
        for _round in 0..self.max_recursion_rounds.max(1) {
            // Independent computations on the node's device(s).
            let run = ind_comp(cg, &self.platform, split, cfg);
            let t = run.compute_time + run.transfer_time;
            comm.compute(t);
            phases.ind_comp += t;
            let unions = run.msf_edges.len() as u64;
            msf_local.extend(run.msf_edges.iter().copied());

            // Ghost-parent exchange (§3.3), phased.
            let buckets = relabel_buckets(cg, &run.relabel, dir, me, p);
            let received = comm.alltoallv_phased(buckets, self.ghost_phase_size);
            dir.apply_relabels(&run.relabel);
            for pairs in &received {
                if !pairs.is_empty() {
                    apply_ghost_parents(cg, pairs);
                    dir.apply_relabels(pairs);
                }
            }

            // Reduce: self-edge removal + multi-edge removal.
            let stats = reduce_holding(cg);
            let t = self.sweep_seconds(stats.edges_before);
            comm.compute(t);
            phases.merge += t;

            // Global recursion decision (§4.3.3): recurse while any rank's
            // reduced holding is still over the threshold AND any rank made
            // progress (otherwise another round cannot contract more).
            let max_edges = comm.allreduce_u64(cg.edges().len() as u64, u64::max);
            let total_unions = comm.allreduce_u64(unions, |a, b| a + b);
            if total_unions == 0 || !should_recurse(cfg, max_edges) {
                break;
            }
        }
    }

    /// Paper-scale bytes of a holding (the memory the full-size run would
    /// occupy).
    fn paper_bytes(&self, cg: &CGraph) -> u64 {
        (cg.approx_bytes() as f64 * self.config.sim_scale) as u64
    }

    /// Per-segment byte cap: a quarter of node memory (at paper scale), so
    /// a receiver holding its own data plus one segment stays far below
    /// capacity — the §3.4 accommodation guarantee.
    fn segment_cap_bytes(&self) -> u64 {
        let node_mem = self.platform.cpu.mem_bytes;
        ((node_mem / 4) as f64 / self.config.sim_scale) as u64
    }
}

/// What one rank hands back from the simulation.
#[derive(Clone, Debug)]
struct RankResult {
    msf: Option<MsfResult>,
    phases: PhaseTimes,
    levels: usize,
    exchange_rounds: usize,
    max_holding_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnd_graph::gen;
    use mnd_kernels::oracle::kruskal_msf;

    fn check(el: &EdgeList, nranks: usize) -> MndMstReport {
        let report = MndMstRunner::new(nranks).run(el);
        let oracle = kruskal_msf(el);
        assert_eq!(report.msf, oracle, "nranks={nranks}");
        report
    }

    #[test]
    fn single_rank_matches_oracle() {
        check(&gen::gnm(300, 1200, 1), 1);
    }

    #[test]
    fn two_ranks_match_oracle() {
        check(&gen::gnm(300, 1200, 2), 2);
    }

    #[test]
    fn many_ranks_many_families() {
        for (el, name) in [
            (gen::gnm(400, 1600, 3), "gnm"),
            (gen::watts_strogatz(300, 6, 0.2, 4), "ws"),
            (gen::rmat(256, 2048, gen::RmatProbs::GRAPH500, 5), "rmat"),
            (gen::road_grid(20, 20, 0.02, 0.38, 6), "road"),
        ] {
            for nranks in [3, 4, 8] {
                let report = MndMstRunner::new(nranks).run(&el);
                let oracle = kruskal_msf(&el);
                assert_eq!(report.msf, oracle, "{name} nranks={nranks}");
            }
        }
    }

    #[test]
    fn disconnected_graphs_yield_forests() {
        let el = gen::disconnected_union(&[
            gen::path(50, 1),
            gen::gnm(100, 300, 2),
            gen::cycle(30, 3),
        ]);
        let r = check(&el, 4);
        assert_eq!(r.msf.num_components, 3);
    }

    #[test]
    fn group_sizes_all_work() {
        let el = gen::gnm(500, 2000, 7);
        let oracle = kruskal_msf(&el);
        for gs in [2, 3, 4, 8, 16] {
            let cfg = HyParConfig { group_size: gs, ..Default::default() };
            let r = MndMstRunner::new(8).with_config(cfg).run(&el);
            assert_eq!(r.msf, oracle, "group_size={gs}");
        }
    }

    #[test]
    fn hybrid_platform_matches_oracle() {
        let el = gen::rmat(512, 4096, gen::RmatProbs::MILD, 9);
        let oracle = kruskal_msf(&el);
        let r = MndMstRunner::new(4)
            .with_platform(NodePlatform::cray_xc40(true))
            .run(&el);
        assert_eq!(r.msf, oracle);
    }

    #[test]
    fn report_is_populated() {
        let el = gen::gnm(400, 1600, 11);
        let r = check(&el, 4);
        assert!(r.total_time > 0.0);
        assert!(r.comm_time > 0.0);
        assert_eq!(r.phases.len(), 4);
        assert!(r.levels >= 1);
        assert!(r.max_holding_bytes > 0);
        let pm = r.phase_max();
        assert!(pm.ind_comp > 0.0);
        assert!(pm.post_process > 0.0);
    }

    #[test]
    fn deterministic_results_and_times() {
        let el = gen::gnm(300, 1500, 13);
        let a = MndMstRunner::new(4).run(&el);
        let b = MndMstRunner::new(4).run(&el);
        assert_eq!(a.msf, b.msf);
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.comm_time, b.comm_time);
    }

    #[test]
    fn edgeless_and_tiny_inputs() {
        let empty = EdgeList::new(8);
        let r = MndMstRunner::new(4).run(&empty);
        assert!(r.msf.edges.is_empty());
        assert_eq!(r.msf.num_components, 8);
        let single = gen::path(2, 1);
        let r = MndMstRunner::new(4).run(&single);
        assert_eq!(r.msf.edges.len(), 1);
    }

    #[test]
    fn more_ranks_than_vertices() {
        let el = gen::path(5, 3);
        let r = MndMstRunner::new(8).run(&el);
        assert_eq!(r.msf, kruskal_msf(&el));
    }
}
