//! The distributed MND-MST driver (Algorithm 1 of the paper).
//!
//! One [`MndMstRunner::run`] call simulates a whole cluster execution: it
//! spins up `nranks` rank threads over `mnd-net` and runs the phase
//! pipeline of [`crate::phases`] — partitioning → independent computations
//! → mergeParts → hierarchical merging → post-processing — returning the
//! global MSF together with simulated per-phase times.
//!
//! ## Lockstep discipline
//!
//! Every global collective (degree allreduce, ghost alltoallv, ownership
//! allgather, group-size allreduce) is executed by **all** ranks on every
//! round, including ranks that have already merged their data away — their
//! holdings are simply empty, so their contributions are empty. This keeps
//! the communication graph deterministic, mirrors how collectives work on
//! a real MPI job, and lets per-group decisions (§4.3.4) be taken from
//! globally replicated data without extra coordination messages.

use std::sync::Arc;

use mnd_device::NodePlatform;
use mnd_engine::run_recoverable;
use mnd_graph::{CsrGraph, EdgeList};
use mnd_hypar::{HyParConfig, RecursionThresholdSource};
use mnd_kernels::cgraph::CGraph;
use mnd_kernels::msf::MsfResult;
use mnd_net::{Cluster, Comm, FaultInjector, InjectorHook};

use crate::checkpoint::RankCheckpoint;
use crate::phases::{
    HierMerge, IndComp, Partition, Phase, PhaseTimesRecorder, PostProcess, RankCtx,
};
use crate::result::{MndMstReport, PhaseTimes};
use crate::segment::SegmentStrategy;

/// Configuration + entry point for distributed runs.
#[derive(Clone, Debug)]
pub struct MndMstRunner {
    /// Number of simulated cluster nodes (one rank per node).
    pub nranks: usize,
    /// Node hardware + interconnect.
    pub platform: NodePlatform,
    /// HyPar runtime configuration.
    pub config: HyParConfig,
    /// Maximum ghost pairs per exchange phase (§3.1/§3.3: boundary
    /// communication happens "in multiple phases" to bound message sizes).
    pub ghost_phase_size: usize,
    /// Cap on recursion rounds inside one computation step (§4.3.3).
    pub max_recursion_rounds: usize,
    /// How ring-exchange segments are packed (§3.4). The default
    /// best-fit-decreasing packing ships heavy components first; see
    /// [`crate::segment::SegmentStrategy`].
    pub segment_strategy: SegmentStrategy,
    /// Optional message-fault injector armed on the simulated fabric
    /// (drops/delays/duplicates/reorders — see [`mnd_net::fault`]).
    pub faults: InjectorHook,
}

impl MndMstRunner {
    /// A CPU-only runner on the AMD-cluster platform with paper defaults.
    pub fn new(nranks: usize) -> Self {
        MndMstRunner {
            nranks,
            platform: NodePlatform::amd_cluster(),
            config: HyParConfig::default(),
            ghost_phase_size: 1 << 16,
            max_recursion_rounds: 3,
            segment_strategy: SegmentStrategy::default(),
            faults: InjectorHook::none(),
        }
    }

    /// Replaces the ring-segment packing strategy.
    pub fn with_segment_strategy(mut self, strategy: SegmentStrategy) -> Self {
        self.segment_strategy = strategy;
        self
    }

    /// Arms a message-fault injector on the simulated fabric. Pair with
    /// [`HyParConfig::with_chaos`] (via [`MndMstRunner::with_config`]) to
    /// also schedule phase-level stalls/crashes — an
    /// `Arc<mnd_chaos::FaultPlan>` implements both interfaces.
    pub fn with_fault_injector(mut self, injector: Arc<dyn FaultInjector>) -> Self {
        self.faults = InjectorHook::new(injector);
        self
    }

    /// Replaces the platform (e.g. `NodePlatform::cray_xc40(true)`).
    pub fn with_platform(mut self, platform: NodePlatform) -> Self {
        self.platform = platform;
        self
    }

    /// Replaces the HyPar configuration.
    pub fn with_config(mut self, config: HyParConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs the full distributed algorithm on `el` and reports.
    ///
    /// The result is validated structurally (component counts) here;
    /// edge-for-edge oracle comparison lives in the tests.
    ///
    /// # Panics
    ///
    /// If `nranks == 0`, or on internal invariant violations (a rank
    /// thread panicking is re-raised with its rank id).
    pub fn run(&self, el: &EdgeList) -> MndMstReport {
        assert!(self.nranks >= 1);
        let csr = Arc::new(CsrGraph::from_edge_list(el));
        let el_arc = Arc::new(el.clone());
        let network = self.platform.network.scaled(self.config.sim_scale);
        let cluster = Cluster::new(self.nranks, network).with_fault_hook(self.faults.clone());

        let outcomes = cluster.run(|comm| self.rank_main(comm, &csr, &el_arc));

        let total_time = Cluster::makespan(&outcomes);
        let mut msf: Option<MsfResult> = None;
        let mut phases = Vec::with_capacity(self.nranks);
        let mut rank_stats = Vec::with_capacity(self.nranks);
        let mut levels = 0;
        let mut exchange_rounds = 0;
        let mut max_holding_bytes = 0u64;
        for o in &outcomes {
            let r = &o.result;
            if let Some(m) = &r.msf {
                msf = Some(m.clone());
            }
            let mut ph = r.phases;
            ph.comm = o.stats.comm_time;
            phases.push(ph);
            rank_stats.push(o.stats.clone());
            levels = levels.max(r.levels);
            exchange_rounds = exchange_rounds.max(r.exchange_rounds);
            max_holding_bytes = max_holding_bytes.max(r.max_holding_bytes);
        }
        let comm_time = rank_stats.iter().map(|s| s.comm_time).fold(0.0, f64::max);
        MndMstReport {
            msf: msf.expect("the final rank always produces the MSF"),
            total_time,
            comm_time,
            phases,
            rank_stats,
            levels,
            exchange_rounds,
            max_holding_bytes,
            nranks: self.nranks,
        }
    }

    /// The per-rank program: the phase pipeline over a shared context,
    /// wrapped in the workspace-wide rollback-recovery loop
    /// ([`mnd_engine::run_recoverable`]) when a chaos schedule is armed.
    ///
    /// A mid-phase crash unwinds the pipeline as a panic; the shared loop
    /// catches it, pays the restart penalty, resets the per-peer sequence
    /// cursors, and re-runs the pipeline from the top: epochs before the
    /// crashed one fast-forward at zero cost against the replay log, the
    /// checkpoint written at the previous recovery boundary is swapped in
    /// there, and the crashed epoch replays live — its inbound messages
    /// are served from the log without re-charging the fabric
    /// (DESIGN.md §5f/§6). The recorder is owned here so phase times
    /// survive the unwind; the checkpoint slot and fired-crash set live in
    /// the shared driver.
    fn rank_main(&self, comm: &Comm, csr: &CsrGraph, el: &EdgeList) -> RankResult {
        let recorder = Arc::new(PhaseTimesRecorder::new());
        run_recoverable::<RankCheckpoint, _>(
            comm,
            &self.config.chaos,
            &self.config.observer,
            self.config.checkpoint_interval,
            self.config.sim_scale,
            |rec| {
                let mut cx = RankCtx::new(self, comm, csr, el, Arc::clone(&recorder));
                let mut pipeline: [Box<dyn Phase>; 4] = [
                    Box::new(Partition),
                    Box::new(IndComp::new()),
                    Box::new(HierMerge::new()),
                    Box::new(PostProcess),
                ];
                for phase in pipeline.iter_mut() {
                    phase.run(&mut cx, rec);
                }
                cx.into_result()
            },
        )
    }

    /// The recursion-stop threshold for independent computations, in
    /// *simulated* edges: below it a holding is small enough that another
    /// distributed recursion round costs more than finishing locally.
    ///
    /// With [`RecursionThresholdSource::Fixed`] this is the configured
    /// paper constant scaled by `sim_scale`; with the default
    /// [`RecursionThresholdSource::Calibrated`] it is derived from the
    /// platform model — the edge volume whose local processing time equals
    /// a recursion round's collective latency (see
    /// [`mnd_device::calibrated_recursion_threshold`]).
    pub(crate) fn recursion_threshold_edges(&self) -> u64 {
        match self.config.recursion_threshold_source {
            RecursionThresholdSource::Fixed => self.config.scaled_recursion_threshold(),
            RecursionThresholdSource::Calibrated => {
                let paper_edges =
                    mnd_device::calibrated_recursion_threshold(&self.platform, self.nranks);
                ((paper_edges as f64 / self.config.sim_scale).ceil() as u64).max(1)
            }
        }
    }

    /// Seconds a single linear sweep over `items` costs on this node's CPU
    /// (used to charge partitioning/reduction work).
    pub(crate) fn sweep_seconds(&self, items: u64) -> f64 {
        let m = &self.platform.cpu;
        items as f64 * self.config.sim_scale / (m.edge_throughput * m.efficiency)
    }

    /// Paper-scale bytes of a holding (the memory the full-size run would
    /// occupy).
    pub(crate) fn paper_bytes(&self, cg: &CGraph) -> u64 {
        (cg.approx_bytes() as f64 * self.config.sim_scale) as u64
    }

    /// Per-segment byte cap: a quarter of node memory (at paper scale), so
    /// a receiver holding its own data plus one segment stays far below
    /// capacity — the §3.4 accommodation guarantee.
    pub(crate) fn segment_cap_bytes(&self) -> u64 {
        let node_mem = self.platform.cpu.mem_bytes;
        ((node_mem / 4) as f64 / self.config.sim_scale) as u64
    }
}

/// What one rank hands back from the simulation.
#[derive(Clone, Debug)]
pub(crate) struct RankResult {
    pub(crate) msf: Option<MsfResult>,
    pub(crate) phases: PhaseTimes,
    pub(crate) levels: usize,
    pub(crate) exchange_rounds: usize,
    pub(crate) max_holding_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnd_graph::gen;
    use mnd_hypar::observe::{PhaseKind, PhaseObserver, PhaseSample};
    use mnd_kernels::oracle::kruskal_msf;

    fn check(el: &EdgeList, nranks: usize) -> MndMstReport {
        let report = MndMstRunner::new(nranks).run(el);
        let oracle = kruskal_msf(el);
        assert_eq!(report.msf, oracle, "nranks={nranks}");
        report
    }

    #[test]
    fn single_rank_matches_oracle() {
        check(&gen::gnm(300, 1200, 1), 1);
    }

    #[test]
    fn two_ranks_match_oracle() {
        check(&gen::gnm(300, 1200, 2), 2);
    }

    #[test]
    fn many_ranks_many_families() {
        for (el, name) in [
            (gen::gnm(400, 1600, 3), "gnm"),
            (gen::watts_strogatz(300, 6, 0.2, 4), "ws"),
            (gen::rmat(256, 2048, gen::RmatProbs::GRAPH500, 5), "rmat"),
            (gen::road_grid(20, 20, 0.02, 0.38, 6), "road"),
        ] {
            for nranks in [3, 4, 8] {
                let report = MndMstRunner::new(nranks).run(&el);
                let oracle = kruskal_msf(&el);
                assert_eq!(report.msf, oracle, "{name} nranks={nranks}");
            }
        }
    }

    #[test]
    fn disconnected_graphs_yield_forests() {
        let el =
            gen::disconnected_union(&[gen::path(50, 1), gen::gnm(100, 300, 2), gen::cycle(30, 3)]);
        let r = check(&el, 4);
        assert_eq!(r.msf.num_components, 3);
    }

    #[test]
    fn group_sizes_all_work() {
        let el = gen::gnm(500, 2000, 7);
        let oracle = kruskal_msf(&el);
        for gs in [2, 3, 4, 8, 16] {
            let cfg = HyParConfig {
                group_size: gs,
                ..Default::default()
            };
            let r = MndMstRunner::new(8).with_config(cfg).run(&el);
            assert_eq!(r.msf, oracle, "group_size={gs}");
        }
    }

    /// §3.4 segment packing: on a skewed holding with a binding segment
    /// cap, best-fit-decreasing ships the heavy components in the first
    /// exchanges while the first-fit suffix walk trickles light ones, so
    /// the group needs fewer ring rounds to fall under the merge
    /// threshold. BorderVertex + a large sim scale keep the holdings fat
    /// into the merge hierarchy so the ring (not indComp) does the work.
    #[test]
    fn best_fit_segments_need_fewer_ring_rounds() {
        use crate::segment::SegmentStrategy;
        let el = gen::rmat(512, 4096, gen::RmatProbs::GRAPH500, 5);
        let oracle = kruskal_msf(&el);
        let cfg = HyParConfig {
            group_size: 8,
            excp: mnd_kernels::policy::ExcpCond::BorderVertex,
            merge_min_shrink: 0.0,
            group_edge_threshold: 16,
            max_exchange_rounds: 64,
            ..Default::default()
        }
        .with_sim_scale(1e7);
        let ff = MndMstRunner::new(8)
            .with_config(cfg.clone())
            .with_segment_strategy(SegmentStrategy::FirstFit)
            .run(&el);
        let bfd = MndMstRunner::new(8)
            .with_config(cfg)
            .with_segment_strategy(SegmentStrategy::BestFitDecreasing)
            .run(&el);
        assert_eq!(ff.msf, oracle);
        assert_eq!(bfd.msf, oracle);
        assert!(
            bfd.exchange_rounds < ff.exchange_rounds,
            "bfd {} rounds vs ff {}",
            bfd.exchange_rounds,
            ff.exchange_rounds
        );
    }

    #[test]
    fn hybrid_platform_matches_oracle() {
        let el = gen::rmat(512, 4096, gen::RmatProbs::MILD, 9);
        let oracle = kruskal_msf(&el);
        let r = MndMstRunner::new(4)
            .with_platform(NodePlatform::cray_xc40(true))
            .run(&el);
        assert_eq!(r.msf, oracle);
    }

    #[test]
    fn report_is_populated() {
        let el = gen::gnm(400, 1600, 11);
        let r = check(&el, 4);
        assert!(r.total_time > 0.0);
        assert!(r.comm_time > 0.0);
        assert_eq!(r.phases.len(), 4);
        assert!(r.levels >= 1);
        assert!(r.max_holding_bytes > 0);
        let pm = r.phase_max();
        assert!(pm.ind_comp > 0.0);
        assert!(pm.post_process > 0.0);
    }

    #[test]
    fn deterministic_results_and_times() {
        let el = gen::gnm(300, 1500, 13);
        let a = MndMstRunner::new(4).run(&el);
        let b = MndMstRunner::new(4).run(&el);
        assert_eq!(a.msf, b.msf);
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.comm_time, b.comm_time);
    }

    #[test]
    fn edgeless_and_tiny_inputs() {
        let empty = EdgeList::new(8);
        let r = MndMstRunner::new(4).run(&empty);
        assert!(r.msf.edges.is_empty());
        assert_eq!(r.msf.num_components, 8);
        let single = gen::path(2, 1);
        let r = MndMstRunner::new(4).run(&single);
        assert_eq!(r.msf.edges.len(), 1);
    }

    #[test]
    fn more_ranks_than_vertices() {
        let el = gen::path(5, 3);
        let r = MndMstRunner::new(8).run(&el);
        assert_eq!(r.msf, kruskal_msf(&el));
    }

    /// The user observer hook sees the same samples the report's PhaseTimes
    /// are built from: re-aggregating the samples per rank with the
    /// recorder's mapping must reproduce the report exactly.
    #[test]
    fn observer_hook_reconstructs_report_phase_times() {
        use std::sync::Mutex;

        #[derive(Default)]
        struct Collector(Mutex<Vec<(PhaseKind, PhaseSample)>>);
        impl PhaseObserver for Collector {
            fn on_phase(&self, kind: PhaseKind, sample: &PhaseSample) {
                self.0.lock().unwrap().push((kind, *sample));
            }
        }

        let el = gen::gnm(400, 1600, 21);
        let nranks = 4;
        let obs = Arc::new(Collector::default());
        let cfg = HyParConfig::default().with_observer(obs.clone());
        let r = MndMstRunner::new(nranks).with_config(cfg).run(&el);

        let samples = obs.0.lock().unwrap();
        assert!(!samples.is_empty());
        // Every phase kind fires at least once somewhere.
        for kind in PhaseKind::ALL {
            assert!(
                samples.iter().any(|(k, _)| *k == kind),
                "{kind:?} never observed"
            );
        }
        // Per-rank reconstruction matches the report's PhaseTimes.
        for rank in 0..nranks {
            let mut ind_comp = 0.0;
            let mut merge = 0.0;
            let mut post = 0.0;
            let mut comm_time = 0.0;
            for (kind, s) in samples.iter().filter(|(_, s)| s.rank as usize == rank) {
                match kind {
                    PhaseKind::IndComp => ind_comp += s.compute_time,
                    PhaseKind::Partition | PhaseKind::MergeParts | PhaseKind::HierMerge => {
                        merge += s.compute_time
                    }
                    PhaseKind::PostProcess => post += s.compute_time,
                }
                comm_time += s.comm_time;
            }
            let ph = &r.phases[rank];
            assert!(
                (ph.ind_comp - ind_comp).abs() < 1e-12,
                "rank {rank} ind_comp"
            );
            assert!((ph.merge - merge).abs() < 1e-12, "rank {rank} merge");
            assert!((ph.post_process - post).abs() < 1e-12, "rank {rank} post");
            // Communication happens only inside observed phases, so the
            // samples must cover the rank's full comm time.
            assert!((ph.comm - comm_time).abs() < 1e-9, "rank {rank} comm");
        }
    }

    /// Observer attached or not, results and simulated times are identical.
    #[test]
    fn observer_does_not_perturb_simulation() {
        struct Null;
        impl PhaseObserver for Null {
            fn on_phase(&self, _: PhaseKind, _: &PhaseSample) {}
        }
        let el = gen::gnm(300, 1200, 23);
        let plain = MndMstRunner::new(4).run(&el);
        let cfg = HyParConfig::default().with_observer(Arc::new(Null));
        let observed = MndMstRunner::new(4).with_config(cfg).run(&el);
        assert_eq!(plain.msf, observed.msf);
        assert_eq!(plain.total_time, observed.total_time);
        assert_eq!(plain.phases, observed.phases);
    }
}
