//! The hierarchical-merging phase (§3.4): ring segment exchanges inside
//! groups, collaborative merging, and the collapse of each group onto its
//! leader, level by level until one rank holds everything.

use mnd_hypar::chaos::ChaosEventKind;
use mnd_hypar::observe::PhaseKind;
use mnd_hypar::runtime::ExchangeMonitor;
use mnd_kernels::cgraph::CompId;
use mnd_net::{Comm, Group, Tag};

use crate::phases::{IndComp, Phase, RankCtx, RankRecovery};
use crate::segment::{choose_segment_with, SegmentMsg};

/// Ring-segment messages.
const TAG_SEG: Tag = Tag::user(1);
/// Whole-holding transfers to the group leader.
const TAG_MERGE: Tag = Tag::user(2);

/// Executes the merge hierarchy. Owns an [`IndComp`] stage for the
/// collaborative-merging computation steps between exchanges.
#[derive(Debug, Default)]
pub struct HierMerge {
    comp: IndComp,
}

impl HierMerge {
    /// A fresh hierarchy runner.
    pub fn new() -> Self {
        HierMerge::default()
    }

    /// One ring shift within the exchanging groups; returns the ownership
    /// announcements and whether this rank absorbed a non-empty segment.
    fn ring_shift(
        cx: &mut RankCtx<'_>,
        comm: &Comm,
        my_group: &Option<Group>,
        groups: &[Group],
        flags: &[bool],
    ) -> (Vec<(CompId, u32)>, bool) {
        let me = comm.rank();
        let mut my_moves: Vec<(CompId, u32)> = Vec::new();
        let mut received_any = false;
        if let Some(g) = my_group {
            let gi = groups.iter().position(|x| x == g).expect("own group");
            if flags[gi] {
                cx.exchange_rounds += 1;
                let left = g.left_of(me);
                let right = g.right_of(me);
                let cap = cx.runner.segment_cap_bytes();
                let strategy = cx.runner.segment_strategy;
                let policy = cx.runner.config.kernel_policy;
                let take = choose_segment_with(&mut cx.cg, cap, strategy, &policy);
                let seg = cx.cg.split_off(&take);
                let msg = SegmentMsg::from_holding(seg);
                my_moves = take.iter().map(|&c| (c, left as u32)).collect();
                let incoming: SegmentMsg = comm.send_recv(left, TAG_SEG, msg, right, TAG_SEG);
                if !incoming.is_empty() {
                    received_any = true;
                    cx.cg.absorb(incoming.into_holding());
                }
            }
        }
        (my_moves, received_any)
    }
}

impl Phase for HierMerge {
    fn kind(&self) -> PhaseKind {
        PhaseKind::HierMerge
    }

    fn run(&mut self, cx: &mut RankCtx<'_>, rec: &mut RankRecovery<'_>) {
        let comm = cx.comm;
        let me = comm.rank();
        let p = comm.size();
        let mut active: Vec<usize> = (0..p).collect();
        while active.len() > 1 {
            cx.levels += 1;
            // group_size 1 would make every rank its own leader and the
            // hierarchy would never shrink; 2 is the smallest group that
            // makes progress (the paper studies 2/4/8/16).
            let groups = Group::partition(&active, cx.cfg().group_size.max(2));
            let my_group = Group::find(&groups, me).cloned();
            let mut monitors: Vec<ExchangeMonitor> =
                groups.iter().map(|_| ExchangeMonitor::new()).collect();

            // --- Ring-exchange rounds (all ranks in lockstep). ---
            loop {
                // Replicated group sizes: one slot per group; every rank
                // evaluates every group's §4.3.4 decision from the same
                // data -> identical flags everywhere.
                let flags: Vec<bool> = cx.observed(PhaseKind::HierMerge, |cx| {
                    let mut sizes = vec![0u64; groups.len()];
                    if let Some(g) = &my_group {
                        let gi = groups.iter().position(|x| x == g).expect("own group");
                        sizes[gi] = cx.cg.num_edges() as u64;
                    }
                    let totals = comm.allreduce_vec_u64(sizes, |a, b| a + b);
                    groups
                        .iter()
                        .zip(monitors.iter_mut())
                        .zip(totals.iter())
                        .map(|((g, mon), &total)| {
                            !g.is_singleton() && mon.observe_and_continue(cx.cfg(), total)
                        })
                        .collect()
                });
                if !flags.iter().any(|&f| f) {
                    break;
                }

                // Ring shift + global ownership announcements (includes
                // empties, keeping the collective in lockstep).
                cx.observed(PhaseKind::HierMerge, |cx| {
                    let (my_moves, received_any) =
                        Self::ring_shift(cx, comm, &my_group, &groups, &flags);
                    let all_moves = comm.allgather_vec(my_moves);
                    for moves in &all_moves {
                        cx.dir.apply_moves(moves);
                    }
                    if received_any {
                        // New residents can unfreeze old borders.
                        cx.cg.clear_frozen();
                    }
                });
                cx.note_holding();

                // Collaborative merging: indComp + ghost + reduce.
                self.comp.run(cx, rec);
            }

            // --- Leader (re-)election. Default leaders are the first
            // group members; with a chaos schedule armed, liveness bits
            // are allreduced (modelling the failure-detector round) and
            // each group elects its first *healthy* member. Every rank
            // evaluates every group from the same replicated data, so the
            // election needs no extra coordination. ---
            let leaders: Vec<usize> = if cx.cfg().chaos.is_set() {
                cx.observed(PhaseKind::HierMerge, |cx| {
                    let chaos = &cx.cfg().chaos;
                    let level = cx.levels as u32;
                    let mut down = vec![0u64; p];
                    if chaos.leader_down(me, level) {
                        down[me] = 1;
                    }
                    let down = comm.allreduce_vec_u64(down, |a, b| a + b);
                    groups
                        .iter()
                        .map(|g| {
                            g.members()
                                .iter()
                                .copied()
                                .find(|&m| down[m] == 0)
                                .unwrap_or_else(|| g.leader())
                        })
                        .collect()
                })
            } else {
                groups.iter().map(|g| g.leader()).collect()
            };
            if let Some(g) = &my_group {
                let gi = groups.iter().position(|x| x == g).expect("own group");
                if leaders[gi] != g.leader() && me == leaders[gi] {
                    cx.emit_chaos(ChaosEventKind::LeaderFailover, 0, leaders[gi] as u64);
                }
            }

            // --- Merge each group to its leader. ---
            cx.observed(PhaseKind::HierMerge, |cx| {
                let mut my_moves: Vec<(CompId, u32)> = Vec::new();
                if let Some(g) = &my_group {
                    let gi = groups.iter().position(|x| x == g).expect("own group");
                    let leader = leaders[gi];
                    if me == leader {
                        for &member in g.members() {
                            if member == me {
                                continue;
                            }
                            let msg: SegmentMsg = comm.recv(member, TAG_MERGE);
                            if !msg.is_empty() {
                                cx.cg.absorb(msg.into_holding());
                            }
                        }
                        cx.cg.clear_frozen();
                    } else {
                        let whole = std::mem::take(&mut cx.cg);
                        my_moves = whole
                            .resident()
                            .iter()
                            .map(|&c| (c, leader as u32))
                            .collect();
                        comm.send(leader, TAG_MERGE, SegmentMsg::from_holding(whole));
                    }
                }
                let all_moves = comm.allgather_vec(my_moves);
                for moves in &all_moves {
                    cx.dir.apply_moves(moves);
                }
            });
            cx.note_holding();

            active = leaders;

            // Leaders run independent computations on the merged data
            // before the next level ("We again perform independent
            // computation steps on the leader nodes").
            if active.len() > 1 {
                self.comp.run(cx, rec);
            }
        }
        // Where the fully merged data ended up — rank 0 unless a failover
        // re-routed a merge. Replicated computation: identical everywhere.
        cx.final_rank = active[0];
    }
}
