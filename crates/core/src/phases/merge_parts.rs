//! The `mergeParts` phase (§3.3): ghost-parent exchange plus self/multi-edge
//! reduction, applied after every independent computation.

use mnd_hypar::observe::PhaseKind;
use mnd_kernels::cgraph::CompId;
use mnd_kernels::reduce::{apply_ghost_parents_with, ghost_parent_message, reduce_holding_with};
use mnd_wire::PackedPairs;

use crate::ghost::relabel_buckets;
use crate::phases::{exchange_mode, Phase, RankCtx, RankRecovery};

/// Consumes the relabels of the preceding `indComp` (stored in
/// [`MergeParts::relabel`] by the caller), exchanges ghost parents, and
/// reduces the holding in place.
#[derive(Debug, Default)]
pub struct MergeParts {
    /// `(old, new)` component renames produced by the last kernel run;
    /// taken (and normalised in place) when the phase executes.
    pub relabel: Vec<(CompId, CompId)>,
}

impl Phase for MergeParts {
    fn kind(&self) -> PhaseKind {
        PhaseKind::MergeParts
    }

    fn run(&mut self, cx: &mut RankCtx<'_>, _rec: &mut RankRecovery<'_>) {
        let mut relabel = std::mem::take(&mut self.relabel);
        cx.observed(PhaseKind::MergeParts, |cx| {
            let comm = cx.comm;
            // Normalise the outgoing ghost-parent message in place (the
            // device results may repeat pairs; §3.3 sends each once).
            ghost_parent_message(&mut relabel);

            let policy = cx.runner.config.kernel_policy;
            let cfg = cx.cfg();
            let buckets = relabel_buckets(&cx.cg, &relabel, &cx.dir, comm.rank(), comm.size());
            let received = if cfg.compressed_relabels {
                // Rename pairs reference few surviving components per
                // round: the dictionary codec densifies them to small
                // indexes on the wire, inverted on receipt.
                comm.alltoallv_phased_enc(
                    buckets,
                    cx.runner.ghost_phase_size,
                    exchange_mode(cfg),
                    PackedPairs::encode,
                    PackedPairs::into_pairs,
                )
            } else {
                comm.alltoallv_phased_with(buckets, cx.runner.ghost_phase_size, exchange_mode(cfg))
            };
            cx.dir.apply_relabels(&relabel);
            for pairs in &received {
                if !pairs.is_empty() {
                    apply_ghost_parents_with(&mut cx.cg, &policy, pairs);
                    cx.dir.apply_relabels(pairs);
                }
            }

            // Reduce: self-edge removal + multi-edge removal, in place.
            let stats = reduce_holding_with(&mut cx.cg, &policy);
            comm.compute(cx.runner.sweep_seconds(stats.edges_before));
        });
    }
}
