//! The driver pipeline, decomposed into phases.
//!
//! `rank_main` used to be one 500-line function; it is now a sequence of
//! [`Phase`] objects sharing a [`RankCtx`]:
//!
//! ```text
//! Partition -> IndComp -> HierMerge -> PostProcess
//!                 |           |
//!                 +-- MergeParts (ghost exchange + reduction; also run
//!                     by HierMerge's collaborative-merging rounds)
//! ```
//!
//! Every phase boundary reports a [`PhaseSample`] (simulated time and
//! traffic deltas) through two sinks: the driver's own
//! [`PhaseTimesRecorder`] — which produces the `PhaseTimes` in
//! [`crate::result::MndMstReport`] — and the user hook configured on
//! [`mnd_hypar::HyParConfig::observer`]. Both see identical samples, so an
//! external observer can rebuild the report's breakdown (or a finer one:
//! samples carry the merge level).

mod hier_merge;
mod ind_comp;
mod merge_parts;
mod partition;
mod post_process;

pub use hier_merge::HierMerge;
pub use ind_comp::IndComp;
pub use merge_parts::MergeParts;
pub use partition::Partition;
pub use post_process::PostProcess;

use std::sync::Mutex;

use mnd_device::DeviceSplit;
use mnd_graph::types::WEdge;
use mnd_graph::{CsrGraph, EdgeList};
use mnd_hypar::chaos::{ChaosEvent, ChaosEventKind};
use mnd_hypar::observe::{PhaseKind, PhaseObserver, PhaseSample};
use mnd_hypar::HyParConfig;
use mnd_kernels::cgraph::CGraph;
use mnd_kernels::msf::MsfResult;
use mnd_net::Comm;

use crate::checkpoint::RankCheckpoint;
use crate::ghost::GhostDirectory;
use crate::result::PhaseTimes;
use crate::runner::{MndMstRunner, RankResult};

/// One stage of the per-rank pipeline. Phases mutate the shared [`RankCtx`]
/// and report their cost through [`RankCtx::observed`].
pub trait Phase {
    /// The observation kind this phase reports under.
    fn kind(&self) -> PhaseKind;
    /// Executes the phase (in lockstep across ranks — every phase runs on
    /// every rank, with empty holdings making the work a no-op).
    fn run(&mut self, cx: &mut RankCtx<'_>);
}

/// Folds phase samples into the report's four-bucket [`PhaseTimes`]:
/// `indComp` compute stands alone, partition/merge/hierarchy compute is
/// merge-side work, post-processing stands alone. (Communication time is
/// taken from the rank's total stats by the report assembler, matching the
/// paper's Figure 7 where "comm" is the fourth bar segment.)
pub struct PhaseTimesRecorder(Mutex<PhaseTimes>);

impl PhaseTimesRecorder {
    fn new() -> Self {
        PhaseTimesRecorder(Mutex::new(PhaseTimes::default()))
    }

    fn snapshot(&self) -> PhaseTimes {
        *self.0.lock().expect("recorder poisoned")
    }
}

impl PhaseObserver for PhaseTimesRecorder {
    fn on_phase(&self, kind: PhaseKind, sample: &PhaseSample) {
        let mut t = self.0.lock().expect("recorder poisoned");
        match kind {
            PhaseKind::IndComp => t.ind_comp += sample.compute_time,
            PhaseKind::Partition | PhaseKind::MergeParts | PhaseKind::HierMerge => {
                t.merge += sample.compute_time
            }
            PhaseKind::PostProcess => t.post_process += sample.compute_time,
        }
    }
}

/// Everything a rank's phases share: the immutable run inputs, the evolving
/// holding + ghost directory, accumulated outputs, and the observation
/// plumbing.
pub struct RankCtx<'a> {
    /// The runner (configuration, platform, cost helpers).
    pub runner: &'a MndMstRunner,
    /// This rank's communicator.
    pub comm: &'a Comm,
    /// The input graph in CSR form (shared, read-only).
    pub csr: &'a CsrGraph,
    /// The input edge list (shared, read-only).
    pub el: &'a EdgeList,
    /// The rank's current holding.
    pub cg: CGraph,
    /// Component → owner directory.
    pub dir: GhostDirectory,
    /// Calibrated intra-node device split.
    pub split: DeviceSplit,
    /// MSF edges contracted by this rank so far.
    pub msf_local: Vec<WEdge>,
    /// The final forest (set on the gathering rank by [`PostProcess`]).
    pub msf: Option<MsfResult>,
    /// Hierarchical-merge levels completed (= current level for samples).
    pub levels: usize,
    /// Ring-exchange rounds executed.
    pub exchange_rounds: usize,
    /// Largest paper-scale holding seen.
    pub max_holding_bytes: u64,
    /// The rank that holds the fully merged data after [`HierMerge`] —
    /// rank 0 unless chaos forced a leader failover along the way.
    pub final_rank: usize,
    /// Recovery points passed so far (the boundary counter chaos
    /// schedules key on). Identical across ranks: recovery points sit at
    /// lockstep phase boundaries.
    pub boundary: u32,
    /// Last checkpoint written (chaos runs only).
    pub checkpoint: Option<RankCheckpoint>,
    recorder: PhaseTimesRecorder,
}

impl<'a> RankCtx<'a> {
    /// Fresh context at rank start; [`Partition`] populates the holding.
    pub fn new(
        runner: &'a MndMstRunner,
        comm: &'a Comm,
        csr: &'a CsrGraph,
        el: &'a EdgeList,
    ) -> Self {
        RankCtx {
            runner,
            comm,
            csr,
            el,
            cg: CGraph::new(),
            dir: GhostDirectory::default(),
            split: DeviceSplit::cpu_only(),
            msf_local: Vec::new(),
            msf: None,
            levels: 0,
            exchange_rounds: 0,
            max_holding_bytes: 0,
            final_rank: 0,
            boundary: 0,
            checkpoint: None,
            recorder: PhaseTimesRecorder::new(),
        }
    }

    /// The HyPar configuration.
    #[inline]
    pub fn cfg(&self) -> &'a HyParConfig {
        &self.runner.config
    }

    /// Runs `f` and attributes its simulated time/traffic delta to `kind`:
    /// the rank's stats are snapshotted around the call and the difference
    /// is emitted to the internal recorder and the configured observer.
    pub fn observed<R>(&mut self, kind: PhaseKind, f: impl FnOnce(&mut Self) -> R) -> R {
        let before = self.comm.stats();
        let out = f(self);
        let delta = self.comm.stats().delta_since(&before);
        let sample = PhaseSample {
            rank: self.comm.rank() as u32,
            level: self.levels as u32,
            compute_time: delta.compute_time,
            comm_time: delta.comm_time,
            bytes_sent: delta.bytes_sent,
            messages_sent: delta.messages_sent,
        };
        self.recorder.on_phase(kind, &sample);
        self.runner.config.observer.emit(kind, &sample);
        out
    }

    /// A phase-boundary recovery point. No-op unless a chaos schedule is
    /// armed, keeping fault-free runs byte-identical to pre-chaos builds.
    ///
    /// With chaos armed the rank, in order: serves any scheduled stall,
    /// writes a checkpoint (charged at the runner's storage rate, counted
    /// in [`mnd_net::RankStats::checkpoint_writes`]), and — if the
    /// schedule crashes it here — loses its in-memory state, pays the
    /// restart penalty, and rebuilds from the checkpoint it just wrote.
    /// Everything is rank-local (no communication), so the lockstep
    /// discipline of the collectives is unaffected.
    pub fn recovery_point(&mut self) {
        let chaos = &self.cfg().chaos;
        if !chaos.is_set() {
            return;
        }
        let b = self.boundary;
        self.boundary += 1;
        let rank = self.comm.rank();

        let stall = chaos.stall_seconds(rank, b);
        if stall > 0.0 {
            self.comm.stall(stall);
            self.emit_chaos(ChaosEventKind::Stall, b, (stall * 1e6) as u64);
        }

        let ckpt = RankCheckpoint::capture(self, b);
        let bytes = mnd_net::Wire::wire_bytes(&ckpt);
        self.comm.compute(self.runner.checkpoint_seconds(bytes));
        self.comm.note_checkpoint_write();
        self.emit_chaos(ChaosEventKind::CheckpointWrite, b, bytes);
        self.checkpoint = Some(ckpt);

        if chaos.crashes_at(rank, b) {
            self.emit_chaos(ChaosEventKind::Crash, b, 0);
            // The crash wipes the rank's in-memory state...
            self.cg = CGraph::new();
            self.dir = GhostDirectory::default();
            self.msf_local = Vec::new();
            // ...the restart pays respawn + checkpoint re-read...
            self.comm.stall(self.runner.restart_seconds(bytes));
            // ...and the state comes back from stable storage.
            let ckpt = self.checkpoint.take().expect("checkpoint written above");
            ckpt.restore(self);
            self.comm.note_checkpoint_restore();
            self.emit_chaos(ChaosEventKind::CheckpointRestore, b, bytes);
        }
    }

    /// Emits a chaos event (stamped with this rank, the current merge
    /// level, and the virtual clock) to the configured observer.
    pub(crate) fn emit_chaos(&self, kind: ChaosEventKind, boundary: u32, detail: u64) {
        let event = ChaosEvent {
            rank: self.comm.rank() as u32,
            kind,
            level: self.levels as u32,
            boundary,
            time: self.comm.now(),
            detail,
        };
        self.runner.config.observer.emit_chaos(&event);
    }

    /// Updates the high-water mark of holding memory.
    pub fn note_holding(&mut self) {
        self.max_holding_bytes = self
            .max_holding_bytes
            .max(self.runner.paper_bytes(&self.cg));
    }

    /// Finishes the rank: packages outputs plus the recorded phase times.
    pub(crate) fn into_result(self) -> RankResult {
        RankResult {
            msf: self.msf,
            phases: self.recorder.snapshot(),
            levels: self.levels,
            exchange_rounds: self.exchange_rounds,
            max_holding_bytes: self.max_holding_bytes,
        }
    }
}
