//! The driver pipeline, decomposed into phases.
//!
//! `rank_main` used to be one 500-line function; it is now a sequence of
//! [`Phase`] objects sharing a [`RankCtx`]:
//!
//! ```text
//! Partition -> IndComp -> HierMerge -> PostProcess
//!                 |           |
//!                 +-- MergeParts (ghost exchange + reduction; also run
//!                     by HierMerge's collaborative-merging rounds)
//! ```
//!
//! Every phase boundary reports a [`PhaseSample`] (simulated time and
//! traffic deltas) through two sinks: the driver's own
//! [`PhaseTimesRecorder`] — which produces the `PhaseTimes` in
//! [`crate::result::MndMstReport`] — and the user hook configured on
//! [`mnd_hypar::HyParConfig::observer`]. Both see identical samples, so an
//! external observer can rebuild the report's breakdown (or a finer one:
//! samples carry the merge level).

mod hier_merge;
mod ind_comp;
mod merge_parts;
mod partition;
mod post_process;

pub use hier_merge::HierMerge;
pub use ind_comp::IndComp;
pub use merge_parts::MergeParts;
pub use partition::Partition;
pub use post_process::PostProcess;

use std::sync::{Arc, Mutex};

use mnd_device::DeviceSplit;
use mnd_engine::{Recoverable, Recovery};
use mnd_graph::types::WEdge;
use mnd_graph::{CsrGraph, EdgeList};
use mnd_hypar::chaos::{ChaosEvent, ChaosEventKind};
use mnd_hypar::observe::{PhaseKind, PhaseObserver, PhaseSample};
use mnd_hypar::HyParConfig;
use mnd_kernels::cgraph::CGraph;
use mnd_kernels::msf::MsfResult;
use mnd_net::{Comm, ExchangeMode};

use crate::checkpoint::RankCheckpoint;
use crate::ghost::GhostDirectory;
use crate::result::PhaseTimes;
use crate::runner::{MndMstRunner, RankResult};

/// The shared recovery driver specialised to the D&C driver's checkpoint
/// payload. Phases call [`mnd_engine::Recovery::step`] with the context at
/// their recovery points (after partitioning and after every mergeParts
/// pass); everything else — stalls, checkpoint cost, replay-log epochs,
/// mid-phase crash arming, fast-forward resume — lives in [`mnd_engine`].
pub type RankRecovery<'a> = Recovery<'a, RankCheckpoint>;

/// The exchange schedule a config asks for (DESIGN.md §8): sparse by
/// default, the dense oracle when `sparse_exchange` is off.
pub fn exchange_mode(cfg: &HyParConfig) -> ExchangeMode {
    if cfg.sparse_exchange {
        ExchangeMode::Sparse
    } else {
        ExchangeMode::Dense
    }
}

/// One stage of the per-rank pipeline. Phases mutate the shared [`RankCtx`]
/// and report their cost through [`RankCtx::observed`].
pub trait Phase {
    /// The observation kind this phase reports under.
    fn kind(&self) -> PhaseKind;
    /// Executes the phase (in lockstep across ranks — every phase runs on
    /// every rank, with empty holdings making the work a no-op). `rec` is
    /// the shared recovery driver; phases with recovery points call
    /// [`mnd_engine::Recovery::step`] on it.
    fn run(&mut self, cx: &mut RankCtx<'_>, rec: &mut RankRecovery<'_>);
}

/// Folds phase samples into the report's four-bucket [`PhaseTimes`]:
/// `indComp` compute stands alone, partition/merge/hierarchy compute is
/// merge-side work, post-processing stands alone. (Communication time is
/// taken from the rank's total stats by the report assembler, matching the
/// paper's Figure 7 where "comm" is the fourth bar segment.)
pub struct PhaseTimesRecorder(Mutex<PhaseTimes>);

impl PhaseTimesRecorder {
    pub(crate) fn new() -> Self {
        PhaseTimesRecorder(Mutex::new(PhaseTimes::default()))
    }

    pub(crate) fn snapshot(&self) -> PhaseTimes {
        *self.0.lock().expect("recorder poisoned")
    }
}

impl PhaseObserver for PhaseTimesRecorder {
    fn on_phase(&self, kind: PhaseKind, sample: &PhaseSample) {
        let mut t = self.0.lock().expect("recorder poisoned");
        match kind {
            PhaseKind::IndComp => t.ind_comp += sample.compute_time,
            PhaseKind::Partition | PhaseKind::MergeParts | PhaseKind::HierMerge => {
                t.merge += sample.compute_time
            }
            PhaseKind::PostProcess => t.post_process += sample.compute_time,
        }
    }
}

/// Everything a rank's phases share: the immutable run inputs, the evolving
/// holding + ghost directory, accumulated outputs, and the observation
/// plumbing.
pub struct RankCtx<'a> {
    /// The runner (configuration, platform, cost helpers).
    pub runner: &'a MndMstRunner,
    /// This rank's communicator.
    pub comm: &'a Comm,
    /// The input graph in CSR form (shared, read-only).
    pub csr: &'a CsrGraph,
    /// The input edge list (shared, read-only).
    pub el: &'a EdgeList,
    /// The rank's current holding.
    pub cg: CGraph,
    /// Component → owner directory.
    pub dir: GhostDirectory,
    /// Calibrated intra-node device split.
    pub split: DeviceSplit,
    /// MSF edges contracted by this rank so far.
    pub msf_local: Vec<WEdge>,
    /// The final forest (set on the gathering rank by [`PostProcess`]).
    pub msf: Option<MsfResult>,
    /// Hierarchical-merge levels completed (= current level for samples).
    pub levels: usize,
    /// Ring-exchange rounds executed.
    pub exchange_rounds: usize,
    /// Largest paper-scale holding seen.
    pub max_holding_bytes: u64,
    /// The rank that holds the fully merged data after [`HierMerge`] —
    /// rank 0 unless chaos forced a leader failover along the way.
    pub final_rank: usize,
    recorder: Arc<PhaseTimesRecorder>,
}

impl<'a> RankCtx<'a> {
    /// Fresh context at rank start; [`Partition`] populates the holding.
    /// `recorder` is owned by the caller so it survives a mid-phase crash
    /// unwind and carries over into the next re-execution attempt (the
    /// checkpoint slot and fired-crash set live in the shared recovery
    /// driver, [`mnd_engine::run_recoverable`]).
    pub fn new(
        runner: &'a MndMstRunner,
        comm: &'a Comm,
        csr: &'a CsrGraph,
        el: &'a EdgeList,
        recorder: Arc<PhaseTimesRecorder>,
    ) -> Self {
        RankCtx {
            runner,
            comm,
            csr,
            el,
            cg: CGraph::new(),
            dir: GhostDirectory::default(),
            split: DeviceSplit::cpu_only(),
            msf_local: Vec::new(),
            msf: None,
            levels: 0,
            exchange_rounds: 0,
            max_holding_bytes: 0,
            final_rank: 0,
            recorder,
        }
    }

    /// The HyPar configuration.
    #[inline]
    pub fn cfg(&self) -> &'a HyParConfig {
        &self.runner.config
    }

    /// Runs `f` and attributes its simulated time/traffic delta to `kind`:
    /// the rank's stats are snapshotted around the call and the difference
    /// is emitted to the internal recorder and the configured observer.
    pub fn observed<R>(&mut self, kind: PhaseKind, f: impl FnOnce(&mut Self) -> R) -> R {
        if self.comm.fast_forward() {
            // Zero-cost re-execution of an already-observed stretch: the
            // stats cannot move, so neither sink gets a (spurious, empty)
            // sample.
            return f(self);
        }
        let before = self.comm.stats();
        let out = f(self);
        let delta = self.comm.stats().delta_since(&before);
        let sample = PhaseSample {
            rank: self.comm.rank() as u32,
            level: self.levels as u32,
            compute_time: delta.compute_time,
            comm_time: delta.comm_time,
            bytes_sent: delta.bytes_sent,
            messages_sent: delta.messages_sent,
        };
        self.recorder.on_phase(kind, &sample);
        self.runner.config.observer.emit(kind, &sample);
        out
    }

    /// Emits a chaos event (stamped with this rank, the current merge
    /// level, and the virtual clock) to the configured observer.
    pub(crate) fn emit_chaos(&self, kind: ChaosEventKind, boundary: u32, detail: u64) {
        if self.comm.fast_forward() {
            // Fast-forward re-traverses boundaries whose events were
            // already reported before the crash; don't report them twice.
            return;
        }
        let event = ChaosEvent {
            rank: self.comm.rank() as u32,
            kind,
            level: self.levels as u32,
            boundary,
            time: self.comm.now(),
            detail,
        };
        self.runner.config.observer.emit_chaos(&event);
    }

    /// Updates the high-water mark of holding memory.
    pub fn note_holding(&mut self) {
        self.max_holding_bytes = self
            .max_holding_bytes
            .max(self.runner.paper_bytes(&self.cg));
    }

    /// Finishes the rank: packages outputs plus the recorded phase times.
    pub(crate) fn into_result(self) -> RankResult {
        RankResult {
            msf: self.msf,
            phases: self.recorder.snapshot(),
            levels: self.levels,
            exchange_rounds: self.exchange_rounds,
            max_holding_bytes: self.max_holding_bytes,
        }
    }
}

/// The D&C driver's side of the shared recovery contract: checkpoints are
/// [`RankCheckpoint`]s captured from the context, and chaos events carry
/// the merge level the rank is at.
impl Recoverable for RankCtx<'_> {
    type State = RankCheckpoint;

    fn capture(&self) -> RankCheckpoint {
        RankCheckpoint::capture(self)
    }

    fn restore(&mut self, snapshot: RankCheckpoint) {
        snapshot.restore(self);
    }

    fn chaos_level(&self) -> u32 {
        self.levels as u32
    }
}
