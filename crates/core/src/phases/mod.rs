//! The driver pipeline, decomposed into phases.
//!
//! `rank_main` used to be one 500-line function; it is now a sequence of
//! [`Phase`] objects sharing a [`RankCtx`]:
//!
//! ```text
//! Partition -> IndComp -> HierMerge -> PostProcess
//!                 |           |
//!                 +-- MergeParts (ghost exchange + reduction; also run
//!                     by HierMerge's collaborative-merging rounds)
//! ```
//!
//! Every phase boundary reports a [`PhaseSample`] (simulated time and
//! traffic deltas) through two sinks: the driver's own
//! [`PhaseTimesRecorder`] — which produces the `PhaseTimes` in
//! [`crate::result::MndMstReport`] — and the user hook configured on
//! [`mnd_hypar::HyParConfig::observer`]. Both see identical samples, so an
//! external observer can rebuild the report's breakdown (or a finer one:
//! samples carry the merge level).

mod hier_merge;
mod ind_comp;
mod merge_parts;
mod partition;
mod post_process;

pub use hier_merge::HierMerge;
pub use ind_comp::IndComp;
pub use merge_parts::MergeParts;
pub use partition::Partition;
pub use post_process::PostProcess;

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

use mnd_device::DeviceSplit;
use mnd_graph::types::WEdge;
use mnd_graph::{CsrGraph, EdgeList};
use mnd_hypar::chaos::{ChaosEvent, ChaosEventKind};
use mnd_hypar::observe::{PhaseKind, PhaseObserver, PhaseSample};
use mnd_hypar::HyParConfig;
use mnd_kernels::cgraph::CGraph;
use mnd_kernels::msf::MsfResult;
use mnd_net::Comm;

use crate::checkpoint::RankCheckpoint;
use crate::ghost::GhostDirectory;
use crate::result::PhaseTimes;
use crate::runner::{MndMstRunner, RankResult};

/// One stage of the per-rank pipeline. Phases mutate the shared [`RankCtx`]
/// and report their cost through [`RankCtx::observed`].
pub trait Phase {
    /// The observation kind this phase reports under.
    fn kind(&self) -> PhaseKind;
    /// Executes the phase (in lockstep across ranks — every phase runs on
    /// every rank, with empty holdings making the work a no-op).
    fn run(&mut self, cx: &mut RankCtx<'_>);
}

/// Folds phase samples into the report's four-bucket [`PhaseTimes`]:
/// `indComp` compute stands alone, partition/merge/hierarchy compute is
/// merge-side work, post-processing stands alone. (Communication time is
/// taken from the rank's total stats by the report assembler, matching the
/// paper's Figure 7 where "comm" is the fourth bar segment.)
pub struct PhaseTimesRecorder(Mutex<PhaseTimes>);

impl PhaseTimesRecorder {
    pub(crate) fn new() -> Self {
        PhaseTimesRecorder(Mutex::new(PhaseTimes::default()))
    }

    pub(crate) fn snapshot(&self) -> PhaseTimes {
        *self.0.lock().expect("recorder poisoned")
    }
}

impl PhaseObserver for PhaseTimesRecorder {
    fn on_phase(&self, kind: PhaseKind, sample: &PhaseSample) {
        let mut t = self.0.lock().expect("recorder poisoned");
        match kind {
            PhaseKind::IndComp => t.ind_comp += sample.compute_time,
            PhaseKind::Partition | PhaseKind::MergeParts | PhaseKind::HierMerge => {
                t.merge += sample.compute_time
            }
            PhaseKind::PostProcess => t.post_process += sample.compute_time,
        }
    }
}

/// Everything a rank's phases share: the immutable run inputs, the evolving
/// holding + ghost directory, accumulated outputs, and the observation
/// plumbing.
pub struct RankCtx<'a> {
    /// The runner (configuration, platform, cost helpers).
    pub runner: &'a MndMstRunner,
    /// This rank's communicator.
    pub comm: &'a Comm,
    /// The input graph in CSR form (shared, read-only).
    pub csr: &'a CsrGraph,
    /// The input edge list (shared, read-only).
    pub el: &'a EdgeList,
    /// The rank's current holding.
    pub cg: CGraph,
    /// Component → owner directory.
    pub dir: GhostDirectory,
    /// Calibrated intra-node device split.
    pub split: DeviceSplit,
    /// MSF edges contracted by this rank so far.
    pub msf_local: Vec<WEdge>,
    /// The final forest (set on the gathering rank by [`PostProcess`]).
    pub msf: Option<MsfResult>,
    /// Hierarchical-merge levels completed (= current level for samples).
    pub levels: usize,
    /// Ring-exchange rounds executed.
    pub exchange_rounds: usize,
    /// Largest paper-scale holding seen.
    pub max_holding_bytes: u64,
    /// The rank that holds the fully merged data after [`HierMerge`] —
    /// rank 0 unless chaos forced a leader failover along the way.
    pub final_rank: usize,
    /// Recovery points passed so far (the boundary counter chaos
    /// schedules key on). Identical across ranks: recovery points sit at
    /// lockstep phase boundaries.
    pub boundary: u32,
    /// Boundary whose checkpoint this re-execution resumes from (`None`
    /// outside post-crash re-execution): the rank fast-forwards to it and
    /// swaps the stored checkpoint in there.
    pub resume_boundary: Option<u32>,
    /// Last checkpoint written (chaos runs only). Owned by `rank_main` so
    /// it survives the unwind of a mid-phase crash.
    pub checkpoint: Rc<RefCell<Option<RankCheckpoint>>>,
    /// Mid-phase crash points `(epoch, op)` that already fired — owned by
    /// `rank_main`; a fired crash is never re-armed during re-execution.
    fired: &'a RefCell<BTreeSet<(u32, u64)>>,
    recorder: Arc<PhaseTimesRecorder>,
}

impl<'a> RankCtx<'a> {
    /// Fresh context at rank start; [`Partition`] populates the holding.
    /// `recorder`, `checkpoint`, and `fired` are owned by the caller so
    /// they survive a mid-phase crash unwind and carry over into the next
    /// re-execution attempt.
    pub fn new(
        runner: &'a MndMstRunner,
        comm: &'a Comm,
        csr: &'a CsrGraph,
        el: &'a EdgeList,
        recorder: Arc<PhaseTimesRecorder>,
        checkpoint: Rc<RefCell<Option<RankCheckpoint>>>,
        fired: &'a RefCell<BTreeSet<(u32, u64)>>,
    ) -> Self {
        RankCtx {
            runner,
            comm,
            csr,
            el,
            cg: CGraph::new(),
            dir: GhostDirectory::default(),
            split: DeviceSplit::cpu_only(),
            msf_local: Vec::new(),
            msf: None,
            levels: 0,
            exchange_rounds: 0,
            max_holding_bytes: 0,
            final_rank: 0,
            boundary: 0,
            resume_boundary: None,
            checkpoint,
            fired,
            recorder,
        }
    }

    /// The HyPar configuration.
    #[inline]
    pub fn cfg(&self) -> &'a HyParConfig {
        &self.runner.config
    }

    /// Runs `f` and attributes its simulated time/traffic delta to `kind`:
    /// the rank's stats are snapshotted around the call and the difference
    /// is emitted to the internal recorder and the configured observer.
    pub fn observed<R>(&mut self, kind: PhaseKind, f: impl FnOnce(&mut Self) -> R) -> R {
        if self.comm.fast_forward() {
            // Zero-cost re-execution of an already-observed stretch: the
            // stats cannot move, so neither sink gets a (spurious, empty)
            // sample.
            return f(self);
        }
        let before = self.comm.stats();
        let out = f(self);
        let delta = self.comm.stats().delta_since(&before);
        let sample = PhaseSample {
            rank: self.comm.rank() as u32,
            level: self.levels as u32,
            compute_time: delta.compute_time,
            comm_time: delta.comm_time,
            bytes_sent: delta.bytes_sent,
            messages_sent: delta.messages_sent,
        };
        self.recorder.on_phase(kind, &sample);
        self.runner.config.observer.emit(kind, &sample);
        out
    }

    /// A phase-boundary recovery point. No-op unless a chaos schedule is
    /// armed, keeping fault-free runs byte-identical to pre-chaos builds.
    ///
    /// With chaos armed the rank, in order: serves any scheduled stall,
    /// writes a checkpoint (charged at the runner's storage rate, counted
    /// in [`mnd_net::RankStats::checkpoint_writes`]), commits it — which
    /// garbage-collects the send-side replay log and advances the epoch —
    /// and, if the schedule crashes it here, loses its in-memory state,
    /// pays the restart penalty, and rebuilds from the checkpoint it just
    /// wrote. Everything is rank-local (no communication), so the lockstep
    /// discipline of the collectives is unaffected.
    ///
    /// During post-crash fast-forward the boundary is only *traversed*:
    /// stall/checkpoint/crash work was already charged before the crash.
    /// At the resume boundary the stored checkpoint is swapped in and the
    /// rank switches to live replay of the interrupted epoch
    /// (DESIGN.md §5f).
    pub fn recovery_point(&mut self) {
        let chaos = &self.cfg().chaos;
        if !chaos.is_set() {
            return;
        }
        let b = self.boundary;
        self.boundary += 1;
        let rank = self.comm.rank();

        if self.comm.fast_forward() {
            self.comm.advance_epoch();
            if Some(b) == self.resume_boundary {
                let ckpt = self
                    .checkpoint
                    .borrow()
                    .clone()
                    .expect("resume boundary must have a committed checkpoint");
                debug_assert_eq!(ckpt.boundary, b, "stale checkpoint in the slot");
                let bytes = mnd_net::Wire::wire_bytes(&ckpt);
                ckpt.restore(self);
                self.comm.set_fast_forward(false);
                self.comm.set_replay_live(true);
                self.comm.note_checkpoint_restore();
                self.emit_chaos(ChaosEventKind::CheckpointRestore, b, bytes);
                self.arm_crash_for_current_epoch();
            }
            return;
        }
        // Replay normally goes live inside send/recv when it catches up
        // with the crash point; an epoch tail without fabric ops ends here
        // at the latest.
        self.comm.set_replay_live(false);

        let stall = chaos.stall_seconds(rank, b);
        if stall > 0.0 {
            self.comm.stall(stall);
            self.emit_chaos(ChaosEventKind::Stall, b, (stall * 1e6) as u64);
        }

        let ckpt = RankCheckpoint::capture(self, b);
        let bytes = mnd_net::Wire::wire_bytes(&ckpt);
        self.comm.compute(self.runner.checkpoint_seconds(bytes));
        self.comm.note_checkpoint_write();
        self.emit_chaos(ChaosEventKind::CheckpointWrite, b, bytes);
        *self.checkpoint.borrow_mut() = Some(ckpt);
        // Commit: rollback can never re-enter epochs at or before this
        // boundary, so their send-side replay entries fold away; the epoch
        // beginning here may carry a scheduled mid-phase crash.
        self.comm.gc_replay_sends(self.comm.epoch());
        self.comm.advance_epoch();
        // Past the plan's replay horizon no mid-phase crash can fire on
        // this rank again, so no rollback will ever read the log: retire
        // it wholesale (ROADMAP replay-log GC).
        if let Some(h) = chaos.replay_horizon(rank) {
            if self.comm.epoch() >= h {
                self.comm.retire_replay_log();
            }
        }
        self.arm_crash_for_current_epoch();

        if chaos.crashes_at(rank, b) {
            self.emit_chaos(ChaosEventKind::Crash, b, 0);
            // The crash wipes the rank's in-memory state...
            self.cg = CGraph::new();
            self.dir = GhostDirectory::default();
            self.msf_local = Vec::new();
            // ...the restart pays respawn + checkpoint re-read...
            self.comm.stall(self.runner.restart_seconds(bytes));
            // ...and the state comes back from stable storage (the slot
            // keeps its copy: a later mid-phase crash may need it again).
            let ckpt = self
                .checkpoint
                .borrow()
                .clone()
                .expect("checkpoint written above");
            ckpt.restore(self);
            self.comm.note_checkpoint_restore();
            self.emit_chaos(ChaosEventKind::CheckpointRestore, b, bytes);
        }
    }

    /// Arms the chaos plan's mid-phase crash for the epoch the rank is in,
    /// unless that crash already fired (a fired crash must not loop).
    pub(crate) fn arm_crash_for_current_epoch(&self) {
        if self.comm.fast_forward() {
            return;
        }
        let epoch = self.comm.epoch();
        if let Some(op) = self.cfg().chaos.mid_phase_crash(self.comm.rank(), epoch) {
            if !self.fired.borrow().contains(&(epoch, op)) {
                self.comm.arm_mid_phase_crash(op);
            }
        }
    }

    /// Emits a chaos event (stamped with this rank, the current merge
    /// level, and the virtual clock) to the configured observer.
    pub(crate) fn emit_chaos(&self, kind: ChaosEventKind, boundary: u32, detail: u64) {
        if self.comm.fast_forward() {
            // Fast-forward re-traverses boundaries whose events were
            // already reported before the crash; don't report them twice.
            return;
        }
        let event = ChaosEvent {
            rank: self.comm.rank() as u32,
            kind,
            level: self.levels as u32,
            boundary,
            time: self.comm.now(),
            detail,
        };
        self.runner.config.observer.emit_chaos(&event);
    }

    /// Updates the high-water mark of holding memory.
    pub fn note_holding(&mut self) {
        self.max_holding_bytes = self
            .max_holding_bytes
            .max(self.runner.paper_bytes(&self.cg));
    }

    /// Finishes the rank: packages outputs plus the recorded phase times.
    pub(crate) fn into_result(self) -> RankResult {
        RankResult {
            msf: self.msf,
            phases: self.recorder.snapshot(),
            levels: self.levels,
            exchange_rounds: self.exchange_rounds,
            max_holding_bytes: self.max_holding_bytes,
        }
    }
}
