//! The independent-computation phase (§3.2 / §4.1.2): device kernel runs
//! with recursion (§4.3.3), each followed by a [`MergeParts`] pass.

use mnd_hypar::api::ind_comp;
use mnd_hypar::observe::PhaseKind;

use crate::phases::{MergeParts, Phase, RankCtx, RankRecovery};

/// One *computation step*: `indComp` on the node's device(s), ghost-parent
/// exchange, self/multi-edge reduction — repeated while the global maximum
/// reduced size stays over the recursion threshold and progress continues.
/// Called in lockstep by every rank; empty holdings make every part a
/// no-op.
#[derive(Debug, Default)]
pub struct IndComp {
    merge: MergeParts,
}

impl IndComp {
    /// A computation step with a fresh `mergeParts` stage.
    pub fn new() -> Self {
        IndComp::default()
    }
}

impl Phase for IndComp {
    fn kind(&self) -> PhaseKind {
        PhaseKind::IndComp
    }

    fn run(&mut self, cx: &mut RankCtx<'_>, rec: &mut RankRecovery<'_>) {
        // Resolved once per step: the paper's fixed constant or the
        // platform-calibrated break-even point (§4.3.3), already in scaled
        // edges. Identical on every rank, so the lockstep break below is a
        // global decision.
        let threshold = cx.runner.recursion_threshold_edges();
        for _round in 0..cx.runner.max_recursion_rounds.max(1) {
            // Independent computations on the node's device(s).
            let unions = cx.observed(PhaseKind::IndComp, |cx| {
                let runner = cx.runner;
                let run = ind_comp(&mut cx.cg, &runner.platform, &cx.split, &runner.config);
                cx.comm.compute(run.compute_time + run.transfer_time);
                cx.msf_local.extend(run.msf_edges.iter().copied());
                self.merge.relabel = run.relabel;
                run.msf_edges.len() as u64
            });

            // Ghost-parent exchange + reduction (§3.3).
            self.merge.run(cx, rec);
            rec.step(cx);

            // Global recursion decision (§4.3.3): recurse while any rank's
            // reduced holding is still over the threshold AND any rank made
            // progress (otherwise another round cannot contract more).
            let (max_edges, total_unions) = cx.observed(PhaseKind::IndComp, |cx| {
                (
                    cx.comm.allreduce_u64(cx.cg.num_edges() as u64, u64::max),
                    cx.comm.allreduce_u64(unions, |a, b| a + b),
                )
            });
            if total_unions == 0 || max_edges <= threshold {
                break;
            }
        }
        cx.note_holding();
    }
}
