//! The post-processing phase (§4.1.4): final whole-holding contraction on
//! the last remaining rank, then the MSF gather.

use mnd_graph::types::WEdge;
use mnd_hypar::api::post_process;
use mnd_hypar::observe::PhaseKind;
use mnd_kernels::msf::MsfResult;

use crate::phases::{Phase, RankCtx, RankRecovery};

/// Finishes the forest on the final rank — rank 0 unless chaos leader
/// failovers re-routed the merge hierarchy ([`RankCtx::final_rank`]) —
/// and gathers the MSF there, setting [`RankCtx::msf`].
#[derive(Debug, Default)]
pub struct PostProcess;

impl Phase for PostProcess {
    fn kind(&self) -> PhaseKind {
        PhaseKind::PostProcess
    }

    fn run(&mut self, cx: &mut RankCtx<'_>, _rec: &mut RankRecovery<'_>) {
        cx.observed(PhaseKind::PostProcess, |cx| {
            let comm = cx.comm;
            let final_rank = cx.final_rank;
            if comm.rank() == final_rank && !cx.cg.is_empty() {
                debug_assert_eq!(
                    cx.cg.num_cut_edges(),
                    0,
                    "final holding must be self-contained"
                );
                let runner = cx.runner;
                let (edges, t) = post_process(&mut cx.cg, &runner.platform, &runner.config);
                comm.compute(t);
                cx.msf_local.extend(edges);
            }

            // Gather the MSF at the final rank.
            let msf_local = std::mem::take(&mut cx.msf_local);
            let gathered = comm.gather_vec(final_rank, msf_local);
            cx.msf = gathered.map(|parts| {
                let all: Vec<WEdge> = parts.into_iter().flatten().collect();
                MsfResult::from_edges(cx.el.num_vertices(), all)
            });
        });
    }
}
