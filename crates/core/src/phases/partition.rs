//! The partitioning phase (§3.1): degree exchange, 1D cuts, device
//! calibration, holding construction, and the ghost-information exchange.

use mnd_graph::partition::partition_1d_by_degrees;
use mnd_hypar::api::part_graph;
use mnd_hypar::observe::PhaseKind;
use mnd_kernels::cgraph::{CGraph, CompId};
use mnd_kernels::filter::filter_holding;
use mnd_wire::PackedIds;

use crate::ghost::GhostDirectory;
use crate::phases::{exchange_mode, Phase, RankCtx, RankRecovery};

/// `partGraph`: leaves the context with a level-0 holding, a seeded ghost
/// directory, and the calibrated CPU/GPU split.
#[derive(Debug, Default)]
pub struct Partition;

impl Phase for Partition {
    fn kind(&self) -> PhaseKind {
        PhaseKind::Partition
    }

    fn run(&mut self, cx: &mut RankCtx<'_>, rec: &mut RankRecovery<'_>) {
        cx.observed(PhaseKind::Partition, |cx| {
            let comm = cx.comm;
            let runner = cx.runner;
            let cfg = cx.cfg();
            let me = comm.rank();
            let p = comm.size();

            // Gemini-style slice read + degree allreduce + 1D cuts.
            let m_edges = cx.el.len();
            let lo = me * m_edges / p;
            let hi = (me + 1) * m_edges / p;
            let mut partial = vec![0u64; cx.el.num_vertices() as usize];
            for e in &cx.el.edges()[lo..hi] {
                partial[e.u as usize] += 1;
                partial[e.v as usize] += 1;
            }
            comm.compute(runner.sweep_seconds((hi - lo) as u64));
            let degrees = comm.allreduce_vec_u64(partial, |a, b| a + b);
            let ranges = partition_1d_by_degrees(&degrees, p, 0.0);
            let my_range = ranges[me];

            // Intra-node device split (§4.3.1), calibrated on the local
            // partition's induced subgraph.
            cx.split = if runner.platform.is_hybrid() {
                let keep: Vec<u32> = my_range.iter().collect();
                let local = cx.csr.induced_subgraph(&keep);
                let part = part_graph(&local, 1, &runner.platform, cfg);
                // Calibration runs 5-10 small kernels on both devices;
                // charge a sweep over the sampled edges.
                let sampled = (local.num_undirected_edges() as f64
                    * cfg.calibration_frac
                    * cfg.calibration_samples as f64) as u64;
                comm.compute(runner.sweep_seconds(sampled));
                part.split
            } else {
                mnd_device::DeviceSplit::cpu_only()
            };

            // Holding + ghost information.
            cx.cg = CGraph::from_partition(cx.csr, my_range);
            comm.compute(runner.sweep_seconds(cx.cg.num_edges() as u64));

            // Filter-Boruvka (DESIGN.md §8): prune provably-non-MST
            // internal edges from the level-0 holding before any exchange
            // pays for them. Cut edges are exempt inside filter_holding —
            // they are duplicated on both endpoint owners and the
            // ghost-parent protocol needs both copies alive.
            if cfg.filter_sample_prob > 0.0 {
                let before = cx.cg.num_edges() as u64;
                // One ascending sweep: a sort plus a DSU pass.
                comm.compute(runner.sweep_seconds(before));
                filter_holding(&mut cx.cg, cfg.filter_sample_prob, cfg.seed);
            }

            cx.dir = GhostDirectory::from_ranges(ranges);
            cx.note_holding();

            // makeGhostInformation: exchange boundary vertex ids so every
            // rank can build its ghostList hash table (§3.1). Our
            // GhostDirectory derives owners from the ranges, so the payload
            // itself is only used as a consistency check — but the exchange
            // is performed for its (phased) communication cost, like the
            // paper's.
            let mut buckets: Vec<Vec<CompId>> = (0..p).map(|_| Vec::new()).collect();
            for e in cx.cg.iter_edges() {
                for (mine, ghost) in [(e.a, e.b), (e.b, e.a)] {
                    if cx.cg.is_resident(mine) && !cx.cg.is_resident(ghost) {
                        let owner = cx.dir.owner(ghost) as usize;
                        if owner != me {
                            buckets[owner].push(mine);
                        }
                    }
                }
            }
            for b in &mut buckets {
                b.sort_unstable();
                b.dedup();
            }
            let mode = exchange_mode(cfg);
            let received = if cfg.compressed_relabels {
                // Boundary ids are sorted + deduplicated per bucket, the
                // shape the delta-varint codec compresses best.
                comm.alltoallv_phased_enc(
                    buckets,
                    runner.ghost_phase_size,
                    mode,
                    PackedIds::encode,
                    PackedIds::into_ids,
                )
            } else {
                comm.alltoallv_phased_with(buckets, runner.ghost_phase_size, mode)
            };
            // Consistency: every vertex a neighbour reports as its boundary
            // must be non-resident here and owned by that neighbour.
            for (src, verts) in received.iter().enumerate() {
                for &v in verts {
                    debug_assert_eq!(cx.dir.owner(v) as usize, src, "ghost table mismatch");
                }
            }
        });
        rec.step(cx);
    }
}
