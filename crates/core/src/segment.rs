//! Segment selection for the ring exchange (§3.4).
//!
//! "The processors in a group divide their components into segments and
//! exchange the segments. The segments are formed such that a processor
//! will be able to accommodate at least one segment it receives from
//! another processor in addition to the segments that it contains."
//!
//! A segment carries roughly half of the holder's wire bytes, additionally
//! capped so the segment's (paper-scale) bytes fit within the receiver's
//! guaranteed headroom. Which components make up that half is a
//! bin-packing choice ([`SegmentStrategy`]): the original first-fit suffix
//! walk, or the default size-aware best-fit-decreasing packing that fills
//! the budget with the heaviest components first — on skewed holdings the
//! latter moves the hub components immediately instead of trickling leaves,
//! so groups converge in fewer ring rounds.

use mnd_kernels::cgraph::{CEdge, CGraph, CompId};
use mnd_kernels::policy::KernelPolicy;
use mnd_net::Wire;

/// A segment in flight between two ranks: resident components, their
/// edges (boundary edges are copies — see `CGraph::split_off`), and the
/// frozen marks that travel along.
#[derive(Clone, Debug)]
pub struct SegmentMsg {
    /// Component ids moving to the receiver.
    pub resident: Vec<CompId>,
    /// Edges incident to those components.
    pub edges: Vec<CEdge>,
    /// Frozen subset of `resident`.
    pub frozen: Vec<CompId>,
}

impl SegmentMsg {
    /// An empty segment (sent by converged/empty holders so the ring stays
    /// in lockstep).
    pub fn empty() -> Self {
        SegmentMsg {
            resident: Vec::new(),
            edges: Vec::new(),
            frozen: Vec::new(),
        }
    }

    /// True if nothing moves.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// Converts a split-off holding into a message.
    pub fn from_holding(cg: CGraph) -> Self {
        // Destructure via accessors (CGraph fields are private).
        SegmentMsg {
            resident: cg.resident().to_vec(),
            frozen: cg.frozen().to_vec(),
            edges: cg.edges_vec(),
        }
    }

    /// Converts back into a holding at the receiver.
    pub fn into_holding(self) -> CGraph {
        let mut resident = self.resident;
        resident.sort_unstable();
        resident.dedup();
        CGraph::from_parts(resident, self.edges, self.frozen)
    }
}

impl Wire for SegmentMsg {
    /// Wire size composes from the fields: `Comm::send` charges exactly
    /// this, so the cost model sees the same bytes the receiver unpacks.
    fn wire_bytes(&self) -> u64 {
        self.resident.wire_bytes() + self.edges.wire_bytes() + self.frozen.wire_bytes()
    }
}

/// How the next outgoing segment is packed from the holder's components.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SegmentStrategy {
    /// The original walk: take the suffix of the resident list (highest
    /// ids first) until the edge budget fills. Oblivious to component
    /// sizes — a heavy hub sitting at a low id never moves until
    /// everything above it has.
    FirstFit,
    /// Size-aware best-fit decreasing: components are considered from
    /// heaviest (most incident edges) to lightest and greedily added while
    /// they fit the budget, so each round ships the fullest segment the
    /// cap allows. On skewed holdings this retires hub components in the
    /// first rounds and groups need fewer ring exchanges to converge.
    #[default]
    BestFitDecreasing,
}

/// Picks the components of the next outgoing segment: a subset of the
/// resident components carrying at most half of the holding's wire bytes,
/// capped at `max_bytes`, packed per the default [`SegmentStrategy`]. The
/// holder always keeps at least one component so it still participates in
/// collaborative merging.
///
/// Returns an empty vector when the holder has fewer than 2 components
/// (nothing sensible to send).
pub fn choose_segment(cg: &mut CGraph, max_bytes: u64) -> Vec<CompId> {
    choose_segment_with(
        cg,
        max_bytes,
        SegmentStrategy::default(),
        &KernelPolicy::default(),
    )
}

/// As [`choose_segment`] with an explicit packing strategy and kernel
/// policy (the incident-count column is a parallel reduction above the
/// policy crossover).
///
/// Components are weighed by the **wire bytes** they put in the outgoing
/// [`SegmentMsg`] — resident id + incident edges × edge size + the frozen
/// mark if present — so the packing weight and the `max_bytes` cap share
/// units. The old incident-*count* weighting under-counted components with
/// frozen marks and made the cap an edge-count estimate that drifted from
/// what [`mnd_net::Comm::send`] actually charges.
pub fn choose_segment_with(
    cg: &mut CGraph,
    max_bytes: u64,
    strategy: SegmentStrategy,
    policy: &KernelPolicy,
) -> Vec<CompId> {
    let n = cg.num_resident();
    if n < 2 {
        return Vec::new();
    }
    let resident: Vec<CompId> = cg.resident().to_vec();
    let frozen: std::collections::HashSet<CompId> = cg.frozen().iter().copied().collect();
    let edge_bytes = std::mem::size_of::<CEdge>() as u64;
    let id_bytes = std::mem::size_of::<CompId>() as u64;
    let weights: Vec<u64> = cg
        .incident_counts_with(policy)
        .iter()
        .zip(&resident)
        .map(|(&cnt, c)| {
            let mark = if frozen.contains(c) { id_bytes } else { 0 };
            id_bytes + cnt * edge_bytes + mark
        })
        .collect();
    let total: u64 = weights.iter().sum();
    let target = (total / 2).min(max_bytes).max(1);

    let mut acc = 0u64;
    let mut take = Vec::new();
    match strategy {
        SegmentStrategy::FirstFit => {
            // Suffix walk; the first component is taken unconditionally so
            // the segment always makes progress.
            for i in (1..n).rev() {
                let w = weights[i];
                if !take.is_empty() && acc + w > target {
                    break;
                }
                take.push(resident[i]);
                acc += w;
                if acc >= target {
                    break;
                }
            }
        }
        SegmentStrategy::BestFitDecreasing => {
            // Heaviest-first greedy packing; ties broken by id so the
            // choice is deterministic.
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_unstable_by(|&a, &b| {
                weights[b]
                    .cmp(&weights[a])
                    .then(resident[a].cmp(&resident[b]))
            });
            for &i in &order {
                if take.len() + 1 == n || acc >= target {
                    break;
                }
                if acc + weights[i] <= target {
                    take.push(resident[i]);
                    acc += weights[i];
                }
            }
            if take.is_empty() {
                // Every single component overshoots the budget: send the
                // lightest one anyway (minimal overshoot, same progress
                // guarantee as first-fit's unconditional first pick).
                if let Some(&i) = order.last() {
                    take.push(resident[i]);
                }
            }
        }
    }
    take.sort_unstable();
    take
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnd_graph::gen;

    fn holding(seed: u64) -> CGraph {
        CGraph::from_edge_list(&gen::gnm(100, 500, seed))
    }

    #[test]
    fn segment_round_trips_through_message() {
        let mut cg = holding(1);
        let take = choose_segment(&mut cg, u64::MAX);
        assert!(!take.is_empty());
        let seg = cg.split_off(&take);
        let before = seg.clone();
        let msg = SegmentMsg::from_holding(seg);
        assert!(msg.wire_bytes() > 0);
        let back = msg.into_holding();
        assert_eq!(back, before);
    }

    #[test]
    fn segment_takes_roughly_half_edges() {
        for strategy in [
            SegmentStrategy::FirstFit,
            SegmentStrategy::BestFitDecreasing,
        ] {
            let mut cg = holding(2);
            let take = choose_segment_with(&mut cg, u64::MAX, strategy, &KernelPolicy::default());
            let frac = take.len() as f64 / cg.num_resident() as f64;
            assert!((0.15..0.85).contains(&frac), "{strategy:?} fraction {frac}");
        }
    }

    #[test]
    fn best_fit_needs_no_more_components_than_first_fit() {
        let mut cg = holding(2);
        let ff = choose_segment_with(
            &mut cg,
            u64::MAX,
            SegmentStrategy::FirstFit,
            &KernelPolicy::default(),
        );
        let bfd = choose_segment_with(
            &mut cg,
            u64::MAX,
            SegmentStrategy::BestFitDecreasing,
            &KernelPolicy::default(),
        );
        // Both fill the same edge target; BFD does it with the heaviest
        // components, so it never needs more of them.
        assert!(bfd.len() <= ff.len(), "bfd {} > ff {}", bfd.len(), ff.len());
    }

    #[test]
    fn best_fit_ships_the_hub_of_a_star() {
        // Hub component 0 touches ten leaves: counts are 10, 1, 1, ...
        // (total 20, target 10). BFD ships the hub alone; the suffix walk
        // trickles every leaf instead.
        let edges: Vec<CEdge> = (1..=10u32)
            .map(|k| CEdge::new(0, k, mnd_graph::WEdge::new(0, k, k)))
            .collect();
        let resident: Vec<CompId> = (0..=10).collect();
        let mut cg = CGraph::from_parts(resident, edges, vec![]);
        let bfd = choose_segment_with(
            &mut cg,
            u64::MAX,
            SegmentStrategy::BestFitDecreasing,
            &KernelPolicy::default(),
        );
        assert_eq!(bfd, vec![0]);
        let ff = choose_segment_with(
            &mut cg,
            u64::MAX,
            SegmentStrategy::FirstFit,
            &KernelPolicy::default(),
        );
        // The suffix walk trickles leaves until the byte budget fills (it
        // stops one leaf short of half the holding's bytes, never touching
        // the hub).
        assert!(!ff.contains(&0), "first-fit must miss the hub: {ff:?}");
        assert_eq!(ff.len(), 9, "first-fit trickles the leaves: {ff:?}");
    }

    #[test]
    fn frozen_marks_count_toward_segment_weight() {
        // Components 1 and 2 have identical edge counts (one boundary edge
        // each); freezing 2 makes it strictly heavier on the wire, so BFD
        // must ship it first — under count weighting the id tiebreak would
        // pick 1.
        let edges = vec![
            CEdge::new(1, 7, mnd_graph::WEdge::new(1, 7, 1)),
            CEdge::new(2, 8, mnd_graph::WEdge::new(2, 8, 2)),
        ];
        let mut cg = CGraph::from_parts(vec![1, 2, 3], edges, vec![2]);
        let bfd = choose_segment_with(
            &mut cg,
            u64::MAX,
            SegmentStrategy::BestFitDecreasing,
            &KernelPolicy::default(),
        );
        assert_eq!(bfd, vec![2], "the frozen component weighs more: {bfd:?}");
    }

    #[test]
    fn byte_cap_limits_segment() {
        let mut cg = holding(3);
        let small = choose_segment(&mut cg, 200); // ~10 edges worth
        let large = choose_segment(&mut cg, u64::MAX);
        assert!(small.len() <= large.len());
        assert!(!small.is_empty());
    }

    #[test]
    fn holder_always_keeps_a_component() {
        for strategy in [
            SegmentStrategy::FirstFit,
            SegmentStrategy::BestFitDecreasing,
        ] {
            let mut cg = holding(4);
            let take = choose_segment_with(&mut cg, u64::MAX, strategy, &KernelPolicy::default());
            assert!(take.len() < cg.num_resident());
        }
    }

    #[test]
    fn tiny_holdings_send_nothing() {
        let mut cg = CGraph::from_parts(vec![7], vec![], vec![]);
        assert!(choose_segment(&mut cg, u64::MAX).is_empty());
        assert!(choose_segment(&mut CGraph::new(), u64::MAX).is_empty());
    }

    #[test]
    fn empty_message_is_empty() {
        let m = SegmentMsg::empty();
        assert!(m.is_empty());
        assert_eq!(m.wire_bytes(), 0);
        assert!(m.into_holding().is_empty());
    }
}
