//! Segment selection for the ring exchange (§3.4).
//!
//! "The processors in a group divide their components into segments and
//! exchange the segments. The segments are formed such that a processor
//! will be able to accommodate at least one segment it receives from
//! another processor in addition to the segments that it contains."
//!
//! A segment here is a suffix of the holder's resident components carrying
//! roughly half of its incident edges, additionally capped so the segment's
//! (paper-scale) bytes fit within the receiver's guaranteed headroom.

use mnd_kernels::cgraph::{CEdge, CGraph, CompId};
use mnd_net::Wire;

/// A segment in flight between two ranks: resident components, their
/// edges (boundary edges are copies — see `CGraph::split_off`), and the
/// frozen marks that travel along.
#[derive(Clone, Debug)]
pub struct SegmentMsg {
    /// Component ids moving to the receiver.
    pub resident: Vec<CompId>,
    /// Edges incident to those components.
    pub edges: Vec<CEdge>,
    /// Frozen subset of `resident`.
    pub frozen: Vec<CompId>,
}

impl SegmentMsg {
    /// An empty segment (sent by converged/empty holders so the ring stays
    /// in lockstep).
    pub fn empty() -> Self {
        SegmentMsg {
            resident: Vec::new(),
            edges: Vec::new(),
            frozen: Vec::new(),
        }
    }

    /// True if nothing moves.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// Converts a split-off holding into a message.
    pub fn from_holding(cg: CGraph) -> Self {
        // Destructure via accessors (CGraph fields are private).
        SegmentMsg {
            resident: cg.resident().to_vec(),
            frozen: cg.frozen().to_vec(),
            edges: cg.edges_vec(),
        }
    }

    /// Converts back into a holding at the receiver.
    pub fn into_holding(self) -> CGraph {
        let mut resident = self.resident;
        resident.sort_unstable();
        resident.dedup();
        CGraph::from_parts(resident, self.edges, self.frozen)
    }
}

impl Wire for SegmentMsg {
    /// Wire size composes from the fields: `Comm::send` charges exactly
    /// this, so the cost model sees the same bytes the receiver unpacks.
    fn wire_bytes(&self) -> u64 {
        self.resident.wire_bytes() + self.edges.wire_bytes() + self.frozen.wire_bytes()
    }
}

/// Picks the components of the next outgoing segment: the suffix of the
/// resident list holding at most half of the incident edges, capped at
/// `max_bytes` (estimated as edges × edge size).
///
/// Returns an empty vector when the holder has fewer than 2 components
/// (nothing sensible to send).
pub fn choose_segment(cg: &CGraph, max_bytes: u64) -> Vec<CompId> {
    if cg.num_resident() < 2 {
        return Vec::new();
    }
    let mut incident: std::collections::HashMap<CompId, u64> = std::collections::HashMap::new();
    for e in cg.iter_edges() {
        *incident.entry(e.a).or_insert(0) += 1;
        *incident.entry(e.b).or_insert(0) += 1;
    }
    let total: u64 = cg
        .resident()
        .iter()
        .map(|c| incident.get(c).copied().unwrap_or(0))
        .sum();
    let edge_bytes = std::mem::size_of::<CEdge>() as u64;
    let budget_edges = (max_bytes / edge_bytes.max(1)).max(1);
    let target = (total / 2).min(budget_edges);

    let mut acc = 0u64;
    let mut take = Vec::new();
    // Walk the suffix but never take everything: the holder keeps at least
    // one component so it still participates in collaborative merging.
    for &c in cg.resident().iter().rev().take(cg.num_resident() - 1) {
        let w = incident.get(&c).copied().unwrap_or(0);
        if !take.is_empty() && acc + w > target {
            break;
        }
        take.push(c);
        acc += w;
        if acc >= target {
            break;
        }
    }
    take.sort_unstable();
    take
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnd_graph::gen;

    fn holding(seed: u64) -> CGraph {
        CGraph::from_edge_list(&gen::gnm(100, 500, seed))
    }

    #[test]
    fn segment_round_trips_through_message() {
        let mut cg = holding(1);
        let take = choose_segment(&cg, u64::MAX);
        assert!(!take.is_empty());
        let seg = cg.split_off(&take);
        let before = seg.clone();
        let msg = SegmentMsg::from_holding(seg);
        assert!(msg.wire_bytes() > 0);
        let back = msg.into_holding();
        assert_eq!(back, before);
    }

    #[test]
    fn segment_takes_roughly_half_edges() {
        let cg = holding(2);
        let take = choose_segment(&cg, u64::MAX);
        let frac = take.len() as f64 / cg.num_resident() as f64;
        assert!((0.25..0.75).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn byte_cap_limits_segment() {
        let cg = holding(3);
        let small = choose_segment(&cg, 200); // ~10 edges worth
        let large = choose_segment(&cg, u64::MAX);
        assert!(small.len() <= large.len());
        assert!(!small.is_empty());
    }

    #[test]
    fn holder_always_keeps_a_component() {
        let cg = holding(4);
        let take = choose_segment(&cg, u64::MAX);
        assert!(take.len() < cg.num_resident());
    }

    #[test]
    fn tiny_holdings_send_nothing() {
        let cg = CGraph::from_parts(vec![7], vec![], vec![]);
        assert!(choose_segment(&cg, u64::MAX).is_empty());
        assert!(choose_segment(&CGraph::new(), u64::MAX).is_empty());
    }

    #[test]
    fn empty_message_is_empty() {
        let m = SegmentMsg::empty();
        assert!(m.is_empty());
        assert_eq!(m.wire_bytes(), 0);
        assert!(m.into_holding().is_empty());
    }
}
