//! Driver-level invariant tests: multi-seed oracle sweeps, timing
//! consistency, and cross-application agreement.

use mnd_device::NodePlatform;
use mnd_graph::{gen, CsrGraph};
use mnd_hypar::HyParConfig;
use mnd_kernels::oracle::kruskal_msf;
use mnd_mst::bfs::distributed_bfs;
use mnd_mst::{distributed_components, MndMstRunner};

#[test]
fn ten_seed_oracle_sweep() {
    for seed in 0..10 {
        let el = gen::web_crawl(1200, 9000, gen::CrawlParams::default(), seed);
        let r = MndMstRunner::new(6).run(&el);
        assert_eq!(r.msf, kruskal_msf(&el), "seed {seed}");
    }
}

#[test]
fn cc_labels_consistent_with_msf_components() {
    let el = gen::disconnected_union(&[
        gen::web_crawl(300, 2000, gen::CrawlParams::default(), 1),
        gen::path(40, 2),
        gen::cycle(25, 3),
    ]);
    let runner = MndMstRunner::new(5);
    let msf = runner.run(&el).msf;
    let cc = distributed_components(&el, &runner);
    assert_eq!(cc.num_components, msf.num_components);
    // Two vertices share a label iff the forest connects them.
    let g = CsrGraph::from_edge_list(&el);
    let oracle = mnd_graph::connected_components(&g);
    assert_eq!(cc.labels, oracle);
}

#[test]
fn bfs_reaches_exactly_the_source_component() {
    let el = gen::disconnected_union(&[gen::cycle(30, 1), gen::gnm(100, 300, 2)]);
    let runner = MndMstRunner::new(4);
    let cc = distributed_components(&el, &runner);
    let bfs = distributed_bfs(&el, 0, 4, &NodePlatform::amd_cluster(), 1.0);
    for (v, (&label, &dist)) in cc.labels.iter().zip(bfs.dist.iter()).enumerate() {
        assert_eq!(
            label == cc.labels[0],
            dist != u64::MAX,
            "vertex {v}: label {label} dist {dist}"
        );
    }
}

#[test]
fn sim_scale_changes_times_not_results() {
    let el = gen::web_crawl(1000, 8000, gen::CrawlParams::default(), 7);
    let base = MndMstRunner::new(4).run(&el);
    let scaled = MndMstRunner::new(4)
        .with_config(HyParConfig::default().with_sim_scale(4096.0))
        .run(&el);
    assert_eq!(base.msf, scaled.msf, "scale must never affect the forest");
    assert!(
        scaled.total_time > base.total_time,
        "scaled runs charge more time"
    );
}

#[test]
fn platform_changes_times_not_results() {
    let el = gen::web_crawl(1000, 8000, gen::CrawlParams::default(), 9);
    let a = MndMstRunner::new(4).run(&el);
    let b = MndMstRunner::new(4)
        .with_platform(NodePlatform::cray_xc40(false))
        .run(&el);
    let c = MndMstRunner::new(4)
        .with_platform(NodePlatform::cray_xc40(true))
        .with_config(HyParConfig::default().with_sim_scale(4096.0))
        .run(&el);
    assert_eq!(a.msf, b.msf);
    assert_eq!(a.msf, c.msf);
}

#[test]
fn comm_time_grows_with_rank_count_on_fixed_graph() {
    // More partitions -> more boundary -> no less communication. (Weak
    // monotonicity: equal is fine, e.g. when everything fits one group.)
    let el = gen::web_crawl(4000, 30_000, gen::CrawlParams::default(), 11);
    let comm = |nranks| MndMstRunner::new(nranks).run(&el).comm_time;
    let c2 = comm(2);
    let c16 = comm(16);
    assert!(
        c16 >= c2 * 0.5,
        "16-rank comm {c16} unexpectedly below half of 2-rank comm {c2}"
    );
}

#[test]
fn report_counts_match_configuration() {
    let el = gen::gnm(500, 2000, 13);
    for nranks in [1, 3, 8] {
        let r = MndMstRunner::new(nranks).run(&el);
        assert_eq!(r.nranks, nranks);
        assert_eq!(r.phases.len(), nranks);
        assert_eq!(r.rank_stats.len(), nranks);
        if nranks == 1 {
            assert_eq!(r.levels, 0, "single rank needs no merge hierarchy");
            assert_eq!(r.comm_time, 0.0);
        } else {
            assert!(r.levels >= 1);
        }
    }
}
