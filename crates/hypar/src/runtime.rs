//! Runtime threshold logic (§4.3.3 and §4.3.4): when to recurse into
//! another partition→indComp→merge round, and when a merging group has
//! converged and should collapse to its leader.

use crate::config::HyParConfig;

/// §4.3.3: "if the reduced graph after the merge step is sufficiently
/// large, it is beneficial to invoke independent computations again" —
/// the paper recurses while the reduced graph exceeds 100M edges.
pub fn should_recurse(cfg: &HyParConfig, reduced_edges: u64) -> bool {
    reduced_edges > cfg.scaled_recursion_threshold()
}

/// §4.3.4 / Algorithm 1 line 7: the group keeps ring-exchanging while its
/// total data exceeds the threshold…
pub fn group_should_exchange(cfg: &HyParConfig, group_edges: u64) -> bool {
    group_edges > cfg.scaled_group_threshold()
}

/// …and additionally stops early when an exchange+merge round failed to
/// shrink the data significantly ("if the size of the data does not reduce
/// significantly, the exchanges … are stopped and the data is merged to
/// the leader").
pub fn exchange_converged(cfg: &HyParConfig, edges_before: u64, edges_after: u64) -> bool {
    if edges_before == 0 {
        return true;
    }
    let shrink = 1.0 - edges_after as f64 / edges_before as f64;
    shrink < cfg.merge_min_shrink
}

/// Tracks per-round data sizes of one group's exchange phase and answers
/// "keep exchanging?" combining all three §4.3.4 criteria plus the safety
/// cap on rounds.
#[derive(Clone, Debug, Default)]
pub struct ExchangeMonitor {
    history: Vec<u64>,
}

impl ExchangeMonitor {
    /// Fresh monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the group's data size after a round and decides whether the
    /// ring exchange should continue.
    pub fn observe_and_continue(&mut self, cfg: &HyParConfig, group_edges: u64) -> bool {
        let prev = self.history.last().copied();
        self.history.push(group_edges);
        if self.history.len() > cfg.max_exchange_rounds {
            return false;
        }
        if !group_should_exchange(cfg, group_edges) {
            return false;
        }
        match prev {
            Some(before) => !exchange_converged(cfg, before, group_edges),
            None => true,
        }
    }

    /// Rounds observed so far.
    pub fn rounds(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HyParConfig {
        HyParConfig {
            recursion_edge_threshold: 1000,
            group_edge_threshold: 100,
            merge_min_shrink: 0.10,
            max_exchange_rounds: 5,
            ..Default::default()
        }
    }

    #[test]
    fn recursion_threshold() {
        let c = cfg();
        assert!(should_recurse(&c, 1001));
        assert!(!should_recurse(&c, 1000));
    }

    #[test]
    fn group_threshold() {
        let c = cfg();
        assert!(group_should_exchange(&c, 101));
        assert!(!group_should_exchange(&c, 100));
    }

    #[test]
    fn convergence_detection() {
        let c = cfg();
        assert!(!exchange_converged(&c, 1000, 800)); // 20% shrink: keep going
        assert!(exchange_converged(&c, 1000, 950)); // 5% shrink: converged
        assert!(exchange_converged(&c, 0, 0));
    }

    #[test]
    fn monitor_stops_on_small_data() {
        let c = cfg();
        let mut m = ExchangeMonitor::new();
        assert!(m.observe_and_continue(&c, 500));
        assert!(!m.observe_and_continue(&c, 80)); // under group threshold
    }

    #[test]
    fn monitor_stops_on_plateau() {
        let c = cfg();
        let mut m = ExchangeMonitor::new();
        assert!(m.observe_and_continue(&c, 1000));
        assert!(m.observe_and_continue(&c, 700));
        assert!(!m.observe_and_continue(&c, 690)); // <10% shrink
    }

    #[test]
    fn monitor_hits_round_cap() {
        let c = cfg();
        let mut m = ExchangeMonitor::new();
        // Always-shrinking data would exchange forever without the cap.
        let mut keep = true;
        let mut size = 1_000_000;
        let mut rounds = 0;
        while keep {
            keep = m.observe_and_continue(&c, size);
            size = (size as f64 * 0.5) as u64;
            rounds += 1;
            assert!(rounds < 50, "runaway");
        }
        assert!(m.rounds() <= c.max_exchange_rounds + 1);
    }
}
