//! HyPar runtime configuration (§4.3).

use mnd_kernels::policy::{ExcpCond, FreezePolicy, KernelPolicy, StopPolicy};

use crate::chaos::ChaosHook;
use crate::observe::ObserverHook;

/// Where the recursion-stop threshold (§4.3.3) comes from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecursionThresholdSource {
    /// Use [`HyParConfig::recursion_edge_threshold`] verbatim (the paper's
    /// static 100M-edge constant).
    Fixed,
    /// Derive the threshold from the platform model: the edge volume whose
    /// local processing time matches a recursion round's collective
    /// latency (`mnd_device::calibrated_recursion_threshold`), so the
    /// recursion stops exactly when another distributed round would cost
    /// more than it saves on *this* hardware.
    #[default]
    Calibrated,
}

/// All tunables of the HyPar runtime, with the paper's defaults.
#[derive(Clone, Debug, PartialEq)]
pub struct HyParConfig {
    /// Hierarchical-merge group size (§3.4: 2/4/8/16 studied, 4 chosen).
    pub group_size: usize,
    /// Exception condition for independent computations (§4.1.2).
    pub excp: ExcpCond,
    /// Freeze interpretation (paper-literal sticky vs. recheck).
    pub freeze: FreezePolicy,
    /// Stop policy for device iterations (§4.3.2: diminishing benefits).
    pub stop: StopPolicy,
    /// Recursion threshold in **paper-scale** edges (§4.3.3: re-enter
    /// partition→indComp→merge while the reduced graph exceeds this; the
    /// paper uses 100M edges). Only consulted when
    /// [`HyParConfig::recursion_threshold_source`] is
    /// [`RecursionThresholdSource::Fixed`].
    pub recursion_edge_threshold: u64,
    /// How the recursion threshold is chosen: the paper's fixed constant
    /// or a platform-calibrated break-even point (the default).
    pub recursion_threshold_source: RecursionThresholdSource,
    /// Hierarchical-merge convergence (§4.3.4): stop ring exchanges and
    /// merge to the leader once an exchange round shrinks the group's data
    /// by less than this fraction.
    pub merge_min_shrink: f64,
    /// Group data threshold in paper-scale edges: below this the group's
    /// components are moved to the leader outright (Algorithm 1 line 7's
    /// `gEdges > threshold` test). §3.4 ties it to node capacity — ring
    /// exchange runs only "until all the components in a group can be
    /// accommodated in a single node" — so the default corresponds to a
    /// 32 GB node at ~20 bytes/edge with headroom for working structures.
    pub group_edge_threshold: u64,
    /// Calibration samples for the CPU/GPU ratio (§4.3.1: 5–10).
    pub calibration_samples: u32,
    /// Calibration sample size as a fraction of vertices (§4.3.1: 5%).
    pub calibration_frac: f64,
    /// Simulation scale: our stand-in graphs are `1/sim_scale` of the
    /// paper's; device work and message bytes are multiplied by this so
    /// fixed overheads keep their paper-scale ratios (DESIGN.md).
    pub sim_scale: f64,
    /// Maximum ring-exchange rounds per level (a safety valve; the
    /// convergence test normally fires first).
    pub max_exchange_rounds: usize,
    /// Deterministic seed for calibration sampling.
    pub seed: u64,
    /// Seq/par crossover, parallel-variant choice (chunk-merge vs the
    /// lock-free atomic plane) and chunk size for the holding-plane
    /// kernels (election, reductions, relabels, incident counts).
    /// Populate from `mnd_device::calibrate_kernel_policy` for measured
    /// numbers — it times all three paths per class and clamps a class
    /// whose parallel variants never win to sequential-only; the default
    /// is a conservative uncalibrated fallback. Results never depend on
    /// this — only wall-clock does.
    pub kernel_policy: KernelPolicy,
    /// Optional phase observer: fired by the driver at every phase boundary
    /// with the phase's time/traffic sample (see [`crate::observe`]).
    pub observer: ObserverHook,
    /// Optional phase-level chaos control: stalls/crashes at checkpoint
    /// boundaries and leader failures at merge levels (see
    /// [`crate::chaos`]). When unset the driver skips all checkpointing, so
    /// fault-free runs are byte-identical to pre-chaos builds.
    pub chaos: ChaosHook,
    /// Use the sparse all-to-all schedule (bitmap count header, only
    /// non-empty buckets ship) for the boundary exchanges. `false` restores
    /// the dense oracle path that pays for empty buckets; results are
    /// byte-identical either way, only traffic changes (DESIGN.md §8).
    pub sparse_exchange: bool,
    /// Ship boundary/relabel payloads through the compressed-relabeling
    /// codecs (`mnd_wire::pack`): delta-varint boundary ids and
    /// dictionary-densified rename pairs, inverted on receipt. Affects wire
    /// bytes only, never routed contents.
    pub compressed_relabels: bool,
    /// Filter-Boruvka sampling probability applied to each rank's level-0
    /// holding before the first exchange (DESIGN.md §8). `0.0` (default)
    /// disables the filter; `1.0` degenerates to a full local Kruskal
    /// filter. Any value is exact — only provably-non-MST edges are
    /// dropped — but nonzero values change which edges the pipeline
    /// carries, so fixtures pinning traffic byte counts keep it off.
    pub filter_sample_prob: f64,
    /// Recovery points between checkpoints when a chaos schedule is armed:
    /// the driver reaches a recovery point after partitioning and after
    /// every mergeParts pass, and takes every `checkpoint_interval`-th one
    /// as a checkpoint boundary. The default of 1 checkpoints at every
    /// recovery point (the historic behaviour); larger values trade
    /// checkpoint overhead for more re-execution after a crash (see
    /// `repro checkpoint-sweep`). Ignored on fault-free runs.
    pub checkpoint_interval: u64,
}

impl Default for HyParConfig {
    fn default() -> Self {
        HyParConfig {
            group_size: 4,
            excp: ExcpCond::BorderEdge,
            freeze: FreezePolicy::Sticky,
            stop: StopPolicy::DiminishingBenefit {
                min_improvement: 0.05,
            },
            recursion_edge_threshold: 100_000_000,
            recursion_threshold_source: RecursionThresholdSource::default(),
            merge_min_shrink: 0.10,
            group_edge_threshold: 1_000_000_000,
            calibration_samples: 6,
            calibration_frac: 0.05,
            sim_scale: 1.0,
            max_exchange_rounds: 8,
            seed: 0x4D4E_442D,
            kernel_policy: KernelPolicy::default(),
            observer: ObserverHook::none(),
            chaos: ChaosHook::none(),
            sparse_exchange: true,
            compressed_relabels: true,
            filter_sample_prob: 0.0,
            checkpoint_interval: 1,
        }
    }
}

impl HyParConfig {
    /// Config with a simulation scale (see [`HyParConfig::sim_scale`]).
    pub fn with_sim_scale(mut self, scale: f64) -> Self {
        assert!(scale >= 1.0);
        self.sim_scale = scale;
        self
    }

    /// The recursion threshold expressed in *our* (scaled-down) edges.
    pub fn scaled_recursion_threshold(&self) -> u64 {
        ((self.recursion_edge_threshold as f64 / self.sim_scale).ceil() as u64).max(1)
    }

    /// The group-merge threshold in scaled-down edges.
    pub fn scaled_group_threshold(&self) -> u64 {
        ((self.group_edge_threshold as f64 / self.sim_scale).ceil() as u64).max(1)
    }

    /// Sets where the recursion threshold comes from (fixed paper constant
    /// vs. platform-calibrated break-even).
    pub fn with_recursion_threshold_source(mut self, source: RecursionThresholdSource) -> Self {
        self.recursion_threshold_source = source;
        self
    }

    /// Sets the holding-plane kernel policy (typically from
    /// `mnd_device::calibrate_kernel_policy`).
    pub fn with_kernel_policy(mut self, policy: KernelPolicy) -> Self {
        self.kernel_policy = policy;
        self
    }

    /// Attaches a phase observer (see [`crate::observe::PhaseObserver`]).
    pub fn with_observer(
        mut self,
        observer: std::sync::Arc<dyn crate::observe::PhaseObserver>,
    ) -> Self {
        self.observer = ObserverHook::new(observer);
        self
    }

    /// Attaches a phase-level chaos control (see
    /// [`crate::chaos::ChaosControl`]); this also enables checkpointing at
    /// phase boundaries.
    pub fn with_chaos(mut self, control: std::sync::Arc<dyn crate::chaos::ChaosControl>) -> Self {
        self.chaos = ChaosHook::new(control);
        self
    }

    /// Sets the checkpoint cadence at recovery points (see
    /// [`HyParConfig::checkpoint_interval`]).
    pub fn with_checkpoint_interval(mut self, interval: u64) -> Self {
        self.checkpoint_interval = interval.max(1);
        self
    }

    /// Chooses between the sparse exchange schedule and the dense oracle
    /// (see [`HyParConfig::sparse_exchange`]).
    pub fn with_sparse_exchange(mut self, sparse: bool) -> Self {
        self.sparse_exchange = sparse;
        self
    }

    /// Toggles the compressed relabeling codecs (see
    /// [`HyParConfig::compressed_relabels`]).
    pub fn with_compressed_relabels(mut self, compressed: bool) -> Self {
        self.compressed_relabels = compressed;
        self
    }

    /// Sets the filter-Boruvka sampling probability (see
    /// [`HyParConfig::filter_sample_prob`]).
    pub fn with_filter_sample_prob(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability in [0, 1]");
        self.filter_sample_prob = prob;
        self
    }

    /// The `mnd_net::ExchangeMode`-shaped view of
    /// [`HyParConfig::sparse_exchange`] is derived by the drivers; this
    /// helper keeps the boolean the single source of truth for tests.
    pub fn exchange_is_sparse(&self) -> bool {
        self.sparse_exchange
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = HyParConfig::default();
        assert_eq!(c.group_size, 4);
        assert_eq!(c.recursion_edge_threshold, 100_000_000);
        assert_eq!(
            c.recursion_threshold_source,
            RecursionThresholdSource::Calibrated
        );
        assert_eq!(c.excp, ExcpCond::BorderEdge);
        assert!((0.0..1.0).contains(&c.calibration_frac));
        // Communication engineering (DESIGN.md §8): sparse exchanges and
        // compressed relabels are pure wire-cost changes, on by default;
        // the filter changes carried edge sets, so it is opt-in.
        assert!(c.sparse_exchange);
        assert!(c.compressed_relabels);
        assert_eq!(c.filter_sample_prob, 0.0);
    }

    #[test]
    fn comm_knob_builders() {
        let c = HyParConfig::default()
            .with_sparse_exchange(false)
            .with_compressed_relabels(false)
            .with_filter_sample_prob(0.25);
        assert!(!c.exchange_is_sparse());
        assert!(!c.compressed_relabels);
        assert_eq!(c.filter_sample_prob, 0.25);
    }

    #[test]
    fn scaled_thresholds_divide_by_sim_scale() {
        let c = HyParConfig::default().with_sim_scale(2048.0);
        assert_eq!(
            c.scaled_recursion_threshold(),
            (100_000_000f64 / 2048.0).ceil() as u64
        );
        assert!(c.scaled_group_threshold() >= 1);
    }

    #[test]
    fn thresholds_never_zero() {
        let c = HyParConfig {
            recursion_edge_threshold: 1,
            group_edge_threshold: 1,
            ..Default::default()
        }
        .with_sim_scale(1e9);
        assert_eq!(c.scaled_recursion_threshold(), 1);
        assert_eq!(c.scaled_group_threshold(), 1);
    }
}
