//! # mnd-hypar — the HyPar hybrid CPU-GPU framework (§4 of the paper)
//!
//! HyPar is the programming and runtime framework MND-MST is built on. It
//! exposes four functions (Table 1 of the paper):
//!
//! | paper function | here |
//! |---|---|
//! | `partGraph`    | [`api::part_graph`] — 1D degree-balanced inter-node partitioning plus the calibrated intra-node CPU/GPU cut |
//! | `indComp`      | [`api::ind_comp`] — simultaneous independent Boruvka on the node's CPU and GPU partitions with an exception condition |
//! | `mergeParts`   | intra-node half here ([`api::merge_devices`]); the inter-node half (ghost exchange, ring merging) lives in `mnd-mst` because it needs the communicator |
//! | `postProcess`  | [`api::post_process`] — final whole-holding Boruvka on one device |
//!
//! The runtime strategies of §4.3 are provided by [`config::HyParConfig`]
//! (partition-ratio calibration, diminishing-benefit termination, the
//! recursion threshold, and the hierarchical-merge convergence threshold)
//! and [`runtime`].

pub mod api;
pub mod chaos;
pub mod config;
pub mod observe;
pub mod runtime;

pub use api::{
    ind_comp, merge_devices, merge_devices_with, part_graph, post_process, NodeIndComp,
    NodePartition,
};
pub use chaos::{ChaosControl, ChaosEvent, ChaosEventKind, ChaosHook};
pub use config::{HyParConfig, RecursionThresholdSource};
pub use observe::{ObserverHook, PhaseKind, PhaseObserver, PhaseSample};
