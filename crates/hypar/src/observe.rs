//! Phase observation: a hook the driver fires as each HyPar phase
//! completes on a rank.
//!
//! The paper's evaluation (Figures 5 and 7) needs per-phase time and
//! traffic breakdowns. Instead of hard-wiring that bookkeeping into the
//! driver, every phase boundary emits a [`PhaseSample`] through an
//! [`ObserverHook`] configured on [`crate::HyParConfig`]; the driver's own
//! report recorder and any user-supplied observer (tracing, live
//! dashboards, experiment harnesses) receive identical samples.

use std::sync::Arc;

/// The five driver phases (Algorithm 1 / Table 1 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// `partGraph`: degree exchange, 1D cuts, device calibration, holding
    /// construction, ghost-information exchange.
    Partition,
    /// `indComp`: device kernel invocations of one computation step.
    IndComp,
    /// `mergeParts`: ghost-parent exchange plus self/multi-edge reduction.
    MergeParts,
    /// Hierarchical merging: ring segment exchanges and leader merges.
    HierMerge,
    /// `postProcess`: the final whole-holding contraction and MSF gather.
    PostProcess,
}

impl PhaseKind {
    /// All kinds, in pipeline order.
    pub const ALL: [PhaseKind; 5] = [
        PhaseKind::Partition,
        PhaseKind::IndComp,
        PhaseKind::MergeParts,
        PhaseKind::HierMerge,
        PhaseKind::PostProcess,
    ];

    /// Stable lower-case name (log/CSV friendly).
    pub fn name(self) -> &'static str {
        match self {
            PhaseKind::Partition => "partition",
            PhaseKind::IndComp => "ind_comp",
            PhaseKind::MergeParts => "merge_parts",
            PhaseKind::HierMerge => "hier_merge",
            PhaseKind::PostProcess => "post_process",
        }
    }
}

/// One observed phase execution on one rank: the simulated time and traffic
/// the phase consumed (deltas against the rank's stats at phase entry).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseSample {
    /// The rank that executed the phase.
    pub rank: u32,
    /// Hierarchical-merge level the phase ran at (0 before merging starts).
    pub level: u32,
    /// Simulated compute seconds spent in the phase.
    pub compute_time: f64,
    /// Simulated communication seconds spent in the phase.
    pub comm_time: f64,
    /// Bytes sent during the phase.
    pub bytes_sent: u64,
    /// Messages sent during the phase.
    pub messages_sent: u64,
}

/// Receives phase samples. Implementations must be thread-safe: every
/// simulated rank runs on its own thread and fires the hook concurrently.
pub trait PhaseObserver: Send + Sync {
    /// Called once per completed phase execution per rank.
    fn on_phase(&self, kind: PhaseKind, sample: &PhaseSample);

    /// Called when a fault fires or recovery machinery runs on a rank
    /// (see [`crate::chaos`]); defaults to ignoring the event so existing
    /// observers are unaffected.
    fn on_chaos(&self, event: &crate::chaos::ChaosEvent) {
        let _ = event;
    }
}

/// An optional, shareable observer slot carried by the config.
///
/// Equality (needed because `HyParConfig` is `PartialEq`) is identity:
/// two hooks are equal when both are unset or both point at the same
/// observer object.
#[derive(Clone, Default)]
pub struct ObserverHook(Option<Arc<dyn PhaseObserver>>);

impl ObserverHook {
    /// The empty hook (emission is a no-op).
    pub fn none() -> Self {
        ObserverHook(None)
    }

    /// Wraps an observer.
    pub fn new(observer: Arc<dyn PhaseObserver>) -> Self {
        ObserverHook(Some(observer))
    }

    /// True if an observer is attached.
    pub fn is_set(&self) -> bool {
        self.0.is_some()
    }

    /// Fires the hook, if set.
    #[inline]
    pub fn emit(&self, kind: PhaseKind, sample: &PhaseSample) {
        if let Some(obs) = &self.0 {
            obs.on_phase(kind, sample);
        }
    }

    /// Forwards a chaos event to the observer, if set.
    #[inline]
    pub fn emit_chaos(&self, event: &crate::chaos::ChaosEvent) {
        if let Some(obs) = &self.0 {
            obs.on_chaos(event);
        }
    }
}

impl std::fmt::Debug for ObserverHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.is_set() {
            "ObserverHook(set)"
        } else {
            "ObserverHook(none)"
        })
    }
}

impl PartialEq for ObserverHook {
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    struct Collect(Mutex<Vec<(PhaseKind, u32)>>);

    impl PhaseObserver for Collect {
        fn on_phase(&self, kind: PhaseKind, sample: &PhaseSample) {
            self.0.lock().unwrap().push((kind, sample.rank));
        }
    }

    #[test]
    fn hook_emits_to_attached_observer() {
        let obs = Arc::new(Collect(Mutex::new(Vec::new())));
        let hook = ObserverHook::new(obs.clone());
        assert!(hook.is_set());
        hook.emit(
            PhaseKind::IndComp,
            &PhaseSample {
                rank: 3,
                ..Default::default()
            },
        );
        hook.emit(
            PhaseKind::HierMerge,
            &PhaseSample {
                rank: 1,
                ..Default::default()
            },
        );
        let got = obs.0.lock().unwrap().clone();
        assert_eq!(
            got,
            vec![(PhaseKind::IndComp, 3), (PhaseKind::HierMerge, 1)]
        );
    }

    #[test]
    fn chaos_events_forward_to_observer() {
        use crate::chaos::{ChaosEvent, ChaosEventKind};
        use std::sync::atomic::{AtomicU32, Ordering};

        #[derive(Default)]
        struct CountChaos(AtomicU32);
        impl PhaseObserver for CountChaos {
            fn on_phase(&self, _: PhaseKind, _: &PhaseSample) {}
            fn on_chaos(&self, event: &ChaosEvent) {
                assert_eq!(event.kind, ChaosEventKind::Crash);
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }

        let obs = Arc::new(CountChaos::default());
        let hook = ObserverHook::new(obs.clone());
        let ev = ChaosEvent {
            rank: 1,
            kind: ChaosEventKind::Crash,
            level: 0,
            boundary: 2,
            time: 1.5,
            detail: 0,
        };
        hook.emit_chaos(&ev);
        hook.emit_chaos(&ev);
        ObserverHook::none().emit_chaos(&ev); // no-op
        assert_eq!(obs.0.load(Ordering::Relaxed), 2);
        // Observers that don't override on_chaos ignore events.
        let plain = ObserverHook::new(Arc::new(Collect(Mutex::new(Vec::new()))));
        plain.emit_chaos(&ev);
    }

    #[test]
    fn empty_hook_is_a_noop_and_equal_to_itself() {
        let hook = ObserverHook::none();
        assert!(!hook.is_set());
        hook.emit(PhaseKind::Partition, &PhaseSample::default());
        assert_eq!(hook, ObserverHook::none());
        assert_eq!(hook, ObserverHook::default());
    }

    #[test]
    fn equality_is_identity() {
        let a = ObserverHook::new(Arc::new(Collect(Mutex::new(Vec::new()))));
        let b = ObserverHook::new(Arc::new(Collect(Mutex::new(Vec::new()))));
        assert_ne!(a, b);
        assert_eq!(a, a.clone());
        assert_ne!(a, ObserverHook::none());
    }

    #[test]
    fn names_are_stable_and_unique() {
        let names: std::collections::HashSet<&str> =
            PhaseKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), PhaseKind::ALL.len());
        assert_eq!(PhaseKind::IndComp.name(), "ind_comp");
    }
}
