//! The HyPar API functions (Table 1 of the paper), node-local side.
//!
//! `partGraph`, `indComp` and `postProcess` are entirely node-local and
//! live here. `mergeParts` has an intra-node half ([`merge_devices`],
//! combining the CPU and GPU results) and an inter-node half (ghost
//! exchange and hierarchical merging) that needs the communicator and is
//! implemented by the `mnd-mst` driver on top of these functions.

use mnd_device::{calibrate_split, DeviceSplit, ExecDevice, NodePlatform};
use mnd_graph::partition::{partition_1d, VertexRange};
use mnd_graph::types::WEdge;
use mnd_graph::CsrGraph;
use mnd_kernels::cgraph::{CGraph, CompId};
use mnd_kernels::policy::{ExcpCond, KernelPolicy};
use mnd_kernels::reduce::{apply_ghost_parents_with, reduce_holding_with};

use crate::config::HyParConfig;

/// Result of `partGraph`: the inter-node ranges plus the calibrated
/// intra-node device split.
#[derive(Clone, Debug)]
pub struct NodePartition {
    /// One contiguous vertex range per rank.
    pub ranges: Vec<VertexRange>,
    /// CPU/GPU split within each node (CPU-only when the platform has no
    /// GPU).
    pub split: DeviceSplit,
}

/// `partGraph` (§4.1.1): 1D degree-balanced partitioning across `nranks`
/// nodes, plus the §4.3.1-calibrated CPU/GPU ratio for the node's devices.
pub fn part_graph(
    g: &CsrGraph,
    nranks: usize,
    platform: &NodePlatform,
    cfg: &HyParConfig,
) -> NodePartition {
    let ranges = partition_1d(g, nranks, 0.0);
    let split = match &platform.gpu {
        None => DeviceSplit::cpu_only(),
        Some(gpu) => {
            let cpu = platform.cpu.clone().scaled(cfg.sim_scale);
            let gpu = gpu.clone().scaled(cfg.sim_scale);
            calibrate_split(
                g,
                &cpu,
                &gpu,
                cfg.calibration_samples,
                cfg.calibration_frac,
                cfg.seed,
            )
        }
    };
    NodePartition { ranges, split }
}

/// Result of one node-level `indComp` (possibly across two devices).
#[derive(Clone, Debug, Default)]
pub struct NodeIndComp {
    /// MSF edges contracted on this node.
    pub msf_edges: Vec<WEdge>,
    /// Component renamings this node performed (old → new), for the ghost
    /// messages to other ranks.
    pub relabel: Vec<(CompId, CompId)>,
    /// Simulated compute seconds (devices run simultaneously: the max of
    /// the two device times, plus the intra-node merge sweep).
    pub compute_time: f64,
    /// Simulated CPU↔GPU transfer seconds (not overlapped part).
    pub transfer_time: f64,
    /// Whether the GPU partition was non-empty.
    pub used_gpu: bool,
}

/// `indComp` (§4.1.2): runs Boruvka with `cfg.excp` on the node's holding.
/// With a hybrid platform the holding is first cut into contiguous CPU and
/// GPU sub-partitions by the calibrated ratio, the kernels run
/// "simultaneously" (simulated time = max of the device times), and
/// [`merge_devices`] recombines the results.
pub fn ind_comp(
    cg: &mut CGraph,
    platform: &NodePlatform,
    split: &DeviceSplit,
    cfg: &HyParConfig,
) -> NodeIndComp {
    let mut cpu_dev = ExecDevice::new(platform.cpu.clone().scaled(cfg.sim_scale));
    let gpu_model = platform.gpu.clone().map(|g| g.scaled(cfg.sim_scale));

    // CPU-only path: one kernel invocation on the whole holding. Tiny
    // holdings (late merge levels) skip the GPU — kernel launches and PCIe
    // transfers would outweigh the scan they accelerate.
    let paper_edges = cg.num_edges() as f64 * cfg.sim_scale;
    let policy = &cfg.kernel_policy;
    let gpu_model = match gpu_model {
        Some(g) if split.cpu_fraction < 0.999 && cg.num_resident() >= 2 && paper_edges > 2e6 => g,
        _ => {
            let run = cpu_dev.run_ind_comp_with(cg, policy, cfg.excp, cfg.freeze, cfg.stop);
            return NodeIndComp {
                msf_edges: run.output.msf_edges,
                relabel: run.output.relabel,
                compute_time: run.kernel_time,
                transfer_time: 0.0,
                used_gpu: false,
            };
        }
    };
    let mut gpu_dev = ExecDevice::new(gpu_model);

    // Contiguous cut of the resident components by incident-edge counts —
    // the CSR-segment split of §3.1 lifted to the component level.
    let gpu_comps = gpu_share_components(cg, split.cpu_fraction, policy);
    let mut gpu_cg = cg.split_off(&gpu_comps);

    let cpu_run = cpu_dev.run_ind_comp_with(cg, policy, cfg.excp, cfg.freeze, cfg.stop);
    let gpu_run = gpu_dev.run_ind_comp_with(&mut gpu_cg, policy, cfg.excp, cfg.freeze, cfg.stop);

    let mut out = NodeIndComp {
        msf_edges: Vec::new(),
        relabel: Vec::new(),
        compute_time: cpu_run.kernel_time.max(gpu_run.kernel_time),
        transfer_time: gpu_run.transfer_time,
        used_gpu: true,
    };
    out.msf_edges.extend(cpu_run.output.msf_edges);
    out.msf_edges.extend(gpu_run.output.msf_edges);
    out.relabel.extend(cpu_run.output.relabel.iter().copied());
    out.relabel.extend(gpu_run.output.relabel.iter().copied());

    // Intra-node mergeParts: exchange "ghost parents" between the devices
    // (free: same memory) and recombine.
    let merge_sweep = merge_devices_with(
        cg,
        gpu_cg,
        &cpu_run.output.relabel,
        &gpu_run.output.relabel,
        policy,
    );
    // The merge sweep runs on the CPU.
    out.compute_time += cpu_dev.model.kernel_time(
        &mnd_kernels::policy::WorkProfile {
            iters: vec![mnd_kernels::policy::IterWork {
                active_components: cg.num_resident() as u64,
                edges_scanned: merge_sweep,
                unions: 0,
            }],
        },
        0.0,
    );
    // "The components are then merged in one of the devices" (§3.5): the
    // merging device finishes the contraction the device border blocked,
    // so a hybrid node reaches the same intra-node fixpoint a CPU-only
    // node would. The pass runs over the (already reduced) residual, and
    // its data-driven worklist is seeded from the device-border components
    // only — so its first sweep is charged for the frozen-incident
    // fraction of edges, not the whole residual.
    let frozen: std::collections::HashSet<CompId> = cg.frozen().iter().copied().collect();
    let frozen_fraction = if cg.num_edges() == 0 {
        0.0
    } else {
        cg.iter_edges()
            .filter(|e| frozen.contains(&e.a) || frozen.contains(&e.b))
            .count() as f64
            / cg.num_edges() as f64
    };
    cg.clear_frozen();
    let finish = cpu_dev.run_ind_comp_with(cg, policy, cfg.excp, cfg.freeze, cfg.stop);
    let mut charged = finish.output.work.clone();
    if let Some(first) = charged.iters.first_mut() {
        first.edges_scanned = (first.edges_scanned as f64 * frozen_fraction).ceil() as u64;
    }
    out.compute_time += cpu_dev.model.kernel_time(&charged, 0.0);
    out.msf_edges.extend(finish.output.msf_edges);
    // Compose the earlier device renames with the finishing pass's.
    let finish_map: std::collections::HashMap<CompId, CompId> =
        finish.output.relabel.iter().copied().collect();
    for (_, new) in out.relabel.iter_mut() {
        if let Some(&n2) = finish_map.get(new) {
            *new = n2;
        }
    }
    out.relabel.extend(finish.output.relabel.iter().copied());
    out
}

/// Picks the suffix of the holding's resident components that carries
/// `1 - cpu_fraction` of the incident edges (the GPU's contiguous share).
/// Uses the holding's reusable incident-count column — a chunked parallel
/// column reduction above the policy crossover — instead of rebuilding a
/// hash map per call.
fn gpu_share_components(cg: &mut CGraph, cpu_fraction: f64, policy: &KernelPolicy) -> Vec<CompId> {
    let resident: Vec<CompId> = cg.resident().to_vec();
    let counts = cg.incident_counts_with(policy);
    let total: u64 = counts.iter().sum();
    let gpu_target = (total as f64 * (1.0 - cpu_fraction)).round() as u64;
    let mut acc = 0u64;
    let mut take = Vec::new();
    for i in (0..resident.len()).rev() {
        if acc >= gpu_target {
            break;
        }
        acc += counts[i];
        take.push(resident[i]);
    }
    take.sort_unstable();
    take
}

/// Intra-node `mergeParts`: applies each device's component renames to the
/// other device's ghost endpoints, absorbs the GPU holding into the CPU
/// one, and clears device-border freezes (the border vanished). Returns
/// the number of GPU-side edges folded back in, for the cost model — the
/// merge itself touches only the downloaded device results (the big
/// whole-holding reduction sweep is a separate `mergeParts` step and is
/// charged by the driver).
pub fn merge_devices(
    cpu_cg: &mut CGraph,
    gpu_cg: CGraph,
    cpu_relabel: &[(CompId, CompId)],
    gpu_relabel: &[(CompId, CompId)],
) -> u64 {
    merge_devices_with(
        cpu_cg,
        gpu_cg,
        cpu_relabel,
        gpu_relabel,
        &KernelPolicy::default(),
    )
}

/// As [`merge_devices`], under an explicit [`KernelPolicy`] for the ghost
/// relabels and the reduction sweep.
pub fn merge_devices_with(
    cpu_cg: &mut CGraph,
    mut gpu_cg: CGraph,
    cpu_relabel: &[(CompId, CompId)],
    gpu_relabel: &[(CompId, CompId)],
    policy: &KernelPolicy,
) -> u64 {
    let swept = gpu_cg.num_edges() as u64;
    apply_ghost_parents_with(&mut gpu_cg, policy, cpu_relabel);
    apply_ghost_parents_with(cpu_cg, policy, gpu_relabel);
    cpu_cg.absorb(gpu_cg);
    reduce_holding_with(cpu_cg, policy);
    // Note: device-border freeze marks are left in place — `ind_comp`
    // reads them to seed (and price) the finishing pass, then clears them
    // there. Clearing is safe because the border is gone; the next
    // invocation re-freezes anything still blocked (see DESIGN.md §5).
    swept
}

/// `postProcess` (§4.1.4): runs the final whole-holding Boruvka (no
/// exception condition) on whichever device the model predicts faster for
/// this holding, returning the MSF edges and the simulated time.
pub fn post_process(
    cg: &mut CGraph,
    platform: &NodePlatform,
    cfg: &HyParConfig,
) -> (Vec<WEdge>, f64) {
    use mnd_kernels::policy::{FreezePolicy, StopPolicy};
    cg.clear_frozen();
    // Estimate both devices on a proxy profile (one sweep over all edges)
    // and pick the cheaper — "runs the algorithm on one of the devices".
    let proxy = mnd_kernels::policy::WorkProfile {
        iters: vec![mnd_kernels::policy::IterWork {
            active_components: cg.num_resident() as u64,
            edges_scanned: cg.num_edges() as u64,
            unions: 0,
        }],
    };
    let skew = ExecDevice::holding_skew_with(cg, &cfg.kernel_policy);
    let cpu_model = platform.cpu.clone().scaled(cfg.sim_scale);
    let t_cpu = cpu_model.kernel_time(&proxy, skew);
    let pick_gpu = platform
        .gpu
        .as_ref()
        .map(|g| {
            let gm = g.clone().scaled(cfg.sim_scale);
            gm.kernel_time(&proxy, skew) + gm.transfer_time(cg.approx_bytes() as u64) < t_cpu
        })
        .unwrap_or(false);
    let model = if pick_gpu {
        platform
            .gpu
            .clone()
            .expect("pick_gpu implies gpu")
            .scaled(cfg.sim_scale)
    } else {
        cpu_model
    };
    let mut dev = ExecDevice::new(model);
    let run = dev.run_ind_comp_with(
        cg,
        &cfg.kernel_policy,
        ExcpCond::None,
        FreezePolicy::Sticky,
        StopPolicy::Exhaustive,
    );
    (run.output.msf_edges, run.kernel_time + run.transfer_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnd_graph::gen;
    use mnd_kernels::oracle::kruskal_msf;

    fn cfg() -> HyParConfig {
        // sim_scale large enough that test graphs clear the GPU's
        // minimum-size guard.
        HyParConfig {
            stop: mnd_kernels::policy::StopPolicy::Exhaustive,
            ..Default::default()
        }
        .with_sim_scale(4096.0)
    }

    #[test]
    fn part_graph_covers_and_calibrates() {
        let el = gen::gnm(2000, 10_000, 1);
        let g = CsrGraph::from_edge_list(&el);
        let p = part_graph(&g, 4, &NodePlatform::cray_xc40(true), &cfg());
        assert_eq!(p.ranges.len(), 4);
        assert_eq!(p.ranges.last().unwrap().end, 2000);
        assert!(p.split.cpu_fraction < 1.0);
        let p2 = part_graph(&g, 4, &NodePlatform::amd_cluster(), &cfg());
        assert_eq!(p2.split, DeviceSplit::cpu_only());
    }

    #[test]
    fn hybrid_ind_comp_on_whole_graph_finds_full_msf() {
        // Whole graph on one node split across CPU+GPU, then merged and
        // post-processed: must equal Kruskal exactly.
        let el = gen::gnm(500, 2500, 7);
        let oracle = kruskal_msf(&el);
        let platform = NodePlatform::cray_xc40(true);
        let config = cfg();
        let mut cg = CGraph::from_edge_list(&el);
        let split = DeviceSplit {
            cpu_fraction: 0.4,
            gpu_speedup: 1.5,
            memory_limited: false,
        };
        let mut msf = Vec::new();
        let run = ind_comp(&mut cg, &platform, &split, &config);
        assert!(run.used_gpu);
        msf.extend(run.msf_edges);
        // Device borders froze some components; post-process finishes.
        let (rest, _) = post_process(&mut cg, &platform, &config);
        msf.extend(rest);
        let result = mnd_kernels::msf::MsfResult::from_edges(500, msf);
        assert_eq!(result, oracle);
    }

    #[test]
    fn cpu_only_ind_comp_matches_oracle_with_postprocess() {
        let el = gen::watts_strogatz(300, 6, 0.2, 3);
        let oracle = kruskal_msf(&el);
        let platform = NodePlatform::amd_cluster();
        let config = cfg();
        let mut cg = CGraph::from_edge_list(&el);
        let run = ind_comp(&mut cg, &platform, &DeviceSplit::cpu_only(), &config);
        assert!(!run.used_gpu);
        let mut msf = run.msf_edges;
        let (rest, _) = post_process(&mut cg, &platform, &config);
        msf.extend(rest);
        assert_eq!(mnd_kernels::msf::MsfResult::from_edges(300, msf), oracle);
    }

    #[test]
    fn hybrid_times_reflect_simultaneity() {
        let el = gen::gnm(2000, 12_000, 9);
        let platform = NodePlatform::cray_xc40(true);
        let config = cfg();
        let split = DeviceSplit {
            cpu_fraction: 0.5,
            gpu_speedup: 1.0,
            memory_limited: false,
        };
        let mut cg = CGraph::from_edge_list(&el);
        let run = ind_comp(&mut cg, &platform, &split, &config);
        // Sanity: simultaneous execution cannot be slower than the sum of
        // two serial halves at equal split (very loose bound).
        assert!(run.compute_time > 0.0);
        assert!(run.transfer_time >= 0.0);
    }

    #[test]
    fn gpu_share_respects_fraction() {
        let el = gen::gnm(1000, 5000, 11);
        let mut cg = CGraph::from_edge_list(&el);
        let take = gpu_share_components(&mut cg, 0.75, &KernelPolicy::default());
        // Roughly a quarter of incident edges -> roughly a quarter of
        // uniform-degree components.
        let frac = take.len() as f64 / cg.num_resident() as f64;
        assert!((0.15..0.40).contains(&frac), "got {frac}");
        // Contiguous suffix.
        let min_take = *take.first().unwrap();
        assert!(cg
            .resident()
            .iter()
            .all(|c| take.contains(c) == (*c >= min_take)));
    }

    #[test]
    fn post_process_picks_a_device_and_finishes() {
        let el = gen::rmat(512, 4096, gen::RmatProbs::GRAPH500, 5);
        let oracle = kruskal_msf(&el);
        let mut cg = CGraph::from_edge_list(&el);
        let (msf, t) = post_process(&mut cg, &NodePlatform::cray_xc40(true), &cfg());
        assert!(t > 0.0);
        assert_eq!(mnd_kernels::msf::MsfResult::from_edges(512, msf), oracle);
    }
}
