//! Phase-level chaos control and fault/recovery events.
//!
//! The fabric-level fault plane (message drops, delays, duplicates) lives
//! in `mnd-net::fault`; this module carries the **phase-level** half of the
//! chaos subsystem, which needs to know where a rank stands in the HyPar
//! pipeline rather than which message is in flight:
//!
//! * [`ChaosControl`] — the driver consults it at every checkpoint
//!   boundary (stall? crash?) and at every hierarchical-merge level (is
//!   this group's leader down?). Implementations must be deterministic
//!   pure functions of their arguments, like `FaultInjector`.
//! * [`ChaosEvent`] — what the driver reports back through the observer
//!   hook when faults fire and recovery machinery runs, so harnesses can
//!   log, trace, and assert on the recovery path.
//!
//! Both ride on [`crate::HyParConfig`] next to the phase observer; a
//! `FaultPlan` from `mnd-chaos` implements `ChaosControl` and
//! `FaultInjector` so one seeded plan drives both layers.

use std::sync::Arc;

/// What kind of fault or recovery action an event reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ChaosEventKind {
    /// The rank stalled for `ChaosEvent::detail` microseconds of virtual
    /// time at a checkpoint boundary.
    Stall,
    /// The rank wrote a checkpoint of `detail` wire bytes.
    CheckpointWrite,
    /// The rank crashed at a checkpoint boundary (its live state was
    /// destroyed).
    Crash,
    /// The rank restored `detail` wire bytes from its last checkpoint.
    CheckpointRestore,
    /// The rank's merge group elected rank `detail` because its configured
    /// leader is down at this level.
    LeaderFailover,
    /// The rank crashed *inside* a phase, at fabric op `detail` of epoch
    /// `boundary` — it rolls back to the checkpoint before that epoch and
    /// replays (DESIGN.md §5f).
    MidPhaseCrash,
}

impl ChaosEventKind {
    /// Stable lower-case name (log/JSONL friendly).
    pub fn name(self) -> &'static str {
        match self {
            ChaosEventKind::Stall => "stall",
            ChaosEventKind::CheckpointWrite => "checkpoint_write",
            ChaosEventKind::Crash => "crash",
            ChaosEventKind::CheckpointRestore => "checkpoint_restore",
            ChaosEventKind::LeaderFailover => "leader_failover",
            ChaosEventKind::MidPhaseCrash => "mid_phase_crash",
        }
    }
}

/// One fault or recovery action on one rank.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosEvent {
    /// The rank the event happened on.
    pub rank: u32,
    /// What happened.
    pub kind: ChaosEventKind,
    /// Hierarchical-merge level (0 outside hierarchical merging).
    pub level: u32,
    /// Checkpoint-boundary ordinal on this rank (0 = after Partition; the
    /// counter advances at every boundary, identically on every rank).
    pub boundary: u32,
    /// Virtual time on the rank's clock when the event fired.
    pub time: f64,
    /// Kind-specific payload — see [`ChaosEventKind`].
    pub detail: u64,
}

/// Phase-level fault schedule: consulted by the driver at checkpoint
/// boundaries and merge levels. All methods must be deterministic pure
/// functions (no interior mutability, no wall clock) so that a seed fully
/// determines the recovery path.
pub trait ChaosControl: Send + Sync {
    /// Virtual seconds `rank` stalls at checkpoint boundary `boundary`
    /// (0 = no stall).
    fn stall_seconds(&self, rank: usize, boundary: u32) -> f64;

    /// Whether `rank` crashes at checkpoint boundary `boundary` (and is
    /// restarted from the checkpoint written at that boundary).
    fn crashes_at(&self, rank: usize, boundary: u32) -> bool;

    /// Whether `rank` is down for leader duty at merge level `level`; its
    /// group elects the first healthy member instead.
    fn leader_down(&self, rank: usize, level: u32) -> bool;

    /// The fabric-op ordinal within `epoch` at which `rank` crashes
    /// mid-phase, or `None` for no crash in that epoch. Unlike
    /// [`ChaosControl::crashes_at`] this kills the rank *inside* a phase;
    /// it rolls back to the checkpoint before `epoch` and replays. The
    /// default schedules nothing, so plans predating mid-phase crashes
    /// keep working unchanged.
    fn mid_phase_crash(&self, _rank: usize, _epoch: u32) -> Option<u64> {
        None
    }

    /// First epoch at which no further mid-phase crash can fire on `rank`
    /// — the plan's *replay horizon*. Once a rank's epoch reaches the
    /// horizon the driver retires its replay log wholesale (no future
    /// rollback can consume it), bounding the log's footprint to the
    /// faulty prefix of the run. `Some(0)` means the plan schedules no
    /// mid-phase crash on `rank` at all; the default `None` means the
    /// horizon is unknown and the log must be kept for the whole run.
    /// Implementations must return a value `> epoch` for every epoch in
    /// which [`ChaosControl::mid_phase_crash`] returns `Some` — an
    /// under-reported horizon would discard payloads a rollback still
    /// needs.
    fn replay_horizon(&self, _rank: usize) -> Option<u32> {
        None
    }
}

/// An optional, shareable [`ChaosControl`] slot carried by the config.
/// Same contract as [`crate::ObserverHook`]: `Clone`/`Debug`, equality by
/// identity, and every query is a no-fault default when unset.
#[derive(Clone, Default)]
pub struct ChaosHook(Option<Arc<dyn ChaosControl>>);

impl ChaosHook {
    /// The empty hook: no stalls, no crashes, no dead leaders — and the
    /// driver skips checkpointing entirely, keeping fault-free runs
    /// byte-identical to a build without the chaos subsystem.
    pub fn none() -> Self {
        ChaosHook(None)
    }

    /// Wraps a control plan.
    pub fn new(control: Arc<dyn ChaosControl>) -> Self {
        ChaosHook(Some(control))
    }

    /// Whether a control plan is attached.
    pub fn is_set(&self) -> bool {
        self.0.is_some()
    }

    /// Stall duration at a boundary (0 when unset; negative values from a
    /// buggy plan are clamped to 0).
    pub fn stall_seconds(&self, rank: usize, boundary: u32) -> f64 {
        match &self.0 {
            None => 0.0,
            Some(c) => c.stall_seconds(rank, boundary).max(0.0),
        }
    }

    /// Whether the rank crashes at a boundary (false when unset).
    pub fn crashes_at(&self, rank: usize, boundary: u32) -> bool {
        self.0
            .as_ref()
            .is_some_and(|c| c.crashes_at(rank, boundary))
    }

    /// Whether the rank is down for leader duty (false when unset).
    pub fn leader_down(&self, rank: usize, level: u32) -> bool {
        self.0.as_ref().is_some_and(|c| c.leader_down(rank, level))
    }

    /// Mid-phase crash op for `(rank, epoch)` (`None` when unset).
    pub fn mid_phase_crash(&self, rank: usize, epoch: u32) -> Option<u64> {
        self.0.as_ref().and_then(|c| c.mid_phase_crash(rank, epoch))
    }

    /// The plan's replay horizon for `rank` (`None` when unset — an empty
    /// hook never arms the replay log in the first place).
    pub fn replay_horizon(&self, rank: usize) -> Option<u32> {
        self.0.as_ref().and_then(|c| c.replay_horizon(rank))
    }
}

impl std::fmt::Debug for ChaosHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.is_set() {
            "ChaosHook(set)"
        } else {
            "ChaosHook(none)"
        })
    }
}

impl PartialEq for ChaosHook {
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct StallTwo;
    impl ChaosControl for StallTwo {
        fn stall_seconds(&self, rank: usize, boundary: u32) -> f64 {
            if rank == 2 && boundary == 1 {
                0.5
            } else {
                -3.0 // clamped by the hook
            }
        }
        fn crashes_at(&self, rank: usize, boundary: u32) -> bool {
            rank == 2 && boundary == 3
        }
        fn leader_down(&self, rank: usize, level: u32) -> bool {
            rank == 0 && level == 1
        }
    }

    #[test]
    fn empty_hook_injects_nothing() {
        let h = ChaosHook::none();
        assert!(!h.is_set());
        assert_eq!(h.stall_seconds(0, 0), 0.0);
        assert!(!h.crashes_at(0, 0));
        assert!(!h.leader_down(0, 0));
    }

    #[test]
    fn hook_delegates_and_clamps() {
        let h = ChaosHook::new(Arc::new(StallTwo));
        assert_eq!(h.stall_seconds(2, 1), 0.5);
        assert_eq!(h.stall_seconds(1, 1), 0.0); // negative clamped
        assert!(h.crashes_at(2, 3));
        assert!(!h.crashes_at(2, 2));
        assert!(h.leader_down(0, 1));
        assert!(!h.leader_down(0, 2));
    }

    #[test]
    fn event_kind_names_are_stable() {
        assert_eq!(ChaosEventKind::Stall.name(), "stall");
        assert_eq!(ChaosEventKind::LeaderFailover.name(), "leader_failover");
        assert_eq!(ChaosEventKind::CheckpointWrite.name(), "checkpoint_write");
        assert_eq!(ChaosEventKind::MidPhaseCrash.name(), "mid_phase_crash");
    }

    #[test]
    fn mid_phase_crash_defaults_to_none() {
        let h = ChaosHook::new(Arc::new(StallTwo));
        assert_eq!(h.mid_phase_crash(2, 1), None);
        assert_eq!(ChaosHook::none().mid_phase_crash(0, 0), None);
    }

    #[test]
    fn replay_horizon_defaults_to_unknown() {
        let h = ChaosHook::new(Arc::new(StallTwo));
        assert_eq!(h.replay_horizon(2), None);
        assert_eq!(ChaosHook::none().replay_horizon(0), None);
    }
}
