//! Property tests of the HyPar node-local API: hybrid executions must be
//! result-identical to CPU-only ones, and partitioning must respect the
//! calibrated ratio.

use mnd_device::{DeviceSplit, NodePlatform};
use mnd_graph::types::WEdge;
use mnd_graph::{gen, EdgeList};
use mnd_hypar::api::{ind_comp, post_process};
use mnd_hypar::HyParConfig;
use mnd_kernels::cgraph::CGraph;
use mnd_kernels::msf::MsfResult;
use mnd_kernels::oracle::kruskal_msf;
use proptest::prelude::*;

fn arb_edges(max_v: u32, max_e: usize) -> impl Strategy<Value = EdgeList> {
    (
        4..max_v,
        proptest::collection::vec((0u32..max_v, 0u32..max_v, 1u32..500), 1..max_e),
    )
        .prop_map(|(n, raw)| {
            EdgeList::from_raw(
                n,
                raw.into_iter()
                    .map(|(a, b, w)| WEdge::new(a % n, b % n, w))
                    .collect(),
            )
        })
}

fn cfg() -> HyParConfig {
    HyParConfig {
        stop: mnd_kernels::policy::StopPolicy::Exhaustive,
        ..Default::default()
    }
    .with_sim_scale(8192.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whole-graph indComp + postProcess equals Kruskal for every device
    /// split ratio.
    #[test]
    fn hybrid_split_ratio_never_changes_result(
        el in arb_edges(100, 300),
        cpu_fraction in 0.05f64..0.95,
    ) {
        let oracle = kruskal_msf(&el);
        let platform = NodePlatform::cray_xc40(true);
        let config = cfg();
        let split = DeviceSplit { cpu_fraction, gpu_speedup: 2.0, memory_limited: false };
        let mut cg = CGraph::from_edge_list(&el);
        let mut msf = ind_comp(&mut cg, &platform, &split, &config).msf_edges;
        let (rest, _) = post_process(&mut cg, &platform, &config);
        msf.extend(rest);
        prop_assert_eq!(MsfResult::from_edges(el.num_vertices(), msf), oracle);
    }

    /// CPU-only and hybrid paths produce the same total MSF weight at
    /// every stage boundary (stronger: identical edges).
    #[test]
    fn cpu_only_equals_hybrid(el in arb_edges(80, 240)) {
        let config = cfg();
        let run = |platform: NodePlatform, split: DeviceSplit| {
            let mut cg = CGraph::from_edge_list(&el);
            let mut msf = ind_comp(&mut cg, &platform, &split, &config).msf_edges;
            let (rest, _) = post_process(&mut cg, &platform, &config);
            msf.extend(rest);
            MsfResult::from_edges(el.num_vertices(), msf)
        };
        let cpu = run(NodePlatform::amd_cluster(), DeviceSplit::cpu_only());
        let hybrid = run(
            NodePlatform::cray_xc40(true),
            DeviceSplit { cpu_fraction: 0.4, gpu_speedup: 1.5, memory_limited: false },
        );
        prop_assert_eq!(cpu, hybrid);
    }

    /// Simulated times are finite, non-negative, and scale-monotone.
    #[test]
    fn times_are_sane(el in arb_edges(60, 150)) {
        let platform = NodePlatform::cray_xc40(true);
        let split = DeviceSplit { cpu_fraction: 0.5, gpu_speedup: 1.0, memory_limited: false };
        let t = |scale: f64| {
            let config = HyParConfig::default().with_sim_scale(scale);
            let mut cg = CGraph::from_edge_list(&el);
            let out = ind_comp(&mut cg, &platform, &split, &config);
            out.compute_time + out.transfer_time
        };
        let t1 = t(1.0);
        let t4k = t(4096.0);
        prop_assert!(t1.is_finite() && t1 >= 0.0);
        prop_assert!(t4k >= t1, "scaled run must not be cheaper: {t4k} < {t1}");
    }
}

#[test]
fn ind_comp_on_presets_with_default_config() {
    // Smoke the full node API on every Table 2 stand-in.
    for p in mnd_graph::presets::Preset::ALL {
        let el = p.generate(65536, 5);
        let oracle = kruskal_msf(&el);
        let platform = NodePlatform::cray_xc40(true);
        let config = HyParConfig::default().with_sim_scale(65536.0);
        let mut cg = CGraph::from_edge_list(&el);
        let split = DeviceSplit {
            cpu_fraction: 0.5,
            gpu_speedup: 1.0,
            memory_limited: false,
        };
        let mut msf = ind_comp(&mut cg, &platform, &split, &config).msf_edges;
        let (rest, _) = post_process(&mut cg, &platform, &config);
        msf.extend(rest);
        assert_eq!(
            MsfResult::from_edges(el.num_vertices(), msf),
            oracle,
            "{}",
            p.name()
        );
    }
}

#[test]
fn empty_and_singleton_holdings() {
    let platform = NodePlatform::cray_xc40(true);
    let config = cfg();
    let split = DeviceSplit {
        cpu_fraction: 0.5,
        gpu_speedup: 1.0,
        memory_limited: false,
    };
    let mut cg = CGraph::new();
    let out = ind_comp(&mut cg, &platform, &split, &config);
    assert!(out.msf_edges.is_empty());
    let el = gen::path(1, 0);
    let mut cg = CGraph::from_edge_list(&el);
    let out = ind_comp(&mut cg, &platform, &split, &config);
    assert!(out.msf_edges.is_empty());
}
