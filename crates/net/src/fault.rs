//! Fabric-level fault injection.
//!
//! A [`FaultInjector`] decides, for every point-to-point transmission, what
//! the network does to it: how many times the first copy is lost (forcing
//! retransmission), how much extra transit skew it picks up, whether stale
//! duplicates arrive, and whether one such duplicate races *ahead* of the
//! real copy. The decision must be a **pure function** of the message
//! identity `(src, dst, tag, seq, bytes)` — injectors hold no mutable
//! state — so the fault schedule is byte-identical across runs regardless
//! of OS thread scheduling. That preserves the crate's core determinism
//! contract (see `Cluster`'s `deterministic_clocks_across_runs` test).
//!
//! The transport built on top in `comm.rs` stays *reliable and in-order*:
//! drops surface as retry latency charged to the virtual clock (via
//! [`crate::CostModel::retry_timeout`]), duplicates are filtered by
//! sequence number and counted as redeliveries, and the payload stream a
//! receiver observes is unchanged. Faults therefore perturb **time and
//! traffic accounting**, never algorithm semantics — which is exactly what
//! makes chaos runs comparable against the fault-free baseline.

use std::sync::Arc;

use crate::comm::Tag;

/// What the network does to one transmission. [`SendFate::CLEAN`] (the
/// default) is an undisturbed delivery.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SendFate {
    /// Lost first copies: the sender retransmits this many times before a
    /// copy gets through, paying `CostModel::retry_timeout(k)` before the
    /// `k`-th retransmission.
    pub retries: u32,
    /// Extra transit skew (virtual seconds, >= 0) on the delivered copy.
    pub delay: f64,
    /// Stale duplicate copies arriving *after* the real one; the receiver
    /// discards each and counts a redelivery.
    pub duplicates: u32,
    /// Whether a stale duplicate also races *ahead* of the real copy
    /// (out-of-order arrival the receiver must filter before delivery).
    pub reorder: bool,
}

impl SendFate {
    /// An undisturbed transmission.
    pub const CLEAN: SendFate = SendFate {
        retries: 0,
        delay: 0.0,
        duplicates: 0,
        reorder: false,
    };

    /// Whether this fate perturbs the transmission at all.
    pub fn is_clean(&self) -> bool {
        *self == SendFate::CLEAN
    }
}

/// Decides the [`SendFate`] of every transmission. `seq` is the per
/// `(dst, tag)` send sequence number at the sender, so an injector can
/// target e.g. "the third merge message rank 2 sends to rank 0".
///
/// Implementations must be deterministic: the same arguments must always
/// yield the same fate (no interior mutability, no wall-clock input).
pub trait FaultInjector: Send + Sync {
    /// The fate of message `seq` from `src` to `dst` under `tag`.
    fn fate(&self, src: usize, dst: usize, tag: Tag, seq: u64, bytes: u64) -> SendFate;
}

/// An optional, shareable [`FaultInjector`] slot — `None` means a clean
/// fabric with zero per-message overhead. Mirrors the observer-hook
/// pattern: `Clone`/`Debug`/`PartialEq` (by identity) so the structs that
/// embed it keep their derives.
#[derive(Clone, Default)]
pub struct InjectorHook(Option<Arc<dyn FaultInjector>>);

impl InjectorHook {
    /// The empty hook (clean fabric).
    pub fn none() -> Self {
        InjectorHook(None)
    }

    /// A hook around `injector`.
    pub fn new(injector: Arc<dyn FaultInjector>) -> Self {
        InjectorHook(Some(injector))
    }

    /// Whether an injector is installed.
    pub fn is_set(&self) -> bool {
        self.0.is_some()
    }

    /// The fate of a transmission: the injector's verdict, or
    /// [`SendFate::CLEAN`] when no injector is installed. Negative delays
    /// are clamped to zero and retry counts are capped so a buggy injector
    /// cannot stall the simulation unboundedly.
    pub fn fate(&self, src: usize, dst: usize, tag: Tag, seq: u64, bytes: u64) -> SendFate {
        match &self.0 {
            None => SendFate::CLEAN,
            Some(inj) => {
                let mut fate = inj.fate(src, dst, tag, seq, bytes);
                fate.retries = fate.retries.min(16);
                fate.duplicates = fate.duplicates.min(16);
                if !fate.delay.is_finite() || fate.delay < 0.0 {
                    fate.delay = 0.0;
                }
                fate
            }
        }
    }
}

impl std::fmt::Debug for InjectorHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.is_set() {
            "InjectorHook(set)"
        } else {
            "InjectorHook(none)"
        })
    }
}

/// Identity comparison: two hooks are equal when they point at the same
/// injector (or are both empty).
impl PartialEq for InjectorHook {
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct EveryOther;
    impl FaultInjector for EveryOther {
        fn fate(&self, _src: usize, _dst: usize, _tag: Tag, seq: u64, _bytes: u64) -> SendFate {
            SendFate {
                retries: (seq % 2) as u32,
                delay: -1.0, // sanitised to 0 by the hook
                duplicates: 99,
                reorder: false,
            }
        }
    }

    #[test]
    fn empty_hook_is_clean() {
        let h = InjectorHook::none();
        assert!(!h.is_set());
        assert!(h.fate(0, 1, Tag::user(0), 7, 100).is_clean());
    }

    #[test]
    fn hook_sanitises_injector_output() {
        let h = InjectorHook::new(Arc::new(EveryOther));
        assert!(h.is_set());
        let f = h.fate(0, 1, Tag::user(0), 1, 8);
        assert_eq!(f.retries, 1);
        assert_eq!(f.duplicates, 16); // capped
        assert_eq!(f.delay, 0.0); // clamped
        assert!(h.fate(0, 1, Tag::user(0), 0, 8).retries == 0);
    }

    #[test]
    fn hook_equality_is_by_identity() {
        let a: Arc<dyn FaultInjector> = Arc::new(EveryOther);
        let h1 = InjectorHook::new(Arc::clone(&a));
        let h2 = InjectorHook::new(a);
        let h3 = InjectorHook::new(Arc::new(EveryOther));
        assert_eq!(h1, h2);
        assert_ne!(h1, h3);
        assert_eq!(InjectorHook::none(), InjectorHook::none());
        assert_ne!(h1, InjectorHook::none());
    }
}
