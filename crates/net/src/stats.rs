//! Per-rank accounting: virtual clock plus compute/communication split.

/// Statistics one rank accumulates over a run. All times are virtual
/// seconds from the shared cost model, not wall-clock.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RankStats {
    /// Time spent in modelled computation (`Comm::compute`).
    pub compute_time: f64,
    /// Time spent sending, waiting for, and receiving messages.
    pub comm_time: f64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Messages sent.
    pub messages_sent: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Messages received.
    pub messages_received: u64,
}

impl RankStats {
    /// Total virtual time attributed (compute + comm). Equals the rank's
    /// final clock when the rank starts at 0 and every advance is booked.
    pub fn total_time(&self) -> f64 {
        self.compute_time + self.comm_time
    }

    /// Fraction of total time spent communicating (0 when idle).
    pub fn comm_fraction(&self) -> f64 {
        let t = self.total_time();
        if t == 0.0 {
            0.0
        } else {
            self.comm_time / t
        }
    }

    /// Element-wise accumulation (used when merging phase-level snapshots).
    pub fn add(&mut self, other: &RankStats) {
        self.compute_time += other.compute_time;
        self.comm_time += other.comm_time;
        self.bytes_sent += other.bytes_sent;
        self.messages_sent += other.messages_sent;
        self.bytes_received += other.bytes_received;
        self.messages_received += other.messages_received;
    }

    /// Difference (`self - earlier`) — used to attribute a phase.
    pub fn delta_since(&self, earlier: &RankStats) -> RankStats {
        RankStats {
            compute_time: self.compute_time - earlier.compute_time,
            comm_time: self.comm_time - earlier.comm_time,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            messages_sent: self.messages_sent - earlier.messages_sent,
            bytes_received: self.bytes_received - earlier.bytes_received,
            messages_received: self.messages_received - earlier.messages_received,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let s = RankStats { compute_time: 3.0, comm_time: 1.0, ..Default::default() };
        assert_eq!(s.total_time(), 4.0);
        assert_eq!(s.comm_fraction(), 0.25);
        assert_eq!(RankStats::default().comm_fraction(), 0.0);
    }

    #[test]
    fn add_and_delta_are_inverses() {
        let mut a = RankStats { compute_time: 1.0, bytes_sent: 10, ..Default::default() };
        let b = RankStats { compute_time: 2.0, comm_time: 0.5, bytes_sent: 5, messages_sent: 1, ..Default::default() };
        let before = a;
        a.add(&b);
        assert_eq!(a.delta_since(&before), b);
    }
}
