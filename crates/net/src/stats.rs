//! Per-rank accounting: virtual clock plus compute/communication split,
//! with a per-tag breakdown of traffic.

use std::collections::BTreeMap;

use crate::comm::Tag;

/// Traffic counters for one message tag.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TagTraffic {
    /// Payload bytes sent under this tag.
    pub bytes_sent: u64,
    /// Messages sent under this tag.
    pub messages_sent: u64,
    /// Payload bytes received under this tag.
    pub bytes_received: u64,
    /// Messages received under this tag.
    pub messages_received: u64,
    /// Retransmissions the fault plane forced on sends under this tag.
    pub retries: u64,
    /// Duplicate arrivals discarded by the receiver under this tag.
    pub redeliveries: u64,
}

impl TagTraffic {
    fn add(&mut self, other: &TagTraffic) {
        self.bytes_sent += other.bytes_sent;
        self.messages_sent += other.messages_sent;
        self.bytes_received += other.bytes_received;
        self.messages_received += other.messages_received;
        self.retries += other.retries;
        self.redeliveries += other.redeliveries;
    }

    fn sub(&self, earlier: &TagTraffic) -> TagTraffic {
        TagTraffic {
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            messages_sent: self.messages_sent - earlier.messages_sent,
            bytes_received: self.bytes_received - earlier.bytes_received,
            messages_received: self.messages_received - earlier.messages_received,
            retries: self.retries - earlier.retries,
            redeliveries: self.redeliveries - earlier.redeliveries,
        }
    }

    fn is_zero(&self) -> bool {
        *self == TagTraffic::default()
    }
}

/// Statistics one rank accumulates over a run. All times are virtual
/// seconds from the shared cost model, not wall-clock.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RankStats {
    /// Time spent in modelled computation (`Comm::compute`).
    pub compute_time: f64,
    /// Time spent sending, waiting for, and receiving messages.
    pub comm_time: f64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Messages sent.
    pub messages_sent: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Messages received.
    pub messages_received: u64,
    /// Retransmissions forced by the fault plane (sends that were dropped
    /// and automatically resent; the first copy of a message is not a
    /// retry).
    pub retries: u64,
    /// Duplicate arrivals this rank discarded (redundant copies injected
    /// by the fault plane, filtered by sequence number before delivery).
    pub redeliveries: u64,
    /// Phase-boundary checkpoints this rank wrote.
    pub checkpoint_writes: u64,
    /// Wire bytes those checkpoint writes charged to the storage model.
    /// Engines with delta-encoded checkpoints (spmsf's component vector)
    /// book the encoded size here, not the full state size.
    pub checkpoint_bytes: u64,
    /// Checkpoint restores after an injected crash.
    pub checkpoint_restores: u64,
    /// Virtual seconds lost to injected stalls (a subset of `comm_time`).
    pub stall_time: f64,
    /// Compute re-executed while replaying a crash-interrupted epoch (a
    /// subset of `compute_time`): the rollback-recovery cost the restart
    /// model charges on top of the restart stall.
    pub replayed_compute: f64,
    /// Payload bytes served from the replay log while re-executing the
    /// interrupted epoch. *Not* part of `bytes_received` — replayed
    /// traffic never re-touches the fabric and is never re-charged.
    pub replayed_in_bytes: u64,
    /// Per-tag breakdown of the byte/message totals above. Invariant:
    /// summing any counter over all tags equals the corresponding total.
    pub by_tag: BTreeMap<Tag, TagTraffic>,
}

impl RankStats {
    /// Total virtual time attributed (compute + comm). Equals the rank's
    /// final clock when the rank starts at 0 and every advance is booked.
    pub fn total_time(&self) -> f64 {
        self.compute_time + self.comm_time
    }

    /// Fraction of total time spent communicating (0 when idle).
    pub fn comm_fraction(&self) -> f64 {
        let t = self.total_time();
        if t == 0.0 {
            0.0
        } else {
            self.comm_time / t
        }
    }

    /// Books one sent message of `bytes` under `tag`.
    pub(crate) fn record_send(&mut self, tag: Tag, bytes: u64) {
        self.bytes_sent += bytes;
        self.messages_sent += 1;
        let t = self.by_tag.entry(tag).or_default();
        t.bytes_sent += bytes;
        t.messages_sent += 1;
    }

    /// Books one received message of `bytes` under `tag`.
    pub(crate) fn record_recv(&mut self, tag: Tag, bytes: u64) {
        self.bytes_received += bytes;
        self.messages_received += 1;
        let t = self.by_tag.entry(tag).or_default();
        t.bytes_received += bytes;
        t.messages_received += 1;
    }

    /// Books `n` forced retransmissions under `tag`.
    pub(crate) fn record_retries(&mut self, tag: Tag, n: u64) {
        if n == 0 {
            return;
        }
        self.retries += n;
        self.by_tag.entry(tag).or_default().retries += n;
    }

    /// Books one discarded duplicate arrival under `tag`.
    pub(crate) fn record_redelivery(&mut self, tag: Tag) {
        self.redeliveries += 1;
        self.by_tag.entry(tag).or_default().redeliveries += 1;
    }

    /// Element-wise accumulation (used when merging phase-level snapshots).
    pub fn add(&mut self, other: &RankStats) {
        self.compute_time += other.compute_time;
        self.comm_time += other.comm_time;
        self.bytes_sent += other.bytes_sent;
        self.messages_sent += other.messages_sent;
        self.bytes_received += other.bytes_received;
        self.messages_received += other.messages_received;
        self.retries += other.retries;
        self.redeliveries += other.redeliveries;
        self.checkpoint_writes += other.checkpoint_writes;
        self.checkpoint_bytes += other.checkpoint_bytes;
        self.checkpoint_restores += other.checkpoint_restores;
        self.stall_time += other.stall_time;
        self.replayed_compute += other.replayed_compute;
        self.replayed_in_bytes += other.replayed_in_bytes;
        for (tag, t) in &other.by_tag {
            self.by_tag.entry(*tag).or_default().add(t);
        }
    }

    /// Difference (`self - earlier`) — used to attribute a phase. Tags with
    /// no traffic in the window are omitted from the delta's breakdown.
    pub fn delta_since(&self, earlier: &RankStats) -> RankStats {
        let zero = TagTraffic::default();
        let by_tag = self
            .by_tag
            .iter()
            .map(|(tag, t)| (*tag, t.sub(earlier.by_tag.get(tag).unwrap_or(&zero))))
            .filter(|(_, t)| !t.is_zero())
            .collect();
        RankStats {
            compute_time: self.compute_time - earlier.compute_time,
            comm_time: self.comm_time - earlier.comm_time,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            messages_sent: self.messages_sent - earlier.messages_sent,
            bytes_received: self.bytes_received - earlier.bytes_received,
            messages_received: self.messages_received - earlier.messages_received,
            retries: self.retries - earlier.retries,
            redeliveries: self.redeliveries - earlier.redeliveries,
            checkpoint_writes: self.checkpoint_writes - earlier.checkpoint_writes,
            checkpoint_bytes: self.checkpoint_bytes - earlier.checkpoint_bytes,
            checkpoint_restores: self.checkpoint_restores - earlier.checkpoint_restores,
            stall_time: self.stall_time - earlier.stall_time,
            replayed_compute: self.replayed_compute - earlier.replayed_compute,
            replayed_in_bytes: self.replayed_in_bytes - earlier.replayed_in_bytes,
            by_tag,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let s = RankStats {
            compute_time: 3.0,
            comm_time: 1.0,
            ..Default::default()
        };
        assert_eq!(s.total_time(), 4.0);
        assert_eq!(s.comm_fraction(), 0.25);
        assert_eq!(RankStats::default().comm_fraction(), 0.0);
    }

    #[test]
    fn add_and_delta_are_inverses() {
        let mut a = RankStats {
            compute_time: 1.0,
            bytes_sent: 10,
            ..Default::default()
        };
        a.record_send(Tag::user(1), 0); // tag entry with zero bytes, 1 msg
        let mut b = RankStats {
            compute_time: 2.0,
            comm_time: 0.5,
            ..Default::default()
        };
        b.record_send(Tag::user(2), 5);
        let before = a.clone();
        a.add(&b);
        assert_eq!(a.delta_since(&before), b);
    }

    #[test]
    fn fault_counters_roundtrip_add_and_delta() {
        let mut a = RankStats::default();
        a.record_retries(Tag::user(1), 3);
        a.record_redelivery(Tag::user(1));
        a.checkpoint_writes = 2;
        a.checkpoint_bytes = 512;
        a.checkpoint_restores = 1;
        a.stall_time = 0.25;
        assert_eq!(a.retries, 3);
        assert_eq!(a.by_tag[&Tag::user(1)].retries, 3);
        assert_eq!(a.by_tag[&Tag::user(1)].redeliveries, 1);
        // Zero retries must not create a tag entry (delta cleanliness).
        a.record_retries(Tag::user(9), 0);
        assert!(!a.by_tag.contains_key(&Tag::user(9)));
        let before = RankStats::default();
        let mut sum = before.clone();
        sum.add(&a);
        assert_eq!(sum.delta_since(&before), a);
    }

    #[test]
    fn per_tag_sums_to_totals() {
        let mut s = RankStats::default();
        s.record_send(Tag::user(1), 100);
        s.record_send(Tag::user(1), 50);
        s.record_send(Tag::user(2), 8);
        s.record_recv(Tag::user(3), 70);
        assert_eq!(s.bytes_sent, 158);
        assert_eq!(s.messages_sent, 3);
        assert_eq!(s.by_tag[&Tag::user(1)].bytes_sent, 150);
        assert_eq!(s.by_tag[&Tag::user(1)].messages_sent, 2);
        assert_eq!(s.by_tag[&Tag::user(2)].bytes_sent, 8);
        assert_eq!(s.by_tag[&Tag::user(3)].bytes_received, 70);
        let tag_bytes: u64 = s.by_tag.values().map(|t| t.bytes_sent).sum();
        assert_eq!(tag_bytes, s.bytes_sent);
    }
}
