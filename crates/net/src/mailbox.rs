//! Per-rank mailboxes: the shared transport under [`crate::Comm`].
//!
//! Matching is MPI-like: a receive names an exact `(source, tag)` pair, and
//! messages from the same `(source, tag)` are delivered in send order
//! (non-overtaking). Payloads travel as `Box<dyn Any>` — the typed facade
//! in `comm.rs` downcasts and panics with a clear message on mismatch,
//! which is a programming error (MPI would call it a datatype mismatch).

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::comm::Tag;

/// A message in flight.
pub struct Envelope {
    /// Payload (downcast by the typed receive).
    pub payload: Box<dyn Any + Send>,
    /// Virtual arrival time at the receiver.
    pub arrival: f64,
    /// Payload size under the cost model.
    pub bytes: u64,
    /// Per-`(src, tag)` send sequence number (delivery-order check and
    /// duplicate filtering under fault injection).
    pub seq: u64,
    /// Sender's epoch (recovery points passed) when the message was
    /// deposited — keys the receiver's replay log under rollback recovery.
    pub epoch: u32,
    /// Whether this is a redundant copy injected by the fault plane; the
    /// receiver discards it (counting a redelivery) instead of delivering.
    pub dup: bool,
}

/// Wall-clock guard: a receive that stays empty this long indicates a
/// deadlock in the distributed algorithm; we panic with the match key so
/// the offending exchange is identifiable.
const RECV_TIMEOUT: Duration = Duration::from_secs(120);

#[derive(Default)]
struct Queues {
    by_key: HashMap<(usize, Tag), VecDeque<Envelope>>,
}

/// One rank's mailbox.
#[derive(Default)]
pub struct Mailbox {
    queues: Mutex<Queues>,
    signal: Condvar,
}

impl Mailbox {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Mailbox::default()
    }

    /// Deposits a message from `src` with `tag`.
    pub fn deposit(&self, src: usize, tag: Tag, env: Envelope) {
        let mut q = self.queues.lock().expect("mailbox poisoned");
        q.by_key.entry((src, tag)).or_default().push_back(env);
        self.signal.notify_all();
    }

    /// Blocks until a message from `(src, tag)` is available and returns it.
    pub fn take(&self, src: usize, tag: Tag, my_rank: usize) -> Envelope {
        let mut q = self.queues.lock().expect("mailbox poisoned");
        loop {
            if let Some(queue) = q.by_key.get_mut(&(src, tag)) {
                if let Some(env) = queue.pop_front() {
                    return env;
                }
            }
            let (guard, timeout) = self
                .signal
                .wait_timeout(q, RECV_TIMEOUT)
                .expect("mailbox poisoned");
            q = guard;
            if timeout.timed_out() {
                panic!(
                    "rank {my_rank}: recv from rank {src} tag {tag:?} timed out — \
                     distributed deadlock (sender never sent, or tag mismatch); \
                     pending queues at rank {my_rank}: {}",
                    Self::describe_pending(&q)
                );
            }
        }
    }

    /// Formats the non-empty `(source, tag)` queues and their depths, so a
    /// deadlock panic identifies the offending exchange by itself.
    fn describe_pending(q: &Queues) -> String {
        let mut keys: Vec<(usize, Tag, usize)> = q
            .by_key
            .iter()
            .filter(|(_, queue)| !queue.is_empty())
            .map(|(&(src, tag), queue)| (src, tag, queue.len()))
            .collect();
        if keys.is_empty() {
            return "[none]".to_string();
        }
        keys.sort_unstable();
        let entries: Vec<String> = keys
            .into_iter()
            .map(|(src, tag, depth)| format!("(src {src}, {tag:?}) x{depth}"))
            .collect();
        format!("[{}]", entries.join(", "))
    }

    /// Number of queued messages (diagnostics).
    pub fn pending(&self) -> usize {
        self.queues
            .lock()
            .expect("mailbox poisoned")
            .by_key
            .values()
            .map(|v| v.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(v: u32) -> Envelope {
        Envelope {
            payload: Box::new(v),
            arrival: 0.0,
            bytes: 4,
            seq: 0,
            epoch: 0,
            dup: false,
        }
    }

    #[test]
    fn fifo_per_key() {
        let m = Mailbox::new();
        m.deposit(1, Tag::user(0), env(10));
        m.deposit(1, Tag::user(0), env(20));
        let a = m.take(1, Tag::user(0), 0);
        let b = m.take(1, Tag::user(0), 0);
        assert_eq!(*a.payload.downcast::<u32>().unwrap(), 10);
        assert_eq!(*b.payload.downcast::<u32>().unwrap(), 20);
    }

    #[test]
    fn keys_are_independent() {
        let m = Mailbox::new();
        m.deposit(2, Tag::user(7), env(99));
        m.deposit(1, Tag::user(7), env(1));
        let got = m.take(2, Tag::user(7), 0);
        assert_eq!(*got.payload.downcast::<u32>().unwrap(), 99);
        assert_eq!(m.pending(), 1);
    }

    #[test]
    fn deadlock_dump_lists_pending_keys_and_depths() {
        let m = Mailbox::new();
        m.deposit(3, Tag::user(5), env(1));
        m.deposit(3, Tag::user(5), env(2));
        m.deposit(1, Tag::user(0), env(3));
        let q = m.queues.lock().unwrap();
        let dump = Mailbox::describe_pending(&q);
        assert_eq!(dump, "[(src 1, Tag(0)) x1, (src 3, Tag(5)) x2]");
        drop(q);
        let empty = Mailbox::new();
        let q = empty.queues.lock().unwrap();
        assert_eq!(Mailbox::describe_pending(&q), "[none]");
    }

    #[test]
    fn take_blocks_until_deposit() {
        use std::sync::Arc;
        let m = Arc::new(Mailbox::new());
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || {
            let e = m2.take(0, Tag::user(1), 1);
            *e.payload.downcast::<u32>().unwrap()
        });
        std::thread::sleep(Duration::from_millis(20));
        m.deposit(0, Tag::user(1), env(42));
        assert_eq!(h.join().unwrap(), 42);
    }
}
