//! Message logging for rollback recovery (DESIGN.md §5f).
//!
//! When a chaos plan can kill a rank mid-phase, every rank keeps a
//! [`ReplayLog`]: a receiver-side log of delivered payloads and a
//! sender-side tally of transmitted messages, both organised by *epoch*
//! (the number of recovery points the rank has passed). After a crash the
//! rank restores the checkpoint written *before* the interrupted epoch and
//! re-executes the pipeline deterministically; the log lets it
//!
//! * serve its own inbound messages again without touching the fabric
//!   (no bytes are re-charged, peers are never consulted), and
//! * suppress outbound messages the fabric already carried (the receivers
//!   hold — or already consumed — the original copies).
//!
//! The send tally is garbage-collected when a checkpoint commits: epochs at
//! or before the committed boundary are folded into a per-channel base
//! count, since a future rollback can never re-enter them. Receive entries
//! cannot be trimmed epoch-by-epoch — recovery replays the *whole* prefix
//! of the pipeline (in zero-cost fast-forward) to rebuild control flow, so
//! even garbage-collected epochs' payloads are read again. They *can* be
//! dropped wholesale: once the rank's epoch passes the last point at which
//! the active chaos plan could still crash it mid-phase (the plan's
//! *replay horizon*, [`mnd-hypar::ChaosControl::replay_horizon`]), no
//! future rollback can consume any logged payload, and the driver retires
//! the entire log via `Comm::retire_replay_log`. That bound keeps the
//! log's footprint proportional to the faulty prefix of a run instead of
//! its whole length.

use std::any::Any;
use std::collections::{BTreeMap, HashMap};
use std::sync::Once;

use crate::comm::Tag;

/// Panic payload raised by [`crate::Comm`] when the chaos plane kills a
/// rank mid-phase. The driver catches it (`catch_unwind`), restores the
/// previous checkpoint, and re-executes; it must never escape a rank
/// closure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MidPhaseCrash {
    /// Epoch (recovery points passed) in which the crash fired.
    pub epoch: u32,
    /// Fabric-op ordinal within the epoch at which the crash fired (the op
    /// itself never executed).
    pub op: u64,
}

/// Payloads travel as `Box<dyn Any>`, which cannot be cloned; the typed
/// receive path logs a clone *factory* built from a `T: Clone` copy, so the
/// log can mint a fresh boxed payload per replay.
pub(crate) type CloneFactory = Box<dyn Fn() -> Box<dyn Any + Send> + Send>;

/// One logged inbound message.
pub(crate) struct LoggedRecv {
    /// Sender's epoch when the message was deposited (envelope tag).
    #[allow(dead_code)]
    pub epoch: u32,
    /// Wire bytes originally charged for the delivery.
    pub bytes: u64,
    /// Mints a fresh boxed copy of the payload.
    pub make: CloneFactory,
}

/// Per-rank send/recv log, keyed by `(epoch, tag, peer, seq)`.
#[derive(Default)]
pub(crate) struct ReplayLog {
    /// Inbound payloads by channel, keyed by delivery sequence number.
    recvs: HashMap<(usize, Tag), BTreeMap<u64, LoggedRecv>>,
    /// Messages this rank transmitted, per epoch and channel; compacted
    /// into `sent_base` when the epoch's checkpoint commits.
    sends: BTreeMap<u32, HashMap<(usize, Tag), u64>>,
    /// Transmission counts of garbage-collected epochs.
    sent_base: HashMap<(usize, Tag), u64>,
}

impl ReplayLog {
    /// Books one transmitted message on `(dst, tag)` under `epoch`.
    pub fn record_send(&mut self, epoch: u32, dst: usize, tag: Tag) {
        *self
            .sends
            .entry(epoch)
            .or_default()
            .entry((dst, tag))
            .or_insert(0) += 1;
    }

    /// Logs one delivered payload on `(src, tag)` at sequence `seq`.
    pub fn record_recv(
        &mut self,
        epoch: u32,
        src: usize,
        tag: Tag,
        seq: u64,
        bytes: u64,
        make: CloneFactory,
    ) {
        self.recvs
            .entry((src, tag))
            .or_default()
            .insert(seq, LoggedRecv { epoch, bytes, make });
    }

    /// How many messages this rank has ever transmitted on `(dst, tag)`.
    /// A re-executing send with `seq < transmitted` is suppressed.
    pub fn transmitted(&self, dst: usize, tag: Tag) -> u64 {
        self.sent_base.get(&(dst, tag)).copied().unwrap_or(0)
            + self
                .sends
                .values()
                .filter_map(|m| m.get(&(dst, tag)))
                .sum::<u64>()
    }

    /// Number of logged inbound payloads currently held (across all
    /// channels). Drivers use this to assert the GC bound.
    pub fn recv_entries(&self) -> usize {
        self.recvs.values().map(|m| m.len()).sum()
    }

    /// Serves a logged inbound payload, if present.
    pub fn replay_recv(
        &self,
        src: usize,
        tag: Tag,
        seq: u64,
    ) -> Option<(u64, Box<dyn Any + Send>)> {
        self.recvs
            .get(&(src, tag))
            .and_then(|m| m.get(&seq))
            .map(|r| (r.bytes, (r.make)()))
    }

    /// Garbage-collects the send tally at a checkpoint commit: epochs
    /// `<= epoch` can never be re-entered, so their per-channel counts fold
    /// into the base. Receive entries are retained (see module docs).
    pub fn gc_sends_through(&mut self, epoch: u32) {
        let keep = self.sends.split_off(&(epoch + 1));
        for (_, counts) in std::mem::replace(&mut self.sends, keep) {
            for (key, n) in counts {
                *self.sent_base.entry(key).or_insert(0) += n;
            }
        }
    }
}

/// Quietens the default panic hook for [`MidPhaseCrash`] payloads: an
/// injected crash is control flow (caught and recovered by the driver),
/// not a bug report. Installed once per process; every other panic still
/// reaches the previous hook.
pub fn install_quiet_crash_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<MidPhaseCrash>().is_some() {
                return;
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_tally_survives_gc_as_base_counts() {
        let mut log = ReplayLog::default();
        let t = Tag::user(1);
        log.record_send(0, 1, t);
        log.record_send(0, 1, t);
        log.record_send(1, 1, t);
        log.record_send(2, 2, t);
        assert_eq!(log.transmitted(1, t), 3);
        assert_eq!(log.transmitted(2, t), 1);
        log.gc_sends_through(1);
        assert_eq!(log.transmitted(1, t), 3, "gc must not lose counts");
        assert_eq!(log.transmitted(2, t), 1);
        assert!(log.sends.len() == 1, "epochs <= 1 folded into base");
    }

    #[test]
    fn recv_log_mints_fresh_payload_copies() {
        let mut log = ReplayLog::default();
        let t = Tag::user(0);
        let v = vec![7u32, 8, 9];
        let copy = v.clone();
        log.record_recv(0, 2, t, 5, 12, Box::new(move || Box::new(copy.clone())));
        for _ in 0..2 {
            let (bytes, payload) = log.replay_recv(2, t, 5).expect("logged");
            assert_eq!(bytes, 12);
            assert_eq!(*payload.downcast::<Vec<u32>>().unwrap(), v);
        }
        assert!(log.replay_recv(2, t, 6).is_none());
        assert!(log.replay_recv(0, t, 5).is_none());
    }
}
