//! # mnd-net — simulated distributed-memory message passing
//!
//! The MND-MST paper runs on MPI over 16-node clusters. MPI (and a cluster)
//! are unavailable in this environment, so this crate provides the
//! substitute substrate described in DESIGN.md:
//!
//! * every **rank** is an OS thread with a private mailbox
//!   ([`Cluster::run`] spawns them and joins their results),
//! * ranks exchange **typed messages** through [`Comm::send`] /
//!   [`Comm::recv`] with MPI-like `(source, tag)` matching,
//! * each rank keeps a **virtual clock** advanced by modelled computation
//!   ([`Comm::compute`]) and by message costs from a LogGP-style
//!   [`CostModel`]; a receive waits (in virtual time) for the message's
//!   arrival, exactly like wall-clock time composes on a real cluster,
//! * [`collectives`] builds barrier / broadcast / reduce / allreduce /
//!   gather / allgather from point-to-point messages so their simulated
//!   cost emerges from the same model,
//! * per-rank [`RankStats`] split time into compute vs. communication and
//!   count bytes/messages — the quantities behind the paper's Figures 5
//!   and 7,
//! * an optional **fault plane** ([`fault`]) interposes on every
//!   transmission: drops surface as retransmission latency, duplicates and
//!   out-of-order copies are filtered by sequence number, all charged to
//!   the same virtual clocks and counted in [`RankStats`].
//!
//! Everything is deterministic: virtual timestamps depend only on the
//! communication DAG, never on OS scheduling (tests assert bit-equal clocks
//! across repeated runs).
//!
//! ```
//! use mnd_net::{Cluster, CostModel};
//!
//! let outcomes = Cluster::new(4, CostModel::default_cluster()).run(|comm| {
//!     // Each rank computes for 1ms, then everyone allreduces a sum.
//!     comm.compute(1e-3);
//!     comm.allreduce_u64(comm.rank() as u64 + 1, |a, b| a + b)
//! });
//! assert!(outcomes.iter().all(|o| o.result == 10));
//! ```

pub mod cluster;
pub mod collectives;
pub mod comm;
pub mod cost;
pub mod fault;
pub mod group;
pub mod mailbox;
pub mod replay;
pub mod stats;

pub use cluster::{Cluster, RankOutcome};
pub use collectives::ExchangeMode;
pub use comm::{Comm, Tag};
pub use cost::CostModel;
pub use fault::{FaultInjector, InjectorHook, SendFate};
pub use group::Group;
pub use mnd_wire::Wire;
pub use replay::{install_quiet_crash_hook, MidPhaseCrash};
pub use stats::{RankStats, TagTraffic};
