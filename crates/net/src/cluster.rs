//! Spawning and joining the rank threads.

use std::sync::Arc;

use crate::comm::{Comm, Fabric};
use crate::cost::CostModel;
use crate::fault::{FaultInjector, InjectorHook};
use crate::mailbox::Mailbox;
use crate::stats::RankStats;

/// What one rank produced: its closure result, final virtual clock, and
/// accounting.
#[derive(Clone, Debug)]
pub struct RankOutcome<T> {
    /// The rank's return value.
    pub result: T,
    /// Final virtual time on the rank's clock.
    pub final_clock: f64,
    /// Compute/communication accounting.
    pub stats: RankStats,
}

/// A simulated cluster: `n` ranks over one cost model.
pub struct Cluster {
    nranks: usize,
    cost: CostModel,
    faults: InjectorHook,
}

impl Cluster {
    /// A cluster of `nranks` ranks.
    pub fn new(nranks: usize, cost: CostModel) -> Self {
        assert!(nranks >= 1, "need at least one rank");
        Cluster {
            nranks,
            cost,
            faults: InjectorHook::none(),
        }
    }

    /// Installs a fault injector on the fabric (see [`crate::fault`]).
    pub fn with_fault_injector(mut self, injector: Arc<dyn FaultInjector>) -> Self {
        self.faults = InjectorHook::new(injector);
        self
    }

    /// Installs a (possibly empty) fault-injector hook.
    pub fn with_fault_hook(mut self, faults: InjectorHook) -> Self {
        self.faults = faults;
        self
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Runs `f` on every rank concurrently and returns the outcomes in rank
    /// order. Panics in any rank propagate (with the rank id in the
    /// message) after all threads are joined.
    pub fn run<T, F>(&self, f: F) -> Vec<RankOutcome<T>>
    where
        T: Send,
        F: Fn(&Comm) -> T + Sync,
    {
        let fabric = Arc::new(Fabric {
            mailboxes: (0..self.nranks).map(|_| Mailbox::new()).collect(),
            cost: self.cost,
            faults: self.faults.clone(),
        });
        let mut outcomes: Vec<Option<RankOutcome<T>>> = (0..self.nranks).map(|_| None).collect();

        std::thread::scope(|scope| {
            let handles: Vec<_> = outcomes
                .iter_mut()
                .enumerate()
                .map(|(rank, slot)| {
                    let fabric = Arc::clone(&fabric);
                    let f = &f;
                    scope.spawn(move || {
                        let comm = Comm::new(rank, fabric.mailboxes.len(), fabric);
                        let result = f(&comm);
                        *slot = Some(RankOutcome {
                            result,
                            final_clock: comm.now(),
                            stats: comm.stats(),
                        });
                    })
                })
                .collect();
            let mut first_panic = None;
            for (rank, h) in handles.into_iter().enumerate() {
                if let Err(e) = h.join() {
                    first_panic.get_or_insert((rank, e));
                }
            }
            if let Some((rank, e)) = first_panic {
                let msg = e
                    .downcast_ref::<String>()
                    .map(|s| s.as_str())
                    .or_else(|| e.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic>");
                panic!("rank {rank} panicked: {msg}");
            }
        });

        outcomes
            .into_iter()
            .map(|o| o.expect("every rank either completed or we panicked above"))
            .collect()
    }

    /// Simulated makespan of a finished run: the max final clock.
    pub fn makespan<T>(outcomes: &[RankOutcome<T>]) -> f64 {
        outcomes.iter().map(|o| o.final_clock).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Tag;

    #[test]
    fn outcomes_in_rank_order() {
        let out = Cluster::new(5, CostModel::free()).run(|c| c.rank() * 10);
        let results: Vec<usize> = out.iter().map(|o| o.result).collect();
        assert_eq!(results, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn makespan_is_max_clock() {
        let out = Cluster::new(3, CostModel::free()).run(|c| {
            c.compute(c.rank() as f64);
        });
        assert_eq!(Cluster::makespan(&out), 2.0);
    }

    #[test]
    fn deterministic_clocks_across_runs() {
        let run = || {
            Cluster::new(4, CostModel::default_cluster())
                .run(|c| {
                    // Ring: everyone sends 1KB to the left, receives from
                    // the right, twice.
                    let n = c.size();
                    let me = c.rank();
                    for round in 0..2u32 {
                        let left = (me + n - 1) % n;
                        let right = (me + 1) % n;
                        c.send(left, Tag::user(round), vec![0u8; 1024]);
                        let _: Vec<u8> = c.recv(right, Tag::user(round));
                        c.compute(1e-4 * (me + 1) as f64);
                    }
                    c.now()
                })
                .iter()
                .map(|o| o.result)
                .collect::<Vec<f64>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "virtual clocks must be schedule-independent");
    }

    #[test]
    #[should_panic(expected = "rank 2 panicked")]
    fn rank_panics_propagate_with_id() {
        Cluster::new(4, CostModel::free()).run(|c| {
            if c.rank() == 2 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn single_rank_cluster_works() {
        let out = Cluster::new(1, CostModel::default_cluster()).run(|c| {
            c.compute(1.0);
            c.rank()
        });
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].final_clock, 1.0);
    }
}
