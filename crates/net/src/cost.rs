//! The LogGP-style communication cost model.
//!
//! A message of `b` bytes sent at sender-virtual-time `t` costs:
//!
//! * sender: `overhead + b / bandwidth` of busy time (serialisation),
//! * network: arrives at `t + latency + b / bandwidth`,
//! * receiver: waits (virtual time) until arrival, then pays `overhead`.
//!
//! The defaults approximate the paper's testbeds: a commodity-Ethernet AMD
//! cluster for the Pregel+ comparison and a Cray XC40 Aries interconnect
//! for the scalability studies. Absolute values matter less than their
//! *ratios* to device throughput — DESIGN.md discusses why shapes, not
//! magnitudes, are the reproduction target.

/// Parameters of the communication model. Times in seconds, bandwidth in
/// bytes/second.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// One-way network latency (the LogGP `L`).
    pub latency: f64,
    /// Point-to-point bandwidth (bytes/s; `1/G` per byte).
    pub bandwidth: f64,
    /// Per-message CPU overhead at each end (the LogGP `o`).
    pub overhead: f64,
    /// Simulation scale: payload bytes are multiplied by this factor when
    /// charging time (not when counting stats). Experiments that shrink the
    /// paper's graphs by `scale_div` set `byte_scale = scale_div` so that
    /// message costs keep their paper-scale ratio to the fixed latency —
    /// see DESIGN.md ("simulation scale").
    pub byte_scale: f64,
}

impl CostModel {
    /// Commodity gigabit-Ethernet cluster (the 16-node AMD platform used
    /// for the Pregel+ comparison): ~50µs latency, ~1 GB/s effective.
    pub fn default_cluster() -> Self {
        CostModel {
            latency: 50e-6,
            bandwidth: 1.0e9,
            overhead: 5e-6,
            byte_scale: 1.0,
        }
    }

    /// Cray XC40 Aries interconnect (the multi-device platform): ~1.5µs
    /// latency, ~8 GB/s effective per peer.
    pub fn cray_aries() -> Self {
        CostModel {
            latency: 1.5e-6,
            bandwidth: 8.0e9,
            overhead: 1e-6,
            byte_scale: 1.0,
        }
    }

    /// Intra-node transfer (CPU↔GPU staging over PCIe gen3 x16): ~10µs
    /// launch/DMA setup, ~12 GB/s.
    pub fn pcie() -> Self {
        CostModel {
            latency: 10e-6,
            bandwidth: 12.0e9,
            overhead: 2e-6,
            byte_scale: 1.0,
        }
    }

    /// A zero-cost model (useful in unit tests that only check message
    /// semantics, not timing).
    pub fn free() -> Self {
        CostModel {
            latency: 0.0,
            bandwidth: f64::INFINITY,
            overhead: 0.0,
            byte_scale: 1.0,
        }
    }

    /// Returns this model with a simulation scale applied (see
    /// [`CostModel::byte_scale`]).
    pub fn scaled(mut self, byte_scale: f64) -> Self {
        assert!(byte_scale >= 1.0, "byte_scale must be >= 1");
        self.byte_scale = byte_scale;
        self
    }

    /// Sender busy time for a `bytes`-sized message.
    #[inline]
    pub fn send_busy(&self, bytes: u64) -> f64 {
        self.overhead + bytes as f64 * self.byte_scale / self.bandwidth
    }

    /// Network transit: arrival delta after the send instant.
    #[inline]
    pub fn transit(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 * self.byte_scale / self.bandwidth
    }

    /// Receiver overhead after arrival.
    #[inline]
    pub fn recv_busy(&self) -> f64 {
        self.overhead
    }

    /// Retransmission timeout before the `attempt`-th resend (0-based) of a
    /// dropped message: a few round-trips of dead air with exponential
    /// backoff, like a TCP RTO. Derived from the model's own latency and
    /// overhead (a method, not a field, so existing `CostModel` literals
    /// keep working); the zero-cost model uses a 1µs floor so retries still
    /// register on the virtual clock.
    #[inline]
    pub fn retry_timeout(&self, attempt: u32) -> f64 {
        let rtt = 2.0 * (self.latency + self.overhead);
        let base = if rtt > 0.0 { 4.0 * rtt } else { 1e-6 };
        base * (1u64 << attempt.min(10)) as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::default_cluster()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transit_scales_with_bytes() {
        let c = CostModel {
            latency: 1e-3,
            bandwidth: 1e6,
            overhead: 0.0,
            byte_scale: 1.0,
        };
        assert!((c.transit(0) - 1e-3).abs() < 1e-12);
        assert!((c.transit(1_000_000) - 1.001).abs() < 1e-9);
    }

    #[test]
    fn free_model_is_zero_cost() {
        let c = CostModel::free();
        assert_eq!(c.send_busy(1 << 30), 0.0);
        assert_eq!(c.transit(1 << 30), 0.0);
        assert_eq!(c.recv_busy(), 0.0);
    }

    #[test]
    fn byte_scale_multiplies_payload_cost() {
        let c = CostModel {
            latency: 0.0,
            bandwidth: 1e6,
            overhead: 0.0,
            byte_scale: 1.0,
        };
        let s = c.scaled(100.0);
        assert!((s.transit(1000) - 0.1).abs() < 1e-12);
        assert!((c.transit(1000) - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn retry_timeout_backs_off_exponentially() {
        let c = CostModel::default_cluster();
        let t0 = c.retry_timeout(0);
        assert!(t0 > 0.0);
        assert_eq!(c.retry_timeout(1), 2.0 * t0);
        assert_eq!(c.retry_timeout(3), 8.0 * t0);
        // The cap keeps a buggy attempt count from overflowing the shift.
        assert_eq!(c.retry_timeout(10), c.retry_timeout(u32::MAX));
        // Even the free model charges something for a retry.
        assert!(CostModel::free().retry_timeout(0) > 0.0);
    }

    #[test]
    fn presets_are_ordered_sensibly() {
        // Aries must beat Ethernet on both latency and bandwidth.
        let eth = CostModel::default_cluster();
        let aries = CostModel::cray_aries();
        assert!(aries.latency < eth.latency);
        assert!(aries.bandwidth > eth.bandwidth);
    }
}
