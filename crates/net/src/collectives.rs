//! Collective operations, built from point-to-point messages so their
//! simulated cost (binomial-tree latency, bandwidth terms) emerges from the
//! same LogGP model as everything else.
//!
//! All collectives must be called by **every** rank of the cluster, in the
//! same order — the usual MPI contract. Tags are taken from the reserved
//! collective space and matching is FIFO per `(source, tag)`, so back-to-
//! back collectives of the same kind cannot cross-talk.

use mnd_wire::Wire;

use crate::comm::{Comm, Tag};

const TAG_BARRIER: Tag = tag(0);
const TAG_REDUCE: Tag = tag(1);
const TAG_BCAST: Tag = tag(2);
const TAG_GATHER: Tag = tag(3);
const TAG_ALLTOALL: Tag = tag(4);
const TAG_REDUCE_VEC: Tag = tag(5);
const TAG_PHASED: Tag = tag(6);
const TAG_SPARSE: Tag = tag(7);

/// Builds a tag in the reserved collective space (upper half of the tag
/// range, which [`Tag::user`] rejects).
const fn tag(id: u32) -> Tag {
    Tag(0x8000_0000 | id)
}

/// How an all-to-all exchange treats empty buckets.
///
/// [`ExchangeMode::Dense`] is the textbook schedule: every rank ships one
/// message to every other rank, empty or not — p(p−1) messages per round,
/// kept as the oracle against which the sparse path is verified.
/// [`ExchangeMode::Sparse`] first allreduces a small header on the
/// `sparse_hdr` tag so every pair agrees on who sends without an extra
/// handshake round, then ships only non-empty buckets: the one-shot
/// exchange uses a p×⌈p/64⌉-word sender bitmap, the phased exchange a p×p
/// count matrix that covers **all** phases with a single collective.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExchangeMode {
    /// Send every bucket, including empty ones (the oracle path).
    Dense,
    /// Exchange a sender bitmap first, then send only non-empty buckets.
    Sparse,
}

impl Comm {
    /// Synchronises all ranks: no rank leaves before every rank entered.
    /// Binomial reduce + broadcast of zero-byte tokens.
    pub fn barrier(&self) {
        self.reduce_u64_with_tag(0, |a, _| a, 0, TAG_BARRIER);
        self.broadcast_from(
            0,
            if self.rank() == 0 { Some(0u8) } else { None },
            TAG_BARRIER,
        );
    }

    /// Reduces `value` with `op` onto rank `root`; returns `Some(total)` on
    /// the root, `None` elsewhere.
    pub fn reduce_u64(&self, value: u64, op: impl Fn(u64, u64) -> u64, root: usize) -> Option<u64> {
        let v = self.reduce_u64_with_tag(value, op, root, TAG_REDUCE);
        (self.rank() == root).then_some(v)
    }

    /// Allreduce: every rank gets the reduction of all values.
    pub fn allreduce_u64(&self, value: u64, op: impl Fn(u64, u64) -> u64) -> u64 {
        let v = self.reduce_u64_with_tag(value, op, 0, TAG_REDUCE);
        self.broadcast_from(0, (self.rank() == 0).then_some(v), TAG_BCAST)
    }

    /// Element-wise vector allreduce (e.g. the Gemini-style global degree
    /// computation of §3.1). All ranks must pass equal-length vectors.
    pub fn allreduce_vec_u64(&self, value: Vec<u64>, op: impl Fn(u64, u64) -> u64) -> Vec<u64> {
        self.allreduce_vec_with_tags(value, op, TAG_REDUCE_VEC, TAG_BCAST)
    }

    /// Vector allreduce on explicit tags, so protocol-internal uses (the
    /// sparse exchange header) account their traffic under their own tag
    /// instead of polluting the `reduce_vec`/`bcast` rows.
    fn allreduce_vec_with_tags(
        &self,
        mut value: Vec<u64>,
        op: impl Fn(u64, u64) -> u64,
        reduce_tag: Tag,
        bcast_tag: Tag,
    ) -> Vec<u64> {
        let p = self.size();
        let me = self.rank();
        // Binomial tree reduce to 0.
        let mut k = 1usize;
        while k < p {
            if me & k != 0 {
                self.send(me - k, reduce_tag, value);
                value = Vec::new();
                break;
            } else if me + k < p {
                let other: Vec<u64> = self.recv(me + k, reduce_tag);
                assert_eq!(other.len(), value.len(), "allreduce_vec length mismatch");
                for (a, b) in value.iter_mut().zip(other) {
                    *a = op(*a, b);
                }
            }
            k <<= 1;
        }
        // Broadcast the result.
        self.broadcast_from(0, (me == 0).then_some(value), bcast_tag)
    }

    fn reduce_u64_with_tag(
        &self,
        value: u64,
        op: impl Fn(u64, u64) -> u64,
        root: usize,
        tag: Tag,
    ) -> u64 {
        let p = self.size();
        let rel = (self.rank() + p - root) % p;
        let mut acc = value;
        let mut k = 1usize;
        while k < p {
            if rel & k != 0 {
                let dst = (rel - k + root) % p;
                self.send(dst, tag, acc);
                return acc; // non-root contribution delivered
            } else if rel + k < p {
                let src = (rel + k + root) % p;
                let other: u64 = self.recv(src, tag);
                acc = op(acc, other);
            }
            k <<= 1;
        }
        acc
    }

    /// Broadcasts from `root`: the root passes `Some(value)`, everyone else
    /// `None`; all ranks return the value. Binomial tree.
    pub fn broadcast<T: Wire + Clone>(&self, root: usize, value: Option<T>) -> T {
        self.broadcast_from(root, value, TAG_BCAST)
    }

    fn broadcast_from<T: Wire + Clone>(&self, root: usize, value: Option<T>, tag: Tag) -> T {
        let p = self.size();
        let rel = (self.rank() + p - root) % p;
        let mut have: Option<T> = value;
        if rel == 0 {
            assert!(have.is_some(), "broadcast root must supply the value");
        }
        // Highest power of two <= p.
        let mut top = 1usize;
        while top << 1 < p {
            top <<= 1;
        }
        // Receive once (if non-root), then forward down the tree.
        let mut k = top;
        while k >= 1 {
            if rel & (k - 1) == 0 {
                // Participant at this level.
                if rel & k != 0 {
                    // Our parent is rel - k.
                    if have.is_none() {
                        let src = (rel - k + root) % p;
                        let v: T = self.recv(src, tag);
                        have = Some(v);
                    }
                } else if rel + k < p {
                    if let Some(v) = &have {
                        let dst = (rel + k + root) % p;
                        self.send(dst, tag, v.clone());
                    }
                }
            }
            k >>= 1;
        }
        have.expect("broadcast value must have propagated")
    }

    /// Gathers every rank's vector at `root` (rank order). Root returns
    /// `Some(vec of per-rank vectors)`, others `None`.
    pub fn gather_vec<T: Wire + Clone>(&self, root: usize, value: Vec<T>) -> Option<Vec<Vec<T>>> {
        if self.rank() == root {
            let mut value = Some(value);
            let out: Vec<Vec<T>> = (0..self.size())
                .map(|src| {
                    if src == root {
                        value.take().expect("own contribution consumed once")
                    } else {
                        self.recv(src, TAG_GATHER)
                    }
                })
                .collect();
            Some(out)
        } else {
            self.send(root, TAG_GATHER, value);
            None
        }
    }

    /// Allgather: every rank receives every rank's vector, in rank order.
    pub fn allgather_vec<T: Wire + Clone>(&self, value: Vec<T>) -> Vec<Vec<T>> {
        let gathered = self.gather_vec(0, value);
        self.broadcast_from(0, gathered, TAG_BCAST)
    }

    /// All-to-all personalised exchange in bounded phases: every rank
    /// splits its buckets into chunks of at most `phase_size` entries and
    /// the ranks run as many all-to-all rounds as the globally largest
    /// bucket requires. This is the paper's multi-phase boundary exchange
    /// (§3.1/§3.3: boundary data is "communicated in multiple phases" to
    /// bound message sizes). Uses the sparse schedule, so ranks whose
    /// buckets are exhausted stop contributing payload messages instead of
    /// shipping empty chunks for every remaining global phase.
    pub fn alltoallv_phased<T: Wire + Clone>(
        &self,
        per_dest: Vec<Vec<T>>,
        phase_size: usize,
    ) -> Vec<Vec<T>> {
        self.alltoallv_phased_with(per_dest, phase_size, ExchangeMode::Sparse)
    }

    /// [`Comm::alltoallv_phased`] with an explicit [`ExchangeMode`].
    pub fn alltoallv_phased_with<T: Wire + Clone>(
        &self,
        per_dest: Vec<Vec<T>>,
        phase_size: usize,
        mode: ExchangeMode,
    ) -> Vec<Vec<T>> {
        self.alltoallv_phased_enc(per_dest, phase_size, mode, |chunk| chunk, |chunk| chunk)
    }

    /// Phased exchange through a per-message codec: each non-empty chunk is
    /// passed through `enc` before it hits the wire (so the cost model
    /// charges the *encoded* size) and through `dec` on receipt. This is
    /// how the phase drivers ship compressed relabeling payloads
    /// ([`mnd_wire::PackedIds`]/[`mnd_wire::PackedPairs`]) without the
    /// collective layer knowing about component ids.
    pub fn alltoallv_phased_enc<T, W>(
        &self,
        mut per_dest: Vec<Vec<T>>,
        phase_size: usize,
        mode: ExchangeMode,
        enc: impl Fn(Vec<T>) -> W,
        dec: impl Fn(W) -> Vec<T>,
    ) -> Vec<Vec<T>>
    where
        T: Send + 'static,
        W: Wire + Clone,
    {
        assert!(phase_size >= 1);
        let p = self.size();
        let me = self.rank();
        assert_eq!(per_dest.len(), p, "alltoallv needs one bucket per rank");
        // Sparse: one count header for the *whole* phased exchange — entry
        // `d*p + s` is the number of items rank `s` ships to rank `d`.
        // Contributions occupy disjoint slots, so a sum-allreduce assembles
        // the full matrix everywhere. Chunks drain front-to-back, so sender
        // `s` hits destination `d` in exactly the first ⌈count/phase_size⌉
        // phases: every rank derives the global phase count *and* its
        // per-phase receive schedule locally, with no per-phase handshakes
        // (the dense path's TAG_PHASED max-round is subsumed too).
        let counts: Option<Vec<u64>> = match mode {
            ExchangeMode::Dense => None,
            ExchangeMode::Sparse => {
                let mut header = vec![0u64; p * p];
                for (d, b) in per_dest.iter().enumerate() {
                    if d != me {
                        header[d * p + me] = b.len() as u64;
                    }
                }
                Some(self.allreduce_vec_with_tags(header, |a, b| a + b, TAG_SPARSE, TAG_SPARSE))
            }
        };
        let phases = match &counts {
            None => {
                let my_phases = per_dest
                    .iter()
                    .map(|b| b.len().div_ceil(phase_size))
                    .max()
                    .unwrap_or(0) as u64;
                let phases = self.reduce_u64_with_tag(my_phases, u64::max, 0, TAG_PHASED);
                self.broadcast_from(0, (self.rank() == 0).then_some(phases), TAG_PHASED) as usize
            }
            Some(h) => {
                // Global max over the matrix covers every inter-rank chunk;
                // the own-rank bucket never travels, so it only extends the
                // local drain loop (extra iterations send/receive nothing).
                let global = h
                    .iter()
                    .map(|&c| (c as usize).div_ceil(phase_size))
                    .max()
                    .unwrap_or(0);
                global.max(per_dest[me].len().div_ceil(phase_size))
            }
        };
        let mut out: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        for ph in 0..phases {
            let items: Vec<Option<W>> = per_dest
                .iter_mut()
                .map(|b| {
                    let take = b.len().min(phase_size);
                    let chunk: Vec<T> = b.drain(..take).collect();
                    match mode {
                        ExchangeMode::Dense => Some(enc(chunk)),
                        ExchangeMode::Sparse => (!chunk.is_empty()).then(|| enc(chunk)),
                    }
                })
                .collect();
            let routed = match &counts {
                None => self.alltoallv_items(items, ExchangeMode::Dense),
                Some(h) => {
                    let recv_mask: Vec<bool> = (0..p)
                        .map(|s| s != me && (h[me * p + s] as usize).div_ceil(phase_size) > ph)
                        .collect();
                    self.exchange_masked(items, &recv_mask, ExchangeMode::Sparse)
                }
            };
            for (src, item) in routed.into_iter().enumerate() {
                if let Some(w) = item {
                    out[src].extend(dec(w));
                }
            }
        }
        out
    }

    /// All-to-all personalised exchange: `per_dest[d]` goes to rank `d`;
    /// returns what every rank sent to us (`result[s]` came from rank `s`).
    /// The entry for our own rank is passed through locally.
    ///
    /// Default is the **sparse** schedule: a small bitmap header (one
    /// vector allreduce on the `sparse_hdr` tag) tells every pair who
    /// sends, and empty buckets cost nothing on the wire. The previous
    /// always-send behaviour survives as [`Comm::alltoallv_dense`], the
    /// oracle the sparse path is tested against.
    ///
    /// # Panics
    ///
    /// If `per_dest.len() != self.size()` (one bucket per rank required),
    /// or if any rank fails to make the matching collective call.
    ///
    /// This is the paper's multi-phase ghost-vertex exchange primitive: the
    /// driver calls it once per phase with bounded message sizes.
    pub fn alltoallv<T: Wire + Clone>(&self, per_dest: Vec<Vec<T>>) -> Vec<Vec<T>> {
        self.alltoallv_with(per_dest, ExchangeMode::Sparse)
    }

    /// Dense oracle: ships all p−1 buckets unconditionally, empty or not.
    pub fn alltoallv_dense<T: Wire + Clone>(&self, per_dest: Vec<Vec<T>>) -> Vec<Vec<T>> {
        self.alltoallv_with(per_dest, ExchangeMode::Dense)
    }

    /// [`Comm::alltoallv`] with an explicit [`ExchangeMode`].
    pub fn alltoallv_with<T: Wire + Clone>(
        &self,
        per_dest: Vec<Vec<T>>,
        mode: ExchangeMode,
    ) -> Vec<Vec<T>> {
        assert_eq!(
            per_dest.len(),
            self.size(),
            "alltoallv needs one bucket per rank"
        );
        let items: Vec<Option<Vec<T>>> = per_dest
            .into_iter()
            .map(|b| match mode {
                ExchangeMode::Dense => Some(b),
                ExchangeMode::Sparse => (!b.is_empty()).then_some(b),
            })
            .collect();
        self.alltoallv_items(items, mode)
            .into_iter()
            .map(Option::unwrap_or_default)
            .collect()
    }

    /// The one exchange core both modes share: one optional item per rank.
    ///
    /// Dense mode requires every non-self slot to be `Some` and ships all
    /// of them. Sparse mode first OR-allreduces a p×⌈p/64⌉-word sender
    /// bitmap — row `d` holds the senders targeting rank `d` — so both
    /// sides of every pair agree on the schedule from one header
    /// collective, then sends only `Some` buckets over the same shifted
    /// schedule (step `s`: send to `me+s`, receive from `me−s`) the dense
    /// path uses.
    fn alltoallv_items<W: Wire + Clone>(
        &self,
        per_dest: Vec<Option<W>>,
        mode: ExchangeMode,
    ) -> Vec<Option<W>> {
        let p = self.size();
        let me = self.rank();
        assert_eq!(per_dest.len(), p, "alltoallv needs one bucket per rank");
        let recv_mask: Vec<bool> = match mode {
            ExchangeMode::Dense => (0..p).map(|s| s != me).collect(),
            ExchangeMode::Sparse => {
                let words = p.div_ceil(64);
                let mut header = vec![0u64; p * words];
                for (d, bucket) in per_dest.iter().enumerate() {
                    if d != me && bucket.is_some() {
                        header[d * words + me / 64] |= 1 << (me % 64);
                    }
                }
                let header =
                    self.allreduce_vec_with_tags(header, |a, b| a | b, TAG_SPARSE, TAG_SPARSE);
                (0..p)
                    .map(|s| s != me && header[me * words + s / 64] >> (s % 64) & 1 == 1)
                    .collect()
            }
        };
        self.exchange_masked(per_dest, &recv_mask, mode)
    }

    /// The shifted send/receive schedule both modes and both header kinds
    /// share. `recv_mask[s]` says whether rank `s` has a message for us
    /// this round — the caller has already agreed on it collectively (the
    /// dense all-ones mask, the bitmap header, or one row of the phased
    /// count matrix).
    fn exchange_masked<W: Wire + Clone>(
        &self,
        mut per_dest: Vec<Option<W>>,
        recv_mask: &[bool],
        mode: ExchangeMode,
    ) -> Vec<Option<W>> {
        let p = self.size();
        let me = self.rank();
        let mine = per_dest[me].take();
        // Shifted schedule avoids hot-spotting rank 0 in the model: in step
        // s we send to (me + s) and receive from (me - s).
        for s in 1..p {
            let dst = (me + s) % p;
            match (mode, per_dest[dst].take()) {
                (_, Some(payload)) => self.send(dst, TAG_ALLTOALL, payload),
                (ExchangeMode::Dense, None) => {
                    panic!("dense alltoallv requires a payload for every rank")
                }
                (ExchangeMode::Sparse, None) => {}
            }
        }
        let mut out: Vec<Option<W>> = (0..p).map(|_| None).collect();
        out[me] = mine;
        for s in 1..p {
            let src = (me + p - s) % p;
            if recv_mask[src] {
                out[src] = Some(self.recv(src, TAG_ALLTOALL));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::{ExchangeMode, TAG_ALLTOALL, TAG_SPARSE};
    use crate::cluster::Cluster;
    use crate::cost::CostModel;

    #[test]
    fn allreduce_sum_and_max() {
        for p in [1, 2, 3, 5, 8] {
            let out = Cluster::new(p, CostModel::free()).run(|c| {
                let sum = c.allreduce_u64(c.rank() as u64 + 1, |a, b| a + b);
                let max = c.allreduce_u64(c.rank() as u64, u64::max);
                (sum, max)
            });
            let expect_sum = (p as u64) * (p as u64 + 1) / 2;
            for o in &out {
                assert_eq!(o.result, (expect_sum, p as u64 - 1), "p={p}");
            }
        }
    }

    #[test]
    fn reduce_only_root_gets_value() {
        let out = Cluster::new(4, CostModel::free()).run(|c| c.reduce_u64(1, |a, b| a + b, 2));
        for (r, o) in out.iter().enumerate() {
            if r == 2 {
                assert_eq!(o.result, Some(4));
            } else {
                assert_eq!(o.result, None);
            }
        }
    }

    #[test]
    fn broadcast_from_every_root() {
        for root in 0..4 {
            let out = Cluster::new(4, CostModel::free())
                .run(|c| c.broadcast(root, (c.rank() == root).then(|| vec![root as u32; 3])));
            for o in &out {
                assert_eq!(o.result, vec![root as u32; 3]);
            }
        }
    }

    #[test]
    fn allreduce_vec_elementwise() {
        let out = Cluster::new(3, CostModel::free()).run(|c| {
            let local = vec![c.rank() as u64; 4];
            c.allreduce_vec_u64(local, |a, b| a + b)
        });
        for o in &out {
            assert_eq!(o.result, vec![3; 4]); // 0+1+2
        }
    }

    #[test]
    fn barrier_aligns_clocks_forward() {
        let out = Cluster::new(4, CostModel::free()).run(|c| {
            c.compute(c.rank() as f64); // staggered arrival
            c.barrier();
            c.now()
        });
        // After a free-cost barrier every clock is >= the slowest rank's.
        for o in &out {
            assert!(o.result >= 3.0, "clock {}", o.result);
        }
    }

    #[test]
    fn alltoallv_routes_buckets() {
        let out = Cluster::new(4, CostModel::default_cluster()).run(|c| {
            let me = c.rank();
            let per_dest: Vec<Vec<u32>> = (0..4).map(|d| vec![(me * 10 + d) as u32]).collect();
            c.alltoallv(per_dest)
        });
        for (me, o) in out.iter().enumerate() {
            for (src, bucket) in o.result.iter().enumerate() {
                assert_eq!(bucket, &vec![(src * 10 + me) as u32], "src {src} -> {me}");
            }
        }
    }

    /// Ragged fixture: rank `me`'s bucket for destination `d` holds
    /// `(me * 5 + d * 3) % 11` elements — lengths differ per (src, dst)
    /// pair, several buckets are empty, and ranks exhaust their payload in
    /// different phases.
    fn ragged_buckets(me: u32, p: u32) -> Vec<Vec<u32>> {
        (0..p)
            .map(|d| {
                let len = (me * 5 + d * 3) % 11;
                (0..len).map(|i| me * 1000 + d * 100 + i).collect()
            })
            .collect()
    }

    #[test]
    fn phased_alltoallv_matches_unphased() {
        for phase_size in [1usize, 3, 100] {
            for mode in [ExchangeMode::Dense, ExchangeMode::Sparse] {
                let out = Cluster::new(4, CostModel::free()).run(move |c| {
                    let me = c.rank() as u32;
                    let per_dest: Vec<Vec<u32>> = (0..4)
                        .map(|d| (0..7).map(|i| me * 100 + d as u32 * 10 + i).collect())
                        .collect();
                    c.alltoallv_phased_with(per_dest, phase_size, mode)
                });
                for (me, o) in out.iter().enumerate() {
                    for (src, bucket) in o.result.iter().enumerate() {
                        let expect: Vec<u32> = (0..7)
                            .map(|i| src as u32 * 100 + me as u32 * 10 + i)
                            .collect();
                        assert_eq!(bucket, &expect, "phase_size {phase_size} mode {mode:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn phased_alltoallv_matches_unphased_on_ragged_buckets() {
        let oracle = Cluster::new(5, CostModel::free())
            .run(|c| c.alltoallv_dense(ragged_buckets(c.rank() as u32, 5)));
        for phase_size in [1usize, 2, 4, 64] {
            for mode in [ExchangeMode::Dense, ExchangeMode::Sparse] {
                let out = Cluster::new(5, CostModel::free()).run(move |c| {
                    c.alltoallv_phased_with(ragged_buckets(c.rank() as u32, 5), phase_size, mode)
                });
                for (rank, (o, expect)) in out.iter().zip(&oracle).enumerate() {
                    assert_eq!(
                        o.result, expect.result,
                        "rank {rank} phase_size {phase_size} mode {mode:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn sparse_alltoallv_matches_dense_on_ragged_buckets() {
        let dense = Cluster::new(5, CostModel::free())
            .run(|c| c.alltoallv_dense(ragged_buckets(c.rank() as u32, 5)));
        let sparse = Cluster::new(5, CostModel::free())
            .run(|c| c.alltoallv(ragged_buckets(c.rank() as u32, 5)));
        for (d, s) in dense.iter().zip(&sparse) {
            assert_eq!(d.result, s.result);
        }
    }

    #[test]
    fn phased_alltoallv_charges_more_messages_per_phase() {
        let msgs = |phase_size: usize| {
            let out = Cluster::new(3, CostModel::default_cluster()).run(move |c| {
                let per_dest: Vec<Vec<u8>> = (0..3).map(|_| vec![0u8; 10]).collect();
                c.alltoallv_phased(per_dest, phase_size);
                c.stats().messages_sent
            });
            out.iter().map(|o| o.result).sum::<u64>()
        };
        assert!(msgs(2) > msgs(100), "more phases -> more messages");
    }

    #[test]
    fn alltoallv_empty_buckets() {
        let out = Cluster::new(3, CostModel::free()).run(|c| {
            let per_dest: Vec<Vec<u8>> = vec![Vec::new(); 3];
            c.alltoallv(per_dest)
        });
        for o in &out {
            assert!(o.result.iter().all(|b| b.is_empty()));
        }
    }

    /// Regression for the empty-bucket bug: an all-empty sparse exchange
    /// must ship **zero** payload messages on the `alltoall` tag — only the
    /// 2(p−1) header messages of the bitmap allreduce remain.
    #[test]
    fn all_empty_sparse_exchange_ships_no_payload_messages() {
        let p = 4;
        let out = Cluster::new(p, CostModel::default_cluster()).run(move |c| {
            let per_dest: Vec<Vec<u32>> = vec![Vec::new(); 4];
            let got = c.alltoallv(per_dest);
            assert!(got.iter().all(|b| b.is_empty()));
            let stats = c.stats();
            let tag_msgs = |t| stats.by_tag.get(&t).map_or(0, |tr| tr.messages_sent);
            (tag_msgs(TAG_ALLTOALL), tag_msgs(TAG_SPARSE))
        });
        let payload: u64 = out.iter().map(|o| o.result.0).sum();
        let header: u64 = out.iter().map(|o| o.result.1).sum();
        assert_eq!(payload, 0, "empty buckets must not become messages");
        assert_eq!(header, 2 * (p as u64 - 1), "reduce + bcast of the bitmap");
    }

    /// The dense oracle still pays p(p−1) messages for the same all-empty
    /// exchange — the delta the sparse path exists to eliminate.
    #[test]
    fn dense_oracle_still_ships_empty_buckets() {
        let p = 4usize;
        let out = Cluster::new(p, CostModel::default_cluster()).run(move |c| {
            let per_dest: Vec<Vec<u32>> = vec![Vec::new(); 4];
            c.alltoallv_dense(per_dest);
            c.stats()
                .by_tag
                .get(&TAG_ALLTOALL)
                .map_or(0, |tr| tr.messages_sent)
        });
        let payload: u64 = out.iter().map(|o| o.result).sum();
        assert_eq!(payload, (p * (p - 1)) as u64);
    }

    /// Satellite 2: a rank whose buckets are exhausted stops contributing
    /// payload messages to later phases. Rank 0 ships 6 items to everyone
    /// (3 phases at size 2); the other ranks have nothing, so the sparse
    /// schedule carries exactly rank 0's 3 × (p−1) chunk messages instead
    /// of the dense 3 × p(p−1).
    #[test]
    fn phased_exhausted_ranks_stop_contributing_payload() {
        let run = |mode: ExchangeMode| {
            Cluster::new(4, CostModel::default_cluster()).run(move |c| {
                let per_dest: Vec<Vec<u32>> = (0..4)
                    .map(|d| {
                        if c.rank() == 0 && d != 0 {
                            (0..6).map(|i| d as u32 * 10 + i).collect()
                        } else {
                            Vec::new()
                        }
                    })
                    .collect();
                let got = c.alltoallv_phased_with(per_dest, 2, mode);
                let payload_msgs = c
                    .stats()
                    .by_tag
                    .get(&TAG_ALLTOALL)
                    .map_or(0, |tr| tr.messages_sent);
                (got, payload_msgs)
            })
        };
        let dense = run(ExchangeMode::Dense);
        let sparse = run(ExchangeMode::Sparse);
        for (d, s) in dense.iter().zip(&sparse) {
            assert_eq!(d.result.0, s.result.0, "routing must not change");
        }
        let dense_msgs: u64 = dense.iter().map(|o| o.result.1).sum();
        let sparse_msgs: u64 = sparse.iter().map(|o| o.result.1).sum();
        assert_eq!(dense_msgs, 3 * 4 * 3, "3 phases of p(p-1) dense messages");
        assert_eq!(sparse_msgs, 3 * 3, "only rank 0's non-empty chunks ship");
    }

    /// The phased codec hook charges the encoded size: a codec that models
    /// 1-byte-per-element compression moves fewer wire bytes than the raw
    /// 4-byte path, and the decoded routing is unchanged.
    #[test]
    fn phased_enc_charges_encoded_bytes() {
        #[derive(Clone)]
        struct Squeezed(Vec<u32>);
        impl mnd_wire::Wire for Squeezed {
            fn wire_bytes(&self) -> u64 {
                self.0.len() as u64
            }
        }
        let run = |encode: bool| {
            Cluster::new(3, CostModel::default_cluster()).run(move |c| {
                let per_dest = ragged_buckets(c.rank() as u32, 3);
                let got = if encode {
                    c.alltoallv_phased_enc(
                        per_dest,
                        4,
                        ExchangeMode::Sparse,
                        Squeezed,
                        |w: Squeezed| w.0,
                    )
                } else {
                    c.alltoallv_phased_with(per_dest, 4, ExchangeMode::Sparse)
                };
                (got, c.stats().bytes_sent)
            })
        };
        let raw = run(false);
        let packed = run(true);
        for (r, pk) in raw.iter().zip(&packed) {
            assert_eq!(r.result.0, pk.result.0, "codec must round-trip");
            assert!(
                pk.result.1 < r.result.1,
                "encoded {} < raw {}",
                pk.result.1,
                r.result.1
            );
        }
    }
}
