//! Collective operations, built from point-to-point messages so their
//! simulated cost (binomial-tree latency, bandwidth terms) emerges from the
//! same LogGP model as everything else.
//!
//! All collectives must be called by **every** rank of the cluster, in the
//! same order — the usual MPI contract. Tags are taken from the reserved
//! collective space and matching is FIFO per `(source, tag)`, so back-to-
//! back collectives of the same kind cannot cross-talk.

use mnd_wire::Wire;

use crate::comm::{Comm, Tag};

const TAG_BARRIER: Tag = tag(0);
const TAG_REDUCE: Tag = tag(1);
const TAG_BCAST: Tag = tag(2);
const TAG_GATHER: Tag = tag(3);
const TAG_ALLTOALL: Tag = tag(4);
const TAG_REDUCE_VEC: Tag = tag(5);
const TAG_PHASED: Tag = tag(6);

/// Builds a tag in the reserved collective space (upper half of the tag
/// range, which [`Tag::user`] rejects).
const fn tag(id: u32) -> Tag {
    Tag(0x8000_0000 | id)
}

impl Comm {
    /// Synchronises all ranks: no rank leaves before every rank entered.
    /// Binomial reduce + broadcast of zero-byte tokens.
    pub fn barrier(&self) {
        self.reduce_u64_with_tag(0, |a, _| a, 0, TAG_BARRIER);
        self.broadcast_from(
            0,
            if self.rank() == 0 { Some(0u8) } else { None },
            TAG_BARRIER,
        );
    }

    /// Reduces `value` with `op` onto rank `root`; returns `Some(total)` on
    /// the root, `None` elsewhere.
    pub fn reduce_u64(&self, value: u64, op: impl Fn(u64, u64) -> u64, root: usize) -> Option<u64> {
        let v = self.reduce_u64_with_tag(value, op, root, TAG_REDUCE);
        (self.rank() == root).then_some(v)
    }

    /// Allreduce: every rank gets the reduction of all values.
    pub fn allreduce_u64(&self, value: u64, op: impl Fn(u64, u64) -> u64) -> u64 {
        let v = self.reduce_u64_with_tag(value, op, 0, TAG_REDUCE);
        self.broadcast_from(0, (self.rank() == 0).then_some(v), TAG_BCAST)
    }

    /// Element-wise vector allreduce (e.g. the Gemini-style global degree
    /// computation of §3.1). All ranks must pass equal-length vectors.
    pub fn allreduce_vec_u64(&self, mut value: Vec<u64>, op: impl Fn(u64, u64) -> u64) -> Vec<u64> {
        let p = self.size();
        let me = self.rank();
        // Binomial tree reduce to 0.
        let mut k = 1usize;
        while k < p {
            if me & k != 0 {
                self.send(me - k, TAG_REDUCE_VEC, value);
                value = Vec::new();
                break;
            } else if me + k < p {
                let other: Vec<u64> = self.recv(me + k, TAG_REDUCE_VEC);
                assert_eq!(other.len(), value.len(), "allreduce_vec length mismatch");
                for (a, b) in value.iter_mut().zip(other) {
                    *a = op(*a, b);
                }
            }
            k <<= 1;
        }
        // Broadcast the result.
        self.broadcast_from(0, (me == 0).then_some(value), TAG_BCAST)
    }

    fn reduce_u64_with_tag(
        &self,
        value: u64,
        op: impl Fn(u64, u64) -> u64,
        root: usize,
        tag: Tag,
    ) -> u64 {
        let p = self.size();
        let rel = (self.rank() + p - root) % p;
        let mut acc = value;
        let mut k = 1usize;
        while k < p {
            if rel & k != 0 {
                let dst = (rel - k + root) % p;
                self.send(dst, tag, acc);
                return acc; // non-root contribution delivered
            } else if rel + k < p {
                let src = (rel + k + root) % p;
                let other: u64 = self.recv(src, tag);
                acc = op(acc, other);
            }
            k <<= 1;
        }
        acc
    }

    /// Broadcasts from `root`: the root passes `Some(value)`, everyone else
    /// `None`; all ranks return the value. Binomial tree.
    pub fn broadcast<T: Wire + Clone>(&self, root: usize, value: Option<T>) -> T {
        self.broadcast_from(root, value, TAG_BCAST)
    }

    fn broadcast_from<T: Wire + Clone>(&self, root: usize, value: Option<T>, tag: Tag) -> T {
        let p = self.size();
        let rel = (self.rank() + p - root) % p;
        let mut have: Option<T> = value;
        if rel == 0 {
            assert!(have.is_some(), "broadcast root must supply the value");
        }
        // Highest power of two <= p.
        let mut top = 1usize;
        while top << 1 < p {
            top <<= 1;
        }
        // Receive once (if non-root), then forward down the tree.
        let mut k = top;
        while k >= 1 {
            if rel & (k - 1) == 0 {
                // Participant at this level.
                if rel & k != 0 {
                    // Our parent is rel - k.
                    if have.is_none() {
                        let src = (rel - k + root) % p;
                        let v: T = self.recv(src, tag);
                        have = Some(v);
                    }
                } else if rel + k < p {
                    if let Some(v) = &have {
                        let dst = (rel + k + root) % p;
                        self.send(dst, tag, v.clone());
                    }
                }
            }
            k >>= 1;
        }
        have.expect("broadcast value must have propagated")
    }

    /// Gathers every rank's vector at `root` (rank order). Root returns
    /// `Some(vec of per-rank vectors)`, others `None`.
    pub fn gather_vec<T: Wire + Clone>(&self, root: usize, value: Vec<T>) -> Option<Vec<Vec<T>>> {
        if self.rank() == root {
            let mut value = Some(value);
            let out: Vec<Vec<T>> = (0..self.size())
                .map(|src| {
                    if src == root {
                        value.take().expect("own contribution consumed once")
                    } else {
                        self.recv(src, TAG_GATHER)
                    }
                })
                .collect();
            Some(out)
        } else {
            self.send(root, TAG_GATHER, value);
            None
        }
    }

    /// Allgather: every rank receives every rank's vector, in rank order.
    pub fn allgather_vec<T: Wire + Clone>(&self, value: Vec<T>) -> Vec<Vec<T>> {
        let gathered = self.gather_vec(0, value);
        self.broadcast_from(0, gathered, TAG_BCAST)
    }

    /// All-to-all personalised exchange in bounded phases: every rank
    /// splits its buckets into chunks of at most `phase_size` entries and
    /// the ranks run as many all-to-all rounds as the globally largest
    /// bucket requires. This is the paper's multi-phase boundary exchange
    /// (§3.1/§3.3: boundary data is "communicated in multiple phases" to
    /// bound message sizes).
    pub fn alltoallv_phased<T: Wire + Clone>(
        &self,
        mut per_dest: Vec<Vec<T>>,
        phase_size: usize,
    ) -> Vec<Vec<T>> {
        assert!(phase_size >= 1);
        let p = self.size();
        assert_eq!(per_dest.len(), p, "alltoallv needs one bucket per rank");
        let my_phases = per_dest
            .iter()
            .map(|b| b.len().div_ceil(phase_size))
            .max()
            .unwrap_or(0) as u64;
        let phases = self.reduce_u64_with_tag(my_phases, u64::max, 0, TAG_PHASED);
        let phases = self.broadcast_from(0, (self.rank() == 0).then_some(phases), TAG_PHASED);
        let mut out: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        for _ in 0..phases {
            let chunk: Vec<Vec<T>> = per_dest
                .iter_mut()
                .map(|b| {
                    let take = b.len().min(phase_size);
                    b.drain(..take).collect()
                })
                .collect();
            for (src, items) in self.alltoallv(chunk).into_iter().enumerate() {
                out[src].extend(items);
            }
        }
        out
    }

    /// All-to-all personalised exchange: `per_dest[d]` goes to rank `d`;
    /// returns what every rank sent to us (`result[s]` came from rank `s`).
    /// The entry for our own rank is passed through locally.
    ///
    /// # Panics
    ///
    /// If `per_dest.len() != self.size()` (one bucket per rank required),
    /// or if any rank fails to make the matching collective call.
    ///
    /// This is the paper's multi-phase ghost-vertex exchange primitive: the
    /// driver calls it once per phase with bounded message sizes.
    pub fn alltoallv<T: Wire + Clone>(&self, mut per_dest: Vec<Vec<T>>) -> Vec<Vec<T>> {
        let p = self.size();
        let me = self.rank();
        assert_eq!(per_dest.len(), p, "alltoallv needs one bucket per rank");
        let mine = std::mem::take(&mut per_dest[me]);
        // Shifted schedule avoids hot-spotting rank 0 in the model: in step
        // s we send to (me + s) and receive from (me - s).
        for s in 1..p {
            let dst = (me + s) % p;
            self.send(dst, TAG_ALLTOALL, std::mem::take(&mut per_dest[dst]));
        }
        let mut out: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        out[me] = mine;
        for s in 1..p {
            let src = (me + p - s) % p;
            out[src] = self.recv(src, TAG_ALLTOALL);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::cluster::Cluster;
    use crate::cost::CostModel;

    #[test]
    fn allreduce_sum_and_max() {
        for p in [1, 2, 3, 5, 8] {
            let out = Cluster::new(p, CostModel::free()).run(|c| {
                let sum = c.allreduce_u64(c.rank() as u64 + 1, |a, b| a + b);
                let max = c.allreduce_u64(c.rank() as u64, u64::max);
                (sum, max)
            });
            let expect_sum = (p as u64) * (p as u64 + 1) / 2;
            for o in &out {
                assert_eq!(o.result, (expect_sum, p as u64 - 1), "p={p}");
            }
        }
    }

    #[test]
    fn reduce_only_root_gets_value() {
        let out = Cluster::new(4, CostModel::free()).run(|c| c.reduce_u64(1, |a, b| a + b, 2));
        for (r, o) in out.iter().enumerate() {
            if r == 2 {
                assert_eq!(o.result, Some(4));
            } else {
                assert_eq!(o.result, None);
            }
        }
    }

    #[test]
    fn broadcast_from_every_root() {
        for root in 0..4 {
            let out = Cluster::new(4, CostModel::free())
                .run(|c| c.broadcast(root, (c.rank() == root).then(|| vec![root as u32; 3])));
            for o in &out {
                assert_eq!(o.result, vec![root as u32; 3]);
            }
        }
    }

    #[test]
    fn allreduce_vec_elementwise() {
        let out = Cluster::new(3, CostModel::free()).run(|c| {
            let local = vec![c.rank() as u64; 4];
            c.allreduce_vec_u64(local, |a, b| a + b)
        });
        for o in &out {
            assert_eq!(o.result, vec![3; 4]); // 0+1+2
        }
    }

    #[test]
    fn barrier_aligns_clocks_forward() {
        let out = Cluster::new(4, CostModel::free()).run(|c| {
            c.compute(c.rank() as f64); // staggered arrival
            c.barrier();
            c.now()
        });
        // After a free-cost barrier every clock is >= the slowest rank's.
        for o in &out {
            assert!(o.result >= 3.0, "clock {}", o.result);
        }
    }

    #[test]
    fn alltoallv_routes_buckets() {
        let out = Cluster::new(4, CostModel::default_cluster()).run(|c| {
            let me = c.rank();
            let per_dest: Vec<Vec<u32>> = (0..4).map(|d| vec![(me * 10 + d) as u32]).collect();
            c.alltoallv(per_dest)
        });
        for (me, o) in out.iter().enumerate() {
            for (src, bucket) in o.result.iter().enumerate() {
                assert_eq!(bucket, &vec![(src * 10 + me) as u32], "src {src} -> {me}");
            }
        }
    }

    #[test]
    fn phased_alltoallv_matches_unphased() {
        for phase_size in [1usize, 3, 100] {
            let out = Cluster::new(4, CostModel::free()).run(move |c| {
                let me = c.rank() as u32;
                let per_dest: Vec<Vec<u32>> = (0..4)
                    .map(|d| (0..7).map(|i| me * 100 + d as u32 * 10 + i).collect())
                    .collect();
                c.alltoallv_phased(per_dest, phase_size)
            });
            for (me, o) in out.iter().enumerate() {
                for (src, bucket) in o.result.iter().enumerate() {
                    let expect: Vec<u32> = (0..7)
                        .map(|i| src as u32 * 100 + me as u32 * 10 + i)
                        .collect();
                    assert_eq!(bucket, &expect, "phase_size {phase_size}");
                }
            }
        }
    }

    #[test]
    fn phased_alltoallv_charges_more_messages_per_phase() {
        let msgs = |phase_size: usize| {
            let out = Cluster::new(3, CostModel::default_cluster()).run(move |c| {
                let per_dest: Vec<Vec<u8>> = (0..3).map(|_| vec![0u8; 10]).collect();
                c.alltoallv_phased(per_dest, phase_size);
                c.stats().messages_sent
            });
            out.iter().map(|o| o.result).sum::<u64>()
        };
        assert!(msgs(2) > msgs(100), "more phases -> more messages");
    }

    #[test]
    fn alltoallv_empty_buckets() {
        let out = Cluster::new(3, CostModel::free()).run(|c| {
            let per_dest: Vec<Vec<u8>> = vec![Vec::new(); 3];
            c.alltoallv(per_dest)
        });
        for o in &out {
            assert!(o.result.iter().all(|b| b.is_empty()));
        }
    }
}
